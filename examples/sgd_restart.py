#!/usr/bin/env python
"""Fault tolerance: checkpoint-restart training through a worker crash.

The paper leans on TensorFlow's checkpoint/restart support because HPC
jobs outlive the mean time between node failures. This example injects
a deterministic worker crash into data-parallel SGD and watches the
whole recovery pipeline fire:

* **injection** — a ``FaultPlan`` kills worker 1 at a chosen simulated
  time (replayable: the same plan produces the same run, byte for byte);
* **detection** — the session's ``operation_timeout_ms`` turns the lost
  rank into a ``DeadlineExceededError`` naming exactly who is missing,
  instead of a silent hang;
* **recovery** — the driver restores every replica from the latest
  intact ``Saver`` snapshot and replays; deterministic arithmetic makes
  the recovered trajectory byte-identical to a fault-free run.

Run:  python examples/sgd_restart.py
"""

import tempfile

import numpy as np

import repro as tf
from repro.apps.common import build_cluster, task_device
from repro.apps.sgd import run_sgd, run_sgd_restartable
from repro.errors import DeadlineExceededError


def detection_demo():
    """A dropped collective rank is named, not waited on forever."""
    handle = build_cluster("tegner-k420", {"worker": 2})
    tf.FaultInjector(
        tf.FaultPlan.single_crash("worker", 1, at=0.0)
    ).install(handle.machine)

    g = tf.Graph()
    with g.as_default():
        inputs = []
        for w in range(2):
            with g.device(task_device("worker", w, "cpu", 0)):
                inputs.append(tf.constant(np.ones(8), name=f"x{w}"))
        outs = tf.all_reduce(inputs)
    sess = tf.Session(handle.server("worker", 0), graph=g,
                      config=tf.SessionConfig(operation_timeout_ms=100.0))
    try:
        sess.run(outs)
    except DeadlineExceededError as exc:
        print(f"  detected: {exc}")


def recovery_demo(checkpoint_dir):
    """Crash mid-training, recover, and verify byte-identical replay."""
    steps, workers = 10, 2
    plan = tf.FaultPlan.single_crash("worker", 1, at=0.003,
                                     restart_after=0.1)
    res = run_sgd_restartable(
        num_workers=workers, steps=steps, checkpoint_dir=checkpoint_dir,
        checkpoint_every=3, fault_plan=plan, operation_timeout_ms=50.0,
    )
    for when, kind, detail in res.fault_log:
        print(f"  t={when * 1e3:6.2f} ms  {kind}: {detail.splitlines()[0]}")
    print(f"  recoveries: {res.recoveries}, steps replayed: "
          f"{res.steps_replayed}, checkpoints written: "
          f"{res.checkpoints_written}")
    print(f"  injector fired: {res.injector_stats}")

    clean = run_sgd(num_workers=workers, steps=steps, mode="collective")
    identical = all(
        np.asarray(a).tobytes() == np.asarray(b).tobytes()
        for a, b in zip(res.trajectory, clean.trajectory)
    )
    assert res.validated and identical, "recovery must not change the math"
    print(f"  recovered trajectory byte-identical to fault-free run "
          f"({len(res.trajectory)} steps)")
    print(f"  recovery cost: {res.elapsed * 1e3:.2f} sim ms vs "
          f"{clean.elapsed * 1e3:.2f} fault-free")


def main():
    print("Detection — crash a rank before an allreduce:")
    detection_demo()
    print("\nRecovery — crash worker 1 mid-training, restart from the "
          "latest snapshot:")
    with tempfile.TemporaryDirectory() as tmp:
        recovery_demo(tmp)


if __name__ == "__main__":
    main()
