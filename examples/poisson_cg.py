#!/usr/bin/env python
"""Solve a 2-D Poisson problem with the distributed CG solver.

The paper motivates CG with PDEs "that arise in engineering, physics and
chemistry". Here we discretize ``-∇²u = f`` on a square grid with the
standard 5-point stencil, hand the SPD system to the paper's data-driven
CG solver running on a simulated Kebnekaise V100 allocation, checkpoint
half way, and restart from the checkpoint — the workflow the paper
highlights ("checkpoint-restart capability ... less than 300 lines").

Run:  python examples/poisson_cg.py
"""

import tempfile

import numpy as np

from repro.apps.cg import run_cg


def poisson_2d(grid: int):
    """5-point-stencil Laplacian on a grid x grid interior (SPD), and a
    smooth source term."""
    n = grid * grid
    a = np.zeros((n, n))
    h2 = 1.0 / (grid + 1) ** 2
    for i in range(grid):
        for j in range(grid):
            k = i * grid + j
            a[k, k] = 4.0 / h2
            if i > 0:
                a[k, k - grid] = -1.0 / h2
            if i < grid - 1:
                a[k, k + grid] = -1.0 / h2
            if j > 0:
                a[k, k - 1] = -1.0 / h2
            if j < grid - 1:
                a[k, k + 1] = -1.0 / h2
    xs = (np.arange(grid) + 1) / (grid + 1)
    xx, yy = np.meshgrid(xs, xs, indexing="ij")
    f = np.sin(np.pi * xx) * np.sin(np.pi * yy)
    return a, f.ravel()


def main() -> None:
    grid = 16  # 256 unknowns across 4 simulated V100 workers
    a, b = poisson_2d(grid)
    n = grid * grid

    print(f"Poisson {grid}x{grid} grid -> {n} unknowns, 4 V100 workers\n")

    result = run_cg(
        system="kebnekaise-v100",
        n=n,
        num_gpus=4,
        iterations=160,
        shape_only=False,
        problem=(a, b),
    )
    print(f"relative residual after {result.iterations} iterations: "
          f"{result.residual:.2e}")
    print(f"simulated solve time: {result.elapsed * 1e3:.1f} ms "
          f"({result.gflops:.2f} Gflops/s by the paper's convention)")

    reference = np.linalg.solve(a, b)
    err = np.max(np.abs(result.solution - reference)) / np.max(np.abs(reference))
    print(f"max relative error vs dense solve: {err:.2e}")

    # The analytic solution of -∇²u = sin(πx)sin(πy) is u = f / (2π²).
    analytic = b / (2 * np.pi**2)
    print(f"max |u - analytic| = {np.max(np.abs(result.solution - analytic)):.2e} "
          f"(O(h²) discretization error expected)")

    # ---- checkpoint / restart --------------------------------------------
    with tempfile.TemporaryDirectory() as ckpt:
        run_cg(system="kebnekaise-v100", n=n, num_gpus=4,
               iterations=80, shape_only=False, problem=(a, b),
               checkpoint_dir=ckpt, checkpoint_every=80)
        resumed = run_cg(system="kebnekaise-v100", n=n, num_gpus=4,
                         iterations=80, shape_only=False, problem=(a, b),
                         resume_dir=ckpt)
    print("\ncheckpoint after 80 iters -> restart -> 80 more:")
    print(f"  residual uninterrupted: {result.residual:.3e}")
    print(f"  residual resumed:       {resumed.residual:.3e}")
    agreement = np.isclose(resumed.residual, result.residual, rtol=1e-6)
    print(f"  restart reproduces the uninterrupted run: {bool(agreement)}")


if __name__ == "__main__":
    main()
