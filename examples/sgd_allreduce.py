#!/usr/bin/env python
"""Training with autodiff: data-parallel SGD over ring collectives.

The missing half of the Horovod argument: PR 3 put ``all_reduce`` in the
graph, and ``repro.core.gradients`` provides the backward path to hang
it on. This example first shows the autodiff primitives on a toy loss,
then runs the full data-parallel scenario of ``repro.apps.sgd`` — every
simulated worker differentiates its local shard's loss, the gradients
are summed across ranks (ring allreduce vs the paper's central
reducer), and every replica applies the identical SGD step.

Run:  python examples/sgd_allreduce.py
"""

import numpy as np

import repro as tf
from repro.apps.sgd import make_regression_problem, run_sgd, sgd_reference


def toy_autodiff():
    """tf.gradients + apply_gradients on a single-device loss."""
    x_data, y_data, _ = make_regression_problem(
        d=3, rows_per_worker=32, num_workers=1, seed=7)

    g = tf.Graph()
    with g.as_default():
        w = tf.Variable(tf.zeros([3], dtype=tf.float64, graph=g), name="w")
        x = tf.constant(x_data[0], name="X")
        y = tf.constant(y_data[0], name="y")
        err = tf.subtract(tf.matmul(x, w.value()), y, name="err")
        loss = tf.reduce_sum(tf.square(err), name="loss")
        (grad,) = tf.gradients(loss, w)          # reverse-mode autodiff
        updates = tf.apply_gradients([(grad, w)],  # w -= lr * grad
                                     learning_rate=0.01)

    with tf.Session(graph=g) as sess:
        sess.run(w.initializer)
        for step in range(5):
            loss_value, _ = sess.run([loss, updates[0]])
            print(f"  step {step}: loss {loss_value:8.3f}")


def main():
    print("Toy loss, one device — tf.gradients / tf.apply_gradients:")
    toy_autodiff()

    workers, d, rows, steps, lr = 4, 64, 16, 20, 0.002
    print(f"\nData-parallel SGD: {workers} Tegner workers, d={d}, "
          f"{steps} steps:\n")
    results = {}
    for mode in ("collective", "reducer"):
        results[mode] = run_sgd(
            system="tegner-k420", d=d, num_workers=workers,
            rows_per_worker=rows, steps=steps, learning_rate=lr, mode=mode,
        )
        r = results[mode]
        print(f"  {mode:>10}: {r.elapsed * 1e3:7.2f} ms, "
              f"loss {r.loss_history[0]:.2f} -> {r.loss_history[-1]:.2f}, "
              f"validated={r.validated}")

    ring, central = results["collective"], results["reducer"]
    assert all(a.tobytes() == b.tobytes()
               for a, b in zip(ring.trajectory, central.trajectory)), \
        "gradient-sync modes must agree bit for bit"
    print("\n  weight trajectories byte-identical across sync modes")

    traced = run_sgd(system="tegner-k420", d=d, num_workers=workers,
                     rows_per_worker=rows, steps=steps, learning_rate=lr,
                     mode="collective", frontend="function")
    assert traced.weights.tobytes() == ring.weights.tobytes()
    print(f"  @repro.function frontend agrees too "
          f"(traced {traced.trace_count}x)")

    x_shards, y_shards, _ = make_regression_problem(d, rows, workers)
    ref_w, _, _ = sgd_reference(x_shards, y_shards, steps, lr)
    print(f"  max |graph - numpy reference| = "
          f"{np.abs(ring.weights - ref_w).max():.2e}")

    # The Horovod argument, quantified: an 8 MB gradient at growing
    # worker counts (shape-only; the DES clock does the measuring).
    print("\nScaling the gradient exchange (d=2^20, 8 MB per rank):")
    for w in (2, 4, 8):
        common = dict(d=1 << 20, num_workers=w, rows_per_worker=4,
                      steps=2, shape_only=True)
        ring_t = run_sgd(mode="collective", **common).elapsed
        central_t = run_sgd(mode="reducer", **common).elapsed
        print(f"  W={w}: ring {ring_t * 1e3:7.2f} ms, "
              f"central {central_t * 1e3:7.2f} ms "
              f"({central_t / ring_t:.2f}x)")


if __name__ == "__main__":
    main()
