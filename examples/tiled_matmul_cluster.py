#!/usr/bin/env python
"""Tiled matrix multiplication on a simulated Slurm allocation.

Walks the full deployment path of the paper's Section III-IV: allocate
nodes from the simulated Slurm, resolve the allocation into a TensorFlow
ClusterSpec with per-task GPU masks, boot the servers, and run the
map-reduce tiled matmul — first a concrete run validated against NumPy,
then a paper-scale strong-scaling sweep in shape-only mode.

Run:  python examples/tiled_matmul_cluster.py
"""


from repro.apps.common import build_cluster
from repro.apps.matmul import run_matmul


def main() -> None:
    # ---- the deployment path, spelled out ---------------------------------
    cluster = build_cluster("tegner-k420", {"worker": 4, "reducer": 2})
    print("Slurm allocation on simulated Tegner:")
    print(f"  nodes: {', '.join(cluster.machine.node_names())}")
    print("  cluster spec:")
    for job, addresses in cluster.cluster_spec.as_dict().items():
        print(f"    {job}: {addresses}")
    masks = cluster.resolver.gpu_allocation()
    worker_masks = {k: v for k, v in sorted(masks.items()) if k[0] == "worker"}
    print(f"  GPU masks (CUDA_VISIBLE_DEVICES): {worker_masks}")

    # ---- concrete run: validated against numpy -----------------------------
    result = run_matmul(system="tegner-k420", n=512, tile=128, num_gpus=4,
                        num_reducers=2, shape_only=False, cluster=cluster)
    print(f"\nconcrete 512x512 multiply in {result.products} tile products")
    print(f"  validated against A @ B: {result.validated} "
          f"(max error {result.max_error:.2e})")
    print(f"  simulated time: {result.elapsed * 1e3:.1f} ms")

    # ---- paper-scale strong scaling (shape-only) ---------------------------
    print("\nstrong scaling, N=16384, tile 4096 (paper Fig. 8 slice):")
    previous = None
    for gpus in (2, 4, 8):
        r = run_matmul(system="tegner-k420", n=16384, tile=4096,
                       num_gpus=gpus, num_reducers=2, shape_only=True)
        note = ""
        if previous is not None:
            note = f"  ({r.gflops / previous:.2f}x)"
        print(f"  {gpus} GPUs: {r.gflops:7.1f} Gflops/s{note}")
        previous = r.gflops


if __name__ == "__main__":
    main()
