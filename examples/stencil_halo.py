#!/usr/bin/env python
"""A 2-D heat-equation stencil with halo exchange and ring collectives.

The paper's discussion section points past the parameter-server/reducer
pattern toward "an MPI communication backend for functions such as
allreduce without needing the use of dedicated servers" (Horovod, the
Cray ML plugin). This example runs the repository's first workload where
communication topology dominates: a Jacobi sweep over the unit square
(hot top edge), row-sharded across simulated Tegner nodes.

Each sweep exchanges one halo row per neighbour pair through the
partitioner's _Send/_Recv machinery; every few sweeps the workers
synchronize globally — convergence residual plus a full-field assembly —
either through the graph-level ring collectives (`repro.all_reduce` /
`repro.all_gather`) or through the paper's central-reducer pattern. Both
produce byte-identical fields; the simulated clock shows the ring
pulling ahead as workers are added.

Run:  python examples/stencil_halo.py
"""

import numpy as np

from repro.apps.stencil import jacobi_reference, run_stencil


def main():
    n, workers, sweeps, cadence = 64, 4, 60, 5
    print(f"Jacobi {n}x{n} on {workers} Tegner nodes, "
          f"{sweeps} sweeps, global sync every {cadence}:\n")

    results = {}
    for mode in ("collective", "reducer"):
        results[mode] = run_stencil(
            system="tegner-k420", n=n, num_workers=workers,
            iterations=sweeps, check_every=cadence, mode=mode,
        )
        r = results[mode]
        print(f"  {mode:>10}: {r.elapsed * 1e3:7.2f} ms total "
              f"({r.check_elapsed * 1e3:6.2f} ms in global syncs), "
              f"residual {r.residual_history[-1]:.3e}, "
              f"validated={r.validated}")

    ring, central = results["collective"], results["reducer"]
    assert np.array_equal(ring.solution, central.solution), \
        "modes must agree bit for bit"
    print(f"\n  fields byte-identical; ring sync speedup "
          f"{central.check_elapsed / ring.check_elapsed:.2f}x "
          f"at {workers} workers")

    reference, _ = jacobi_reference(n, ring.iterations)
    print(f"  max |graph - numpy reference| = "
          f"{np.abs(ring.solution - reference).max():.2e}")

    # The Horovod argument, quantified: rerun the sync-heavy setting at
    # growing worker counts (shape-only, paper-scale grid).
    print("\nScaling the global sync (n=1024, sync every sweep):")
    for w in (2, 4, 8):
        ring_t = run_stencil(n=1024, num_workers=w, iterations=10,
                             check_every=1, mode="collective",
                             shape_only=True).check_elapsed
        central_t = run_stencil(n=1024, num_workers=w, iterations=10,
                                check_every=1, mode="reducer",
                                shape_only=True).check_elapsed
        print(f"  W={w}: ring {ring_t * 1e3:7.2f} ms, "
              f"central {central_t * 1e3:7.2f} ms "
              f"({central_t / ring_t:.2f}x)")


if __name__ == "__main__":
    main()
