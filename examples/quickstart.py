#!/usr/bin/env python
"""Quickstart — the paper's Listing 1, plus a look under the hood.

Two random matrices are generated on the (simulated) CPU and multiplied
on the (simulated) GPU; the session returns a NumPy array. With tracing
on, the run produces a Chrome-trace timeline like the paper's Fig. 3 —
open ``quickstart_timeline.json`` in chrome://tracing or Perfetto.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro as tf
from repro.core.timeline import Timeline


def main() -> None:
    # ---- Listing 1 --------------------------------------------------------
    g = tf.Graph(seed=42)
    with g.as_default():
        with g.device("/cpu:0"):
            a = tf.random_uniform(shape=[3, 3], dtype=tf.float32)
            b = tf.random_uniform(shape=[3, 3], dtype=tf.float32)
        with g.device("/gpu:0"):
            c = tf.matmul(a, b)

    with tf.Session(graph=g) as sess:
        ret_c = sess.run(c)
    print("c = a @ b on the simulated GPU:")
    print(ret_c)

    # ---- the same run, traced --------------------------------------------
    meta = tf.RunMetadata()
    with tf.Session(graph=g) as sess:
        bigger = tf.matmul(
            tf.random_uniform([512, 512], graph=g, name="big_a"),
            tf.random_uniform([512, 512], graph=g, name="big_b"),
            name="big_matmul",
        )
        sess.run(bigger, options=tf.RunOptions(trace_level=1),
                 run_metadata=meta)
    print(f"\nSimulated wall time: {meta.wall_time * 1e3:.3f} ms")
    print("Busiest ops:")
    for stat in meta.busiest_ops(3):
        print(f"  {stat.op_name:24s} {stat.op_type:14s} "
              f"{stat.duration * 1e6:9.1f} us on {stat.device}")
    print("Cross-device transfers:")
    for xfer in meta.transfers:
        print(f"  {xfer.nbytes / 1024:8.1f} KiB {xfer.src_device} -> "
              f"{xfer.dst_device} at {xfer.bandwidth / 1e9:.2f} GB/s")

    Timeline(meta).save("quickstart_timeline.json")
    print("\nTimeline written to quickstart_timeline.json")

    # ---- variables and state ---------------------------------------------
    g2 = tf.Graph()
    with g2.as_default():
        counter = tf.Variable(0.0, name="counter")
        bump = tf.assign_add(counter, tf.constant(1.0))
    with tf.Session(graph=g2) as sess:
        sess.run(counter.initializer)
        for _ in range(5):
            sess.run(bump.op)
        print(f"\ncounter after 5 increments: {sess.run(counter):g}")


if __name__ == "__main__":
    main()
