#!/usr/bin/env python
"""Quickstart — the paper's Listing 1, both ways, plus a look under the hood.

Two random matrices are generated on the (simulated) CPU and multiplied
on the (simulated) GPU. The same computation is expressed twice:

* **Session mode** — the TF-1.x deferred style the paper uses: build a
  ``Graph``, run it with a ``Session`` (Listing 1 verbatim);
* **``@repro.function``** — the imperative style the paper anticipates
  ("eager execution ... will likely become the default execution mode"):
  write a Python function, let the tracer turn it into the same graph,
  and call it like a function.

Both dispatch through the identical kernel registry, optimizer, plan
cache and simulator. With tracing on, the traced run produces a
Chrome-trace timeline like the paper's Fig. 3 — open
``quickstart_timeline.json`` in chrome://tracing or Perfetto.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro as tf
from repro.core.timeline import Timeline


def main() -> None:
    # ---- Listing 1, Session mode ------------------------------------------
    g = tf.Graph(seed=42)
    with g.as_default():
        with g.device("/cpu:0"):
            a = tf.random_uniform(shape=[3, 3], dtype=tf.float32)
            b = tf.random_uniform(shape=[3, 3], dtype=tf.float32)
        with g.device("/gpu:0"):
            c = tf.matmul(a, b)

    with tf.Session(graph=g) as sess:
        ret_c = sess.run(c)
    print("Session mode: c = a @ b on the simulated GPU:")
    print(ret_c)

    # ---- Listing 1, traced ------------------------------------------------
    @tf.function(seed=42)
    def listing1():
        with tf.device("/cpu:0"):
            a = tf.random_uniform(shape=[3, 3], dtype=tf.float32)
            b = tf.random_uniform(shape=[3, 3], dtype=tf.float32)
        with tf.device("/gpu:0"):
            return tf.matmul(a, b)

    print("\n@repro.function: the same graph, written imperatively:")
    print(listing1())
    listing1()
    print(f"traces: {listing1.trace_count} (cached after the first call), "
          f"plan cache: {listing1.session.plan_cache_info()}")

    # ---- a traced run, traced (RunMetadata + timeline) --------------------
    @tf.function(seed=7)
    def big_matmul(x, y):
        with tf.device("/gpu:0"):
            return tf.matmul(x, y, name="big_matmul")

    rng = np.random.default_rng(0)
    big_a = rng.random((512, 512), dtype=np.float32)
    big_b = rng.random((512, 512), dtype=np.float32)
    meta = tf.RunMetadata()
    big_matmul(big_a, big_b, options=tf.RunOptions(trace_level=1),
               run_metadata=meta)
    print(f"\nSimulated wall time: {meta.wall_time * 1e3:.3f} ms")
    print("Busiest ops:")
    for stat in meta.busiest_ops(3):
        print(f"  {stat.op_name:24s} {stat.op_type:14s} "
              f"{stat.duration * 1e6:9.1f} us on {stat.device}")
    print("Cross-device transfers:")
    for xfer in meta.transfers:
        print(f"  {xfer.nbytes / 1024:8.1f} KiB {xfer.src_device} -> "
              f"{xfer.dst_device} at {xfer.bandwidth / 1e9:.2f} GB/s")

    Timeline(meta).save("quickstart_timeline.json")
    print("\nTimeline written to quickstart_timeline.json")

    # ---- variables and state ---------------------------------------------
    # Session mode: explicit initializer, explicit run loop.
    g2 = tf.Graph()
    with g2.as_default():
        counter = tf.Variable(0.0, name="counter")
        bump = tf.assign_add(counter, tf.constant(1.0))
    with tf.Session(graph=g2) as sess:
        sess.run(counter.initializer)
        for _ in range(5):
            sess.run(bump.op)
        print(f"\nSession-mode counter after 5 increments: "
              f"{sess.run(counter):g}")

    # Traced: the variable is created on the first trace, initialized
    # lazily, and persists across calls in the function's session.
    @tf.function
    def bump_traced():
        v = tf.Variable(0.0, name="counter")
        return tf.assign_add(v, tf.constant(1.0))

    for _ in range(4):
        bump_traced()
    print(f"traced counter after 5 increments: {bump_traced():g} "
          f"(traces: {bump_traced.trace_count})")


if __name__ == "__main__":
    main()
