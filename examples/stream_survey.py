#!/usr/bin/env python
"""Survey communication bandwidth across transports (paper Fig. 7).

Runs the TF-STREAM micro-benchmark over gRPC, MPI and RDMA-verbs on both
simulated machines and prints the figure as a table, including the
paper-vs-measured comparison for every number the paper states.

Run:  python examples/stream_survey.py
"""

from repro.figures.fig7_stream import format_fig7, paper_comparison, run_fig7


def main() -> None:
    print("running 27 STREAM configurations (3 platforms x 3 protocols "
          "x 3 sizes)...\n")
    points = run_fig7(iterations=25)
    print(format_fig7(points))
    print()
    print(paper_comparison(points))
    print("\nReading guide (paper Section VI-A):")
    print("  - RDMA wins everywhere; on Tegner host memory it exceeds half")
    print("    of EDR's 12 GB/s theoretical bandwidth.")
    print("  - GPU-resident tensors saturate at the PCIe staging rate.")
    print("  - MPI pays a copy+serialize through host memory (no GPUDirect).")
    print("  - Tegner's gRPC resolves over 1GbE management Ethernet; on")
    print("    Kebnekaise gRPC rides IPoIB and lands near MPI.")


if __name__ == "__main__":
    main()
