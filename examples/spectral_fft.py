#!/usr/bin/env python
"""Spectral analysis with the distributed FFT application.

A noisy signal with three hidden tones is split into interleaved tiles,
transformed by simulated GPU workers (paper Fig. 6), recombined with
twiddle factors by the merger, and the tones are recovered from the
spectrum. Also demonstrates the paper's headline caveat: the serial
Python merge takes longer than the distributed compute.

Run:  python examples/spectral_fft.py
"""

import numpy as np

from repro.apps.fft import run_fft


def main() -> None:
    n = 1 << 12
    tones = [(37, 1.0), (441, 0.6), (1337, 0.35)]  # (bin, amplitude)
    rng = np.random.default_rng(0)
    t = np.arange(n)
    signal = sum(
        amp * np.exp(2j * np.pi * freq * t / n) for freq, amp in tones
    )
    signal = signal + 0.05 * (rng.standard_normal(n) + 1j * rng.standard_normal(n))

    print(f"signal: {n} samples, tones hidden at bins "
          f"{[f for f, _ in tones]}\n")

    result = run_fft(
        system="tegner-k80",
        n=n,
        num_tiles=8,
        num_gpus=4,
        shape_only=False,
        signal=signal,
    )
    print(f"distributed FFT validated against numpy.fft: {result.validated}")
    print(f"collect phase (distributed): {result.collect_seconds * 1e3:8.2f} ms "
          f"of simulated time")
    print(f"merge phase (serial Python): {result.merge_seconds * 1e3:8.2f} ms "
          f"-> the paper's bottleneck")

    magnitude = np.abs(result.spectrum)
    found = np.argsort(magnitude)[::-1][:len(tones)]
    print(f"\nstrongest spectral bins found: {sorted(int(b) for b in found)}")
    expected = sorted(f for f, _ in tones)
    recovered = sorted(int(b) for b in found)
    print(f"expected tone bins:            {expected}")
    print(f"all tones recovered: {recovered == expected}")

    # Strong-scaling flavour: same transform on more simulated GPUs.
    print("\nstrong scaling (shape-only, paper-size tiles):")
    for gpus in (2, 4, 8):
        r = run_fft(system="tegner-k80", n=1 << 26, num_tiles=64,
                    num_gpus=gpus, shape_only=True)
        print(f"  {gpus} GPUs: collect {r.collect_seconds:6.2f} s "
              f"({r.gflops:5.2f} Gflops/s)")


if __name__ == "__main__":
    main()
