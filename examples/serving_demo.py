#!/usr/bin/env python
"""Serve a model to concurrent tenants through the multi-tenant front-door.

The paper frames TensorFlow as "the simulation setup used by millions of
users" — infrastructure meant to be *shared*. This demo stands up a
:class:`repro.ModelServer` around a small MLP and walks the serving
pipeline end to end:

  clients --> admission (bounded queue, quotas, deadlines)
          --> micro-batcher (coalesce same-signature requests)
          --> one shared plan-cached Session.run per batch
          --> scatter rows back, attribute RunMetadata per tenant

Three vignettes: (1) micro-batched answers are byte-identical to running
each request alone; (2) coalescing lifts throughput over the unbatched
baseline under concurrent load; (3) admission control sheds excess load
with typed, per-tenant-accounted rejections.

Run:  python examples/serving_demo.py
"""

import numpy as np

import repro as tf
from repro.apps.serving import build_mlp_server, run_serving_load
from repro.errors import ResourceExhaustedError
from repro.serving import ModelServer, ServingConfig


def byte_identity():
    print("== 1. micro-batched == unbatched, byte for byte ==")
    # Row-wise arithmetic (elementwise chain): each output row depends
    # only on its input row, so coalescing cannot change a single bit.
    # (BLAS-backed matmul is row-stable only for small shapes — it picks
    # different register blockings per row count — so the bitwise demo
    # sticks to kernels with per-row execution.)
    g = tf.Graph()
    with g.as_default():
        x = tf.placeholder(tf.float32, [None, 16], name="x")
        y = tf.sigmoid(tf.add(tf.multiply(x, tf.constant(2.0)),
                              tf.constant(1.0)), name="y")
    server = ModelServer(
        graph=g,
        config=ServingConfig(max_batch_size=8, num_workers=1,
                             batch_window_ms=10.0),
    )
    server.register_signature("rowwise", {"x": x}, y)
    rng = np.random.default_rng(0)
    payloads = [rng.random((rows, 16), dtype=np.float32)
                for rows in (1, 3, 2, 1, 4)]

    # Reference: each request alone through a plain Session.
    reference_sess = tf.Session(graph=g)
    references = [reference_sess.run(y, feed_dict={x: p}) for p in payloads]

    with server:
        futures = [
            server.submit_async(f"tenant-{i % 2}", "rowwise", {"x": p})
            for i, p in enumerate(payloads)
        ]
        responses = [f.result(30) for f in futures]

    for response, reference in zip(responses, references):
        assert response.outputs.tobytes() == reference.tobytes()
    occupancy = max(r.batch_size for r in responses)
    print(f"   {len(payloads)} requests, largest coalesced batch "
          f"{occupancy}, all byte-identical to solo runs\n")


def batching_throughput():
    print("== 2. coalescing amortizes per-run overhead ==")
    for batch in (1, 16):
        server = build_mlp_server(
            config=ServingConfig(max_batch_size=batch, num_workers=1,
                                 max_queue=256)
        )
        result = run_serving_load(server, clients=8, requests_per_client=15)
        server.stop()
        label = "unbatched" if batch == 1 else f"batch<={batch}"
        print(f"   {label:10s}: {result.throughput_rps:7.0f} req/s, "
              f"p50 {result.p50_ms:5.2f} ms, p99 {result.p99_ms:5.2f} ms, "
              f"mean occupancy {result.mean_batch_occupancy:.2f}")
    print()


def admission_control():
    print("== 3. admission sheds load with typed rejections ==")
    server = build_mlp_server(
        config=ServingConfig(max_batch_size=4, num_workers=1,
                             max_queue=2, per_tenant_quota=2)
    )
    payload = {"x": np.zeros((1, 16), np.float32)}
    # Fill the queue before starting workers, then overflow it.
    server.submit_async("polite", "mlp", payload)
    server.submit_async("greedy", "mlp", payload)
    try:
        server.submit_async("greedy", "mlp", payload)
    except ResourceExhaustedError as exc:
        print(f"   rejected ({exc.admission_reason}): {exc}")
    with server:
        pass  # drain the two admitted requests
    for tenant in ("polite", "greedy"):
        stats = server.tenant_stats(tenant)
        print(f"   {tenant:7s}: submitted={stats.submitted} "
              f"completed={stats.completed} rejected={stats.rejected}")
    print()


def main():
    byte_identity()
    batching_throughput()
    admission_control()
    print("done.")


if __name__ == "__main__":
    main()
