"""Serving benchmark: throughput and tail latency of the front-door.

The multi-tenant direction the paper motivates ("the simulation setup
used by millions of users" served from shared infrastructure): drive the
:class:`~repro.serving.ModelServer` closed-loop and sweep the three
knobs that shape a serving deployment —

* **worker count** — dispatcher threads pulling micro-batches into the
  shared Session (whose plan cache and simulator drive they contend on);
* **max batch size** — the micro-batcher's coalescing ceiling; batch 1
  is the unbatched baseline every other arm is judged against;
* **offered load** — concurrent closed-loop clients.

Every point lands in ``benchmarks/results/BENCH_serving.json`` via
``record_serving_bench`` (requests/sec, p50/p99 latency, mean batch
occupancy) so the serving trajectory is tracked across PRs. The headline
assertion is the subsystem's reason to exist: at the heaviest load,
micro-batched throughput must beat the unbatched baseline, because one
coalesced ``Session.run`` amortizes per-run overhead (admission RPC,
plan lookup, simulator drive) over every rider.
"""


from repro.apps.serving import build_mlp_server, run_serving_load
from repro.perf.reporting import format_table
from repro.serving import ServingConfig

WORKER_COUNTS = (1, 4)
BATCH_SIZES = (1, 8, 32)
# (clients, requests_per_client): equal total work per load so points
# differ only in concurrency, not volume.
LOADS = ((4, 30), (16, 15))


def _measure(workers, batch, clients, requests):
    server = build_mlp_server(
        config=ServingConfig(
            max_batch_size=batch, num_workers=workers, max_queue=1024
        )
    )
    try:
        return run_serving_load(
            server, clients=clients, requests_per_client=requests, seed=7
        )
    finally:
        server.stop()


def test_throughput_sweep_batching_beats_unbatched(record_table,
                                                   record_serving_bench):
    rows = []
    fields = {}
    results = {}
    for clients, requests in LOADS:
        for workers in WORKER_COUNTS:
            for batch in BATCH_SIZES:
                res = _measure(workers, batch, clients, requests)
                # Closed loop with a deep queue: nothing may be lost.
                assert res.completed == res.offered
                assert res.rejected == 0
                results[(clients, workers, batch)] = res
                rows.append([
                    clients, workers, batch,
                    f"{res.throughput_rps:.0f}",
                    f"{res.p50_ms:.2f}", f"{res.p99_ms:.2f}",
                    f"{res.mean_batch_occupancy:.2f}",
                ])
                key = f"c{clients}_w{workers}_b{batch}"
                fields[f"{key}_rps"] = res.throughput_rps
                fields[f"{key}_p50_ms"] = res.p50_ms
                fields[f"{key}_p99_ms"] = res.p99_ms
                fields[f"{key}_occupancy"] = res.mean_batch_occupancy

    heavy = max(clients for clients, _ in LOADS)
    biggest = max(BATCH_SIZES)
    for workers in WORKER_COUNTS:
        batched = results[(heavy, workers, biggest)]
        unbatched = results[(heavy, workers, 1)]
        # The tentpole property: coalescing amortizes per-run overhead.
        # Observed margin is ~5-8x; 1.2x keeps the gate robust to noise.
        assert batched.throughput_rps > 1.2 * unbatched.throughput_rps, (
            f"{workers} workers @ {heavy} clients: batch={biggest} "
            f"({batched.throughput_rps:.0f} rps) must beat batch=1 "
            f"({unbatched.throughput_rps:.0f} rps)"
        )
        # Coalescing actually happened at load, and queueing delay fell.
        assert batched.mean_batch_occupancy > 1.5
        assert batched.p50_ms < unbatched.p50_ms

    record_table(
        "serving_throughput.txt",
        format_table(
            ["clients", "workers", "max batch", "req/s",
             "p50 ms", "p99 ms", "occupancy"],
            rows,
            title=("ModelServer closed-loop sweep (seeded MLP, "
                   "shared plan-cached Session)"),
        ),
    )
    record_serving_bench("serving_sweep", **fields)


def test_admission_backpressure_under_overload(record_serving_bench):
    """A shallow queue sheds load instead of queueing without bound."""
    server = build_mlp_server(
        config=ServingConfig(max_batch_size=4, num_workers=1, max_queue=4)
    )
    try:
        res = run_serving_load(
            server, clients=16, requests_per_client=10, seed=11
        )
    finally:
        server.stop()
    # Every request either completed or was rejected with a typed error;
    # the bounded queue must have pushed back at this concurrency.
    assert res.completed + res.rejected == res.offered
    assert res.rejected > 0
    assert res.completed > 0
    record_serving_bench(
        "serving_backpressure",
        offered=res.offered,
        completed=res.completed,
        rejected=res.rejected,
        throughput_rps=res.throughput_rps,
        p99_ms=res.p99_ms,
    )
