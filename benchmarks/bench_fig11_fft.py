"""Fig. 11 — distributed FFT strong scaling on Tegner."""


from repro.figures.fig11_fft import format_fig11, paper_comparison, run_fig11


def _result(points, system, gpus):
    for p in points:
        if (p.system, p.gpus) == (system, gpus):
            assert p.result is not None
            return p.result
    raise AssertionError(f"missing point {system}/{gpus}")


def test_fig11_sweep(benchmark, record_table):
    points = benchmark.pedantic(run_fig11, rounds=1, iterations=1)

    # Paper: 1.6x-1.8x from 2 to 4 GPUs on both configurations (we accept
    # up to ideal 2x — the simulator has no OS noise).
    for system in ("tegner-k420", "tegner-k80"):
        s24 = _result(points, system, 4).gflops / _result(points, system, 2).gflops
        assert 1.5 < s24 < 2.1, f"{system} 2->4 {s24:.2f}"

    # Paper: "when increasing from four to eight GPUs the performance
    # improvement clearly flattens out" — visible on the K80 run.
    s48 = (_result(points, "tegner-k80", 8).gflops
           / _result(points, "tegner-k80", 4).gflops)
    assert s48 < 1.5, f"expected flattening 4->8, got {s48:.2f}"

    # Paper: K80 tops out around 30-35 Gflops/s (same order here).
    peak = max(_result(points, "tegner-k80", g).gflops for g in (2, 4, 8))
    assert 15 < peak < 50, f"K80 peak {peak:.1f} Gflops/s"

    # Paper: the serial Python merge dominates the computation.
    k80_8 = _result(points, "tegner-k80", 8)
    assert k80_8.merge_seconds > k80_8.collect_seconds

    record_table(
        "fig11_fft.txt", format_fig11(points) + "\n\n" + paper_comparison(points)
    )


def test_fig11_concrete_point_validates(benchmark):
    """One concrete FFT point, checked against numpy.fft."""
    from repro.apps.fft import run_fft

    result = benchmark.pedantic(
        lambda: run_fft(system="tegner-k420", n=1 << 12, num_tiles=8,
                        num_gpus=2, shape_only=False),
        rounds=1, iterations=1,
    )
    assert result.validated
