"""Compiled executor lane benchmark: legacy vs fast vs fast+fused.

Three workloads A/B the kernel-fusion compiled lane
(``OptimizerOptions.kernel_fusion``) against both executor baselines,
min-of-5 interleaved per bench conventions:

* a deep elementwise chain (240 pure ops on one device) — the
  fusion-friendly extreme: the whole chain compiles into ONE plan item
  and executes on the merged single-event path, so per-op Python
  dispatch disappears. Gate: >= 30% host-wall reduction vs the fast
  path and >= 1.2x vs the legacy executor.
* the fig10 CG solver (Tegner K80, n=32768, 4 GPUs, shape-only) — a
  real paper configuration where only the scalar update chains fuse
  (two chains, five ops per worker), so the win rides on the legacy
  A/B. Gate: fused >= 1.2x vs legacy.
* data-parallel SGD (shape-only, dispatch-bound configuration).
  Gate: fused >= 1.2x vs legacy.

Every workload asserts the compiled lane's correctness bar besides
speed: simulated time must be *bit-identical* between the fused and
unfused arms (and, where no folding applies, across all three arms),
and fetch values byte-identical — checked here on concrete (non
shape-only) CG and SGD companion runs.

Results land in ``benchmarks/results/BENCH_compiled.json`` via
``record_compiled_bench`` so the perf trajectory is tracked across PRs.
"""

import gc
import time

import numpy as np

import repro as tf
from repro.apps.cg import run_cg
from repro.apps.sgd import run_sgd
from repro.core.metadata import RunMetadata
from repro.core.session import SessionConfig

REPEATS = 5

# arm -> (executor fast path, kernel fusion)
ARMS = {
    "legacy": (False, False),
    "fast": (True, False),
    "fused": (True, True),
}


def _arm_kwargs(arm: str) -> dict:
    fast, fused = ARMS[arm]
    return dict(optimize=fast, kernel_fusion=fused or None)


def _interleaved_min(run_arm) -> dict:
    """Min-of-REPEATS host wall per arm, arms interleaved each round."""
    walls = {arm: [] for arm in ARMS}
    for arm in ARMS:  # warm imports/plan caches off the books
        run_arm(arm)
    for _ in range(REPEATS):
        for arm in ARMS:
            gc.collect()
            t0 = time.perf_counter()
            run_arm(arm)
            walls[arm].append(time.perf_counter() - t0)
    return {arm: min(times) for arm, times in walls.items()}


# ---------------------------------------------------------------------------
# Deep elementwise chain: the whole graph is one compiled item


CHAIN_OPS = 240
CHAIN_RUNS = 40


def _chain_graph():
    g = tf.Graph()
    with g.as_default():
        x = tf.placeholder(tf.float32, (64, 64), name="x")
        t = x
        for i in range(CHAIN_OPS):
            if i % 3 == 0:
                t = tf.multiply(t, t, name=f"mul{i}")
            elif i % 3 == 1:
                t = tf.add(t, t, name=f"add{i}")
            else:
                t = tf.sigmoid(t, name=f"sig{i}")
    return g, x, t


def _chain_config(arm: str) -> SessionConfig:
    fast, fused = ARMS[arm]
    config = SessionConfig()
    config.graph_optimization = True
    config.executor_fast_path = fast
    config.optimizer.kernel_fusion = fused
    return config


def test_compiled_lane_deep_chain(record_table, record_compiled_bench):
    payload = np.linspace(-1.0, 1.0, 64 * 64, dtype=np.float32)
    payload = payload.reshape(64, 64)

    sessions = {}
    metadata = {}
    values = {}
    for arm in ARMS:
        g, x, t = _chain_graph()
        sessions[arm] = (tf.Session(graph=g, config=_chain_config(arm)), x, t)
        md = RunMetadata()
        values[arm] = sessions[arm][0].run(
            t, feed_dict={x: payload}, run_metadata=md
        )
        metadata[arm] = md

    def run_arm(arm):
        sess, x, t = sessions[arm]
        for _ in range(CHAIN_RUNS):
            sess.run(t, feed_dict={x: payload})

    walls = _interleaved_min(run_arm)

    # Correctness bar first: bytes and simulated clock are identical in
    # every arm (pure elementwise graph — no folding opportunity).
    assert (values["fused"].tobytes() == values["fast"].tobytes()
            == values["legacy"].tobytes())
    assert (metadata["fused"].end_time == metadata["fast"].end_time
            == metadata["legacy"].end_time)
    # The whole chain compiled into one item and merged to one event.
    assert metadata["fused"].compiled_items == 1
    assert metadata["fused"].fused_op_count == CHAIN_OPS
    assert metadata["fused"].merged_chains == 1
    assert metadata["fused"].plan_items < metadata["fast"].plan_items

    vs_fast = (walls["fast"] - walls["fused"]) / walls["fast"]
    vs_legacy = walls["legacy"] / walls["fused"]
    record_compiled_bench(
        "deep_chain",
        chain_ops=CHAIN_OPS,
        runs_per_arm=CHAIN_RUNS,
        items_fast=metadata["fast"].plan_items,
        items_fused=metadata["fused"].plan_items,
        wall_legacy_s=round(walls["legacy"], 4),
        wall_fast_s=round(walls["fast"], 4),
        wall_fused_s=round(walls["fused"], 4),
        reduction_vs_fast_pct=round(100 * vs_fast, 1),
        speedup_vs_legacy=round(vs_legacy, 2),
        sim_elapsed_s=metadata["fused"].end_time,
    )
    record_table(
        "bench_compiled_chain.txt",
        "\n".join([
            f"Compiled lane — deep elementwise chain ({CHAIN_OPS} ops, "
            f"{CHAIN_RUNS} runs/arm)",
            f"  plan items: {metadata['fast'].plan_items} -> "
            f"{metadata['fused'].plan_items} (merged to one event)",
            f"  host wall:  legacy {walls['legacy']:.3f}s | fast "
            f"{walls['fast']:.3f}s | fused {walls['fused']:.3f}s",
            f"  fused vs fast: {100 * vs_fast:.1f}% reduction; vs legacy: "
            f"{vs_legacy:.2f}x",
        ]),
    )
    assert vs_fast >= 0.30, (
        f"expected >= 30% host-wall reduction vs the fast path, got "
        f"{100 * vs_fast:.1f}% (fast={walls['fast']:.3f}s "
        f"fused={walls['fused']:.3f}s)"
    )
    assert vs_legacy >= 1.2, (
        f"expected fused >= 1.2x over the legacy executor, got "
        f"{vs_legacy:.2f}x"
    )


# ---------------------------------------------------------------------------
# fig10 CG: the paper workload (few, short chains)


CG_CONFIG = dict(system="tegner-k80", n=32768, num_gpus=4, iterations=100,
                 shape_only=True)
CG_CONCRETE = dict(system="tegner-k80", n=512, num_gpus=2, iterations=20,
                   shape_only=False)


def test_compiled_lane_fig10_cg(record_table, record_compiled_bench):
    results = {}

    def run_arm(arm):
        results[arm] = run_cg(**CG_CONFIG, **_arm_kwargs(arm))

    walls = _interleaved_min(run_arm)

    # No folding applies to the CG iteration graph: all three arms must
    # agree on the simulated clock bit-for-bit.
    assert (results["fused"].elapsed == results["fast"].elapsed
            == results["legacy"].elapsed)
    items_per_step = {
        arm: results[arm].plan_items / CG_CONFIG["iterations"]
        for arm in ARMS
    }
    assert results["fused"].plan_items < results["fast"].plan_items

    # Byte identity on a concrete companion run (one per arm, untimed).
    concrete = {
        arm: run_cg(**CG_CONCRETE, **_arm_kwargs(arm)) for arm in ARMS
    }
    assert (concrete["fused"].solution.tobytes()
            == concrete["fast"].solution.tobytes()
            == concrete["legacy"].solution.tobytes())
    assert (concrete["fused"].elapsed == concrete["fast"].elapsed
            == concrete["legacy"].elapsed)

    speedup = walls["legacy"] / walls["fused"]
    record_compiled_bench(
        "fig10_cg",
        items_legacy=results["legacy"].plan_items,
        items_fast=results["fast"].plan_items,
        items_fused=results["fused"].plan_items,
        wall_legacy_s=round(walls["legacy"], 4),
        wall_fast_s=round(walls["fast"], 4),
        wall_fused_s=round(walls["fused"], 4),
        speedup_vs_legacy=round(speedup, 2),
        sim_elapsed_s=results["fused"].elapsed,
    )
    record_table(
        "bench_compiled_cg.txt",
        "\n".join([
            f"Compiled lane — fig10 CG ({CG_CONFIG['system']}, "
            f"n={CG_CONFIG['n']}, {CG_CONFIG['num_gpus']} GPUs, "
            f"{CG_CONFIG['iterations']} iters)",
            f"  plan items: legacy {results['legacy'].plan_items} | fast "
            f"{results['fast'].plan_items} | fused "
            f"{results['fused'].plan_items} "
            f"({items_per_step['fused']:.2f}/step)",
            f"  host wall:  legacy {walls['legacy']:.3f}s | fast "
            f"{walls['fast']:.3f}s | fused {walls['fused']:.3f}s "
            f"({speedup:.2f}x vs legacy)",
            f"  sim elapsed: {results['fused'].elapsed:.6f}s (all arms "
            "bit-identical)",
        ]),
    )
    assert speedup >= 1.2, (
        f"expected fused >= 1.2x over the legacy executor on fig10 CG, "
        f"got {speedup:.2f}x (legacy={walls['legacy']:.3f}s "
        f"fused={walls['fused']:.3f}s)"
    )


# ---------------------------------------------------------------------------
# Data-parallel SGD: dispatch-bound shape-only configuration


SGD_CONFIG = dict(system="tegner-k420", d=4096, num_workers=4,
                  rows_per_worker=8, steps=40, mode="collective",
                  shape_only=True)
SGD_CONCRETE = dict(system="tegner-k420", d=256, num_workers=2,
                    rows_per_worker=8, steps=6, mode="collective",
                    shape_only=False)


def test_compiled_lane_sgd(record_table, record_compiled_bench):
    results = {}

    def run_arm(arm):
        results[arm] = run_sgd(**SGD_CONFIG, **_arm_kwargs(arm))

    walls = _interleaved_min(run_arm)

    # Constant folding applies to the SGD graph (gradient seeds), so
    # the legacy/unoptimized arm ticks differently; the compiled lane
    # itself must not move the clock at all vs the fast path.
    assert results["fused"].elapsed == results["fast"].elapsed
    assert results["fused"].plan_items < results["fast"].plan_items

    # Byte identity on a concrete companion run: identical weight
    # trajectories in every arm (and vs the NumPy reference).
    concrete = {
        arm: run_sgd(**SGD_CONCRETE, **_arm_kwargs(arm)) for arm in ARMS
    }
    assert all(concrete[arm].validated for arm in ARMS)
    assert (concrete["fused"].weights.tobytes()
            == concrete["fast"].weights.tobytes()
            == concrete["legacy"].weights.tobytes())
    assert concrete["fused"].elapsed == concrete["fast"].elapsed

    speedup = walls["legacy"] / walls["fused"]
    items_per_step = results["fused"].plan_items / SGD_CONFIG["steps"]
    record_compiled_bench(
        "sgd_collective",
        items_legacy=results["legacy"].plan_items,
        items_fast=results["fast"].plan_items,
        items_fused=results["fused"].plan_items,
        wall_legacy_s=round(walls["legacy"], 4),
        wall_fast_s=round(walls["fast"], 4),
        wall_fused_s=round(walls["fused"], 4),
        speedup_vs_legacy=round(speedup, 2),
        sim_elapsed_s=results["fused"].elapsed,
    )
    record_table(
        "bench_compiled_sgd.txt",
        "\n".join([
            f"Compiled lane — data-parallel SGD (d={SGD_CONFIG['d']}, "
            f"{SGD_CONFIG['num_workers']} workers, "
            f"{SGD_CONFIG['steps']} steps, ring allreduce)",
            f"  plan items: legacy {results['legacy'].plan_items} | fast "
            f"{results['fast'].plan_items} | fused "
            f"{results['fused'].plan_items} ({items_per_step:.2f}/step)",
            f"  host wall:  legacy {walls['legacy']:.3f}s | fast "
            f"{walls['fast']:.3f}s | fused {walls['fused']:.3f}s "
            f"({speedup:.2f}x vs legacy)",
            f"  sim elapsed: {results['fused'].elapsed:.6f}s "
            "(fused == fast bit-for-bit)",
        ]),
    )
    assert speedup >= 1.2, (
        f"expected fused >= 1.2x over the legacy executor on SGD, got "
        f"{speedup:.2f}x (legacy={walls['legacy']:.3f}s "
        f"fused={walls['fused']:.3f}s)"
    )
