"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures inside the
simulator, asserts the paper's qualitative findings (orderings, scaling
bands), and archives the rendered table plus the paper-vs-measured
comparison under ``benchmarks/results/``.
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def record_table(results_dir):
    """Callable writing a named artifact; returns the path."""

    def write(name: str, text: str) -> str:
        path = os.path.join(results_dir, name)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        return path

    return write
