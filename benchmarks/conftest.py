"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures inside the
simulator, asserts the paper's qualitative findings (orderings, scaling
bands), and archives the rendered table plus the paper-vs-measured
comparison under ``benchmarks/results/``.

Perf-trajectory tracking: benchmarks that call the ``record_bench``
fixture contribute entries (plan items before/after optimization, host
wall-clock per arm, simulated time) to ``benchmarks/results/
BENCH_optimizer.json``, written once per pytest session so the numbers
can be compared across PRs.
"""

import json
import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
BENCH_JSON = os.path.join(RESULTS_DIR, "BENCH_optimizer.json")
BENCH_COLLECTIVES_JSON = os.path.join(RESULTS_DIR, "BENCH_collectives.json")
BENCH_SGD_JSON = os.path.join(RESULTS_DIR, "BENCH_sgd.json")
BENCH_COLLECTIVE_ALGOS_JSON = os.path.join(
    RESULTS_DIR, "BENCH_collective_algos.json"
)
BENCH_FAULT_TOLERANCE_JSON = os.path.join(
    RESULTS_DIR, "BENCH_fault_tolerance.json"
)
BENCH_SERVING_JSON = os.path.join(RESULTS_DIR, "BENCH_serving.json")
BENCH_VERIFIER_JSON = os.path.join(RESULTS_DIR, "BENCH_verifier.json")
BENCH_COMPILED_JSON = os.path.join(RESULTS_DIR, "BENCH_compiled.json")


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


def _flush_records(path: str, records: dict) -> None:
    """Merge ``records`` into the JSON at ``path`` (see _bench_records)."""
    if not records:
        return
    merged: dict = {}
    try:
        with open(path, "r", encoding="utf-8") as handle:
            merged = json.load(handle)
    except (OSError, ValueError):
        merged = {}
    merged.update(records)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(merged, handle, indent=2, sort_keys=True)
        handle.write("\n")


@pytest.fixture(scope="session")
def record_table(results_dir):
    """Callable writing a named artifact; returns the path."""

    def write(name: str, text: str) -> str:
        path = os.path.join(results_dir, name)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        return path

    return write


@pytest.fixture(scope="session")
def _bench_records(results_dir):
    """Session-wide accumulator flushed to BENCH_optimizer.json at exit.

    Merged into any existing file so partial runs (e.g. only the smoke
    sweep) update their own entries without dropping the others.
    """
    records: dict = {}
    yield records
    _flush_records(BENCH_JSON, records)


@pytest.fixture
def record_bench(_bench_records):
    """Callable recording one benchmark's perf entry.

    Usage: ``record_bench("fig10_cg", items_before=..., items_after=...,
    wall_off=..., wall_on=..., sim_elapsed=...)`` — arbitrary numeric
    fields are allowed; they land under the given name in the JSON.
    """

    def record(name: str, **fields) -> None:
        _bench_records[name] = fields

    return record


@pytest.fixture(scope="session")
def _collective_bench_records(results_dir):
    """Accumulator for the collectives lane (BENCH_collectives.json)."""
    records: dict = {}
    yield records
    _flush_records(BENCH_COLLECTIVES_JSON, records)


@pytest.fixture
def record_collective_bench(_collective_bench_records):
    """Like ``record_bench``, flushed to ``BENCH_collectives.json`` —
    the allreduce-vs-reducer and stencil trajectory tracked across PRs."""

    def record(name: str, **fields) -> None:
        _collective_bench_records[name] = fields

    return record


@pytest.fixture(scope="session")
def _sgd_bench_records(results_dir):
    """Accumulator for the training lane (BENCH_sgd.json)."""
    records: dict = {}
    yield records
    _flush_records(BENCH_SGD_JSON, records)


@pytest.fixture
def record_sgd_bench(_sgd_bench_records):
    """Like ``record_bench``, flushed to ``BENCH_sgd.json`` — the
    gradient-exchange (ring vs central) trajectory tracked across PRs."""

    def record(name: str, **fields) -> None:
        _sgd_bench_records[name] = fields

    return record


@pytest.fixture(scope="session")
def _collective_algos_records(results_dir):
    """Accumulator for the algorithm lane (BENCH_collective_algos.json)."""
    records: dict = {}
    yield records
    _flush_records(BENCH_COLLECTIVE_ALGOS_JSON, records)


@pytest.fixture
def record_collective_algos_bench(_collective_algos_records):
    """Like ``record_bench``, flushed to ``BENCH_collective_algos.json``
    — the ring-vs-tree crossover and gradient-bucket fusion trajectory
    tracked across PRs."""

    def record(name: str, **fields) -> None:
        _collective_algos_records[name] = fields

    return record


@pytest.fixture(scope="session")
def _fault_bench_records(results_dir):
    """Accumulator for the robustness lane (BENCH_fault_tolerance.json)."""
    records: dict = {}
    yield records
    _flush_records(BENCH_FAULT_TOLERANCE_JSON, records)


@pytest.fixture
def record_fault_bench(_fault_bench_records):
    """Like ``record_bench``, flushed to ``BENCH_fault_tolerance.json``
    — recovery overhead vs checkpoint interval and crash rate, tracked
    across PRs."""

    def record(name: str, **fields) -> None:
        _fault_bench_records[name] = fields

    return record


@pytest.fixture(scope="session")
def _serving_bench_records(results_dir):
    """Accumulator for the serving lane (BENCH_serving.json)."""
    records: dict = {}
    yield records
    _flush_records(BENCH_SERVING_JSON, records)


@pytest.fixture
def record_serving_bench(_serving_bench_records):
    """Like ``record_bench``, flushed to ``BENCH_serving.json`` — the
    multi-tenant front-door's throughput and tail-latency trajectory
    (workers x batch size x offered load) tracked across PRs."""

    def record(name: str, **fields) -> None:
        _serving_bench_records[name] = fields

    return record


@pytest.fixture(scope="session")
def _verifier_bench_records(results_dir):
    """Accumulator for the static-analysis lane (BENCH_verifier.json)."""
    records: dict = {}
    yield records
    _flush_records(BENCH_VERIFIER_JSON, records)


@pytest.fixture
def record_verifier_bench(_verifier_bench_records):
    """Like ``record_bench``, flushed to ``BENCH_verifier.json`` — the
    plan-build overhead of ``verify_plans=True`` per workload, tracked
    across PRs."""

    def record(name: str, **fields) -> None:
        _verifier_bench_records[name] = fields

    return record


@pytest.fixture(scope="session")
def _compiled_bench_records(results_dir):
    """Accumulator for the compiled-lane A/B (BENCH_compiled.json)."""
    records: dict = {}
    yield records
    _flush_records(BENCH_COMPILED_JSON, records)


@pytest.fixture
def record_compiled_bench(_compiled_bench_records):
    """Like ``record_bench``, flushed to ``BENCH_compiled.json`` — the
    kernel-fusion compiled-lane host-wall A/B (legacy / fast /
    fast+fused) per workload, tracked across PRs."""

    def record(name: str, **fields) -> None:
        _compiled_bench_records[name] = fields

    return record
