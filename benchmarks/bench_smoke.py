"""Smoke target: one small point of every figure benchmark.

A fast end-to-end sanity sweep (seconds, not minutes) so CI and local
runs can verify each paper app still executes and validates after a
change, without paying for the full fig7/fig8/fig10/fig11 sweeps. Wall
times land in ``BENCH_optimizer.json`` for cross-PR tracking.

Run with: ``PYTHONPATH=src python -m pytest benchmarks/bench_smoke.py -q``
"""

import time

from repro.apps.cg import run_cg
from repro.apps.fft import run_fft
from repro.apps.matmul import run_matmul
from repro.apps.stream import run_stream
from repro.figures.table1_nodes import run_table1


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return time.perf_counter() - t0, result


def test_smoke_table1(record_bench):
    wall, rows = _timed(run_table1)
    assert rows, "table 1 produced no rows"
    record_bench("smoke_table1", wall_s=round(wall, 4))


def test_smoke_fig7_stream(record_bench):
    wall, res = _timed(lambda: run_stream(
        system="tegner-k420", size_mb=2, iterations=5, shape_only=True))
    assert res.seconds_per_transfer > 0
    record_bench("smoke_fig7_stream", wall_s=round(wall, 4),
                 seconds_per_transfer=res.seconds_per_transfer)


def test_smoke_fig8_matmul(record_bench):
    wall, res = _timed(lambda: run_matmul(
        system="tegner-k420", n=512, tile=128, num_gpus=2, shape_only=False,
        seed=1))
    assert res.validated
    record_bench("smoke_fig8_matmul", wall_s=round(wall, 4),
                 gflops=res.gflops)


def test_smoke_fig10_cg(record_bench):
    wall, res = _timed(lambda: run_cg(
        system="tegner-k80", n=128, num_gpus=2, iterations=60,
        shape_only=False, seed=7))
    assert res.residual < 1e-6
    record_bench("smoke_fig10_cg", wall_s=round(wall, 4),
                 residual=res.residual, plan_items=res.plan_items)


def test_smoke_fig11_fft(record_bench):
    wall, res = _timed(lambda: run_fft(
        system="tegner-k420", n=1 << 12, num_tiles=8, num_gpus=2,
        shape_only=False, seed=3))
    assert res.validated
    record_bench("smoke_fig11_fft", wall_s=round(wall, 4),
                 max_error=res.max_error)
