"""Smoke target: one small point of every figure benchmark.

A fast end-to-end sanity sweep (seconds, not minutes) so CI and local
runs can verify each paper app still executes and validates after a
change, without paying for the full fig7/fig8/fig10/fig11 sweeps. Wall
times land in ``BENCH_optimizer.json`` for cross-PR tracking.

Run with: ``PYTHONPATH=src python -m pytest benchmarks/bench_smoke.py -q``
"""

import time

import numpy as np

from repro.apps.cg import run_cg, run_cg_single
from repro.apps.fft import run_fft
from repro.apps.matmul import run_matmul
from repro.apps.stream import run_stream
from repro.figures.table1_nodes import run_table1


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return time.perf_counter() - t0, result


def test_smoke_table1(record_bench):
    wall, rows = _timed(run_table1)
    assert rows, "table 1 produced no rows"
    record_bench("smoke_table1", wall_s=round(wall, 4))


def test_smoke_fig7_stream(record_bench):
    wall, res = _timed(lambda: run_stream(
        system="tegner-k420", size_mb=2, iterations=5, shape_only=True))
    assert res.seconds_per_transfer > 0
    record_bench("smoke_fig7_stream", wall_s=round(wall, 4),
                 seconds_per_transfer=res.seconds_per_transfer)


def test_smoke_fig8_matmul(record_bench):
    wall, res = _timed(lambda: run_matmul(
        system="tegner-k420", n=512, tile=128, num_gpus=2, shape_only=False,
        seed=1))
    assert res.validated
    record_bench("smoke_fig8_matmul", wall_s=round(wall, 4),
                 gflops=res.gflops)


def test_smoke_fig10_cg(record_bench):
    wall, res = _timed(lambda: run_cg(
        system="tegner-k80", n=128, num_gpus=2, iterations=60,
        shape_only=False, seed=7))
    assert res.residual < 1e-6
    record_bench("smoke_fig10_cg", wall_s=round(wall, 4),
                 residual=res.residual, plan_items=res.plan_items)


def test_smoke_traced_frontend(record_bench):
    """The fig10 CG point through ``@repro.function`` vs raw Session.

    Same solver, same simulated hardware: the traced lane re-drives the
    step through the tracing frontend while the graph lane hand-builds
    the identical graph. Values must agree byte-for-byte and simulated
    time exactly; the wall-clock ratio is the frontend's host-side
    dispatch overhead, tracked across PRs in BENCH json.
    """
    # Interleaved min-of-5, the bench_optimizer convention: wall clock on
    # shared runners is noisy, so a single-sample ratio would be too.
    walls = {"function": [], "graph": []}
    results = {}
    for _ in range(5):
        for frontend in ("function", "graph"):
            wall, res = _timed(lambda f=frontend: run_cg_single(
                system="tegner-k80", n=128, iterations=60, frontend=f,
                seed=7))
            walls[frontend].append(wall)
            results[frontend] = res
    res_fn, res_gr = results["function"], results["graph"]
    assert res_fn.residual < 1e-6
    assert np.array_equal(res_fn.solution, res_gr.solution)
    assert res_fn.elapsed == res_gr.elapsed
    assert res_fn.trace_count == 1
    wall_fn = min(walls["function"])
    wall_gr = min(walls["graph"])
    record_bench(
        "smoke_traced_frontend",
        wall_s_function=round(wall_fn, 4),
        wall_s_graph=round(wall_gr, 4),
        frontend_overhead=round(wall_fn / wall_gr, 4) if wall_gr else 0.0,
        sim_elapsed=res_fn.elapsed,
        residual=res_fn.residual,
        trace_count=res_fn.trace_count,
        plan_cache_hits=res_fn.plan_cache["hits"],
    )


def test_smoke_fig11_fft(record_bench):
    wall, res = _timed(lambda: run_fft(
        system="tegner-k420", n=1 << 12, num_tiles=8, num_gpus=2,
        shape_only=False, seed=3))
    assert res.validated
    record_bench("smoke_fig11_fft", wall_s=round(wall, 4),
                 max_error=res.max_error)
