"""Collective-algorithm benchmarks: ring vs tree, and gradient fusion.

Two lanes, both landing in ``benchmarks/results/
BENCH_collective_algos.json`` via ``record_collective_algos_bench`` so
the algorithm-layer trajectory is tracked across PRs:

* **ring-vs-tree crossover sweep** — the same allreduce at 8 Tegner
  ranks from one scalar up to 8 MB, both schedules. The tree's
  ``~log2 W`` rounds must win strictly below the crossover (latency-
  bound regime) and the ring's ``2 (W-1)/W`` wire bytes must win by
  >= 1.5x at 8 MB (bandwidth-bound regime); the ``algorithm="auto"``
  lowering rule is asserted to land on the winning side of both ends.
* **gradient-bucket fusion A/B** — the many-small-gradients SGD
  workload (8 weight blocks + bias + loss partial = 10 allreduces per
  step) fused vs unfused, both on the default pipeline so the delta
  isolates fusion itself. The fusion pass must cut the per-step
  collective count (asserted on ``pass_stats``) with byte-identical
  weight trajectories; host wall time is measured min-of-5 interleaved
  per the repo's bench conventions, with the legacy one-process-per-
  item executor lane recorded as a third baseline arm (walls recorded,
  not asserted — this file runs in CI, and wall-clock orderings flake
  on shared runners; deterministic sim/byte asserts only).
"""

import gc
import time

from repro.apps.sgd import run_sgd
from repro.core.tensor import SymbolicValue
from repro.perf.reporting import format_table
from repro.runtime.collective import (
    ring_allreduce,
    select_algorithm,
    tree_allreduce,
)
from repro.simnet.events import Environment
from repro.simnet.machines import tegner

KB = 1024
MB = 1024 * 1024
REPEATS = 5

WORLD = 8
# One scalar up to the paper-scale gradient: spans both regimes.
PAYLOADS = [8, 1 * KB, 8 * KB, 64 * KB, 512 * KB, 1 * MB, 8 * MB]

STRATEGIES = {"ring": ring_allreduce, "tree": tree_allreduce}


def _standalone_time(strategy, world, nbytes):
    env = Environment()
    machine = tegner(env, k420_nodes=world)
    devices = [machine.node(n).cpu for n in sorted(machine.nodes)]
    values = [SymbolicValue((nbytes // 8,), "float64") for _ in range(world)]
    env.run(until=env.process(strategy(devices, values)))
    return env.now


def test_ring_vs_tree_crossover(record_table, record_collective_algos_bench):
    times = {
        nbytes: {
            name: _standalone_time(strategy, WORLD, nbytes)
            for name, strategy in STRATEGIES.items()
        }
        for nbytes in PAYLOADS
    }
    crossover = next(
        (nbytes for nbytes in PAYLOADS
         if times[nbytes]["ring"] <= times[nbytes]["tree"]),
        None,
    )

    # The acceptance bars: strictly-faster tree below the crossover,
    # ring >= 1.5x at 8 workers x 8 MB, and the auto rule landing on the
    # winning side at both ends of the sweep.
    assert crossover is not None, "ring must win somewhere in the sweep"
    for nbytes in PAYLOADS:
        if nbytes < crossover:
            assert times[nbytes]["tree"] < times[nbytes]["ring"], nbytes
    big_ratio = times[8 * MB]["tree"] / times[8 * MB]["ring"]
    assert big_ratio >= 1.5, (
        f"ring must be >= 1.5x faster than tree at {WORLD} workers x 8 MB, "
        f"got {big_ratio:.2f}x"
    )
    assert select_algorithm("CollectiveAllReduce", 8, WORLD) == "tree"
    assert select_algorithm("CollectiveAllReduce", 8 * MB, WORLD) == "ring"

    rows = []
    for nbytes in PAYLOADS:
        ring_us = times[nbytes]["ring"] * 1e6
        tree_us = times[nbytes]["tree"] * 1e6
        auto = select_algorithm("CollectiveAllReduce", nbytes, WORLD)
        rows.append([nbytes, ring_us, tree_us, ring_us / tree_us, auto])
        record_collective_algos_bench(
            f"allreduce_w{WORLD}_{nbytes}B",
            ring_us=round(ring_us, 3),
            tree_us=round(tree_us, 3),
            tree_speedup=round(ring_us / tree_us, 3),
            auto_choice=auto,
        )
    record_collective_algos_bench(
        "crossover",
        world=WORLD,
        first_ring_win_bytes=crossover,
        ring_speedup_at_8MB=round(big_ratio, 3),
    )
    record_table("bench_collective_algos_crossover.txt", format_table(
        ["payload [B]", "ring [us]", "tree [us]", "tree speedup", "auto"],
        rows,
        title=f"Allreduce ring vs tree crossover "
              f"({WORLD} ranks, Tegner EDR)",
    ))


# Many small gradients: 8 weight blocks + bias + loss partial = 10
# same-group allreduces per step, each a few hundred bytes.
FUSION = dict(d=64, blocks=8, num_workers=4, rows_per_worker=8, steps=4)


def test_gradient_bucket_fusion_ab(record_table,
                                   record_collective_algos_bench):
    """Fused vs unfused SGD: schedule counters + byte identity asserted,
    host wall recorded min-of-5 interleaved. Both primary arms run the
    default pipeline (optimize on) so the delta isolates *fusion*; the
    legacy one-process-per-item lane rides along as a third arm — the
    repo's conventional baseline — without polluting the fusion delta."""

    ARMS = {
        "fused": dict(fusion=True, optimize=True),
        "unfused": dict(fusion=False, optimize=True),
        "unfused_legacy": dict(fusion=False, optimize=False),
    }

    def run_once(arm):
        gc.collect()
        t0 = time.perf_counter()
        result = run_sgd(**ARMS[arm], **FUSION)
        return time.perf_counter() - t0, result

    for arm in ARMS:
        run_once(arm)  # warm caches off the books
    walls = {arm: [] for arm in ARMS}
    results = {}
    for _ in range(REPEATS):
        for arm in ARMS:
            wall, results[arm] = run_once(arm)
            walls[arm].append(wall)
    wall_on, wall_off = min(walls["fused"]), min(walls["unfused"])
    fused, plain = results["fused"], results["unfused"]

    # Deterministic asserts only (see module docstring).
    assert fused.validated and plain.validated
    assert fused.loss_history == plain.loss_history
    for a, b in zip(fused.trajectory, plain.trajectory):
        assert a.tobytes() == b.tobytes(), (
            "fusion must not change a byte of the weight trajectory"
        )
    detail = {p.name: p for p in fused.pass_stats}["collective_fusion"].detail
    assert detail["collectives_before"] == FUSION["blocks"] + 2
    assert detail["collectives_after"] == 1, (
        "the fusion pass must reduce the per-step collective count"
    )

    record_collective_algos_bench(
        "sgd_fusion_ab",
        collectives_before=detail["collectives_before"],
        collectives_after=detail["collectives_after"],
        buckets=detail["buckets"],
        wall_fused_s=round(wall_on, 4),
        wall_unfused_s=round(wall_off, 4),
        wall_reduction_pct=round(100 * (wall_off - wall_on) / wall_off, 1),
        wall_unfused_legacy_s=round(min(walls["unfused_legacy"]), 4),
        sim_elapsed_fused_s=fused.elapsed,
        sim_elapsed_unfused_s=plain.elapsed,
        plan_items_fused=fused.plan_items,
        plan_items_unfused=plain.plan_items,
    )
    record_table("bench_collective_algos_fusion.txt", "\n".join([
        "Gradient-bucket fusion A/B "
        f"({FUSION['blocks']} blocks + bias + loss, "
        f"{FUSION['num_workers']} workers, {FUSION['steps']} steps)",
        f"  collectives per step: {detail['collectives_before']} -> "
        f"{detail['collectives_after']}",
        f"  host wall fused:      {wall_on:8.4f} s",
        f"  host wall unfused:    {wall_off:8.4f} s",
        f"  host wall legacy:     {min(walls['unfused_legacy']):8.4f} s "
        "(one-process-per-item baseline)",
        f"  sim time fused:       {fused.elapsed * 1e3:8.3f} ms",
        f"  sim time unfused:     {plain.elapsed * 1e3:8.3f} ms",
        "  trajectories:         byte-identical",
    ]))
