"""Fig. 7 — STREAM bandwidth across transports, platforms and sizes."""

import pytest

from repro.apps.stream import run_stream
from repro.figures.fig7_stream import format_fig7, paper_comparison, run_fig7


def _bw(points, platform, protocol, size):
    for p in points:
        if (p.platform, p.protocol, p.size_mb) == (platform, protocol, size):
            return p.result.bandwidth_mbs
    raise AssertionError(f"missing point {platform}/{protocol}/{size}")


def test_fig7_full_sweep(benchmark, record_table):
    points = benchmark.pedantic(
        lambda: run_fig7(iterations=15), rounds=1, iterations=1
    )
    assert len(points) == 27  # 3 platforms x 3 protocols x 3 sizes

    # Paper finding 1: RDMA > MPI > gRPC on Tegner for every size/placement.
    for platform in ("Tegner GPU", "Tegner CPU"):
        for size in (2, 16, 128):
            assert (_bw(points, platform, "RDMA", size)
                    > _bw(points, platform, "MPI", size)
                    > _bw(points, platform, "gRPC", size))

    # Paper finding 2: >50% of the 12 GB/s theoretical on host memory.
    assert _bw(points, "Tegner CPU", "RDMA", 128) > 0.5 * 12 * 1000

    # Paper finding 3: K420 GPU path saturates near 1300 MB/s.
    assert 1000 < _bw(points, "Tegner GPU", "RDMA", 128) < 1500

    # Paper finding 4: Kebnekaise K80 RDMA saturates below 2300 MB/s.
    assert 1700 < _bw(points, "Kebnekaise GPU", "RDMA", 128) < 2300

    # Paper finding 5: MPI plateaus in the hundreds of MB/s.
    assert 250 < _bw(points, "Tegner GPU", "MPI", 128) < 420
    assert 300 < _bw(points, "Kebnekaise GPU", "MPI", 128) < 600

    # Paper finding 6: on Kebnekaise gRPC is comparable to MPI.
    grpc = _bw(points, "Kebnekaise GPU", "gRPC", 128)
    mpi = _bw(points, "Kebnekaise GPU", "MPI", 128)
    assert grpc == pytest.approx(mpi, rel=0.6)

    # Small transfers lose bandwidth to latency on every platform.
    for platform in ("Tegner GPU", "Tegner CPU", "Kebnekaise GPU"):
        assert _bw(points, platform, "RDMA", 2) < _bw(points, platform, "RDMA", 128)

    record_table(
        "fig7_stream.txt", format_fig7(points) + "\n\n" + paper_comparison(points)
    )


@pytest.mark.parametrize("protocol", ["grpc", "grpc+mpi", "grpc+verbs"])
def test_fig7_single_protocol_tegner_gpu(benchmark, protocol):
    """Per-protocol micro-benchmark (one bar of Fig. 7, 128 MB)."""
    result = benchmark.pedantic(
        lambda: run_stream("tegner-k420", device="gpu", size_mb=128,
                           protocol=protocol, iterations=10),
        rounds=1, iterations=1,
    )
    assert result.bandwidth_mbs > 0


def test_fig7_concrete_mode_validates(benchmark):
    """Numerics check: the concrete STREAM run accumulates correctly."""
    result = benchmark.pedantic(
        lambda: run_stream("tegner-k420", device="cpu", size_mb=1,
                           iterations=5, shape_only=False),
        rounds=1, iterations=1,
    )
    assert result.validated
