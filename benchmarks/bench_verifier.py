"""Static-verifier overhead benchmark (``SessionConfig.verify_plans``).

Verification must be cheap enough to leave on: the acceptance bar is
<10% plan-build overhead on representative workloads, with every plan
verifying clean (the zero-false-positive burn-in). Three measurements:

* ``layered_collective`` — a ~500-op layered matmul/add graph with an
  all-reduce across 4 GPUs, fed through placeholders. Passes find
  little to rewrite, so this measures the verifier's fixed costs
  (pre-optimization graph check, per-pass delta checks, plan
  verification). Asserted <10%.
* ``identity_heavy`` — the same graph with an Identity after every
  node: identity collapse rewrites a third of the ops, so the per-pass
  delta verification does work proportional to the rewrite. Recorded
  as the documented worst case (cost scales with how much the pipeline
  actually changed, not with graph size).
* ``session_amortized`` — a session running the same fetches
  repeatedly: after the first build the plan cache serves every run, so
  verification amortizes to ~zero. Asserted <10%. This is the number
  the example/bench suite actually experiences under
  ``REPRO_VERIFY_PLANS=1``.

Results land in ``benchmarks/results/BENCH_verifier.json`` via
``record_verifier_bench``.
"""

import gc
import time

import numpy as np

import repro as tf
from repro.core.ops import collective_ops
from repro.core.optimizer import OptimizerOptions
from repro.core.partition import build_plan
from repro.core.placement import Placer

LAYERS = 30
WIDTH = 8
GPUS = 4
REPEATS = 12


def _layered_graph(identities: bool):
    g = tf.Graph()
    devices = [f"/device:gpu:{i}" for i in range(GPUS)]
    with g.as_default():
        feeds = [
            tf.placeholder(tf.float32, (16, 16), name=f"in{i}")
            for i in range(WIDTH)
        ]
        tensors = list(feeds)
        for layer in range(LAYERS):
            nxt = []
            for i in range(WIDTH):
                with g.device(devices[(layer + i) % GPUS]):
                    t = tf.add(
                        tf.matmul(tensors[i], tensors[(i + 1) % WIDTH]),
                        tensors[i],
                    )
                    if identities:
                        t = tf.identity(t)
                    nxt.append(t)
            tensors = nxt
        vals = []
        for rank in range(GPUS):
            with g.device(devices[rank]):
                vals.append(tf.reduce_sum(tensors[rank % WIDTH]))
        reduced = collective_ops.all_reduce(vals, devices=devices)
        fetches = [tf.add(t, t) for t in reduced] + tensors
    # Small values keep 30 chained matmuls bounded (16 * 0.01^2 << 0.01).
    feed_map = {f.name: np.full((16, 16), 0.01, np.float32) for f in feeds}
    return g, feed_map, fetches


def _measure_build(identities: bool):
    """Interleaved min-of-N plan builds, verification on vs off."""
    g, feed_map, fetches = _layered_graph(identities)
    placer = Placer(
        {("localhost", 0): {"cpu": 1, "gpu": GPUS}},
        default_job="localhost",
        default_task=0,
    )

    def build(verify: bool):
        return build_plan(
            g, [], fetches, feed_map, placer,
            client_device="/job:localhost/task:0/device:cpu:0",
            run_id=1,
            optimizer_options=OptimizerOptions(),
            verify=verify,
        )

    plan = build(True)  # warm caches off the books; also the burn-in probe
    build(False)
    walls = {True: [], False: []}
    for _ in range(REPEATS):
        for verify in (True, False):
            gc.collect()
            t0 = time.perf_counter()
            build(verify)
            walls[verify].append(time.perf_counter() - t0)
    return min(walls[True]), min(walls[False]), plan


def _measure_session(steps: int = 40):
    """Interleaved min-of-N full sessions: one build, many cached runs."""

    def run(verify: bool) -> float:
        g, feed_map, fetches = _layered_graph(identities=False)
        config = tf.SessionConfig(verify_plans=verify)
        gc.collect()
        t0 = time.perf_counter()
        with tf.Session(graph=g, config=config) as sess:
            for _ in range(steps):
                sess.run(fetches, feed_dict=feed_map)
        return time.perf_counter() - t0

    run(True)  # warm-up
    run(False)
    walls = {True: [], False: []}
    for _ in range(3):
        for verify in (True, False):
            walls[verify].append(run(verify))
    return min(walls[True]), min(walls[False])


def _overhead_pct(on: float, off: float) -> float:
    return 100.0 * (on - off) / off


def test_plan_build_overhead(record_verifier_bench, record_table):
    on, off, plan = _measure_build(identities=False)
    on_heavy, off_heavy, plan_heavy = _measure_build(identities=True)
    sess_on, sess_off = _measure_session()

    pct = _overhead_pct(on, off)
    pct_heavy = _overhead_pct(on_heavy, off_heavy)
    pct_sess = _overhead_pct(sess_on, sess_off)

    record_verifier_bench(
        "layered_collective",
        plan_items=len(plan.items),
        wall_off_ms=round(off * 1e3, 3),
        wall_on_ms=round(on * 1e3, 3),
        overhead_pct=round(pct, 1),
        diagnostics=len(plan.verifier_diagnostics),
    )
    record_verifier_bench(
        "identity_heavy",
        plan_items=len(plan_heavy.items),
        wall_off_ms=round(off_heavy * 1e3, 3),
        wall_on_ms=round(on_heavy * 1e3, 3),
        overhead_pct=round(pct_heavy, 1),
        diagnostics=len(plan_heavy.verifier_diagnostics),
    )
    record_verifier_bench(
        "session_amortized",
        wall_off_s=round(sess_off, 4),
        wall_on_s=round(sess_on, 4),
        overhead_pct=round(pct_sess, 1),
    )
    record_table(
        "bench_verifier.txt",
        "\n".join([
            "Static-verifier overhead (verify_plans=True vs False, "
            "min-of-N interleaved)",
            f"  layered_collective: build {off * 1e3:.2f} -> "
            f"{on * 1e3:.2f} ms ({pct:+.1f}%)",
            f"  identity_heavy:     build {off_heavy * 1e3:.2f} -> "
            f"{on_heavy * 1e3:.2f} ms ({pct_heavy:+.1f}%, rewrite-heavy "
            "worst case)",
            f"  session_amortized:  {sess_off:.3f} -> {sess_on:.3f} s "
            f"({pct_sess:+.1f}%, plan cache serves repeat runs)",
        ]),
    )

    # Burn-in: representative plans verify clean — no false positives.
    assert plan.verified and not plan.verifier_diagnostics
    assert plan_heavy.verified and not plan_heavy.verifier_diagnostics

    # The acceptance bar: <10% plan-build overhead on the representative
    # workload and on what sessions actually experience. The
    # rewrite-heavy arm is recorded (its verification cost scales with
    # the rewrite volume) and sanity-bounded rather than held to 10%.
    assert pct < 10.0, (
        f"plan-build verification overhead {pct:.1f}% (on={on * 1e3:.2f}ms "
        f"off={off * 1e3:.2f}ms), expected <10%"
    )
    assert pct_sess < 10.0, (
        f"session-level verification overhead {pct_sess:.1f}%, expected <10%"
    )
    assert pct_heavy < 40.0, (
        f"rewrite-heavy verification overhead {pct_heavy:.1f}% looks "
        f"pathological"
    )
