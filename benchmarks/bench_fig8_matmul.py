"""Fig. 8 — tiled matmul strong scaling across both machines."""


from repro.figures.fig8_matmul import format_fig8, paper_comparison, run_fig8


def _gflops(points, system, n, gpus):
    for p in points:
        if (p.system, p.n, p.gpus) == (system, n, gpus):
            assert p.result is not None, f"{system}/{n}/{gpus} unexpectedly OOM"
            return p.result.gflops
    raise AssertionError(f"missing point {system}/{n}/{gpus}")


def test_fig8_sweep(benchmark, record_table):
    points = benchmark.pedantic(
        lambda: run_fig8(quick=True), rounds=1, iterations=1
    )

    # Paper: ~2x scaling on Tegner K420 (2->4 and 4->8, size 32768).
    s24 = _gflops(points, "tegner-k420", 32768, 4) / _gflops(
        points, "tegner-k420", 32768, 2)
    s48 = _gflops(points, "tegner-k420", 32768, 8) / _gflops(
        points, "tegner-k420", 32768, 4)
    assert 1.7 < s24 < 2.2, f"K420 2->4 scaling {s24:.2f}"
    assert 1.7 < s48 < 2.2, f"K420 4->8 scaling {s48:.2f}"

    # Paper: ~1.8x on Tegner K80 at 65536 from 2 to 4 GPUs.
    k80 = _gflops(points, "tegner-k80", 65536, 4) / _gflops(
        points, "tegner-k80", 65536, 2)
    assert 1.5 < k80 < 2.1, f"Tegner K80 2->4 scaling {k80:.2f}"

    # Paper: Kebnekaise scaling is "less satisfactory" — 1.4x from 2 to 4,
    # clearly below Tegner's.
    keb = _gflops(points, "kebnekaise-k80", 32768, 4) / _gflops(
        points, "kebnekaise-k80", 32768, 2)
    assert 1.0 < keb < 1.6, f"Kebnekaise 2->4 scaling {keb:.2f}"
    assert keb < s24, "Kebnekaise must scale worse than Tegner (paper VI-B)"

    # Paper: peak 2478 Gflops/s at 16 GPUs (we accept the same order).
    peak = _gflops(points, "kebnekaise-k80", 32768, 16)
    assert 1500 < peak < 5000, f"Kebnekaise 16-GPU peak {peak:.0f}"

    # Kebnekaise flattens: 8 -> 16 gains less than 2->4 gains on Tegner.
    flat = _gflops(points, "kebnekaise-k80", 32768, 16) / _gflops(
        points, "kebnekaise-k80", 32768, 8)
    assert flat < 1.5, f"expected flattening at 16 GPUs, got {flat:.2f}x"

    record_table(
        "fig8_matmul.txt", format_fig8(points) + "\n\n" + paper_comparison(points)
    )


def test_fig8_concrete_point_validates(benchmark):
    """One concrete (real numerics) point of the figure, checked vs NumPy."""
    from repro.apps.matmul import run_matmul

    result = benchmark.pedantic(
        lambda: run_matmul(system="tegner-k420", n=256, tile=64, num_gpus=2,
                           num_reducers=2, shape_only=False),
        rounds=1, iterations=1,
    )
    assert result.validated
