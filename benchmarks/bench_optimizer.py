"""Plan-time optimizer + executor fast-path benchmark.

Runs the fig10 CG solver (a real paper configuration: Tegner K80,
n=32768, 4 GPUs, shape-only) with graph optimization and the
dependency-counting executor enabled vs. fully disabled (the disabled arm
is the legacy one-process-per-item executor), and asserts the PR's
acceptance bar:

* >= 20% host wall-clock reduction with optimization enabled;
* a measurable plan-item-count reduction;
* identical fetch semantics — the simulated clock of both arms must agree
  exactly here because no constant-folding opportunity exists in the CG
  iteration graph (when folding does apply, the simulated-time delta is
  reported, not hidden).

Results land in ``benchmarks/results/BENCH_optimizer.json`` via
``record_bench`` so the perf trajectory is tracked across PRs.
"""

import gc
import time

from repro.apps.cg import run_cg

CONFIG = dict(system="tegner-k80", n=32768, num_gpus=4, iterations=100,
              shape_only=True)
REPEATS = 5


def _run_once(optimize: bool):
    gc.collect()
    t0 = time.perf_counter()
    result = run_cg(optimize=optimize, **CONFIG)
    return time.perf_counter() - t0, result


def _measure():
    """Interleave the arms and keep each arm's best time.

    Interleaving decorrelates machine drift from the comparison; min-of-N
    is the standard noise-robust wall-clock estimator (noise only ever
    adds time).
    """
    walls = {True: [], False: []}
    results = {}
    for _ in range(REPEATS):
        for optimize in (True, False):
            wall, results[optimize] = _run_once(optimize)
            walls[optimize].append(wall)
    return min(walls[True]), min(walls[False]), results[True], results[False]


def test_optimizer_speedup_fig10_cg(record_table, record_bench):
    _run_once(True)  # warm imports/caches off the books
    _run_once(False)
    wall_on, wall_off, res_on, res_off = _measure()

    reduction = (wall_off - wall_on) / wall_off
    items_saved = res_off.plan_items - res_on.plan_items

    record_bench(
        "fig10_cg_optimizer",
        items_before=res_off.plan_items,
        items_after=res_on.plan_items,
        wall_on_s=round(wall_on, 4),
        wall_off_s=round(wall_off, 4),
        wall_reduction_pct=round(100 * reduction, 1),
        sim_elapsed_on_s=res_on.elapsed,
        sim_elapsed_off_s=res_off.elapsed,
        sim_delta_s=res_on.elapsed - res_off.elapsed,
    )
    record_table(
        "bench_optimizer.txt",
        "\n".join([
            "Plan-time optimizer + executor fast path — fig10 CG "
            f"({CONFIG['system']}, n={CONFIG['n']}, {CONFIG['num_gpus']} GPUs, "
            f"{CONFIG['iterations']} iters)",
            f"  plan items:  {res_off.plan_items} -> {res_on.plan_items} "
            f"({items_saved} saved)",
            f"  host wall:   {wall_off:.3f}s -> {wall_on:.3f}s "
            f"({100 * reduction:.1f}% reduction)",
            f"  sim elapsed: {res_off.elapsed:.6f}s -> {res_on.elapsed:.6f}s "
            f"(delta {res_on.elapsed - res_off.elapsed:+.2e}s)",
        ]),
    )

    assert items_saved > 0, (
        f"expected a plan-item reduction, got {res_off.plan_items} -> "
        f"{res_on.plan_items}"
    )
    assert reduction >= 0.20, (
        f"expected >= 20% host wall-clock reduction, got {100 * reduction:.1f}% "
        f"(on={wall_on:.3f}s off={wall_off:.3f}s)"
    )
    # No folding applies to the CG iteration graph, so the simulated clock
    # must agree bit-for-bit between the arms.
    assert res_on.elapsed == res_off.elapsed
