"""Table I — deployment configurations, regenerated from the models."""

from repro.figures.table1_nodes import (
    format_table1,
    run_table1,
    topology_diagram,
)


def test_table1_nodes(benchmark, record_table):
    rows = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    by_type = {r["node_type"]: r for r in rows}
    # The paper's Table I, row by row.
    assert by_type["Tegner K420"]["instances"] == 1
    assert by_type["Tegner K420"]["gpu_memory_gb"] == 1
    assert by_type["Tegner K80"]["instances"] == 2
    assert by_type["Tegner K80"]["gpu_memory_gb"] == 12
    assert by_type["Kebnekaise K80"]["instances"] == 4
    assert by_type["Kebnekaise K80"]["gpu_memory_gb"] == 12
    assert by_type["Kebnekaise V100"]["instances"] == 2
    assert by_type["Kebnekaise V100"]["gpu_memory_gb"] == 16
    # Every instance gets exactly one GPU engine.
    assert all(r["gpus_per_instance"] == 1 for r in rows)
    record_table(
        "table1_nodes.txt",
        format_table1(rows) + "\n\n" + topology_diagram(),
    )
