"""Data-parallel SGD benchmark: gradient exchange at HPC scale.

The Horovod use case, quantified on the backward path the autodiff of
``repro.core.gradients`` emits. Three lanes, all landing in
``benchmarks/results/BENCH_sgd.json`` via ``record_sgd_bench`` so the
training trajectory is tracked across PRs:

* **ring vs central at 8 workers** — an 8 MB gradient summed across 8
  Tegner ranks every step, ring-allreduce graph ops vs the chief-task
  reduce + fan-out; the acceptance bar asserts the ring >= 1.5x faster.
* **gradient-exchange scaling** — the same duel at 2/4/8 workers (the
  ring's advantage must grow with W as the chief's NIC serializes).
* **executor fast path vs legacy** — host-wall A/B of the full training
  step (forward + backward + collective sync + update) against the
  legacy one-process-per-item executor, min-of-5 interleaved, per the
  repo's bench conventions; simulated clocks asserted identical.
"""

import gc
import time

import pytest

from repro.apps.sgd import run_sgd
from repro.perf.reporting import format_table

REPEATS = 5

# Paper-scale gradient: d = 2^20 float64 = 8 MB per rank, tiny batch so
# the exchange (not the matvec) dominates — the regime the paper's
# discussion section argues MPI collectives exist for.
EXCHANGE = dict(d=1 << 20, rows_per_worker=4, steps=4, shape_only=True)


@pytest.fixture(scope="module")
def exchange_sweep():
    """Ring/central results at 2/4/8 workers, computed once — the
    8-worker pair is the most expensive configuration and both the
    headline test and the scaling test read it."""
    return {
        workers: (
            run_sgd(mode="collective", num_workers=workers, **EXCHANGE),
            run_sgd(mode="reducer", num_workers=workers, **EXCHANGE),
        )
        for workers in (2, 4, 8)
    }


def test_grad_sync_ring_vs_central_8_workers(exchange_sweep, record_table,
                                             record_sgd_bench):
    ring, central = exchange_sweep[8]
    speedup = central.elapsed / ring.elapsed

    assert speedup >= 1.5, (
        f"ring gradient sync must be >= 1.5x faster than the central "
        f"reducer at 8 workers, got {speedup:.2f}x"
    )

    record_sgd_bench(
        "sgd_grad_sync_8x8MB",
        ring_ms=round(ring.elapsed * 1e3, 4),
        central_ms=round(central.elapsed * 1e3, 4),
        ring_ms_per_step=round(ring.seconds_per_step * 1e3, 4),
        central_ms_per_step=round(central.seconds_per_step * 1e3, 4),
        speedup=round(speedup, 3),
    )
    record_table("bench_sgd_allreduce.txt", "\n".join([
        "Data-parallel SGD gradient exchange "
        f"(8 workers, {EXCHANGE['d'] * 8 // (1024 * 1024)} MB gradient, "
        f"{EXCHANGE['steps']} steps, Tegner EDR)",
        f"  ring allreduce (collective): {ring.elapsed * 1e3:8.2f} ms",
        f"  chief reduce + fan-out:      {central.elapsed * 1e3:8.2f} ms",
        f"  speedup:                     {speedup:8.2f}x",
    ]))


def test_grad_sync_scaling(exchange_sweep, record_table, record_sgd_bench):
    rows = []
    speedups = {}
    for workers, (ring, central) in sorted(exchange_sweep.items()):
        speedups[workers] = central.elapsed / ring.elapsed
        rows.append([workers, ring.elapsed * 1e3, central.elapsed * 1e3,
                     speedups[workers]])
        record_sgd_bench(
            f"sgd_scaling_w{workers}",
            ring_ms=round(ring.elapsed * 1e3, 4),
            central_ms=round(central.elapsed * 1e3, 4),
            speedup=round(speedups[workers], 3),
        )
    assert speedups[8] > speedups[4] > speedups[2], (
        "the ring's advantage must grow with the worker count"
    )
    record_table("bench_sgd_scaling.txt", format_table(
        ["workers", "ring [ms]", "central [ms]", "speedup"],
        rows,
        title=f"SGD gradient exchange scaling "
              f"(d=2^20, {EXCHANGE['steps']} steps, Tegner K420)",
    ))


def test_sgd_executor_fastpath_wall_clock(record_sgd_bench):
    """Host-wall A/B of the training step: optimizer + fast path vs the
    legacy one-process-per-item executor lane, min-of-5 interleaved."""
    config = dict(mode="collective", num_workers=4, d=4096,
                  rows_per_worker=8, steps=8, shape_only=True)

    def run_once(optimize):
        gc.collect()
        t0 = time.perf_counter()
        result = run_sgd(optimize=optimize, **config)
        return time.perf_counter() - t0, result

    run_once(True)  # warm caches off the books
    run_once(False)
    walls = {True: [], False: []}
    results = {}
    for _ in range(REPEATS):
        for optimize in (True, False):
            wall, results[optimize] = run_once(optimize)
            walls[optimize].append(wall)
    wall_on, wall_off = min(walls[True]), min(walls[False])

    # Unlike the stencil, the training graph has const-only backward
    # subtrees (the gradient-seed spread), so constant folding removes
    # simulated cost: the optimized lane may only ever be *faster* on
    # the simulated clock, never slower. Host wall times are recorded,
    # not asserted: this file runs in CI, and wall-clock orderings on
    # shared runners flake (the asserting perf A/B lives in
    # bench_optimizer.py).
    assert results[True].elapsed <= results[False].elapsed
    assert results[True].plan_items <= results[False].plan_items
    record_sgd_bench(
        "sgd_executor_fastpath",
        wall_on_s=round(wall_on, 4),
        wall_off_s=round(wall_off, 4),
        wall_reduction_pct=round(100 * (wall_off - wall_on) / wall_off, 1),
        sim_elapsed_on_s=results[True].elapsed,
        sim_elapsed_off_s=results[False].elapsed,
        plan_items_on=results[True].plan_items,
        plan_items_off=results[False].plan_items,
    )
