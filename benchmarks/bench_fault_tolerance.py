"""Fault-tolerance benchmark: recovery overhead in simulated time.

The robustness lane the paper motivates ("checkpoint-restart capability
in less than 300 lines"): inject deterministic worker crashes into
data-parallel SGD and measure the cost of surviving them. Three sweeps,
all landing in ``benchmarks/results/BENCH_fault_tolerance.json`` via
``record_fault_bench`` so the robustness trajectory is tracked across
PRs:

* **checkpoint-interval sweep** — one mid-run crash, snapshots every
  1/2/4/8 steps: frequent checkpoints pay per-step save cost but replay
  less; sparse checkpoints save cheap but replay more. Every recovered
  trajectory is asserted byte-identical to the fault-free reference.
* **crash-rate sweep** — 0/1/2 seeded crashes against a fixed interval:
  overhead must grow with crash count, correctness must not budge.
* **transient-drop arm** — message loss absorbed by the retry policy
  alone (no restore); the overhead of backoff vs a clean run.
"""

import pytest

from repro.apps.sgd import run_sgd_restartable
from repro.perf.reporting import format_table
from repro.simnet.faults import FaultPlan, MessageDrop, WorkerCrash

STEPS = 40
WORKERS = 2
# Detection must be much shorter than the run for distinct crashes to
# yield distinct recoveries: one step is ~0.9 simulated ms, the full
# clean run ~35 ms, so a 2 ms operation deadline detects a loss within
# ~2 steps and a full detect-restore-replay cycle stays under ~10 ms.
TIMEOUT_MS = 2.0
CRASH_AT = 0.005
CRASH_SPACING = 0.025
RESTART_AFTER = 0.003


def _run(tmp_path, tag, checkpoint_every, fault_plan):
    res = run_sgd_restartable(
        num_workers=WORKERS, steps=STEPS, checkpoint_dir=str(tmp_path / tag),
        checkpoint_every=checkpoint_every, fault_plan=fault_plan,
        operation_timeout_ms=TIMEOUT_MS, recovery_backoff=0.001,
    )
    assert res.validated, (
        f"{tag}: recovered trajectory must be byte-identical to the "
        f"fault-free reference"
    )
    return res


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    """Fault-free run (still checkpointing every 4): the overhead
    denominator shared by every sweep."""
    tmp = tmp_path_factory.mktemp("ft_baseline")
    return _run(tmp, "clean", 4, None)


def test_recovery_overhead_vs_checkpoint_interval(tmp_path, baseline,
                                                  record_table,
                                                  record_fault_bench):
    plan = FaultPlan.single_crash("worker", 1, at=CRASH_AT,
                                  restart_after=RESTART_AFTER)
    rows = []
    fields = {"clean_elapsed": baseline.elapsed}
    for interval in (1, 2, 4, 8):
        res = _run(tmp_path, f"int{interval}", interval, plan)
        assert res.recoveries >= 1, f"interval {interval}: crash never fired"
        overhead = res.elapsed - baseline.elapsed
        rows.append([interval, res.checkpoints_written, res.recoveries,
                     res.steps_replayed, f"{res.elapsed * 1e3:.2f}",
                     f"{overhead * 1e3:.2f}"])
        fields[f"interval_{interval}_elapsed"] = res.elapsed
        fields[f"interval_{interval}_replayed"] = res.steps_replayed

    # Sparser checkpoints must replay at least as many steps as denser
    # ones (the interval's fundamental trade).
    assert fields["interval_8_replayed"] >= fields["interval_1_replayed"]

    record_table(
        "fault_tolerance_interval.txt",
        format_table(
            ["every k steps", "ckpts", "recoveries", "replayed",
             "sim ms", "overhead ms"],
            rows,
            title=(f"SGD checkpoint-restart, 1 crash, {STEPS} steps x "
                   f"{WORKERS} workers (clean run "
                   f"{baseline.elapsed * 1e3:.2f} sim ms)"),
        ),
    )
    record_fault_bench("sgd_recovery_vs_interval", **fields)


def test_recovery_overhead_vs_crash_rate(tmp_path, baseline, record_table,
                                         record_fault_bench):
    rows = []
    fields = {"clean_elapsed": baseline.elapsed}
    elapsed_by_crashes = {}
    for crashes in (0, 1, 2):
        # Spaced wider than one full detect-restore-replay cycle, so
        # each crash is a separate recovery rather than one overlapping
        # one.
        faults = tuple(
            WorkerCrash("worker", k % WORKERS,
                        at=CRASH_AT + k * CRASH_SPACING,
                        restart_after=RESTART_AFTER)
            for k in range(crashes)
        )
        res = _run(tmp_path, f"crash{crashes}", 4, FaultPlan(faults=faults))
        assert res.recoveries == crashes
        elapsed_by_crashes[crashes] = res.elapsed
        rows.append([crashes, res.recoveries, res.steps_replayed,
                     f"{res.elapsed * 1e3:.2f}"])
        fields[f"crashes_{crashes}_elapsed"] = res.elapsed
        fields[f"crashes_{crashes}_replayed"] = res.steps_replayed

    # More crashes, more recovery time — strictly, since each recovery
    # pays at least one detection deadline.
    assert elapsed_by_crashes[0] < elapsed_by_crashes[1] < elapsed_by_crashes[2]

    record_table(
        "fault_tolerance_crash_rate.txt",
        format_table(
            ["crashes", "recoveries", "replayed", "sim ms"],
            rows,
            title=(f"SGD recovery cost vs crash count "
                   f"({STEPS} steps x {WORKERS} workers, ckpt every 4)"),
        ),
    )
    record_fault_bench("sgd_recovery_vs_crash_rate", **fields)


def test_transient_drops_cost_backoff_only(tmp_path, baseline,
                                           record_fault_bench):
    res = _run(tmp_path, "drops", 4,
               FaultPlan(faults=(MessageDrop(count=4),), seed=3))
    assert res.injector_stats["drops"] == 4
    assert res.recoveries == 0  # absorbed by retries, no restore
    record_fault_bench(
        "sgd_transient_drops",
        clean_elapsed=baseline.elapsed,
        drops=res.injector_stats["drops"],
        elapsed=res.elapsed,
        backoff_overhead=res.elapsed - baseline.elapsed,
    )
