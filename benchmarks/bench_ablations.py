"""Ablations over the design choices the paper makes but does not sweep.

* tile size (the paper uses 4096 for K420 "to increase utilization" and
  8192 for K80);
* reducer count (the paper fixes two reducers keyed by target parity);
* transport protocol for a latency-sensitive app (CG's queue reductions);
* and the merger-exclusion choice in the FFT metric.
"""


from repro.apps.cg import run_cg
from repro.apps.fft import run_fft
from repro.apps.matmul import run_matmul
from repro.perf.reporting import format_table


class TestTileSizeAblation:
    def test_k80_prefers_large_tiles(self, benchmark, record_table):
        """8192 tiles beat 4096 on K80 (higher arithmetic intensity per
        transfer) — the paper's choice."""

        def sweep():
            return {
                tile: run_matmul(system="tegner-k80", n=32768, tile=tile,
                                 num_gpus=4, shape_only=True)
                for tile in (4096, 8192)
            }

        results = benchmark.pedantic(sweep, rounds=1, iterations=1)
        assert results[8192].gflops > results[4096].gflops
        record_table("ablation_tile_size.txt", format_table(
            ["tile", "Gflops/s", "elapsed [s]"],
            [[t, r.gflops, r.elapsed] for t, r in sorted(results.items())],
            title="Ablation — tile size (Tegner K80, N=32768, 4 GPUs)",
        ))

    def test_k420_large_tiles_exhaust_memory_headroom(self, benchmark):
        """8192^2 fp32 tiles put a 768 MB working set (two inputs + one
        output) on the K420's 1 GB — no headroom for double buffering,
        which is why the paper runs 4096 tiles on Tegner."""
        from repro.apps.common import build_cluster

        def peak_fraction(tile):
            cluster = build_cluster("tegner-k420",
                                    {"worker": 2, "reducer": 2})
            run_matmul(system="tegner-k420", n=2 * tile, tile=tile,
                       num_gpus=2, shape_only=True, cluster=cluster)
            pools = [
                pool
                for (job, _i), server in cluster.servers.items()
                if job == "worker"
                for name, pool in server.runtime.memory_pools.items()
                if "gpu" in name
            ]
            return max(p.peak / p.capacity for p in pools)

        fractions = benchmark.pedantic(
            lambda: {t: peak_fraction(t) for t in (4096, 8192)},
            rounds=1, iterations=1,
        )
        assert fractions[8192] > 0.70, f"large tiles: {fractions[8192]:.2f}"
        assert fractions[4096] < 0.40, f"small tiles: {fractions[4096]:.2f}"


class TestReducerCountAblation:
    def test_two_reducers_beat_one(self, benchmark, record_table):
        def sweep():
            return {
                r: run_matmul(system="tegner-k80", n=32768, tile=8192,
                              num_gpus=8, num_reducers=r, shape_only=True)
                for r in (1, 2, 4)
            }

        results = benchmark.pedantic(sweep, rounds=1, iterations=1)
        assert results[2].gflops > results[1].gflops
        # Doubling again helps less (or not at all): reduce is no longer
        # the bottleneck once two reducers keep up.
        gain_12 = results[2].gflops / results[1].gflops
        gain_24 = results[4].gflops / results[2].gflops
        assert gain_24 < gain_12
        record_table("ablation_reducers.txt", format_table(
            ["reducers", "Gflops/s"],
            [[r, res.gflops] for r, res in sorted(results.items())],
            title="Ablation — reducer count (Tegner K80, N=32768, 8 GPUs)",
        ))


class TestTransportAblation:
    def test_cg_is_latency_sensitive(self, benchmark, record_table):
        """CG's per-iteration queue round-trips make protocol latency
        visible: verbs > MPI > gRPC in iteration rate."""

        def sweep():
            return {
                protocol: run_cg(system="tegner-k80", n=16384, num_gpus=4,
                                 iterations=30, protocol=protocol,
                                 shape_only=True)
                for protocol in ("grpc", "grpc+mpi", "grpc+verbs")
            }

        results = benchmark.pedantic(sweep, rounds=1, iterations=1)
        assert (results["grpc+verbs"].gflops
                >= results["grpc+mpi"].gflops
                > results["grpc"].gflops)
        record_table("ablation_transport_cg.txt", format_table(
            ["protocol", "Gflops/s", "ms/iteration"],
            [[p, r.gflops, r.seconds_per_iteration * 1e3]
             for p, r in sorted(results.items())],
            title="Ablation — transport protocol (CG, Tegner K80, N=16384)",
        ))


class TestFFTMergerAblation:
    def test_merge_inclusion_kills_scaling(self, benchmark, record_table):
        """Including the serial Python merge (which the paper excludes)
        erases most of the measured scaling — the reason the paper reports
        only to the collection point."""

        def sweep():
            return {
                gpus: run_fft(system="tegner-k80", n=1 << 26, num_tiles=64,
                              num_gpus=gpus, shape_only=True)
                for gpus in (2, 8)
            }

        results = benchmark.pedantic(sweep, rounds=1, iterations=1)
        collect_scaling = results[8].gflops / results[2].gflops
        total_scaling = (results[8].gflops_with_merge
                         / results[2].gflops_with_merge)
        assert total_scaling < collect_scaling
        assert total_scaling < 1.6
        record_table("ablation_fft_merge.txt", format_table(
            ["GPUs", "Gflops/s (collect)", "Gflops/s (with merge)"],
            [[g, r.gflops, r.gflops_with_merge]
             for g, r in sorted(results.items())],
            title="Ablation — FFT merge inclusion (Tegner K80, N=2^26)",
        ))


class TestAllreduceAblation:
    def test_ring_allreduce_vs_queue_reducer(self, benchmark, record_table):
        """The paper's discussion: Horovod-style allreduce removes the
        dedicated-server bottleneck. Compare one 32 MB reduction across 8
        ranks through the queue reducer's central node vs a ring."""
        from repro.core.tensor import SymbolicValue
        from repro.runtime.collective import ring_allreduce
        from repro.simnet import transports
        from repro.simnet.events import AllOf, Environment
        from repro.simnet.machines import tegner

        nbytes = 32 * 1024 * 1024
        world = 8

        def measure():
            # Ring.
            env = Environment()
            machine = tegner(env, k420_nodes=world)
            devices = [machine.node(n).cpu for n in sorted(machine.nodes)]
            values = [SymbolicValue((nbytes // 8,), "float64")
                      for _ in range(world)]

            def ring():
                yield from ring_allreduce(devices, values, "rdma")

            env.run(until=env.process(ring()))
            ring_time = env.now

            # Central reducer: gather to rank 0, broadcast back.
            env2 = Environment()
            machine2 = tegner(env2, k420_nodes=world)
            devs2 = [machine2.node(n).cpu for n in sorted(machine2.nodes)]

            def central():
                yield AllOf(env2, [
                    env2.process(transports.transfer(devs2[r], devs2[0],
                                                     nbytes, "rdma"))
                    for r in range(1, world)
                ])
                yield AllOf(env2, [
                    env2.process(transports.transfer(devs2[0], devs2[r],
                                                     nbytes, "rdma"))
                    for r in range(1, world)
                ])

            env2.run(until=env2.process(central()))
            return {"ring": ring_time, "central": env2.now}

        times = benchmark.pedantic(measure, rounds=1, iterations=1)
        assert times["ring"] < times["central"] / 2
        record_table("ablation_allreduce.txt", "\n".join([
            "Ablation — ring allreduce vs central reducer "
            "(8 ranks, 32 MB, Tegner EDR)",
            f"  ring allreduce: {times['ring'] * 1e3:8.2f} ms",
            f"  central reduce: {times['central'] * 1e3:8.2f} ms",
            f"  speedup:        {times['central'] / times['ring']:8.2f}x",
        ]))
