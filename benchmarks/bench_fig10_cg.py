"""Fig. 10 — CG solver strong scaling across three GPU platforms."""


from repro.figures.fig10_cg import format_fig10, paper_comparison, run_fig10


def _gflops(points, system, n, gpus, allow_oom=False):
    for p in points:
        if (p.system, p.n, p.gpus) == (system, n, gpus):
            if p.result is None:
                if allow_oom:
                    return None
                raise AssertionError(f"{system}/{n}/{gpus} unexpectedly OOM")
            return p.result.gflops
    raise AssertionError(f"missing point {system}/{n}/{gpus}")


def test_fig10_sweep(benchmark, record_table):
    points = benchmark.pedantic(
        lambda: run_fig10(iterations=40), rounds=1, iterations=1
    )

    # Paper: 1.74x on Tegner K80 from 2 to 4 GPUs at 32768.
    tegner = _gflops(points, "tegner-k80", 32768, 4) / _gflops(
        points, "tegner-k80", 32768, 2)
    assert 1.5 < tegner < 2.0, f"Tegner K80 2->4 {tegner:.2f}"

    # Paper: 1.6x then 1.3x ladder on Kebnekaise K80.
    keb24 = _gflops(points, "kebnekaise-k80", 32768, 4) / _gflops(
        points, "kebnekaise-k80", 32768, 2)
    keb48 = _gflops(points, "kebnekaise-k80", 32768, 8) / _gflops(
        points, "kebnekaise-k80", 32768, 4)
    assert 1.4 < keb24 < 2.0, f"Kebnekaise 2->4 {keb24:.2f}"
    assert 1.0 < keb48 < 1.6, f"Kebnekaise 4->8 {keb48:.2f}"
    assert keb48 < keb24, "strong-scaling ladder must flatten (paper VI-C)"

    # Paper: 1.36x from 8 to 16 GPUs at 65536.
    keb816 = _gflops(points, "kebnekaise-k80", 65536, 16) / _gflops(
        points, "kebnekaise-k80", 65536, 8)
    assert 1.1 < keb816 < 1.6, f"Kebnekaise 65536 8->16 {keb816:.2f}"

    # Paper: >300 Gflops/s on eight V100s; modest V100 scaling because the
    # problem underutilizes such a powerful GPU.
    v100_8 = _gflops(points, "kebnekaise-v100", 32768, 8)
    assert v100_8 > 300, f"V100 8-GPU Gflops {v100_8:.0f}"
    v100_24 = _gflops(points, "kebnekaise-v100", 32768, 4) / _gflops(
        points, "kebnekaise-v100", 32768, 2)
    assert 1.1 < v100_24 < 1.6, f"V100 2->4 {v100_24:.2f}"

    # Paper: 16384 shows "little scaling" across platforms.
    small = _gflops(points, "kebnekaise-v100", 16384, 8) / _gflops(
        points, "kebnekaise-v100", 16384, 2)
    assert small < 1.6, f"16384 should barely scale, got {small:.2f}"

    # Paper: 65536 on few K80s is omitted for insufficient memory — the
    # simulator reproduces the OOM.
    assert _gflops(points, "tegner-k80", 65536, 2, allow_oom=True) is None
    assert _gflops(points, "kebnekaise-k80", 65536, 4, allow_oom=True) is None

    record_table(
        "fig10_cg.txt", format_fig10(points) + "\n\n" + paper_comparison(points)
    )


def test_fig10_concrete_point_converges(benchmark):
    """One concrete CG point: converges and validates against the system."""
    from repro.apps.cg import run_cg

    result = benchmark.pedantic(
        lambda: run_cg(system="tegner-k80", n=128, num_gpus=2, iterations=80,
                       shape_only=False, seed=7),
        rounds=1, iterations=1,
    )
    assert result.residual < 1e-6
