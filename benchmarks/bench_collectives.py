"""Graph-level collectives benchmark: the Horovod argument, quantified.

Two lanes, both landing in ``benchmarks/results/BENCH_collectives.json``
via ``record_collective_bench`` so the collectives trajectory is tracked
across PRs:

* **allreduce vs central reducer** — one 32 MB reduction across 8 Tegner
  ranks, both sides expressed as *graph ops* (``repro.all_reduce`` vs the
  add_n-on-chief + per-worker-echo pattern), with the lowered ring
  asserted sim-time-identical to the standalone generator;
* **stencil global sync scaling** — the halo-exchange stencil's
  convergence/field sync at 2/4/8 workers, ring vs central, plus the
  host-wall A/B of the executor fast path against the legacy
  one-process-per-item lane (the baseline every optimizer benchmark
  measures against), min-of-5 interleaved.
"""

import gc
import time

import pytest

import repro as tf
from repro.apps.common import build_cluster, task_device
from repro.apps.stencil import run_stencil
from repro.core.session import admin_rpc_time
from repro.core.tensor import SymbolicValue
from repro.perf.reporting import format_table
from repro.runtime.collective import ring_allreduce
from repro.simnet.events import Environment
from repro.simnet.machines import tegner

MB = 1024 * 1024
REPEATS = 5


def _worker_cluster(world):
    handle = build_cluster("tegner-k420", {"worker": world})
    servers = [handle.server("worker", w) for w in range(world)]
    return handle.env, handle.machine, servers


def _device(w):
    return task_device("worker", w, "cpu", 0)


def _admin():
    return admin_rpc_time(remote_tasks=True)


def _worker_sources(g, world, nbytes):
    """Per-rank addends materialized *on the worker devices*.

    Identity-of-fed-placeholder pins a zero-cost producer on each rank,
    so cross-device consumers pay real wire time (a bare fed placeholder
    would short-circuit routing: feeds are client-side values). The arm
    sessions run with graph rewriting off — identity collapse would
    substitute the feed straight through and un-pin the producer.
    """
    phs, srcs = [], []
    for w in range(world):
        with g.device(_device(w)):
            ph = tf.placeholder(tf.float64, shape=[nbytes // 8],
                                name=f"x{w}")
            phs.append(ph)
            srcs.append(tf.identity(ph, name=f"src{w}"))
    return phs, srcs


def _ring_arm(world, nbytes):
    env, _, servers = _worker_cluster(world)
    g = tf.Graph()
    with g.as_default():
        phs, srcs = _worker_sources(g, world, nbytes)
        outs = tf.all_reduce(srcs)
    sess = tf.Session(servers[0], graph=g, config=tf.SessionConfig(
        shape_only=True, graph_optimization=False))
    feeds = {ph: SymbolicValue((nbytes // 8,), "float64") for ph in phs}
    start = env.now
    sess.run([outs[0].op], feed_dict=feeds)
    return env.now - start - _admin()


def _central_arm(world, nbytes):
    """The paper's pattern as a graph: reduce on task 0, echo to all."""
    env, _, servers = _worker_cluster(world)
    g = tf.Graph()
    with g.as_default():
        phs, srcs = _worker_sources(g, world, nbytes)
        with g.device(_device(0)):
            total = tf.add_n(srcs, name="central_sum")
        echoes = []
        for w in range(world):
            with g.device(_device(w)):
                echoes.append(tf.identity(total, name=f"echo{w}"))
        fetch = tf.group(*[e.op for e in echoes], name="fanout", graph=g)
    sess = tf.Session(servers[0], graph=g, config=tf.SessionConfig(
        shape_only=True, graph_optimization=False))
    feeds = {ph: SymbolicValue((nbytes // 8,), "float64") for ph in phs}
    start = env.now
    sess.run(fetch, feed_dict=feeds)
    return env.now - start - _admin()


def _standalone_ring(world, nbytes):
    env = Environment()
    machine = tegner(env, k420_nodes=world)
    devices = [machine.node(n).cpu for n in sorted(machine.nodes)]
    values = [SymbolicValue((nbytes // 8,), "float64") for _ in range(world)]
    env.run(until=env.process(ring_allreduce(devices, values)))
    return env.now


def test_graph_allreduce_vs_central_reducer(record_table,
                                            record_collective_bench):
    world, nbytes = 8, 32 * MB
    ring = _ring_arm(world, nbytes)
    central = _central_arm(world, nbytes)
    standalone = _standalone_ring(world, nbytes)

    assert ring == pytest.approx(standalone, rel=1e-12), (
        "lowered CollectiveAllReduce must charge the standalone ring's time"
    )
    assert ring < central / 2, (
        f"ring {ring * 1e3:.2f} ms should beat central {central * 1e3:.2f} ms "
        f"by 2x at {world} ranks"
    )

    record_collective_bench(
        "allreduce_graph_op_8x32MB",
        ring_ms=round(ring * 1e3, 4),
        central_ms=round(central * 1e3, 4),
        standalone_ring_ms=round(standalone * 1e3, 4),
        speedup=round(central / ring, 3),
    )
    record_table("bench_collectives_allreduce.txt", "\n".join([
        "Graph-level allreduce vs central reducer "
        f"({world} ranks, {nbytes // MB} MB, Tegner EDR)",
        f"  CollectiveAllReduce (ring): {ring * 1e3:8.2f} ms",
        f"  add_n + echoes (central):   {central * 1e3:8.2f} ms",
        f"  standalone ring generator:  {standalone * 1e3:8.2f} ms",
        f"  speedup:                    {central / ring:8.2f}x",
    ]))


STENCIL = dict(n=512, iterations=10, check_every=1, shape_only=True)


def test_stencil_sync_scaling(record_table, record_collective_bench):
    rows = []
    fields = {}
    for workers in (2, 4, 8):
        ring = run_stencil(mode="collective", num_workers=workers, **STENCIL)
        central = run_stencil(mode="reducer", num_workers=workers, **STENCIL)
        speedup = central.check_elapsed / ring.check_elapsed
        rows.append([workers, ring.elapsed * 1e3, central.elapsed * 1e3,
                     ring.check_elapsed * 1e3, central.check_elapsed * 1e3,
                     speedup])
        fields[f"stencil_w{workers}"] = {
            "ring_ms": round(ring.elapsed * 1e3, 4),
            "central_ms": round(central.elapsed * 1e3, 4),
            "ring_sync_ms": round(ring.check_elapsed * 1e3, 4),
            "central_sync_ms": round(central.check_elapsed * 1e3, 4),
            "sync_speedup": round(speedup, 3),
        }
        if workers >= 4:
            assert ring.elapsed < central.elapsed, (
                f"ring must win wall-clock at {workers} workers"
            )
    assert rows[2][5] > rows[1][5], "ring advantage should grow with W"

    for name, entry in fields.items():
        record_collective_bench(name, **entry)
    record_table("bench_collectives_stencil.txt", format_table(
        ["workers", "ring [ms]", "central [ms]", "ring sync [ms]",
         "central sync [ms]", "sync speedup"],
        rows,
        title=f"Stencil global sync, ring vs central "
              f"(n={STENCIL['n']}, sync every sweep, Tegner K420)",
    ))


def test_stencil_executor_fastpath_wall_clock(record_collective_bench):
    """Host-wall A/B of the new collective lane: optimizer + fast path
    vs the legacy one-process-per-item executor, min-of-5 interleaved."""
    config = dict(mode="collective", num_workers=4, n=256, iterations=10,
                  check_every=2, shape_only=True)

    def run_once(optimize):
        gc.collect()
        t0 = time.perf_counter()
        result = run_stencil(optimize=optimize, **config)
        return time.perf_counter() - t0, result

    run_once(True)  # warm caches off the books
    run_once(False)
    walls = {True: [], False: []}
    results = {}
    for _ in range(REPEATS):
        for optimize in (True, False):
            wall, results[optimize] = run_once(optimize)
            walls[optimize].append(wall)
    wall_on, wall_off = min(walls[True]), min(walls[False])

    # The lanes must agree on the simulated clock (no folding delta in
    # the stencil graphs). Host wall times are recorded, not asserted:
    # this file runs in CI, and wall-clock orderings on shared runners
    # flake (the asserting perf A/B lives in bench_optimizer.py, which
    # CI deliberately does not run).
    assert results[True].elapsed == pytest.approx(
        results[False].elapsed, rel=1e-9)
    record_collective_bench(
        "stencil_executor_fastpath",
        wall_on_s=round(wall_on, 4),
        wall_off_s=round(wall_off, 4),
        wall_reduction_pct=round(100 * (wall_off - wall_on) / wall_off, 1),
        sim_elapsed_s=results[True].elapsed,
    )
