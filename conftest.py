"""Repo-wide pytest configuration.

``--verify-plans`` (or the ``REPRO_VERIFY_PLANS`` environment variable)
turns on the static-analysis layer for the whole run: every session in
every test re-verifies the graph after each optimizer pass and verifies
the lowered plan before caching it, failing the test with a
``VerificationError`` on any violation. The CI verifier lane runs tier-1
this way; locally it is the one-flag burn-in for verifier changes.
"""

import os


def pytest_addoption(parser):
    parser.addoption(
        "--verify-plans",
        action="store_true",
        default=False,
        help="run all sessions with static graph/plan verification on "
             "(equivalent to REPRO_VERIFY_PLANS=1)",
    )


def pytest_configure(config):
    if config.getoption("--verify-plans"):
        os.environ["REPRO_VERIFY_PLANS"] = "1"
