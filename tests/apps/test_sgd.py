"""Data-parallel SGD: numerics, mode/frontend equivalence, ring advantage."""

import numpy as np
import pytest

from repro.apps.sgd import make_regression_problem, run_sgd, sgd_reference
from repro.errors import InvalidArgumentError

SMALL = dict(d=16, num_workers=3, rows_per_worker=8, steps=6,
             learning_rate=0.005)


class TestNumerics:
    def test_concrete_matches_reference(self):
        result = run_sgd(mode="collective", **SMALL)
        assert result.validated
        x_shards, y_shards, _ = make_regression_problem(
            SMALL["d"], SMALL["rows_per_worker"], SMALL["num_workers"])
        ref_w, ref_losses, ref_traj = sgd_reference(
            x_shards, y_shards, SMALL["steps"], SMALL["learning_rate"])
        assert result.loss_history == ref_losses
        assert result.weights.tobytes() == ref_w.tobytes()
        assert len(result.trajectory) == SMALL["steps"]
        for got, want in zip(result.trajectory, ref_traj):
            assert got.tobytes() == want.tobytes()

    def test_loss_decreases(self):
        result = run_sgd(mode="reducer", **SMALL)
        history = result.loss_history
        assert all(b < a for a, b in zip(history, history[1:]))

    def test_modes_are_byte_identical(self):
        """The acceptance bar: ring-allreduce and central-reducer
        gradient sync produce the same weight trajectory, bit for bit."""
        ring = run_sgd(mode="collective", **SMALL)
        central = run_sgd(mode="reducer", **SMALL)
        assert ring.validated and central.validated
        assert ring.loss_history == central.loss_history
        for a, b in zip(ring.trajectory, central.trajectory):
            assert a.tobytes() == b.tobytes()

    def test_frontends_are_byte_identical(self):
        """Session loop vs @repro.function dispatch: same builder, same
        bytes — and the function frontend traces exactly once."""
        session = run_sgd(mode="collective", frontend="session", **SMALL)
        traced = run_sgd(mode="collective", frontend="function", **SMALL)
        assert traced.trace_count == 1
        assert session.loss_history == traced.loss_history
        for a, b in zip(session.trajectory, traced.trajectory):
            assert a.tobytes() == b.tobytes()

    def test_frontends_byte_identical_in_reducer_mode(self):
        session = run_sgd(mode="reducer", frontend="session", **SMALL)
        traced = run_sgd(mode="reducer", frontend="function", **SMALL)
        assert session.weights.tobytes() == traced.weights.tobytes()


class TestPerformance:
    def test_ring_wins_at_eight_workers(self):
        """Large gradients at 8 ranks: the chief's NIC serializes O(W)
        copies while each ring link carries 2(W-1)/W of the buffer."""
        common = dict(d=1 << 18, num_workers=8, rows_per_worker=4, steps=2,
                      shape_only=True)
        ring = run_sgd(mode="collective", **common)
        central = run_sgd(mode="reducer", **common)
        assert ring.elapsed < central.elapsed

    def test_ring_advantage_grows_with_workers(self):
        def speedup(workers):
            common = dict(d=1 << 18, num_workers=workers, rows_per_worker=4,
                          steps=2, shape_only=True)
            ring = run_sgd(mode="collective", **common)
            central = run_sgd(mode="reducer", **common)
            return central.elapsed / ring.elapsed

        assert speedup(8) > speedup(4)

    def test_optimizer_lane_preserves_values(self):
        on = run_sgd(optimize=True, **SMALL)
        off = run_sgd(optimize=False, **SMALL)
        assert on.loss_history == off.loss_history
        assert on.weights.tobytes() == off.weights.tobytes()
        assert on.plan_items <= off.plan_items
        # Constant folding may only ever *remove* simulated cost (the
        # backward's gradient-seed spread is a const-only subtree).
        assert on.elapsed <= off.elapsed

    def test_shape_only_runs_paper_scale(self):
        result = run_sgd(d=1 << 18, num_workers=4, rows_per_worker=4,
                         steps=2, shape_only=True)
        assert result.elapsed > 0
        assert result.weights is None and not result.trajectory


MULTI = dict(d=12, blocks=3, num_workers=2, rows_per_worker=8, steps=5,
             learning_rate=0.004)


class TestMultiParameter:
    def test_blocks_model_matches_reference(self):
        """Per-layer weight blocks + bias: validated against the NumPy
        reference byte for byte, trajectory entries span all params."""
        result = run_sgd(mode="collective", **MULTI)
        assert result.validated
        # blocks weight chunks of d/blocks each, plus the scalar bias.
        assert result.weights.shape == (MULTI["d"] + 1,)

    def test_blocks_byte_identical_across_modes_and_frontends(self):
        baseline = run_sgd(mode="collective", frontend="session", **MULTI)
        for mode, frontend in (("reducer", "session"),
                               ("collective", "function"),
                               ("reducer", "function")):
            other = run_sgd(mode=mode, frontend=frontend, **MULTI)
            assert other.validated
            assert baseline.loss_history == other.loss_history
            for a, b in zip(baseline.trajectory, other.trajectory):
                assert a.tobytes() == b.tobytes()

    def test_momentum_matches_reference(self):
        for mode in ("collective", "reducer"):
            result = run_sgd(mode=mode, momentum=0.9, **SMALL)
            assert result.validated, mode

    def test_momentum_with_blocks_and_fusion(self):
        fused = run_sgd(momentum=0.9, fusion=True, **MULTI)
        plain = run_sgd(momentum=0.9, fusion=False, **MULTI)
        assert fused.validated and plain.validated
        for a, b in zip(fused.trajectory, plain.trajectory):
            assert a.tobytes() == b.tobytes()

    def test_momentum_actually_changes_the_update(self):
        plain = run_sgd(mode="collective", **SMALL)
        momentum = run_sgd(mode="collective", momentum=0.9, **SMALL)
        assert momentum.validated  # i.e. it matches the momentum reference
        # ...while genuinely applying a different (velocity) update.
        assert momentum.weights.tobytes() != plain.weights.tobytes()

    def test_indivisible_blocks_rejected(self):
        with pytest.raises(InvalidArgumentError):
            run_sgd(d=16, blocks=3)


class TestValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(InvalidArgumentError):
            run_sgd(mode="gossip")

    def test_unknown_frontend_rejected(self):
        with pytest.raises(InvalidArgumentError):
            run_sgd(frontend="graph_mode")

    def test_zero_steps_rejected(self):
        with pytest.raises(InvalidArgumentError):
            run_sgd(steps=0)

    def test_reference_solves_the_problem(self):
        x_shards, y_shards, w_true = make_regression_problem(
            8, 64, 2, noise=0.0)
        w, losses, _ = sgd_reference(x_shards, y_shards, 200, 0.002)
        assert losses[-1] < 1e-3 * losses[0]
        np.testing.assert_allclose(w, w_true, atol=1e-2)
