"""Checkpoint-restart under fault injection: SGD and CG end to end.

The PR's acceptance bar: a worker crash mid-training recovers through
``Saver`` snapshots and the recovered trajectory is byte-identical to a
fault-free run of the same configuration.
"""

import numpy as np
import pytest

import repro as tf
from repro.apps.cg import (
    _common_checkpoint_step,
    make_spd_problem,
    run_cg,
    run_cg_with_recovery,
)
from repro.apps.sgd import run_sgd, run_sgd_restartable
from repro.errors import InvalidArgumentError, UnavailableError
from repro.simnet.faults import FaultPlan, MessageDrop


class TestSGDRestart:
    def test_fault_free_run_matches_reference(self, tmp_path):
        res = run_sgd_restartable(num_workers=2, steps=6,
                                  checkpoint_dir=str(tmp_path),
                                  checkpoint_every=2)
        assert res.validated
        assert res.recoveries == 0
        assert res.checkpoints_written == 4  # step 0 + steps 2, 4, 6

    def test_crash_recovers_byte_identical(self, tmp_path):
        """Kill worker 1 mid-run; the driver restores from the latest
        snapshot, replays, and the full trajectory (losses AND weights)
        matches the fault-free NumPy reference byte for byte."""
        plan = FaultPlan.single_crash("worker", 1, at=0.003,
                                     restart_after=0.1)
        res = run_sgd_restartable(num_workers=2, steps=8,
                                  checkpoint_dir=str(tmp_path),
                                  checkpoint_every=3, fault_plan=plan,
                                  operation_timeout_ms=50.0)
        assert res.injector_stats["crashes"] == 1
        assert res.recoveries >= 1
        assert res.steps_replayed >= 1
        assert res.validated  # byte-identical trajectory + loss history
        assert res.fault_log and res.fault_log[0][1] == "DeadlineExceededError"
        assert res.metadata_deadlines >= 1

    def test_crash_recovery_matches_fault_free_driver(self, tmp_path):
        """Same trajectory object-for-object as the plain run_sgd path."""
        clean = run_sgd(num_workers=2, steps=8, mode="collective")
        plan = FaultPlan.single_crash("worker", 0, at=0.004,
                                     restart_after=0.1)
        res = run_sgd_restartable(num_workers=2, steps=8,
                                  checkpoint_dir=str(tmp_path),
                                  checkpoint_every=2, fault_plan=plan,
                                  operation_timeout_ms=50.0)
        assert res.recoveries >= 1
        assert res.validated
        assert len(res.trajectory) == len(clean.trajectory)
        for mine, theirs in zip(res.trajectory, clean.trajectory):
            assert np.asarray(mine).tobytes() == np.asarray(theirs).tobytes()

    def test_transient_drops_absorbed_without_restore(self, tmp_path):
        plan = FaultPlan(faults=(MessageDrop(count=3),), seed=2)
        res = run_sgd_restartable(num_workers=2, steps=5,
                                  checkpoint_dir=str(tmp_path),
                                  checkpoint_every=2, fault_plan=plan)
        assert res.validated
        assert res.recoveries == 0  # retries, not restarts
        assert res.injector_stats["drops"] == 3

    def test_momentum_state_survives_recovery(self, tmp_path):
        """Momentum slots are variables too: a restore must bring the
        velocity back or the replayed steps diverge."""
        plan = FaultPlan.single_crash("worker", 1, at=0.004,
                                     restart_after=0.1)
        res = run_sgd_restartable(num_workers=2, steps=8, momentum=0.9,
                                  checkpoint_dir=str(tmp_path),
                                  checkpoint_every=3, fault_plan=plan,
                                  operation_timeout_ms=50.0)
        assert res.recoveries >= 1
        assert res.validated

    def test_unrecoverable_without_restart_raises(self, tmp_path):
        """Worker never comes back: recovery attempts exhaust and the
        last detection error surfaces to the caller."""
        plan = FaultPlan.single_crash("worker", 1, at=0.003)  # no restart
        with pytest.raises(tf.errors.ReproError):
            run_sgd_restartable(num_workers=2, steps=8,
                                checkpoint_dir=str(tmp_path),
                                checkpoint_every=3, fault_plan=plan,
                                operation_timeout_ms=20.0,
                                max_recovery_attempts=2,
                                recovery_backoff=0.01)

    def test_checkpoint_dir_required(self):
        with pytest.raises(InvalidArgumentError, match="checkpoint_dir"):
            run_sgd_restartable(steps=2)


class TestCGRecovery:
    def test_crash_recovery_byte_identical_solution(self, tmp_path):
        prob = make_spd_problem(64, 0)
        ref = run_cg(system="kebnekaise-v100", n=64, num_gpus=2,
                     iterations=16, shape_only=False, problem=prob)
        plan = FaultPlan.single_crash("worker", 1, at=ref.elapsed * 0.6)
        res = run_cg_with_recovery(n=64, num_gpus=2, iterations=16,
                                   checkpoint_dir=str(tmp_path),
                                   checkpoint_every=4, fault_plan=plan,
                                   problem=prob)
        assert res.recoveries == 1
        assert res.attempts[0].crashed
        assert not res.attempts[1].crashed
        assert res.solution.tobytes() == ref.solution.tobytes()
        assert res.total_elapsed > ref.elapsed  # recovery is not free
        assert res.recovery_overhead > 0

    def test_crashed_run_reports_instead_of_hanging(self, tmp_path):
        prob = make_spd_problem(64, 0)
        plan = FaultPlan.single_crash("worker", 0, at=0.005)
        res = run_cg(n=64, num_gpus=2, iterations=16, shape_only=False,
                     checkpoint_dir=str(tmp_path), checkpoint_every=4,
                     fault_plan=plan, problem=prob)
        assert res.crashed
        assert res.fault_detail is not None
        assert not res.validated

    def test_crash_before_any_checkpoint_restarts_from_scratch(
            self, tmp_path):
        prob = make_spd_problem(64, 0)
        ref = run_cg(system="kebnekaise-v100", n=64, num_gpus=2,
                     iterations=12, shape_only=False, problem=prob)
        # Die before iteration checkpoint_every=8 completes anywhere.
        plan = FaultPlan.single_crash("worker", 1, at=ref.elapsed * 0.3)
        res = run_cg_with_recovery(n=64, num_gpus=2, iterations=12,
                                   checkpoint_dir=str(tmp_path),
                                   checkpoint_every=8, fault_plan=plan,
                                   problem=prob)
        assert res.recoveries == 1
        assert res.solution.tobytes() == ref.solution.tobytes()

    def test_common_checkpoint_step_requires_all_workers(self, tmp_path):
        assert _common_checkpoint_step(str(tmp_path), 2) is None
        (tmp_path / "cg_w0-4").write_bytes(b"RPCK garbage")  # torn file
        assert _common_checkpoint_step(str(tmp_path), 2) is None

    def test_recovery_requires_checkpoint_dir(self):
        with pytest.raises(InvalidArgumentError, match="checkpoint_dir"):
            run_cg_with_recovery(n=64, iterations=4)

    def test_exhausted_restarts_raise(self, tmp_path):
        """Every attempt crashes (fresh plan each time via monkeypatched
        driver would be intrusive; instead: crash at t=0 with no
        checkpoints possible and max_restarts=0)."""
        prob = make_spd_problem(64, 0)
        plan = FaultPlan.single_crash("worker", 0, at=0.0)
        with pytest.raises(UnavailableError, match="restarts"):
            run_cg_with_recovery(n=64, num_gpus=2, iterations=8,
                                 checkpoint_dir=str(tmp_path),
                                 checkpoint_every=4, fault_plan=plan,
                                 max_restarts=0, problem=prob)
