"""The CG app through the ``@repro.function`` frontend (PR-2 scenario).

Acceptance: a traced CG step re-invoked with same-shape inputs hits the
ConcreteFunction cache (trace count stays 1), re-traces on a new shape,
and produces values byte-identical to the hand-built graph-mode driver
with identical simulated time.
"""

import numpy as np

import repro as tf
from repro.apps.cg import cg_step, make_spd_problem, run_cg_single


class TestTracedCG:
    def test_frontends_byte_identical_and_time_identical(self):
        fn = run_cg_single(n=32, iterations=12, frontend="function", seed=3)
        gr = run_cg_single(n=32, iterations=12, frontend="graph", seed=3)
        np.testing.assert_array_equal(fn.solution, gr.solution)
        assert fn.elapsed == gr.elapsed
        assert fn.residual == gr.residual
        # One trace serves the whole iteration loop; below it, the plan
        # cache serves every run after the first.
        assert fn.trace_count == 1
        assert fn.plan_cache["hits"] == 11
        assert fn.plan_cache["misses"] == 1

    def test_traced_step_caches_and_retraces(self):
        step = tf.function(cg_step, name="cg_step")
        for n in (16, 24):
            a, b = make_spd_problem(n, seed=1)
            x = np.zeros(n)
            r = b.copy()
            p = b.copy()
            rs = np.float64(r @ r)
            for _ in range(4):
                x, r, p, rs = step(a, x, r, p, rs)
        # One trace per shape, not per call.
        assert step.trace_count == 2
        assert step.cache_info()["hits"] == 6

    def test_traced_solver_converges(self):
        res = run_cg_single(n=48, iterations=48, frontend="function", seed=5)
        assert res.residual < 1e-10
        assert res.elapsed > 0
        assert res.seconds_per_iteration > 0

    def test_explicit_problem_accepted(self):
        a, b = make_spd_problem(24, seed=9)
        res = run_cg_single(n=24, iterations=24, frontend="function",
                            problem=(a, b))
        np.testing.assert_allclose(a @ res.solution, b, atol=1e-8)
