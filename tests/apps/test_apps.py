"""Application tests: numerics in concrete mode, shapes in shape-only mode."""


import numpy as np
import pytest
from scipy.sparse.linalg import cg as scipy_cg

from repro.apps.cg import make_spd_problem, run_cg
from repro.apps.common import build_cluster
from repro.apps.fft import merge_subtransforms, run_fft
from repro.apps.matmul import run_matmul
from repro.apps.stream import run_stream
from repro.errors import InvalidArgumentError

MB = 1024 * 1024


class TestStream:
    def test_concrete_run_validates(self):
        result = run_stream(system="tegner-k420", device="cpu", size_mb=0.25,
                            iterations=5, shape_only=False)
        assert result.validated
        assert result.bandwidth > 0

    def test_gpu_slower_than_cpu_on_tegner(self):
        cpu = run_stream("tegner-k420", device="cpu", size_mb=16, iterations=10)
        gpu = run_stream("tegner-k420", device="gpu", size_mb=16, iterations=10)
        # K420 PCIe staging caps the GPU path (paper: 1.3 vs >6 GB/s).
        assert gpu.bandwidth < cpu.bandwidth

    def test_protocol_ordering_matches_fig7(self):
        bw = {}
        for protocol in ("grpc", "grpc+mpi", "grpc+verbs"):
            bw[protocol] = run_stream(
                "tegner-k420", device="gpu", size_mb=128,
                protocol=protocol, iterations=10,
            ).bandwidth_mbs
        assert bw["grpc+verbs"] > bw["grpc+mpi"] > bw["grpc"]

    def test_bad_device_rejected(self):
        with pytest.raises(InvalidArgumentError):
            run_stream(device="tpu")

    def test_result_units(self):
        result = run_stream("tegner-k420", device="cpu", size_mb=2, iterations=5)
        assert result.size_bytes == 2 * MB
        assert result.bandwidth_mbs == pytest.approx(
            result.bandwidth / MB
        )


class TestMatmul:
    def test_concrete_matches_numpy(self):
        result = run_matmul(system="tegner-k420", n=128, tile=32, num_gpus=2,
                            num_reducers=2, shape_only=False, seed=3)
        assert result.validated, f"max error {result.max_error}"
        assert result.products == (128 // 32) ** 3

    def test_single_worker_single_reducer(self):
        result = run_matmul(system="tegner-k420", n=64, tile=32, num_gpus=1,
                            num_reducers=1, shape_only=False)
        assert result.validated

    def test_uneven_worker_tile_counts(self):
        # 3 workers, 2x2x2=8 products: shards are uneven.
        result = run_matmul(system="tegner-k420", n=64, tile=32, num_gpus=3,
                            num_reducers=2, shape_only=False)
        assert result.validated

    def test_shape_only_runs_paper_scale_tiles(self):
        result = run_matmul(system="tegner-k80", n=4096, tile=1024,
                            num_gpus=2, shape_only=True)
        assert result.elapsed > 0
        assert result.gflops > 0
        assert not result.validated  # no numerics in shape-only mode

    def test_more_gpus_scale_on_tegner(self):
        # Paper configuration: K420, tile 4096^2 (shape-only keeps it fast).
        slow = run_matmul(system="tegner-k420", n=16384, tile=4096, num_gpus=2)
        fast = run_matmul(system="tegner-k420", n=16384, tile=4096, num_gpus=4)
        speedup = fast.gflops / slow.gflops
        assert 1.5 < speedup < 2.3  # paper: ~2x from 2 to 4 K420s

    def test_tile_must_divide_n(self):
        with pytest.raises(InvalidArgumentError):
            run_matmul(n=100, tile=33)

    def test_flop_convention(self):
        result = run_matmul(system="tegner-k420", n=64, tile=32, num_gpus=1,
                            num_reducers=1, shape_only=True)
        assert result.flops == 2 * 64**3 - 64**2


class TestCG:
    def test_concrete_converges_and_matches_scipy(self):
        n, workers, iters = 96, 2, 80
        result = run_cg(system="tegner-k80", n=n, num_gpus=workers,
                        iterations=iters, shape_only=False, seed=1)
        assert result.residual < 1e-6, f"residual {result.residual}"
        assert result.validated
        # Cross-check the problem is genuinely solvable by scipy's CG.
        a, b = make_spd_problem(n, seed=1)
        x_ref, info = scipy_cg(a, b, rtol=1e-10, maxiter=10 * n)
        assert info == 0
        assert np.linalg.norm(a @ x_ref - b) / np.linalg.norm(b) < 1e-6

    def test_four_workers_same_answer(self):
        result = run_cg(system="kebnekaise-v100", n=64, num_gpus=4,
                        iterations=60, shape_only=False, seed=2)
        assert result.residual < 1e-6

    def test_shape_only_paper_scale_slice(self):
        result = run_cg(system="kebnekaise-v100", n=4096, num_gpus=2,
                        iterations=20, shape_only=True)
        assert result.elapsed > 0
        assert result.gflops > 0
        assert result.seconds_per_iteration < 1.0

    def test_flop_convention(self):
        result = run_cg(system="tegner-k80", n=256, num_gpus=2, iterations=10,
                        shape_only=True)
        assert result.flops == 10 * 2 * 256**2

    def test_workers_must_divide_n(self):
        with pytest.raises(InvalidArgumentError):
            run_cg(n=100, num_gpus=3)

    def test_checkpoint_restart_reproduces_uninterrupted_run(self, tmp_path):
        """Paper: 'distributed CG solver with checkpoint-restart capability'."""
        n, workers = 64, 2
        ckpt = str(tmp_path)
        full = run_cg(system="tegner-k80", n=n, num_gpus=workers,
                      iterations=8, shape_only=False, seed=5)
        run_cg(system="tegner-k80", n=n, num_gpus=workers,
               iterations=4, shape_only=False, seed=5,
               checkpoint_dir=ckpt, checkpoint_every=4)
        resumed = run_cg(system="tegner-k80", n=n, num_gpus=workers,
                         iterations=4, shape_only=False, seed=5,
                         resume_dir=ckpt)
        assert resumed.residual == pytest.approx(full.residual, rel=1e-8)


class TestFFTMerge:
    @pytest.mark.parametrize("n,tiles", [(64, 2), (256, 4), (1024, 8)])
    def test_merge_matches_numpy_fft(self, n, tiles):
        rng = np.random.default_rng(n)
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        sub = [np.fft.fft(x[t::tiles]) for t in range(tiles)]
        np.testing.assert_allclose(
            merge_subtransforms(sub), np.fft.fft(x), atol=1e-9
        )

    def test_non_power_of_two_rejected(self):
        with pytest.raises(InvalidArgumentError):
            merge_subtransforms([np.zeros(4, complex)] * 3)


class TestFFTApp:
    def test_concrete_matches_numpy(self):
        result = run_fft(system="tegner-k420", n=1 << 10, num_tiles=4,
                         num_gpus=2, shape_only=False, seed=4)
        assert result.validated, f"max error {result.max_error}"
        assert result.collect_seconds > 0

    def test_single_gpu(self):
        result = run_fft(system="tegner-k420", n=256, num_tiles=4,
                         num_gpus=1, shape_only=False)
        assert result.validated

    def test_shape_only_scaling_2_to_4(self):
        slow = run_fft(system="tegner-k80", n=1 << 22, num_tiles=16, num_gpus=2)
        fast = run_fft(system="tegner-k80", n=1 << 22, num_tiles=16, num_gpus=4)
        speedup = slow.collect_seconds / fast.collect_seconds
        assert 1.3 < speedup < 2.2  # paper: 1.6-1.8x from 2 to 4

    def test_merge_time_dominates_at_scale(self):
        # The paper's observation: Python merging outweighs the computation.
        result = run_fft(system="tegner-k80", n=1 << 22, num_tiles=16,
                         num_gpus=4, shape_only=True)
        assert result.merge_seconds > result.collect_seconds

    def test_flop_convention(self):
        result = run_fft(system="tegner-k420", n=1 << 10, num_tiles=4,
                         num_gpus=2, shape_only=True)
        assert result.flops == pytest.approx(5 * (1 << 10) * 10)

    def test_bad_tile_counts_rejected(self):
        with pytest.raises(InvalidArgumentError):
            run_fft(n=100, num_tiles=3)
        with pytest.raises(InvalidArgumentError):
            run_fft(n=96, num_tiles=6)


class TestBuildCluster:
    def test_unknown_system(self):
        with pytest.raises(InvalidArgumentError):
            build_cluster("cray-xc40", {"worker": 1})

    def test_node_count_follows_table1(self):
        # 4 tasks on kebnekaise-k80 (4 instances/node) => 1 node.
        handle = build_cluster("kebnekaise-k80", {"worker": 4})
        assert len(handle.machine.nodes) == 1
        # 4 tasks on tegner-k420 (1 instance/node) => 4 nodes.
        handle = build_cluster("tegner-k420", {"worker": 4})
        assert len(handle.machine.nodes) == 4

    def test_jobs_placed_in_order(self):
        handle = build_cluster("tegner-k420", {"ps": 1, "worker": 2})
        spec = handle.cluster_spec
        assert spec.task_address("ps", 0).startswith("t01n01")
        assert spec.task_address("worker", 0).startswith("t01n02")
