"""Additional application behaviours: protocols, custom problems, limits."""

import numpy as np
import pytest

from repro.apps.cg import run_cg
from repro.apps.fft import run_fft
from repro.apps.matmul import run_matmul
from repro.apps.stream import run_stream
from repro.errors import InvalidArgumentError, NotFoundError


class TestStreamExtra:
    def test_bandwidth_monotone_in_size(self):
        sizes = [2, 16, 128]
        bws = [run_stream("tegner-k420", device="cpu", size_mb=s,
                          iterations=10).bandwidth for s in sizes]
        assert bws[0] < bws[1] < bws[2]

    def test_kebnekaise_protocols_differ_between_nodes(self):
        """With one task per node the protocol choice matters (fixing the
        co-location pitfall of Table I density)."""
        rdma = run_stream("kebnekaise-k80", device="gpu", size_mb=64,
                          protocol="grpc+verbs", iterations=8)
        mpi = run_stream("kebnekaise-k80", device="gpu", size_mb=64,
                         protocol="grpc+mpi", iterations=8)
        assert rdma.bandwidth > 1.5 * mpi.bandwidth


class TestMatmulExtra:
    def test_store_results_can_be_disabled(self):
        result = run_matmul(system="tegner-k420", n=64, tile=32, num_gpus=1,
                            num_reducers=1, shape_only=True,
                            store_results=False)
        assert result.elapsed > 0

    def test_results_written_to_filesystem(self):
        from repro.apps.common import build_cluster

        cluster = build_cluster("tegner-k420", {"worker": 1, "reducer": 1})
        run_matmul(system="tegner-k420", n=64, tile=32, num_gpus=1,
                   num_reducers=1, shape_only=False, cluster=cluster)
        files = cluster.filesystem.listdir("C_")
        assert files == ["C_0_0.npy", "C_0_1.npy", "C_1_0.npy", "C_1_1.npy"]

    def test_mpi_transport_slower_than_rdma(self):
        rdma = run_matmul(system="tegner-k80", n=8192, tile=2048, num_gpus=2,
                          protocol="grpc+verbs", shape_only=True)
        mpi = run_matmul(system="tegner-k80", n=8192, tile=2048, num_gpus=2,
                         protocol="grpc+mpi", shape_only=True)
        assert mpi.elapsed > rdma.elapsed

    def test_single_tile_problem(self):
        result = run_matmul(system="tegner-k420", n=32, tile=32, num_gpus=1,
                            num_reducers=1, shape_only=False)
        assert result.validated
        assert result.products == 1


class TestCGExtra:
    def test_custom_problem_poisson_like(self):
        n = 64
        # Tridiagonal SPD system (1-D Laplacian + shift).
        a = np.diag(np.full(n, 4.0)) + np.diag(np.full(n - 1, -1.0), 1) \
            + np.diag(np.full(n - 1, -1.0), -1)
        b = np.ones(n)
        result = run_cg(system="tegner-k80", n=n, num_gpus=2, iterations=60,
                        shape_only=False, problem=(a, b))
        assert result.residual < 1e-8
        np.testing.assert_allclose(a @ result.solution, b, atol=1e-7)

    def test_custom_problem_shape_mismatch(self):
        with pytest.raises(InvalidArgumentError):
            run_cg(system="tegner-k80", n=64, num_gpus=2, iterations=5,
                   shape_only=False, problem=(np.eye(32), np.ones(32)))

    def test_resume_from_missing_checkpoint(self, tmp_path):
        with pytest.raises(NotFoundError):
            run_cg(system="tegner-k80", n=64, num_gpus=2, iterations=5,
                   shape_only=False, resume_dir=str(tmp_path))

    def test_solution_exposed_only_in_concrete_mode(self):
        concrete = run_cg(system="tegner-k80", n=64, num_gpus=2,
                          iterations=30, shape_only=False)
        symbolic = run_cg(system="tegner-k80", n=64, num_gpus=2,
                          iterations=5, shape_only=True)
        assert concrete.solution is not None
        assert symbolic.solution is None

    def test_oom_on_oversized_block(self):
        from repro.errors import ResourceExhaustedError

        # 65536 rows x 65536 cols / 2 workers = 16 GB/block > 12 GB K80.
        with pytest.raises(ResourceExhaustedError):
            run_cg(system="tegner-k80", n=65536, num_gpus=2, iterations=2,
                   shape_only=True)


class TestFFTExtra:
    def test_custom_signal(self):
        n = 512
        t = np.arange(n)
        signal = np.exp(2j * np.pi * 5 * t / n)
        result = run_fft(system="tegner-k420", n=n, num_tiles=4, num_gpus=2,
                         shape_only=False, signal=signal)
        assert result.validated
        peak_bin = int(np.argmax(np.abs(result.spectrum)))
        assert peak_bin == 5

    def test_custom_signal_shape_mismatch(self):
        with pytest.raises(InvalidArgumentError):
            run_fft(system="tegner-k420", n=256, num_tiles=4, num_gpus=1,
                    shape_only=False, signal=np.zeros(128, complex))

    def test_small_queue_capacity_backpressure(self):
        """A capacity-1 queue still completes (producers block politely)."""
        result = run_fft(system="tegner-k420", n=1 << 10, num_tiles=8,
                         num_gpus=4, shape_only=False, queue_capacity=1)
        assert result.validated

    def test_more_tiles_than_needed_gpus(self):
        result = run_fft(system="tegner-k420", n=1 << 10, num_tiles=16,
                         num_gpus=3, shape_only=False)
        assert result.validated
