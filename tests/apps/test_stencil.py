"""Halo-exchange stencil: numerics, mode equivalence, ring advantage."""

import numpy as np
import pytest

from repro.apps.stencil import jacobi_reference, run_stencil
from repro.errors import InvalidArgumentError


class TestNumerics:
    def test_concrete_matches_reference(self):
        result = run_stencil(n=24, num_workers=2, iterations=20,
                             check_every=5, mode="collective")
        assert result.validated
        reference, residuals = jacobi_reference(24, 20)
        np.testing.assert_allclose(result.solution, reference, atol=1e-12)
        assert result.residual_history[-1] == pytest.approx(residuals[-1])

    def test_modes_are_byte_identical(self):
        """The acceptance bar: central-reducer and ring-collective runs
        converge identically — same residual history, same field bytes."""
        ring = run_stencil(n=24, num_workers=3, iterations=15,
                           check_every=3, mode="collective")
        central = run_stencil(n=24, num_workers=3, iterations=15,
                              check_every=3, mode="reducer")
        assert ring.validated and central.validated
        assert ring.residual_history == central.residual_history
        assert ring.solution.tobytes() == central.solution.tobytes()

    def test_tolerance_early_exit(self):
        result = run_stencil(n=16, num_workers=2, iterations=500,
                             check_every=10, mode="collective", tol=1e-6)
        assert result.converged
        assert result.iterations < 500
        assert result.residual_history[-1] < 1e-6

    def test_residual_decreases(self):
        result = run_stencil(n=24, num_workers=2, iterations=40,
                             check_every=10, mode="reducer")
        history = result.residual_history
        assert all(b < a for a, b in zip(history, history[1:]))


class TestPerformance:
    def test_ring_wins_at_four_workers(self):
        """Communication topology dominates: the ring sync beats the
        central reducer once four workers contend for the chief's NIC."""
        common = dict(n=512, num_workers=4, iterations=10, check_every=1,
                      shape_only=True)
        ring = run_stencil(mode="collective", **common)
        central = run_stencil(mode="reducer", **common)
        assert ring.elapsed < central.elapsed
        assert ring.check_elapsed < central.check_elapsed

    def test_ring_advantage_grows_with_workers(self):
        def speedup(workers):
            common = dict(n=512, num_workers=workers, iterations=6,
                          check_every=1, shape_only=True)
            ring = run_stencil(mode="collective", **common)
            central = run_stencil(mode="reducer", **common)
            return central.check_elapsed / ring.check_elapsed

        assert speedup(8) > speedup(4)

    def test_optimizer_lane_is_sim_time_identical(self):
        common = dict(n=64, num_workers=2, iterations=5, check_every=5,
                      mode="collective", shape_only=True)
        on = run_stencil(optimize=True, **common)
        off = run_stencil(optimize=False, **common)
        assert on.elapsed == pytest.approx(off.elapsed, rel=1e-9)
        assert on.plan_items <= off.plan_items


class TestValidation:
    def test_workers_must_divide_grid(self):
        with pytest.raises(InvalidArgumentError):
            run_stencil(n=10, num_workers=3)

    def test_blocks_need_two_rows(self):
        with pytest.raises(InvalidArgumentError):
            run_stencil(n=8, num_workers=8)

    def test_unknown_mode_rejected(self):
        with pytest.raises(InvalidArgumentError):
            run_stencil(mode="gossip")
