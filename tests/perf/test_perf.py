"""Metrics conventions, calibration registry, and report formatting."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidArgumentError, NotFoundError
from repro.perf.calibration import PAPER_TARGETS, paper_target
from repro.perf.metrics import (
    bandwidth_mbs,
    cg_flops,
    fft_flops,
    gflops,
    matmul_flops,
    scaling_factor,
)
from repro.perf.reporting import comparison_row, format_table, ratio_to_paper


class TestFlopConventions:
    def test_matmul_formula(self):
        # Paper VI-B: "We estimate the flop count as 2N^3 - N^2".
        assert matmul_flops(1024) == 2 * 1024**3 - 1024**2

    def test_cg_formula(self):
        # Paper VI-C: 500 * 2 * N^2.
        assert cg_flops(16384, iterations=500) == 500 * 2 * 16384**2

    def test_fft_formula(self):
        # Paper VI-D: 5 N log2 N.
        n = 1 << 20
        assert fft_flops(n) == 5 * n * 20

    @pytest.mark.parametrize("fn,bad", [
        (matmul_flops, 0),
        (fft_flops, 1),
        (lambda n: cg_flops(n, 0), 128),
    ])
    def test_invalid_inputs(self, fn, bad):
        with pytest.raises(InvalidArgumentError):
            fn(bad)

    def test_gflops_and_bandwidth(self):
        assert gflops(2e9, 2.0) == pytest.approx(1.0)
        assert bandwidth_mbs(1024 * 1024, 1.0) == pytest.approx(1.0)
        with pytest.raises(InvalidArgumentError):
            gflops(1.0, 0.0)
        with pytest.raises(InvalidArgumentError):
            bandwidth_mbs(1.0, -1.0)

    def test_scaling_factor(self):
        assert scaling_factor(100.0, 180.0) == pytest.approx(1.8)
        with pytest.raises(InvalidArgumentError):
            scaling_factor(0.0, 1.0)

    @given(st.integers(min_value=2, max_value=1 << 24))
    @settings(max_examples=40, deadline=None)
    def test_property_fft_flops_monotone(self, n):
        assert fft_flops(n + 1) > fft_flops(n)


class TestCalibrationRegistry:
    def test_all_targets_have_provenance(self):
        for key, target in PAPER_TARGETS.items():
            assert target.key == key
            assert target.value > 0
            assert target.unit
            assert len(target.source) > 10, f"{key} lacks a citation"

    def test_key_paper_numbers_present(self):
        assert paper_target("stream/tegner-cpu/rdma/128MB").value == 6000
        assert paper_target("matmul/kebnekaise-k80/32768/peak-16gpu").value == 2478
        assert paper_target("cg/tegner-k80/32768/scaling-2to4").value == 1.74
        assert paper_target("cg/kebnekaise-v100/8gpu-gflops").value == 300

    def test_unknown_key(self):
        with pytest.raises(NotFoundError):
            paper_target("nonexistent/metric")

    def test_figure_read_targets_marked_approx(self):
        assert paper_target("stream/tegner-gpu/grpc/128MB").approx
        assert not paper_target("stream/tegner-gpu/mpi/128MB").approx


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"],
                            [["a", 1.0], ["long-name", 1234.5]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1, "all rows must be equally wide"

    def test_number_formatting(self):
        text = format_table(["x"], [[2478.0], [1.74], [0.5], [12.3]])
        assert "2,478" in text
        assert "1.74" in text
        assert "12.3" in text

    def test_ratio_to_paper(self):
        assert ratio_to_paper("cg/kebnekaise-v100/8gpu-gflops", 600) == \
            pytest.approx(2.0)

    def test_comparison_row(self):
        row = comparison_row("matmul/kebnekaise-k80/32768/peak-16gpu", 2478.0)
        assert row[0].startswith("matmul/")
        assert "2478" in row[1].replace(",", "")
        assert row[3] == "1.00x"

    def test_comparison_row_marks_approx(self):
        row = comparison_row("stream/tegner-gpu/grpc/128MB", 110.0)
        assert row[1].startswith("~")
