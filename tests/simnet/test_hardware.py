"""Hardware models: GPUs, CPUs, memory pools, nodes, machines, filesystem."""

import numpy as np
import pytest

from repro.core.kernels.registry import Cost
from repro.core.tensor import SymbolicValue
from repro.errors import InternalError, NotFoundError, ResourceExhaustedError
from repro.simnet.cpu import GENERIC_CPU
from repro.simnet.events import Environment
from repro.simnet.gpu import K80_GK210, K420, V100
from repro.simnet.machines import (
    NODE_TYPES,
    instances_per_node,
    kebnekaise,
    localhost,
    tegner,
)
from repro.simnet.memory import MemoryPool


class TestGPUModels:
    def test_vendor_peaks_ordered(self):
        assert K420.peak_sp_flops < K80_GK210.peak_sp_flops < V100.peak_sp_flops
        assert V100.peak_dp_flops / V100.peak_sp_flops == pytest.approx(0.5)

    def test_matmul_time_scales_with_flops(self):
        env = Environment()
        machine = tegner(env, k420_nodes=1)
        gpu = machine.node("t01n01").gpus[0]
        small = Cost(flops=1e9)
        large = Cost(flops=4e9)
        t_small = gpu.time_for_cost(small, "MatMul", double_precision=False)
        t_large = gpu.time_for_cost(large, "MatMul", double_precision=False)
        assert t_large > t_small
        # Launch overhead excluded, times are proportional to flops.
        overhead = gpu.model.launch_overhead
        assert (t_large - overhead) == pytest.approx(4 * (t_small - overhead))

    def test_double_precision_slower(self):
        env = Environment()
        machine = kebnekaise(env, v100_nodes=1)
        gpu = machine.node("b-cn0001").gpus[0]
        cost = Cost(flops=1e10)
        sp = gpu.time_for_cost(cost, "MatMul", double_precision=False)
        dp = gpu.time_for_cost(cost, "MatMul", double_precision=True)
        assert dp == pytest.approx(2 * sp, rel=0.05)

    def test_memory_bound_op_uses_bandwidth(self):
        env = Environment()
        machine = tegner(env, k80_nodes=1)
        gpu = machine.node("t01n01").gpus[0]
        cost = Cost(flops=1e3, mem_bytes=1e9)  # trivially compute-light
        t = gpu.time_for_cost(cost, "Add", double_precision=False)
        expected = 1e9 / gpu.model.sustained_bandwidth() + gpu.model.launch_overhead
        assert t == pytest.approx(expected)

    def test_fft_efficiency_lower_than_matmul(self):
        assert K80_GK210.sustained_flops("FFT", False) < \
            K80_GK210.sustained_flops("MatMul", False)


class TestMemoryPool:
    def test_allocate_free_cycle(self):
        pool = MemoryPool(1000)
        pool.allocate(600)
        assert pool.available == 400
        pool.free(600)
        assert pool.in_use == 0
        assert pool.peak == 600

    def test_oom(self):
        pool = MemoryPool(100)
        pool.allocate(80)
        with pytest.raises(ResourceExhaustedError):
            pool.allocate(30)

    def test_over_free_is_internal_error(self):
        pool = MemoryPool(100)
        pool.allocate(10)
        with pytest.raises(InternalError):
            pool.free(20)

    def test_utilisation(self):
        pool = MemoryPool(200)
        pool.allocate(50)
        assert pool.utilisation() == pytest.approx(0.25)

    def test_negative_amounts_rejected(self):
        pool = MemoryPool(10)
        with pytest.raises(ValueError):
            pool.allocate(-1)
        with pytest.raises(ValueError):
            pool.free(-1)


class TestMachineCatalogs:
    def test_table1_instances_per_node(self):
        # Table I of the paper.
        assert instances_per_node("tegner-k420") == 1
        assert instances_per_node("tegner-k80") == 2
        assert instances_per_node("kebnekaise-k80") == 4
        assert instances_per_node("kebnekaise-v100") == 2

    def test_table1_gpu_memory(self):
        assert NODE_TYPES["tegner-k420"]["gpu_model"].mem_capacity == 1 * 1024**3
        assert NODE_TYPES["tegner-k80"]["gpu_model"].mem_capacity == 12 * 1024**3
        assert NODE_TYPES["kebnekaise-v100"]["gpu_model"].mem_capacity == 16 * 1024**3

    def test_tegner_layout(self):
        env = Environment()
        machine = tegner(env, k420_nodes=2, k80_nodes=1)
        assert machine.node("t01n01").num_gpus == 1
        assert machine.node("t01n03").num_gpus == 2  # one K80 = 2 GK210s
        assert machine.grpc_over_ethernet  # paper: Tegner gRPC on Ethernet
        assert machine.fabric.name == "EDR InfiniBand"

    def test_kebnekaise_numa_layout(self):
        env = Environment()
        machine = kebnekaise(env, k80_nodes=1)
        node = machine.node("b-cn0001")
        assert node.num_gpus == 4
        # Fig. 9: two boards on two islands, NIC on island 0.
        assert [g.numa_island for g in node.gpus] == [0, 0, 1, 1]
        assert node.nic_numa == 0
        assert node.crosses_socket(node.gpus[3])
        assert not node.crosses_socket(node.gpus[0])
        assert not machine.grpc_over_ethernet  # IPoIB => gRPC ~ MPI

    def test_duplicate_node_rejected(self):
        env = Environment()
        machine = localhost(env)
        with pytest.raises(Exception):
            machine.add_node("localhost", cpu_model=GENERIC_CPU)

    def test_device_lookup_bounds(self):
        env = Environment()
        machine = tegner(env, k420_nodes=1)
        node = machine.node("t01n01")
        assert node.device("gpu", 0) is node.gpus[0]
        with pytest.raises(ValueError):
            node.device("gpu", 1)
        with pytest.raises(ValueError):
            node.device("tpu", 0)

    def test_unknown_node(self):
        env = Environment()
        machine = tegner(env, k420_nodes=1)
        with pytest.raises(NotFoundError):
            machine.node("t99n99")


class TestSimFileSystem:
    def test_store_and_stat(self):
        env = Environment()
        machine = localhost(env)
        fs = machine.filesystem
        fs.store_array("a.npy", np.ones((4, 4), dtype=np.float32))
        spec = fs.stat("a.npy")
        assert spec.shape == (4, 4)
        assert spec.nbytes == 64

    def test_declared_file_is_metadata_only(self):
        env = Environment()
        machine = localhost(env)
        fs = machine.filesystem
        fs.declare_file("big.npy", (1 << 16, 1 << 16), "float32")
        assert fs.stat("big.npy").nbytes == 4 << 32
        with pytest.raises(NotFoundError):
            fs.get_array("big.npy")

    def test_read_takes_simulated_time(self):
        env = Environment()
        machine = localhost(env)
        fs = machine.filesystem
        node = machine.node("localhost")
        data = np.ones(1024 * 1024, dtype=np.float64)  # 8 MB
        fs.store_array("x.npy", data)
        result = {}

        def reader():
            value = yield from fs.read("x.npy", node)
            result["value"] = value
            result["time"] = env.now

        env.process(reader())
        env.run()
        np.testing.assert_array_equal(result["value"], data)
        assert result["time"] > 0
        assert fs.bytes_read == data.nbytes

    def test_write_then_read_roundtrip(self):
        env = Environment()
        machine = localhost(env)
        fs = machine.filesystem
        node = machine.node("localhost")
        data = np.arange(16, dtype=np.float32)
        done = {}

        def writer():
            yield from fs.write("w.npy", data, node)
            value = yield from fs.read("w.npy", node)
            done["value"] = value

        env.process(writer())
        env.run()
        np.testing.assert_array_equal(done["value"], data)

    def test_symbolic_read_of_concrete_file(self):
        env = Environment()
        machine = localhost(env)
        fs = machine.filesystem
        node = machine.node("localhost")
        fs.store_array("c.npy", np.zeros(8, dtype=np.float64))
        out = {}

        def reader():
            value = yield from fs.read("c.npy", node, symbolic=True)
            out["value"] = value

        env.process(reader())
        env.run()
        assert isinstance(out["value"], SymbolicValue)

    def test_listdir_and_delete(self):
        env = Environment()
        fs = localhost(env).filesystem
        fs.store_array("t/a.npy", np.zeros(1))
        fs.store_array("t/b.npy", np.zeros(1))
        assert fs.listdir("t/") == ["t/a.npy", "t/b.npy"]
        fs.delete("t/a.npy")
        assert fs.listdir("t/") == ["t/b.npy"]
        with pytest.raises(NotFoundError):
            fs.delete("t/a.npy")
