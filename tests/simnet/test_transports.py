"""Transport models: protocol paths, bandwidth ordering, contention."""

import pytest

from repro.errors import InvalidArgumentError
from repro.simnet import transports
from repro.simnet.events import Environment
from repro.simnet.machines import kebnekaise, localhost, tegner

MB = 1024 * 1024


def measure(machine, src_dev, dst_dev, nbytes, protocol, repeats=1):
    """Simulated seconds for `repeats` sequential transfers."""
    env = machine.env
    start = env.now

    def mover():
        for _ in range(repeats):
            yield from transports.transfer(src_dev, dst_dev, nbytes, protocol)

    proc = env.process(mover())
    env.run(until=proc)
    return (env.now - start) / repeats


def bandwidth(machine, src, dst, nbytes, protocol):
    return nbytes / measure(machine, src, dst, nbytes, protocol)


@pytest.fixture()
def tegner_pair():
    env = Environment()
    machine = tegner(env, k420_nodes=2)
    a, b = machine.node("t01n01"), machine.node("t01n02")
    return machine, a, b


@pytest.fixture()
def kebnekaise_pair():
    env = Environment()
    machine = kebnekaise(env, k80_nodes=2)
    a, b = machine.node("b-cn0001"), machine.node("b-cn0002")
    return machine, a, b


class TestProtocolMapping:
    def test_server_protocol_to_data_protocol(self):
        assert transports.data_protocol("grpc") == "grpc"
        assert transports.data_protocol("grpc+mpi") == "mpi"
        assert transports.data_protocol("grpc+verbs") == "rdma"

    def test_unknown_protocols_rejected(self):
        with pytest.raises(InvalidArgumentError):
            transports.data_protocol("smtp")
        with pytest.raises(InvalidArgumentError):
            transports.protocol_latency("smtp")

    def test_unknown_data_protocol_in_transfer(self, tegner_pair):
        machine, a, b = tegner_pair

        def mover():
            yield from transports.transfer(a.cpu, b.cpu, 10, "carrier-pigeon")

        proc = machine.env.process(mover())
        with pytest.raises(InvalidArgumentError):
            machine.env.run(until=proc)


class TestPaperFig7Shapes:
    """The qualitative content of Fig. 7, asserted as ordering bands."""

    def test_tegner_protocol_ordering_host_memory(self, tegner_pair):
        machine, a, b = tegner_pair
        bw = {
            p: bandwidth(machine, a.cpu, b.cpu, 128 * MB, p)
            for p in ("rdma", "mpi", "grpc")
        }
        assert bw["rdma"] > bw["mpi"] > bw["grpc"]

    def test_tegner_rdma_host_exceeds_half_theoretical(self, tegner_pair):
        machine, a, b = tegner_pair
        bw = bandwidth(machine, a.cpu, b.cpu, 128 * MB, "rdma")
        # Paper: >6 GB/s, i.e. >50% of EDR's 12 GB/s.
        assert bw > 6.0e9

    def test_tegner_k420_rdma_saturates_near_1300_mbs(self, tegner_pair):
        machine, a, b = tegner_pair
        bw = bandwidth(machine, a.gpus[0], b.gpus[0], 128 * MB, "rdma")
        assert 1.0e9 < bw < 1.6e9  # paper: ~1300 MB/s

    def test_kebnekaise_k80_rdma_below_2300_mbs(self, kebnekaise_pair):
        machine, a, b = kebnekaise_pair
        bw = bandwidth(machine, a.gpus[0], b.gpus[0], 128 * MB, "rdma")
        assert 1.7e9 < bw < 2.4e9  # paper: saturates below 2300 MB/s

    def test_mpi_gpu_hundreds_of_mbs(self, tegner_pair):
        machine, a, b = tegner_pair
        bw = bandwidth(machine, a.gpus[0], b.gpus[0], 128 * MB, "mpi")
        assert 0.2e9 < bw < 0.6e9  # paper: ~318 MB/s on Tegner

    def test_tegner_grpc_rides_ethernet(self, tegner_pair):
        machine, a, b = tegner_pair
        bw = bandwidth(machine, a.cpu, b.cpu, 128 * MB, "grpc")
        assert bw < 0.125e9  # bounded by 1GbE

    def test_kebnekaise_grpc_similar_to_mpi(self, kebnekaise_pair):
        machine, a, b = kebnekaise_pair
        grpc = bandwidth(machine, a.gpus[0], b.gpus[0], 128 * MB, "grpc")
        mpi = bandwidth(machine, a.gpus[0], b.gpus[0], 128 * MB, "mpi")
        assert grpc == pytest.approx(mpi, rel=0.5)  # paper: "similar"

    def test_small_messages_get_lower_bandwidth(self, tegner_pair):
        machine, a, b = tegner_pair
        bw2 = bandwidth(machine, a.cpu, b.cpu, 2 * MB, "rdma")
        bw128 = bandwidth(machine, a.cpu, b.cpu, 128 * MB, "rdma")
        assert bw2 < bw128  # Fig. 7: 2MB bars below 128MB bars


class TestPathMechanics:
    def test_same_device_is_free(self, tegner_pair):
        machine, a, b = tegner_pair
        assert measure(machine, a.cpu, a.cpu, 64 * MB, "rdma") == 0.0

    def test_zero_bytes_is_free(self, tegner_pair):
        machine, a, b = tegner_pair
        assert measure(machine, a.cpu, b.cpu, 0, "rdma") == 0.0

    def test_local_cpu_gpu_uses_pcie(self):
        env = Environment()
        machine = localhost(env)
        node = machine.node("localhost")
        seconds = measure(machine, node.cpu, node.gpus[0], 64 * MB, "rdma")
        expected = 64 * MB / node.gpus[0].model.pcie_rate
        assert seconds == pytest.approx(expected, rel=0.01)

    def test_negative_size_rejected(self, tegner_pair):
        machine, a, b = tegner_pair

        def mover():
            yield from transports.transfer(a.cpu, b.cpu, -5, "rdma")

        proc = machine.env.process(mover())
        with pytest.raises(InvalidArgumentError):
            machine.env.run(until=proc)

    def test_far_socket_gpu_slower_than_near(self, kebnekaise_pair):
        """Fig. 9: a GPU on the far NUMA island crosses the QPI link."""
        machine, a, b = kebnekaise_pair
        near = bandwidth(machine, a.gpus[0], b.cpu, 64 * MB, "rdma")
        far = bandwidth(machine, a.gpus[3], b.cpu, 64 * MB, "rdma")
        assert far <= near * 1.001

    def test_nic_contention_shares_bandwidth(self, kebnekaise_pair):
        """Two instances streaming from one node split the NIC fairly."""
        machine, a, b = kebnekaise_pair
        env = machine.env
        done = {}

        def mover(name, src):
            start = env.now
            yield from transports.transfer(src, b.cpu, 256 * MB, "rdma")
            done[name] = env.now - start

        solo_time = measure(machine, a.cpu, b.cpu, 256 * MB, "rdma")
        env.process(mover("x", a.cpu))
        env.process(mover("y", a.cpu))
        env.run()
        # Sharing one HCA: each flow takes ~2x the solo time.
        assert done["x"] > 1.7 * solo_time
        assert done["y"] > 1.7 * solo_time
