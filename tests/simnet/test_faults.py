"""Deterministic fault injection: plans, crashes, degradation, drops."""

import pytest

from repro.errors import InvalidArgumentError, UnavailableError
from repro.simnet import transports
from repro.simnet.events import Environment, Interrupt
from repro.simnet.faults import (
    FaultInjector,
    FaultPlan,
    LinkDegradation,
    MessageDrop,
    WorkerCrash,
)
from repro.simnet.machines import tegner

MB = 1024 * 1024


@pytest.fixture()
def machine_pair():
    env = Environment()
    machine = tegner(env, k420_nodes=2)
    a, b = machine.node("t01n01"), machine.node("t01n02")
    return machine, a, b


def measure(machine, src_dev, dst_dev, nbytes, protocol="rdma"):
    env = machine.env
    start = env.now

    def mover():
        yield from transports.transfer(src_dev, dst_dev, nbytes, protocol)

    proc = env.process(mover())
    env.run(until=proc)
    return env.now - start


def advance(env, seconds):
    env.run(until=env.timeout(seconds))


class TestFaultPlan:
    def test_rejects_unknown_spec(self):
        with pytest.raises(InvalidArgumentError):
            FaultPlan(faults=("not a fault",))

    def test_single_crash_helper(self):
        plan = FaultPlan.single_crash("worker", 1, at=2.5, restart_after=1.0)
        assert plan.faults == (WorkerCrash("worker", 1, 2.5, 1.0),)

    def test_random_crashes_deterministic_and_sorted(self):
        p1 = FaultPlan.random_crashes({"worker": 4}, horizon=10.0,
                                      num_crashes=3, seed=7)
        p2 = FaultPlan.random_crashes({"worker": 4}, horizon=10.0,
                                      num_crashes=3, seed=7)
        assert p1 == p2
        times = [c.at for c in p1.faults]
        assert times == sorted(times)
        assert all(0 < t < 10.0 for t in times)
        p3 = FaultPlan.random_crashes({"worker": 4}, horizon=10.0,
                                      num_crashes=3, seed=8)
        assert p1 != p3

    def test_random_crashes_validation(self):
        with pytest.raises(InvalidArgumentError):
            FaultPlan.random_crashes({}, horizon=1.0)
        with pytest.raises(InvalidArgumentError):
            FaultPlan.random_crashes({"worker": 2}, horizon=0.0)


class TestInstall:
    def test_install_sets_machine_hook(self, machine_pair):
        machine, _, _ = machine_pair
        injector = FaultInjector(FaultPlan()).install(machine)
        assert machine.faults is injector

    def test_double_install_rejected(self, machine_pair):
        machine, _, _ = machine_pair
        injector = FaultInjector(FaultPlan())
        injector.install(machine)
        with pytest.raises(InvalidArgumentError):
            injector.install(machine)


class TestWorkerCrash:
    def test_task_goes_down_at_scheduled_time(self, machine_pair):
        machine, _, _ = machine_pair
        env = machine.env
        injector = FaultInjector(
            FaultPlan.single_crash("worker", 0, at=1.0)
        ).install(machine)
        assert not injector.is_down("worker", 0)
        advance(env, 0.5)
        assert not injector.is_down("worker", 0)
        advance(env, 1.0)
        assert injector.is_down("worker", 0)
        assert injector.down_tasks() == [("worker", 0)]
        assert injector.stats["crashes"] == 1

    def test_restart_revives_task(self, machine_pair):
        machine, _, _ = machine_pair
        env = machine.env
        injector = FaultInjector(
            FaultPlan.single_crash("worker", 0, at=1.0, restart_after=2.0)
        ).install(machine)
        advance(env, 1.5)
        assert injector.is_down("worker", 0)
        advance(env, 2.0)
        assert not injector.is_down("worker", 0)
        assert injector.stats["restarts"] == 1

    def test_crash_wipes_task_resources(self, machine_pair):
        import repro as tf

        machine, _, _ = machine_pair
        env = machine.env
        cluster = tf.ClusterSpec({"worker": ["t01n01:8888", "t01n02:8888"]})
        victim = tf.Server(cluster, "worker", 1, machine=machine)
        tf.Server(cluster, "worker", 0, machine=machine)
        victim.runtime.resources.variables["w"] = 123
        injector = FaultInjector(
            FaultPlan.single_crash("worker", 1, at=1.0)
        ).install(machine)
        advance(env, 2.0)
        assert injector.is_down("worker", 1)
        assert "w" not in victim.runtime.resources.variables

    def test_crash_interrupts_registered_process(self, machine_pair):
        machine, _, _ = machine_pair
        env = machine.env
        injector = FaultInjector(
            FaultPlan.single_crash("worker", 0, at=1.0)
        ).install(machine)
        seen = {}

        def worker():
            try:
                yield env.timeout(100.0)
            except Interrupt as exc:
                seen["cause"] = str(exc.cause)
                return

        proc = env.process(worker())
        injector.register_worker("worker", 0, proc)
        env.run(until=proc)
        assert "crashed at t=1" in seen["cause"]
        assert "/job:worker/task:0" in seen["cause"]


class TestLinkDegradation:
    def test_bandwidth_cut_slows_transfers_then_restores(self, machine_pair):
        machine, a, b = machine_pair
        env = machine.env
        healthy_rate = a.nic_link.rate
        plan = FaultPlan(faults=(
            LinkDegradation("t01n01", at=0.0, duration=5.0,
                            bandwidth_scale=0.1),
        ))
        FaultInjector(plan).install(machine)
        advance(env, 0.1)  # inside the window
        assert a.nic_link.rate == pytest.approx(healthy_rate * 0.1)
        degraded = measure(machine, a.cpu, b.cpu, 4 * MB)
        advance(env, 10.0)  # past the window
        assert a.nic_link.rate == pytest.approx(healthy_rate)
        recovered = measure(machine, a.cpu, b.cpu, 4 * MB)
        assert degraded > 5 * recovered

    def test_extra_latency_charged_per_message(self, machine_pair):
        machine, a, b = machine_pair
        env = machine.env
        baseline = measure(machine, a.cpu, b.cpu, 1024)
        plan = FaultPlan(faults=(
            LinkDegradation("t01n02", at=env.now, duration=50.0,
                            extra_latency=0.25),
        ))
        injector = FaultInjector(plan).install(machine)
        advance(env, 0.01)
        slowed = measure(machine, a.cpu, b.cpu, 1024)
        assert slowed == pytest.approx(baseline + 0.25)
        assert injector.stats["delayed_messages"] == 1

    def test_unknown_link_kind_rejected(self, machine_pair):
        machine, _, _ = machine_pair
        env = machine.env
        plan = FaultPlan(faults=(
            LinkDegradation("t01n01", at=0.0, duration=1.0,
                            bandwidth_scale=0.5, link="carrier-pigeon"),
        ))
        FaultInjector(plan).install(machine)
        proc = env.process(_noop(env))
        with pytest.raises(InvalidArgumentError):
            env.run(until=proc)


def _noop(env):
    yield env.timeout(1.0)


class TestMessageDrop:
    def test_first_n_messages_dropped_then_healthy(self, machine_pair):
        machine, a, b = machine_pair
        env = machine.env
        plan = FaultPlan(faults=(MessageDrop(count=2),))
        injector = FaultInjector(plan).install(machine)

        def mover():
            yield from transports.transfer(a.cpu, b.cpu, 1024, "rdma")

        for _ in range(2):
            proc = env.process(mover())
            with pytest.raises(UnavailableError):
                env.run(until=proc)
        # Budget exhausted: the third attempt sails through.
        proc = env.process(mover())
        env.run(until=proc)
        assert injector.stats["drops"] == 2

    def test_drop_error_names_endpoints_and_protocol(self, machine_pair):
        machine, a, b = machine_pair
        env = machine.env
        FaultInjector(FaultPlan(faults=(MessageDrop(count=1),))).install(machine)

        def mover():
            yield from transports.transfer(a.cpu, b.cpu, 2048, "rdma")

        proc = env.process(mover())
        with pytest.raises(UnavailableError, match=r"t01n01 -> t01n02.*2048.*rdma"):
            env.run(until=proc)

    def test_src_dst_filters(self, machine_pair):
        machine, a, b = machine_pair
        env = machine.env
        plan = FaultPlan(faults=(MessageDrop(src="t01n02", count=10),))
        injector = FaultInjector(plan).install(machine)
        # a -> b does not match src=t01n02.
        measure(machine, a.cpu, b.cpu, 1024)
        assert injector.stats["drops"] == 0

        def mover():
            yield from transports.transfer(b.cpu, a.cpu, 1024, "rdma")

        proc = env.process(mover())
        with pytest.raises(UnavailableError):
            env.run(until=proc)
        assert injector.stats["drops"] == 1

    def test_time_window_respected(self, machine_pair):
        machine, a, b = machine_pair
        env = machine.env
        plan = FaultPlan(faults=(MessageDrop(after=10.0, until=20.0, count=10),))
        injector = FaultInjector(plan).install(machine)
        measure(machine, a.cpu, b.cpu, 1024)  # before the window
        assert injector.stats["drops"] == 0
        advance(env, 15.0)

        def mover():
            yield from transports.transfer(a.cpu, b.cpu, 1024, "rdma")

        proc = env.process(mover())
        with pytest.raises(UnavailableError):
            env.run(until=proc)

    def test_probabilistic_drops_replay_from_seed(self):
        def outcomes(seed):
            env = Environment()
            machine = tegner(env, k420_nodes=2)
            a, b = machine.node("t01n01"), machine.node("t01n02")
            plan = FaultPlan(
                faults=(MessageDrop(count=100, probability=0.5),), seed=seed
            )
            FaultInjector(plan).install(machine)
            dropped = []

            def mover():
                yield from transports.transfer(a.cpu, b.cpu, 1024, "rdma")

            for _ in range(20):
                proc = env.process(mover())
                try:
                    env.run(until=proc)
                    dropped.append(False)
                except UnavailableError:
                    dropped.append(True)
            return dropped

        first = outcomes(3)
        assert first == outcomes(3)  # byte-for-byte replay
        assert True in first and False in first
        assert first != outcomes(4)  # and the seed actually matters
