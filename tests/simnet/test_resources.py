"""Unit and property tests for Resource, Store, and BandwidthLink."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet.events import Environment
from repro.simnet.resources import BandwidthLink, Resource, Store


@pytest.fixture()
def env():
    return Environment()


class TestResource:
    def test_capacity_validation(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_serialises_users_beyond_capacity(self, env):
        res = Resource(env, capacity=1)
        log = []

        def user(name):
            req = res.request()
            yield req
            log.append((env.now, name, "start"))
            yield env.timeout(2.0)
            res.release(req)
            log.append((env.now, name, "end"))

        env.process(user("a"))
        env.process(user("b"))
        env.run()
        assert log == [
            (0.0, "a", "start"),
            (2.0, "a", "end"),
            (2.0, "b", "start"),
            (4.0, "b", "end"),
        ]

    def test_parallel_within_capacity(self, env):
        res = Resource(env, capacity=2)
        done = []

        def user(name):
            yield from res.use(3.0)
            done.append((env.now, name))

        for name in ("a", "b"):
            env.process(user(name))
        env.run()
        assert done == [(3.0, "a"), (3.0, "b")]

    def test_fifo_granting_order(self, env):
        res = Resource(env, capacity=1)
        order = []

        def user(name, hold):
            req = res.request()
            yield req
            order.append(name)
            yield env.timeout(hold)
            res.release(req)

        for name in ("first", "second", "third"):
            env.process(user(name, 1.0))
        env.run()
        assert order == ["first", "second", "third"]

    def test_release_ungranted_cancels_waiter(self, env):
        res = Resource(env, capacity=1)
        held = res.request()
        assert held.triggered
        waiting = res.request()
        assert not waiting.triggered
        res.release(waiting)  # cancel the queued claim
        assert res.queue_length == 0

    def test_double_release_is_error(self, env):
        res = Resource(env, capacity=1)
        req = res.request()
        res.release(req)
        with pytest.raises(RuntimeError):
            res.release(req)

    def test_count_tracks_holders(self, env):
        res = Resource(env, capacity=3)
        reqs = [res.request() for _ in range(3)]
        assert res.count == 3
        res.release(reqs[0])
        assert res.count == 2


class TestStore:
    def test_put_then_get(self, env):
        store = Store(env)
        results = []

        def producer():
            yield store.put("x")

        def consumer():
            item = yield store.get()
            results.append(item)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert results == ["x"]

    def test_get_blocks_until_put(self, env):
        store = Store(env)
        log = []

        def consumer():
            item = yield store.get()
            log.append((env.now, item))

        def producer():
            yield env.timeout(5.0)
            yield store.put("late")

        env.process(consumer())
        env.process(producer())
        env.run()
        assert log == [(5.0, "late")]

    def test_put_blocks_when_full(self, env):
        store = Store(env, capacity=1)
        log = []

        def producer():
            yield store.put(1)
            log.append((env.now, "put1"))
            yield store.put(2)
            log.append((env.now, "put2"))

        def consumer():
            yield env.timeout(4.0)
            yield store.get()

        env.process(producer())
        env.process(consumer())
        env.run()
        assert log == [(0.0, "put1"), (4.0, "put2")]

    def test_fifo_item_order(self, env):
        store = Store(env)
        received = []

        def producer():
            for i in range(5):
                yield store.put(i)

        def consumer():
            for _ in range(5):
                item = yield store.get()
                received.append(item)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert received == [0, 1, 2, 3, 4]

    def test_fail_all_waiters(self, env):
        store = Store(env)
        outcomes = []

        def consumer():
            try:
                yield store.get()
            except RuntimeError as exc:
                outcomes.append(str(exc))

        def closer():
            yield env.timeout(1.0)
            store.fail_all_waiters(lambda: RuntimeError("queue closed"))

        env.process(consumer())
        env.process(consumer())
        env.process(closer())
        env.run()
        assert outcomes == ["queue closed", "queue closed"]

    def test_invalid_capacity(self, env):
        with pytest.raises(ValueError):
            Store(env, capacity=0)

    @given(items=st.lists(st.integers(), min_size=1, max_size=30),
           capacity=st.integers(min_value=1, max_value=5))
    @settings(max_examples=50, deadline=None)
    def test_property_fifo_order_preserved(self, items, capacity):
        env = Environment()
        store = Store(env, capacity=capacity)
        received = []

        def producer():
            for item in items:
                yield store.put(item)

        def consumer():
            for _ in items:
                got = yield store.get()
                received.append(got)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert received == items


class TestBandwidthLink:
    def test_single_transfer_time(self, env):
        link = BandwidthLink(env, rate=100.0)  # 100 B/s
        done = []

        def proc():
            yield link.transfer(500.0)
            done.append(env.now)

        env.process(proc())
        env.run()
        assert done == [pytest.approx(5.0)]

    def test_zero_byte_transfer_immediate(self, env):
        link = BandwidthLink(env, rate=100.0)
        ev = link.transfer(0)
        assert ev.triggered

    def test_negative_size_rejected(self, env):
        link = BandwidthLink(env, rate=100.0)
        with pytest.raises(ValueError):
            link.transfer(-1)

    def test_set_rate_mid_transfer_conserves_bytes(self, env):
        link = BandwidthLink(env, rate=100.0)
        done = []

        def proc():
            yield link.transfer(100.0)
            done.append(env.now)

        def throttle():
            yield env.timeout(0.5)  # 50 bytes moved at 100 B/s
            link.set_rate(10.0)  # remaining 50 bytes take 5 s

        env.process(proc())
        env.process(throttle())
        env.run()
        assert done == [pytest.approx(5.5)]

    def test_set_rate_rejects_nonpositive(self, env):
        link = BandwidthLink(env, rate=100.0)
        with pytest.raises(ValueError):
            link.set_rate(0.0)

    def test_two_equal_transfers_share_fairly(self, env):
        link = BandwidthLink(env, rate=100.0)
        done = []

        def proc(name):
            yield link.transfer(100.0)
            done.append((env.now, name))

        env.process(proc("a"))
        env.process(proc("b"))
        env.run()
        # Each gets 50 B/s, both finish at t=2 (not t=1).
        assert done[0][0] == pytest.approx(2.0)
        assert done[1][0] == pytest.approx(2.0)

    def test_late_arrival_slows_first_flow(self, env):
        link = BandwidthLink(env, rate=100.0)
        done = {}

        def first():
            yield link.transfer(100.0)
            done["first"] = env.now

        def second():
            yield env.timeout(0.5)
            yield link.transfer(25.0)
            done["second"] = env.now

        env.process(first())
        env.process(second())
        env.run()
        # First does 50 B in 0.5 s alone; then shares: 50 B/s each.
        # Second finishes 25 B at t = 0.5 + 0.5 = 1.0; first then speeds up:
        # at t=1.0 first has 100-50-25 = 25 B left at 100 B/s -> t=1.25.
        assert done["second"] == pytest.approx(1.0)
        assert done["first"] == pytest.approx(1.25)

    def test_rate_must_be_positive(self, env):
        with pytest.raises(ValueError):
            BandwidthLink(env, rate=0)

    @given(
        sizes=st.lists(st.floats(min_value=1.0, max_value=1e6), min_size=1, max_size=8),
        offsets=st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_bytes_conserved(self, sizes, offsets):
        """Aggregate throughput never exceeds the link rate, and every flow
        completes no earlier than size/rate after its start."""
        env = Environment()
        rate = 1000.0
        link = BandwidthLink(env, rate=rate)
        n = min(len(sizes), len(offsets))
        finish = {}

        def flow(i, start, size):
            yield env.timeout(start)
            yield link.transfer(size)
            finish[i] = env.now

        for i in range(n):
            env.process(flow(i, offsets[i], sizes[i]))
        env.run()
        for i in range(n):
            lower_bound = offsets[i] + sizes[i] / rate
            assert finish[i] >= lower_bound - 1e-6
        # Full utilisation bound: total bytes <= rate * (makespan - first start).
        makespan = max(finish.values()) - min(offsets[:n])
        assert sum(sizes[:n]) <= rate * makespan + 1e-6
