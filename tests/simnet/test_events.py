"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.simnet.events import AllOf, AnyOf, Environment, Interrupt



@pytest.fixture()
def env():
    return Environment()


class TestClock:
    def test_starts_at_zero(self, env):
        assert env.now == 0.0

    def test_custom_start_time(self):
        assert Environment(10.0).now == 10.0

    def test_timeout_advances_clock(self, env):
        env.timeout(2.5)
        env.run()
        assert env.now == 2.5

    def test_run_until_number_stops_clock_exactly(self, env):
        env.timeout(10.0)
        env.run(until=4.0)
        assert env.now == 4.0

    def test_run_until_past_raises(self, env):
        env.timeout(5.0)
        env.run()
        with pytest.raises(ValueError):
            env.run(until=1.0)

    def test_peek_empty_is_inf(self, env):
        assert env.peek() == float("inf")

    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            env.timeout(-1.0)


class TestProcesses:
    def test_process_return_value(self, env):
        def proc():
            yield env.timeout(1.0)
            return 42

        p = env.process(proc())
        assert env.run(until=p) == 42
        assert env.now == 1.0

    def test_sequential_timeouts_accumulate(self, env):
        log = []

        def proc():
            for delay in (1.0, 2.0, 3.0):
                yield env.timeout(delay)
                log.append(env.now)

        env.process(proc())
        env.run()
        assert log == [1.0, 3.0, 6.0]

    def test_two_processes_interleave_deterministically(self, env):
        log = []

        def ticker(name, period):
            for _ in range(3):
                yield env.timeout(period)
                log.append((env.now, name))

        env.process(ticker("a", 1.0))
        env.process(ticker("b", 1.0))
        env.run()
        # FIFO tie-break: "a" was created first, so it logs first at each t.
        assert log == [
            (1.0, "a"), (1.0, "b"),
            (2.0, "a"), (2.0, "b"),
            (3.0, "a"), (3.0, "b"),
        ]

    def test_process_waiting_on_process(self, env):
        def inner():
            yield env.timeout(2.0)
            return "inner-result"

        def outer():
            result = yield env.process(inner())
            return result + "!"

        p = env.process(outer())
        assert env.run(until=p) == "inner-result!"

    def test_exception_propagates_to_waiter(self, env):
        def failing():
            yield env.timeout(1.0)
            raise ValueError("boom")

        def waiter():
            try:
                yield env.process(failing())
            except ValueError as exc:
                return f"caught {exc}"

        p = env.process(waiter())
        assert env.run(until=p) == "caught boom"

    def test_unhandled_process_exception_raises_from_run(self, env):
        def failing():
            yield env.timeout(1.0)
            raise ValueError("boom")

        env.process(failing())
        with pytest.raises(ValueError, match="boom"):
            env.run()

    def test_yield_non_event_is_error(self, env):
        def bad():
            yield 5

        env.process(bad())
        with pytest.raises(RuntimeError, match="non-event"):
            env.run()

    def test_wait_on_already_processed_event(self, env):
        ev = env.event()
        ev.succeed("early")

        def late_waiter():
            yield env.timeout(3.0)
            value = yield ev
            return value

        p = env.process(late_waiter())
        assert env.run(until=p) == "early"

    def test_run_until_event_deadlock_detected(self, env):
        ev = env.event()  # never triggered
        with pytest.raises(RuntimeError, match="deadlock"):
            env.run(until=ev)


class TestEvents:
    def test_succeed_twice_is_error(self, env):
        ev = env.event()
        ev.succeed(1)
        with pytest.raises(RuntimeError):
            ev.succeed(2)

    def test_value_before_trigger_is_error(self, env):
        ev = env.event()
        with pytest.raises(RuntimeError):
            _ = ev.value

    def test_fail_requires_exception(self, env):
        ev = env.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_failed_event_defused_does_not_crash_run(self, env):
        ev = env.event()
        ev.fail(ValueError("handled elsewhere"))
        ev.defused()
        env.run()  # no raise

    def test_failed_event_undefused_crashes_run(self, env):
        ev = env.event()
        ev.fail(ValueError("unhandled"))
        with pytest.raises(ValueError, match="unhandled"):
            env.run()


class TestConditions:
    def test_all_of_waits_for_slowest(self, env):
        def proc():
            t1 = env.timeout(1.0, value="fast")
            t2 = env.timeout(5.0, value="slow")
            results = yield AllOf(env, [t1, t2])
            return sorted(results.values())

        p = env.process(proc())
        assert env.run(until=p) == ["fast", "slow"]
        assert env.now == 5.0

    def test_any_of_returns_at_fastest(self, env):
        def proc():
            t1 = env.timeout(1.0, value="fast")
            t2 = env.timeout(5.0, value="slow")
            results = yield AnyOf(env, [t1, t2])
            return list(results.values())

        p = env.process(proc())
        assert env.run(until=p) == ["fast"]
        assert env.now == 1.0

    def test_empty_all_of_triggers_immediately(self, env):
        def proc():
            result = yield AllOf(env, [])
            return result

        p = env.process(proc())
        assert env.run(until=p) == {}

    def test_all_of_fails_if_child_fails(self, env):
        def failing():
            yield env.timeout(1.0)
            raise RuntimeError("child died")

        def proc():
            with pytest.raises(RuntimeError, match="child died"):
                yield AllOf(env, [env.process(failing()), env.timeout(10.0)])
            return env.now

        p = env.process(proc())
        assert env.run(until=p) == 1.0


class TestInterrupts:
    def test_interrupt_delivers_cause(self, env):
        def victim():
            try:
                yield env.timeout(100.0)
            except Interrupt as intr:
                return ("interrupted", intr.cause, env.now)

        def attacker(target):
            yield env.timeout(3.0)
            target.interrupt("preempted")

        p = env.process(victim())
        env.process(attacker(p))
        assert env.run(until=p) == ("interrupted", "preempted", 3.0)

    def test_interrupt_dead_process_is_error(self, env):
        def quick():
            yield env.timeout(1.0)

        p = env.process(quick())
        env.run()
        with pytest.raises(RuntimeError, match="terminated"):
            p.interrupt()
