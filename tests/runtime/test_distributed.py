"""Distributed execution: servers, rendezvous, reducers, queue runners."""

import numpy as np
import pytest

import repro as tf
from repro.errors import InternalError, InvalidArgumentError, OutOfRangeError
from repro.runtime.coordinator import Coordinator, QueueRunner
from repro.runtime.rendezvous import Rendezvous, make_key
from repro.runtime.server import ServerConfig
from repro.runtime.sync import QueueReducer, TokenBarrier
from repro.simnet.events import Environment
from repro.simnet.machines import kebnekaise, tegner


@pytest.fixture()
def two_node_tegner():
    env = Environment()
    machine = tegner(env, k420_nodes=2)
    cluster = tf.ClusterSpec({
        "ps": ["t01n01:8888"],
        "worker": ["t01n02:8888"],
    })
    ps = tf.Server(cluster, "ps", 0, machine=machine)
    worker = tf.Server(cluster, "worker", 0, machine=machine)
    return env, machine, ps, worker


class TestRendezvous:
    def test_send_then_recv(self):
        env = Environment()
        rdv = Rendezvous(env)
        rdv.send("k", 42)
        event = rdv.recv("k")
        assert event.triggered and event.value == 42

    def test_recv_then_send_wakes(self):
        env = Environment()
        rdv = Rendezvous(env)
        event = rdv.recv("k")
        assert not event.triggered
        rdv.send("k", "hello")
        assert event.triggered and event.value == "hello"

    def test_duplicate_send_rejected(self):
        env = Environment()
        rdv = Rendezvous(env)
        rdv.send("k", 1)
        with pytest.raises(InternalError):
            rdv.send("k", 2)

    def test_multiple_receivers_share_value(self):
        env = Environment()
        rdv = Rendezvous(env)
        e1, e2 = rdv.recv("k"), rdv.recv("k")
        rdv.send("k", 7)
        assert e1.value == 7 and e2.value == 7

    def test_make_key_uniqueness(self):
        k1 = make_key("/a", "/b", "t:0", 1)
        k2 = make_key("/a", "/b", "t:0", 2)
        assert k1 != k2


class TestServers:
    def test_server_registration_and_target(self, two_node_tegner):
        env, machine, ps, worker = two_node_tegner
        assert ps.target == "grpc://t01n01:8888"
        assert machine.resolve("t01n02:8888") is worker

    def test_duplicate_address_rejected(self, two_node_tegner):
        env, machine, ps, worker = two_node_tegner
        cluster = tf.ClusterSpec({"ps": ["t01n01:8888"]})
        with pytest.raises(InvalidArgumentError):
            tf.Server(cluster, "ps", 0, machine=machine)

    def test_visible_gpu_mask_renumbers(self):
        env = Environment()
        machine = kebnekaise(env, k80_nodes=1)
        cluster = tf.ClusterSpec({"worker": ["b-cn0001:8888", "b-cn0001:8889"]})
        w0 = tf.Server(cluster, "worker", 0, machine=machine,
                       config=ServerConfig(visible_gpus=[0]))
        w1 = tf.Server(cluster, "worker", 1, machine=machine,
                       config=ServerConfig(visible_gpus=[3]))
        d0 = w0.runtime.device("/job:worker/task:0/device:gpu:0")
        d1 = w1.runtime.device("/job:worker/task:1/device:gpu:0")
        assert d0.index == 0 and d1.index == 3
        assert d0 is not d1

    def test_bad_visible_gpu_rejected(self):
        env = Environment()
        machine = tegner(env, k420_nodes=1)
        cluster = tf.ClusterSpec({"worker": ["t01n01:8888"]})
        with pytest.raises(InvalidArgumentError):
            tf.Server(cluster, "worker", 0, machine=machine,
                      config=ServerConfig(visible_gpus=[5]))

    def test_memory_fraction_caps_pool(self):
        env = Environment()
        machine = tegner(env, k80_nodes=1)
        cluster = tf.ClusterSpec({"worker": ["t01n01:8888"]})
        server = tf.Server(cluster, "worker", 0, machine=machine,
                           config=ServerConfig(visible_gpus=[0],
                                               gpu_memory_fraction=0.5))
        pool = server.runtime.memory_pools["/job:worker/task:0/device:gpu:0"]
        assert pool.capacity == 6 * 1024**3  # half of a GK210's 12 GB


class TestDistributedExecution:
    def test_variable_on_ps_updated_from_worker(self, two_node_tegner):
        env, machine, ps, worker = two_node_tegner
        g = tf.Graph()
        with g.as_default():
            with g.device("/job:ps/task:0/device:cpu:0"):
                v = tf.Variable(np.zeros(3), name="v")
            with g.device("/job:worker/task:0/device:cpu:0"):
                delta = tf.constant(np.ones(3))
            update = tf.assign_add(v, delta)
        sess = tf.Session(worker, graph=g)
        sess.run(v.initializer)
        sess.run(update.op)
        sess.run(update.op)
        np.testing.assert_allclose(sess.run(v), [2.0, 2.0, 2.0])

    def test_ps_state_shared_between_worker_sessions(self, two_node_tegner):
        env, machine, ps, worker = two_node_tegner
        g = tf.Graph()
        with g.as_default():
            with g.device("/job:ps/task:0/device:cpu:0"):
                v = tf.Variable(10.0, name="shared")
        sess_a = tf.Session(worker, graph=g)
        sess_a.run(v.initializer)
        sess_b = tf.Session(ps, graph=g)
        assert sess_b.run(v) == pytest.approx(10.0)

    def test_cross_task_transfer_takes_time(self, two_node_tegner):
        env, machine, ps, worker = two_node_tegner
        g = tf.Graph()
        with g.as_default():
            with g.device("/job:ps/task:0/device:cpu:0"):
                v = tf.Variable(np.zeros(1024 * 1024), name="big")  # 8 MB
            with g.device("/job:worker/task:0/device:cpu:0"):
                delta = tf.zeros_like(v.value())
            update = tf.assign_add(v, delta)
        sess = tf.Session(worker, graph=g)
        sess.run(v.initializer)
        t0 = env.now
        sess.run(update.op)
        elapsed = env.now - t0
        # 8 MB over EDR RDMA (~6.6 GB/s) is ~1.2 ms; admin adds ~0.5 ms.
        assert 0.5e-3 < elapsed < 20e-3


class TestQueueReducer:
    def _run_reduction(self, num_workers, values, reduction="sum"):
        env = Environment()
        machine = tegner(env, k420_nodes=num_workers + 1)
        addresses = [f"t01n{i + 1:02d}:8888" for i in range(num_workers + 1)]
        cluster = tf.ClusterSpec({
            "reducer": [addresses[0]],
            "worker": addresses[1:],
        })
        reducer_server = tf.Server(cluster, "reducer", 0, machine=machine)
        worker_servers = [
            tf.Server(cluster, "worker", i, machine=machine)
            for i in range(num_workers)
        ]
        g = tf.Graph()
        with g.as_default():
            reducer = QueueReducer(
                num_workers, dtype=tf.float64,
                device="/job:reducer/task:0/device:cpu:0",
                reduction=reduction, graph=g,
            )
            worker_fetches = []
            for i in range(num_workers):
                with g.device(f"/job:worker/task:{i}/device:cpu:0"):
                    mine = tf.constant(np.float64(values[i]), name=f"value_{i}")
                worker_fetches.append(reducer.worker_reduce(mine, name=f"w{i}"))
            step = reducer.reducer_step()
        results = {}

        def worker_proc(i):
            sess = tf.Session(worker_servers[i], graph=g)
            value = yield from sess.run_gen(worker_fetches[i])
            results[i] = float(value)

        def reducer_proc():
            sess = tf.Session(reducer_server, graph=g)
            yield from sess.run_gen(step)

        for i in range(num_workers):
            env.process(worker_proc(i))
        env.process(reducer_proc())
        env.run()
        return results

    def test_sum_reduction_reaches_all_workers(self):
        results = self._run_reduction(3, [1.0, 2.0, 3.0])
        assert results == {0: 6.0, 1: 6.0, 2: 6.0}

    def test_max_reduction(self):
        results = self._run_reduction(2, [5.0, -2.0], reduction="max")
        assert results == {0: 5.0, 1: 5.0}

    def test_unknown_reduction_rejected(self):
        g = tf.Graph()
        with pytest.raises(InvalidArgumentError):
            QueueReducer(2, reduction="median", graph=g)


class TestTokenBarrier:
    def test_workers_wait_for_release(self):
        g = tf.Graph()
        with g.as_default():
            barrier = TokenBarrier(2, graph=g)
            release = barrier.release_all(tf.constant(1, dtype=tf.int64))
            waits = [barrier.wait(name=f"wait_{i}") for i in range(2)]
        sess = tf.Session(graph=g)
        env = sess.env
        done_at = {}

        def worker(i):
            step = yield from sess.run_gen(waits[i])
            done_at[i] = (env.now, int(step))

        def coordinator():
            yield env.timeout(0.5)
            yield from sess.run_gen(release)

        env.process(worker(0))
        env.process(worker(1))
        env.process(coordinator())
        env.run()
        assert done_at[0][0] >= 0.5 and done_at[1][0] >= 0.5
        assert done_at[0][1] == 1 and done_at[1][1] == 1


class TestCoordinatorAndQueueRunner:
    def test_queue_runner_drains_dataset_and_closes(self):
        from repro.core.ops.data_ops import Dataset

        g = tf.Graph()
        with g.as_default():
            ds = Dataset.range(5)
            nxt = ds.make_one_shot_iterator().get_next()
            q = tf.FIFOQueue(8, [tf.int64], shapes=[[]])
            enq = q.enqueue(nxt)
            deq = q.dequeue()
        sess = tf.Session(graph=g)
        env = sess.env
        coord = Coordinator(env)
        runner = QueueRunner(q, [enq])
        runner.create_processes(sess, coord)
        received = []

        def consumer():
            try:
                while True:
                    value = yield from sess.run_gen(deq)
                    received.append(int(value))
            except OutOfRangeError:
                pass

        consumer_proc = env.process(consumer())
        coord.register(consumer_proc)
        env.process(coord.join())
        env.run()
        assert received == [0, 1, 2, 3, 4]
        assert coord.should_stop()

    def test_coordinator_propagates_real_errors(self):
        env = Environment()
        coord = Coordinator(env)

        def failing():
            yield env.timeout(0.1)
            raise tf.errors.InternalError("worker died")

        coord.register(env.process(failing()))

        def absorb(exc):
            coord.stop_on_exception(exc)

        def supervisor():
            try:
                yield from coord.join()
            except tf.errors.InternalError as exc:
                absorb(exc)
                raise

        proc = env.process(supervisor())
        with pytest.raises(tf.errors.InternalError):
            env.run(until=proc)
