"""Coordinator stop protocol: request_stop propagation, stop_on_exception."""

import pytest

import repro as tf
from repro.errors import CancelledError, InternalError, OutOfRangeError
from repro.runtime.coordinator import Coordinator
from repro.simnet.events import Environment


@pytest.fixture()
def env():
    return Environment()


class TestRequestStop:
    def test_request_stop_sets_should_stop(self, env):
        coord = Coordinator(env)
        assert not coord.should_stop()
        coord.request_stop()
        assert coord.should_stop()

    def test_request_stop_with_exception_reraises_in_join(self, env):
        coord = Coordinator(env)
        coord.request_stop(InternalError("worker 3 died"))

        def supervisor():
            yield from coord.join()

        proc = env.process(supervisor())
        with pytest.raises(InternalError, match="worker 3 died"):
            env.run(until=proc)

    def test_first_recorded_exception_wins(self, env):
        coord = Coordinator(env)
        coord.request_stop(InternalError("first"))
        coord.request_stop(InternalError("second"))

        def supervisor():
            yield from coord.join()

        proc = env.process(supervisor())
        with pytest.raises(InternalError, match="first"):
            env.run(until=proc)

    def test_workers_observe_stop_and_join_cleanly(self, env):
        coord = Coordinator(env)
        loops = {"n": 0}

        def worker():
            while not coord.should_stop():
                loops["n"] += 1
                yield env.timeout(0.1)

        def stopper():
            yield env.timeout(0.55)
            coord.request_stop()

        coord.register(env.process(worker()))
        env.process(stopper())

        def supervisor():
            yield env.timeout(0.0)
            yield from coord.join()

        proc = env.process(supervisor())
        env.run(until=proc)  # no exception: clean shutdown
        assert loops["n"] == 6

    def test_join_with_no_processes_is_immediate(self, env):
        coord = Coordinator(env)

        def supervisor():
            yield from coord.join()
            return "done"

        proc = env.process(supervisor())
        assert env.run(until=proc) == "done"


class TestStopOnException:
    def test_out_of_range_absorbed_as_clean_shutdown(self, env):
        coord = Coordinator(env)
        assert coord.stop_on_exception(OutOfRangeError("input exhausted"))
        assert coord.should_stop()

        def supervisor():
            yield from coord.join()

        env.run(until=env.process(supervisor()))  # nothing re-raised

    def test_cancelled_absorbed_as_clean_shutdown(self, env):
        coord = Coordinator(env)
        assert coord.stop_on_exception(CancelledError("queue closed"))
        assert coord.should_stop()

    def test_real_error_recorded_and_propagated(self, env):
        coord = Coordinator(env)
        exc = tf.errors.DeadlineExceededError("collective join timed out")
        assert not coord.stop_on_exception(exc)
        assert coord.should_stop()

        def supervisor():
            yield from coord.join()

        proc = env.process(supervisor())
        with pytest.raises(tf.errors.DeadlineExceededError,
                           match="collective join timed out"):
            env.run(until=proc)

    def test_worker_crash_pattern_end_to_end(self, env):
        """The fault-tolerance consumer pattern: a training loop absorbs
        shutdown signals via stop_on_exception and re-raises real faults
        out of join() for the recovery driver to catch."""
        coord = Coordinator(env)

        def trainer():
            try:
                yield env.timeout(0.1)
                raise tf.errors.UnavailableError("worker lost mid-step")
            except tf.errors.ReproError as exc:
                if not coord.stop_on_exception(exc):
                    return  # recorded; supervisor re-raises

        coord.register(env.process(trainer()))

        def supervisor():
            yield from coord.join()

        proc = env.process(supervisor())
        with pytest.raises(tf.errors.UnavailableError,
                           match="worker lost mid-step"):
            env.run(until=proc)
