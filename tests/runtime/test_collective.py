"""Ring collectives: correctness, timing bounds, and the Horovod argument."""

import dataclasses

import numpy as np
import pytest

from repro.core.tensor import SymbolicValue
from repro.errors import InvalidArgumentError
from repro.runtime.collective import (
    allreduce_time_lower_bound,
    ring_allgather,
    ring_allreduce,
    ring_broadcast,
)
from repro.simnet.events import Environment
from repro.simnet.machines import tegner

MB = 1024 * 1024


def make_ring(num_nodes):
    env = Environment()
    machine = tegner(env, k420_nodes=num_nodes)
    devices = [machine.node(name).cpu for name in sorted(machine.nodes)]
    return env, devices


def run_collective(env, gen):
    out = {}

    def proc():
        out["result"] = yield from gen
        out["time"] = env.now

    env.run(until=env.process(proc()))
    return out["result"], out["time"]


def run_allreduce(env, devices, values, protocol="rdma"):
    return run_collective(env, ring_allreduce(devices, values, protocol))


class TestCorrectness:
    def test_sum_across_ranks(self):
        env, devices = make_ring(4)
        values = [np.full(8, float(i + 1)) for i in range(4)]
        result, _ = run_allreduce(env, devices, values)
        for rank_value in result:
            np.testing.assert_allclose(rank_value, np.full(8, 10.0))

    def test_every_rank_gets_own_copy(self):
        env, devices = make_ring(2)
        values = [np.ones(4), np.ones(4)]
        result, _ = run_allreduce(env, devices, values)
        result[0][0] = 99.0
        assert result[1][0] == 2.0  # independent buffers

    def test_single_rank_is_identity(self):
        env, devices = make_ring(1)
        values = [np.arange(4.0)]
        result, elapsed = run_allreduce(env, devices, values)
        np.testing.assert_allclose(result[0], values[0])
        assert elapsed == 0.0

    def test_symbolic_values(self):
        env, devices = make_ring(3)
        values = [SymbolicValue((1024,), "float64") for _ in range(3)]
        result, elapsed = run_allreduce(env, devices, values)
        assert all(isinstance(v, SymbolicValue) for v in result)
        assert elapsed > 0

    def test_symbolic_results_are_distinct_per_rank(self):
        """Regression: the symbolic path returned ``[specs[0]] * world`` —
        every rank aliased rank 0's *input* spec object instead of holding
        its own freshly reduced buffer."""
        env, devices = make_ring(3)
        values = [SymbolicValue((256,), "float32") for _ in range(3)]
        result, _ = run_allreduce(env, devices, values)
        assert len({id(v) for v in result}) == 3  # one buffer per rank
        for rank_value in result:
            assert all(rank_value is not v for v in values)
            assert rank_value.shape == (256,)
            assert rank_value.dtype.name == "float32"

    def test_world_one_generator_under_env_process(self):
        """Regression: world == 1 returns before the first yield; driving
        the generator directly as a simulator process must still deliver
        the result through StopIteration."""
        env, devices = make_ring(1)
        proc = env.process(ring_allreduce(devices, [np.arange(4.0)]))
        result = env.run(until=proc)
        np.testing.assert_allclose(result[0], np.arange(4.0))
        assert env.now == 0.0

    def test_mismatched_shapes_rejected(self):
        env, devices = make_ring(2)
        with pytest.raises(InvalidArgumentError):
            run_allreduce(env, devices, [np.ones(4), np.ones(5)])

    def test_mismatched_dtypes_rejected(self):
        env, devices = make_ring(2)
        with pytest.raises(InvalidArgumentError):
            run_allreduce(env, devices, [
                np.ones(4, np.float32), np.ones(4, np.float64),
            ])

    def test_device_value_count_mismatch(self):
        env, devices = make_ring(2)
        with pytest.raises(InvalidArgumentError):
            run_allreduce(env, devices, [np.ones(4)])


class TestTiming:
    def test_time_tracks_ring_bound(self):
        """Measured time stays within a small factor of the textbook lower
        bound. The gap is structural: each node's HCA is modelled as one
        fair-share pipe, so the simultaneous send+receive of every ring
        step halves the per-flow rate (2x), and the reduce-scatter adds
        charge host time on top."""
        env, devices = make_ring(4)
        nbytes = 64 * MB
        values = [SymbolicValue((nbytes // 8,), "float64") for _ in range(4)]
        _, elapsed = run_allreduce(env, devices, values)
        link = devices[0].node.machine.fabric.effective_rate
        bound = allreduce_time_lower_bound(nbytes, 4, link)
        assert bound <= elapsed < 4.0 * bound

    def test_per_rank_bytes_independent_of_world_size(self):
        """Ring property: time grows only mildly with rank count."""
        times = {}
        for world in (2, 4, 8):
            env, devices = make_ring(world)
            values = [SymbolicValue((MB,), "float64") for _ in range(world)]
            _, times[world] = run_allreduce(env, devices, values)
        # 2(W-1)/W in {1.0, 1.5, 1.75}: under 2x from W=2 to W=8.
        assert times[8] < 2.0 * times[2]

    def test_beats_central_reducer_at_scale(self):
        """The Horovod argument: for large vectors and many ranks the ring
        outperforms pushing everything through one reducer node."""
        world = 8
        nbytes = 32 * MB
        env, devices = make_ring(world)
        values = [SymbolicValue((nbytes // 8,), "float64") for _ in range(world)]
        _, ring_time = run_allreduce(env, devices, values)

        # Central reducer: all ranks send to rank 0, rank 0 broadcasts.
        env2, devices2 = make_ring(world)
        from repro.simnet import transports
        from repro.simnet.events import AllOf

        def central():
            inbound = [
                env2.process(transports.transfer(devices2[r], devices2[0],
                                                 nbytes, "rdma"))
                for r in range(1, world)
            ]
            yield AllOf(env2, inbound)
            outbound = [
                env2.process(transports.transfer(devices2[0], devices2[r],
                                                 nbytes, "rdma"))
                for r in range(1, world)
            ]
            yield AllOf(env2, outbound)

        env2.run(until=env2.process(central()))
        central_time = env2.now
        assert ring_time < central_time / 2

    def test_lower_bound_formula(self):
        assert allreduce_time_lower_bound(100, 1, 10) == 0.0
        assert allreduce_time_lower_bound(100, 2, 10) == pytest.approx(10.0)
        assert allreduce_time_lower_bound(100, 4, 10) == pytest.approx(15.0)

    def test_slowest_rank_gates_reduce_scatter_adds(self):
        """Regression: the reduce-scatter add was charged at rank 0's
        NumPy rate for everyone; on a heterogeneous ring the slowest rank
        gates every step."""
        world = 4
        nbytes = 8 * MB
        values = [SymbolicValue((nbytes // 8,), "float64")
                  for _ in range(world)]

        def measure(slowdown):
            env, devices = make_ring(world)
            if slowdown != 1.0:
                model = devices[-1].model
                devices[-1].model = dataclasses.replace(
                    model, numpy_bytes_rate=model.numpy_bytes_rate / slowdown
                )
            _, elapsed = run_allreduce(env, devices, values)
            return elapsed, devices[0].model.numpy_bytes_rate

        uniform, fast_rate = measure(1.0)
        skewed, _ = measure(8.0)
        chunk = -(-nbytes // world)
        # (world - 1) reduce-scatter steps each slow down by the rate gap.
        expected_gap = (world - 1) * chunk * (8.0 - 1.0) / fast_rate
        assert skewed - uniform == pytest.approx(expected_gap, rel=1e-9)


class TestAllGather:
    def test_every_rank_gets_concatenation(self):
        env, devices = make_ring(3)
        values = [np.full((2, 3), float(r)) for r in range(3)]
        result, elapsed = run_collective(
            env, ring_allgather(devices, values))
        expected = np.concatenate(values, axis=0)
        assert elapsed > 0
        for rank_value in result:
            np.testing.assert_array_equal(rank_value, expected)
        result[0][0, 0] = 99.0
        assert result[1][0, 0] == 0.0  # independent buffers

    def test_symbolic_shapes_and_uneven_blocks(self):
        env, devices = make_ring(2)
        values = [SymbolicValue((4, 8), "float64"),
                  SymbolicValue((6, 8), "float64")]
        result, _ = run_collective(env, ring_allgather(devices, values))
        assert [v.shape for v in result] == [(10, 8)] * 2
        assert len({id(v) for v in result}) == 2

    def test_trailing_dims_must_agree(self):
        env, devices = make_ring(2)
        with pytest.raises(InvalidArgumentError):
            run_collective(env, ring_allgather(
                devices, [np.ones((2, 3)), np.ones((2, 4))]))

    def test_scalars_rejected(self):
        env, devices = make_ring(2)
        with pytest.raises(InvalidArgumentError):
            run_collective(env, ring_allgather(
                devices, [np.float64(1.0), np.float64(2.0)]))


class TestBroadcast:
    def test_all_ranks_receive_root_value(self):
        env, devices = make_ring(4)
        value = np.arange(8.0)
        result, elapsed = run_collective(
            env, ring_broadcast(devices, value, root=1))
        assert elapsed > 0
        for rank_value in result:
            np.testing.assert_array_equal(rank_value, value)
        result[0][0] = 99.0
        assert result[2][0] == 0.0

    def test_pipelining_beats_sequential_root_sends(self):
        """For large buffers the pipelined ring approaches one buffer
        traversal instead of the root serializing W - 1 full sends."""
        world = 8
        nbytes = 32 * MB
        env, devices = make_ring(world)
        value = SymbolicValue((nbytes // 8,), "float64")
        _, elapsed = run_collective(env, ring_broadcast(devices, value))
        link = devices[0].node.machine.fabric.effective_rate
        # Root-serialized lower bound: (W-1) buffers through one NIC.
        assert elapsed < (world - 1) * nbytes / link

    def test_bad_root_rejected(self):
        env, devices = make_ring(2)
        with pytest.raises(InvalidArgumentError):
            run_collective(env, ring_broadcast(devices, np.ones(2), root=5))
