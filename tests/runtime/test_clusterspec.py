"""ClusterSpec parsing and queries (paper Listing 2)."""

import pytest

from repro.errors import InvalidArgumentError, NotFoundError
from repro.runtime.clusterspec import ClusterSpec


class TestConstruction:
    def test_listing2(self):
        spec = ClusterSpec({
            "ps": ["t01n01:8888"],
            "worker": ["t01n02:8888", "t01n03:8888"],
        })
        assert spec.jobs == ["ps", "worker"]
        assert spec.num_tasks("worker") == 2
        assert spec.task_address("ps", 0) == "t01n01:8888"
        assert spec.job_tasks("worker") == ["t01n02:8888", "t01n03:8888"]

    def test_dict_form_sparse_indices(self):
        spec = ClusterSpec({"worker": {0: "a:1", 3: "b:1"}})
        assert spec.task_indices("worker") == [0, 3]
        assert spec.task_address("worker", 3) == "b:1"

    def test_copy_constructor(self):
        original = ClusterSpec({"ps": ["h:1"]})
        clone = ClusterSpec(original)
        assert clone == original
        assert clone is not original

    def test_as_dict_roundtrip(self):
        d = {"ps": ["a:1"], "worker": ["b:1", "c:1"]}
        assert ClusterSpec(d).as_dict() == d

    @pytest.mark.parametrize("bad", [
        {},  # no jobs
        {"ps": []},  # empty job
        {"ps": ["noport"]},  # malformed address
        {"ps": {-1: "a:1"}},  # negative index
        "not-a-mapping",
    ])
    def test_invalid_inputs(self, bad):
        with pytest.raises(InvalidArgumentError):
            ClusterSpec(bad)

    def test_unknown_lookups(self):
        spec = ClusterSpec({"ps": ["a:1"]})
        with pytest.raises(NotFoundError):
            spec.task_address("worker", 0)
        with pytest.raises(NotFoundError):
            spec.task_address("ps", 5)

    def test_contains_and_hash(self):
        spec = ClusterSpec({"ps": ["a:1"]})
        assert "ps" in spec
        assert "worker" not in spec
        assert hash(spec) == hash(ClusterSpec({"ps": ["a:1"]}))

    def test_all_addresses(self):
        spec = ClusterSpec({"ps": ["a:1"], "worker": ["b:1"]})
        assert spec.all_addresses() == ["a:1", "b:1"]
