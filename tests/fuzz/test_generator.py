"""Generator: determinism, validity, feature coverage, and codegen."""

import numpy as np
import pytest

import repro as tf
from repro.fuzz.generator import (
    GeneratorOptions,
    Instr,
    Program,
    generate,
)
from repro.fuzz.harness import BASELINE, run_cell

SEEDS = range(12)


def _signature(program):
    return [
        (ins.op_type, ins.inputs, sorted(ins.attrs.items()),
         None if ins.value is None else ins.value.tobytes(),
         ins.control, ins.out_dtypes, ins.out_shapes)
        for ins in program.instrs
    ]


def test_same_seed_same_program():
    for seed in SEEDS:
        a, b = generate(seed), generate(seed)
        assert _signature(a) == _signature(b)
        assert a.fetches == b.fetches
        assert a.world == b.world


def test_different_seeds_differ():
    signatures = {str(_signature(generate(seed))) for seed in range(20)}
    assert len(signatures) > 15  # near-certain uniqueness


def test_generated_programs_run_clean_on_the_baseline():
    for seed in SEEDS:
        program = generate(seed)
        run = run_cell(program, BASELINE)
        assert run.ok, (
            f"seed {seed} generated an invalid program: {run.error}"
        )
        assert run.values is not None and len(run.values) == len(
            program.fetches
        )


def test_feature_coverage_across_a_seed_range():
    ops = set()
    worlds = set()
    gradients = 0
    for seed in range(40):
        program = generate(seed)
        ops.update(ins.op_type for ins in program.instrs)
        worlds.add(program.world)
        gradients += any(
            ins.op_type == "Gradients" for ins in program.instrs
        )
    # The generator must actually exercise the interesting subsystems.
    assert "VariableV2" in ops
    assert any(op.startswith("Collective") for op in ops)
    assert gradients >= 5
    assert any(w >= 2 for w in worlds)


def test_op_budget_is_respected_and_sizes_bounded():
    options = GeneratorOptions(max_ops=8)
    for seed in SEEDS:
        program = generate(seed, options)
        # Seed pool + budget + gradient tail: generously bounded.
        assert program.op_count() <= 8 + 10
        for ins in program.instrs:
            for shape in ins.out_shapes:
                assert int(np.prod(shape, dtype=np.int64)) <= 4096


def test_options_disable_features():
    options = GeneratorOptions(collectives=False, gradients=False,
                               variables=False)
    for seed in SEEDS:
        program = generate(seed, options)
        assert program.world == 0
        for ins in program.instrs:
            assert not ins.op_type.startswith("Collective")
            assert ins.op_type != "Gradients"
            assert ins.op_type != "VariableV2"


def test_variable_updates_are_ordered_by_control_deps():
    for seed in range(30):
        program = generate(seed)
        for index, ins in enumerate(program.instrs):
            if ins.op_type in ("Assign", "AssignAdd", "AssignSub"):
                # Every update is ordered after the initializer or the
                # previous update of the same variable.
                assert ins.control, (index, ins)


def test_to_python_emits_compilable_source():
    for seed in SEEDS:
        program = generate(seed)
        script = program.to_python()
        compile(script, f"<fuzz-seed-{seed}>", "exec")
        assert "def body(" in script
        assert "run_script_body" in script


def test_emitted_script_body_rebuilds_the_program(tmp_path):
    # End to end: write the script, execute it in-process; a healthy
    # engine must satisfy the script's byte-identity assertions.
    program = generate(3)
    script = program.to_python()
    path = tmp_path / "repro_seed_3.py"
    path.write_text(script, encoding="utf-8")
    namespace = {"__name__": "__main__", "__file__": str(path)}
    exec(compile(script, str(path), "exec"), namespace)


def test_materialize_under_explicit_graph():
    program = generate(1)
    g = tf.Graph()
    with g.as_default():
        built = program.materialize()
    assert len(built.fetch_tensors) == len(program.fetches)
    for (src, out), tensor in zip(program.fetches, built.fetch_tensors):
        expected_dtype = program.instrs[src].out_dtypes[out]
        assert tensor.dtype.name == expected_dtype


def test_clone_is_deep_enough_for_editing():
    program = generate(0)
    twin = program.clone()
    twin.instrs[0] = Instr(op_type="Const", value=np.float32(0))
    twin.fetches.append((0, 0))
    assert _signature(program) != _signature(twin) or (
        len(program.fetches) != len(twin.fetches)
    )


def test_live_set_and_deps():
    program = Program(
        instrs=[
            Instr(op_type="Const", value=np.float32(1.0),
                  out_dtypes=("float32",), out_shapes=((),)),
            Instr(op_type="Const", value=np.float32(2.0),
                  out_dtypes=("float32",), out_shapes=((),)),
            Instr(op_type="Add", inputs=((0, 0), (0, 0)),
                  out_dtypes=("float32",), out_shapes=((),)),
        ],
        fetches=[(2, 0)],
    )
    assert program.deps_of(2) == {0}
    assert program.live_set() == {0, 2}  # instr 1 is dead


@pytest.mark.parametrize("seed", [0, 7, 11])
def test_gradient_tails_fetch_float_gradients(seed):
    program = generate(seed, GeneratorOptions(gradients=True))
    for index, ins in enumerate(program.instrs):
        if ins.op_type != "Gradients":
            continue
        for out, dtype in enumerate(ins.out_dtypes):
            assert dtype in ("float32", "float64")
            assert (index, out) in program.fetches


def test_variable_initializers_are_never_feed_tainted():
    # Regression (seed 638 at --ops 24 --max-world 8): an update output
    # downstream of Assign(placeholder) was marked feed-free and chosen
    # as another variable's initializer; the tracing frontend pre-runs
    # initializers without feeds and blew up. The update samplers now
    # propagate the variable *state's* taint, so no VariableV2 init may
    # reach a Placeholder through data, control, or var edges.
    options = GeneratorOptions(max_ops=24, max_world=8)
    for seed in range(300):
        program = generate(seed, options)
        reach: list[set[int]] = []
        for index, ins in enumerate(program.instrs):
            mine: set[int] = set()
            for dep in program.deps_of(index):
                mine |= reach[dep]
            if ins.op_type == "Placeholder":
                mine.add(index)
            reach.append(mine)
        for index, ins in enumerate(program.instrs):
            if ins.op_type == "VariableV2" and ins.inputs:
                src = ins.inputs[0][0]
                assert not reach[src], (
                    f"seed {seed}: variable at {index} initialized from "
                    f"placeholder-tainted instr {src}"
                )
