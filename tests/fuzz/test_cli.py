"""``python -m repro.fuzz`` CLI: sweeps, reports, corpus replay."""

import json

import numpy as np

from repro.core.kernels.registry import get_kernel, override_kernel
from repro.fuzz.__main__ import _parse_seeds, main


def test_parse_seeds_forms():
    assert _parse_seeds("0..5") == [0, 1, 2, 3, 4]
    assert _parse_seeds("7") == [7]
    assert _parse_seeds("1,5,9") == [1, 5, 9]
    assert _parse_seeds("3..3") == []


def test_clean_sweep_exits_zero_and_writes_report(tmp_path, capsys):
    report_path = tmp_path / "report.json"
    code = main([
        "--seeds", "0..4", "--ops", "8",
        "--json", str(report_path),
        "--out", str(tmp_path / "repros"),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "ok   fuzz: 4 program(s)" in out
    report = json.loads(report_path.read_text(encoding="utf-8"))
    assert report["summary"]["ok"] is True
    assert report["summary"]["programs"] == 4
    assert len(report["seeds"]) == 4
    for entry in report["seeds"]:
        assert entry["ok"] is True
        assert entry["cells"]
        assert entry["source"] == "sweep"
    # Nothing diverged, so nothing was shrunk.
    assert not (tmp_path / "repros").exists()


def test_corpus_seeds_replay_before_the_sweep(tmp_path):
    corpus = tmp_path / "seeds.json"
    corpus.write_text(json.dumps([
        {"seed": 31, "ops": 8, "note": "regression: example entry"},
    ]), encoding="utf-8")
    report_path = tmp_path / "report.json"
    code = main([
        "--seeds", "0..2", "--ops", "6",
        "--corpus", str(corpus),
        "--json", str(report_path),
        "--out", str(tmp_path / "repros"),
    ])
    assert code == 0
    report = json.loads(report_path.read_text(encoding="utf-8"))
    sources = [entry["source"] for entry in report["seeds"]]
    assert sources == ["corpus", "sweep", "sweep"]
    assert report["seeds"][0]["seed"] == 31


def test_matrix_subset_restricts_cells(tmp_path):
    report_path = tmp_path / "report.json"
    code = main([
        "--seeds", "0..3", "--ops", "8",
        "--matrix", "eager",
        "--json", str(report_path),
        "--out", str(tmp_path / "repros"),
    ])
    assert code == 0
    report = json.loads(report_path.read_text(encoding="utf-8"))
    for entry in report["seeds"]:
        labels = [
            label for label in entry["cells"] if "baseline" not in label
        ]
        assert labels == ["eager"]


def _buggy_eager_mul(original):
    def kernel(op, inputs, ctx):
        outputs, cost = original(op, inputs, ctx)
        if ctx.env is None and isinstance(outputs[0], np.ndarray):
            outputs = [outputs[0] + np.asarray(1, dtype=outputs[0].dtype)]
        return outputs, cost

    return kernel


def test_divergence_fails_the_run_and_emits_a_shrunk_script(tmp_path,
                                                            capsys):
    report_path = tmp_path / "report.json"
    out_dir = tmp_path / "repros"
    with override_kernel("Mul", _buggy_eager_mul(get_kernel("Mul"))):
        code = main([
            "--seeds", "0..30", "--ops", "12",
            "--json", str(report_path),
            "--out", str(out_dir),
        ])
    assert code == 1
    out = capsys.readouterr().out
    assert "FAIL" in out
    report = json.loads(report_path.read_text(encoding="utf-8"))
    assert report["summary"]["failures"] >= 1
    failing = [e for e in report["seeds"] if not e["ok"]]
    assert failing
    shrunk = [e["shrunk"] for e in failing if "shrunk" in e]
    assert shrunk, "at least one divergence must have been shrunk"
    for record in shrunk:
        assert record["ops"] <= record["original_ops"]
        script = out_dir / record["script"].split("/")[-1]
        assert script.exists()
        compile(script.read_text(encoding="utf-8"), str(script), "exec")


def test_no_shrink_flag_skips_reduction(tmp_path):
    report_path = tmp_path / "report.json"
    with override_kernel("Mul", _buggy_eager_mul(get_kernel("Mul"))):
        code = main([
            "--seeds", "0..30", "--ops", "12", "--no-shrink",
            "--json", str(report_path),
            "--out", str(tmp_path / "repros"),
        ])
    assert code == 1
    report = json.loads(report_path.read_text(encoding="utf-8"))
    assert all("shrunk" not in entry for entry in report["seeds"])
