"""Catalog coverage: no registered op silently dodges fuzzing.

Mirrors the gradient-registry coverage idiom in
``tests/core/test_gradients.py``: the source of truth is the kernel
registry, and the assertion is exhaustive — every op type must either
be drawable by the fuzzer or carry a documented exclusion.
"""

import repro  # noqa: F401 — registers every kernel/constraint
from repro.core.gradients import registered_gradient_op_types
from repro.core.kernels.registry import (
    is_graph_only,
    is_pure,
    op_constraint,
    registered_op_types,
)
from repro.core.ops.collective_ops import COLLECTIVE_OP_TYPES
from repro.fuzz.catalog import (
    EXCLUDED_OPS,
    catalog,
    catalog_entry,
    uncovered_op_types,
)

import pytest


def test_every_registered_op_is_covered_or_excluded():
    assert uncovered_op_types() == (), (
        "op types with kernels but neither a fuzz catalog entry nor a "
        f"documented exclusion: {uncovered_op_types()} — declare an "
        "op constraint next to the builder or add the op to "
        "repro.fuzz.catalog.EXCLUDED_OPS with a reason"
    )


def test_every_pure_op_is_covered_or_excluded():
    # The ISSUE-level contract, stated directly: *pure* ops are exactly
    # the ones whose results the matrix can compare bit-for-bit.
    entries = catalog()
    for op_type in registered_op_types():
        if not is_pure(op_type):
            continue
        assert op_type in entries or op_type in EXCLUDED_OPS, op_type


def test_exclusions_carry_reasons_and_do_not_overlap_catalog():
    entries = catalog()
    for op_type, reason in EXCLUDED_OPS.items():
        assert isinstance(reason, str) and len(reason) > 10, op_type
        assert op_type not in entries, (
            f"{op_type} is both excluded and in the catalog"
        )


def test_graph_only_ops_never_enter_the_catalog():
    for op_type in catalog():
        assert not is_graph_only(op_type), (
            f"{op_type} is graph-only and cannot run under the eager "
            "frontend, so it cannot be differentially compared"
        )


def test_entries_are_consistent_with_their_sources():
    gradient_ops = set(registered_gradient_op_types())
    for op_type, entry in catalog().items():
        constraint = op_constraint(op_type)
        assert constraint is not None, op_type
        # The flat-namespace builder the generator will call must exist.
        assert hasattr(repro, entry.builder), (
            f"{op_type}: builder repro.{entry.builder} does not exist"
        )
        assert entry.differentiable == (op_type in gradient_ops), op_type
        assert entry.collective == (op_type in COLLECTIVE_OP_TYPES), op_type
        lo, hi = entry.arity
        assert 0 <= lo <= hi, op_type
        assert entry.dtypes, op_type


def test_catalog_entry_lookup():
    assert catalog_entry("Add").builder == "add"
    with pytest.raises(KeyError):
        catalog_entry("NoSuchOp")
    with pytest.raises(KeyError):
        # Excluded ops are not drawable either.
        catalog_entry("RandomUniform")


def test_variables_and_collectives_are_drawable():
    entries = catalog()
    assert "VariableV2" in entries
    assert {"Assign", "AssignAdd", "AssignSub"} <= set(entries)
    assert "CollectiveAllReduce" in entries
    assert entries["CollectiveAllReduce"].collective
    assert entries["Assign"].stateful
    assert entries["Add"].pure and not entries["Add"].stateful
