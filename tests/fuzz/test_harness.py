"""Execution matrix: cell enumeration, byte comparison, divergences."""

import numpy as np

from repro.core.kernels.registry import override_kernel
from repro.fuzz.generator import GeneratorOptions, generate
from repro.fuzz.harness import (
    BASELINE,
    Cell,
    CellRun,
    compare_runs,
    matrix_cells,
    run_cell,
    run_program,
)


def _collective_seed():
    """A seed whose program carries an allreduce (found, then pinned)."""
    for seed in range(200):
        program = generate(seed, GeneratorOptions(max_world=2))
        if program.has_allreduce:
            return seed, program
    raise AssertionError("no allreduce program in 200 seeds")


def test_matrix_without_collectives_skips_algorithm_and_fusion_cells():
    program = generate(0, GeneratorOptions(collectives=False))
    labels = [cell.label() for cell in matrix_cells(program)]
    assert "eager" in labels
    assert any(label.startswith("function/") for label in labels)
    # Collective-only cells (algorithm overrides, collective fusion) are
    # skipped; kernel-fusion cells apply to every program.
    assert not any("tree" in label or "/fused" in label for label in labels)
    assert any("kfused" in label for label in labels)


def test_matrix_with_allreduce_gains_algorithm_and_fusion_cells():
    _, program = _collective_seed()
    labels = [cell.label() for cell in matrix_cells(program)]
    assert any("tree" in label for label in labels)
    assert any("fused" in label for label in labels)


def test_matrix_subset_filter():
    _, program = _collective_seed()
    cells = matrix_cells(program, subset=["tree"])
    assert cells and all("tree" in cell.label() for cell in cells)


def test_cell_labels_are_unique():
    _, program = _collective_seed()
    labels = [cell.label() for cell in matrix_cells(program)]
    assert len(labels) == len(set(labels))


def test_full_matrix_agrees_on_healthy_seeds():
    for seed in range(6):
        report = run_program(generate(seed))
        assert report.ok, [d.describe() for d in report.divergences]
        # Every cell actually ran and produced values.
        for label, run in report.runs.items():
            assert run.ok, (label, run.error)


def test_report_dict_shape():
    report = run_program(generate(0))
    data = report.to_dict()
    assert data["seed"] == 0
    assert data["ok"] is True
    assert data["cells"] and all(
        "sim_time" in cell for cell in data["cells"].values()
    )


def test_session_cells_record_sim_time_and_eager_does_not():
    report = run_program(generate(1))
    eager = report.runs["eager"]
    assert eager.sim_time is None
    baseline = report.runs[BASELINE.label() + " [baseline]"]
    assert baseline.sim_time is not None and baseline.sim_time >= 0


def test_compare_runs_flags_dtype_shape_and_value():
    cell = Cell(frontend="eager")
    want = CellRun(cell=BASELINE, values=[np.float32([1, 2])])
    same = CellRun(cell=cell, values=[np.float32([1, 2])])
    assert compare_runs(want, same) == []

    wrong_value = CellRun(cell=cell, values=[np.float32([1, 3])])
    kinds = [d.kind for d in compare_runs(want, wrong_value)]
    assert kinds == ["value"]

    wrong_dtype = CellRun(cell=cell, values=[np.float64([1, 2])])
    assert [d.kind for d in compare_runs(want, wrong_dtype)] == ["dtype"]

    wrong_shape = CellRun(cell=cell, values=[np.float32([[1, 2]])])
    assert [d.kind for d in compare_runs(want, wrong_shape)] == ["shape"]

    errored = CellRun(cell=cell, error="ValueError('boom')")
    assert [d.kind for d in compare_runs(want, errored)] == ["error"]


def test_nan_bytes_compare_equal_but_negative_zero_does_not():
    cell = Cell(frontend="eager")
    nan = np.float64([np.nan, 1.0])
    want = CellRun(cell=BASELINE, values=[nan.copy()])
    got = CellRun(cell=cell, values=[nan.copy()])
    assert compare_runs(want, got) == []  # NaN == NaN at the byte level

    got = CellRun(cell=cell, values=[np.float64([np.nan, -0.0 + 1.0])])
    assert compare_runs(want, got) == []
    got = CellRun(cell=cell, values=[np.float64([np.nan, -1.0])])
    assert [d.kind for d in compare_runs(want, got)] == ["value"]


def _buggy_eager_mul(original):
    """A Mul kernel that is wrong only in eager mode (ctx.env is None)."""

    def kernel(op, inputs, ctx):
        outputs, cost = original(op, inputs, ctx)
        if ctx.env is None and isinstance(outputs[0], np.ndarray):
            outputs = [outputs[0] + np.asarray(
                1, dtype=outputs[0].dtype
            )]
        return outputs, cost

    return kernel


def _mul_seed():
    for seed in range(200):
        program = generate(seed)
        uses_mul = any(ins.op_type == "Mul" for ins in program.instrs)
        if not uses_mul:
            continue
        # The Mul must actually feed a fetch for the bug to be visible.
        live = program.live_set()
        if any(program.instrs[i].op_type == "Mul" for i in live):
            return program
    raise AssertionError("no live Mul in 200 seeds")


def test_planted_eager_bug_is_caught_by_the_matrix():
    program = _mul_seed()
    assert run_program(program).ok  # healthy kernel: matrix agrees
    from repro.core.kernels.registry import get_kernel

    with override_kernel("Mul", _buggy_eager_mul(get_kernel("Mul"))):
        report = run_program(program)
        assert not report.ok
        eager_diffs = [
            d for d in report.divergences if d.cell.frontend == "eager"
        ]
        assert eager_diffs and all(
            d.kind == "value" for d in eager_diffs
        )
    # Kernel restored: the same program is healthy again.
    assert run_program(program).ok


def test_run_cell_captures_errors_instead_of_raising():
    program = generate(0)
    bad = program.clone()
    # Corrupt a fetch into a dangling reference upstream of execution.
    bad.instrs[-1].inputs = tuple(
        (src, out + 99) for src, out in bad.instrs[-1].inputs
    ) or bad.instrs[-1].inputs
    run = run_cell(bad, BASELINE)
    # Either the corruption was harmless (no inputs) or it was caught.
    assert run.ok or run.error is not None
