"""Shrinker: planted defects reduce to minimal, still-failing repros."""

import numpy as np
import pytest

from repro.core.kernels.registry import get_kernel, override_kernel
from repro.fuzz.generator import Instr, Program, generate
from repro.fuzz.harness import Cell, has_divergence, run_program
from repro.fuzz.shrinker import shrink

EAGER = Cell(frontend="eager")


def _buggy_eager_mul(original):
    """Wrong only under the eager interpreter (ctx.env is None)."""

    def kernel(op, inputs, ctx):
        outputs, cost = original(op, inputs, ctx)
        if ctx.env is None and isinstance(outputs[0], np.ndarray):
            outputs = [outputs[0] + np.asarray(1, dtype=outputs[0].dtype)]
        return outputs, cost

    return kernel


def _const(value):
    arr = np.asarray(value, dtype=np.float32)
    return Instr(op_type="Const", value=arr,
                 out_dtypes=("float32",), out_shapes=(arr.shape,))


def _binary(op_type, a, b, shape=(2,)):
    return Instr(op_type=op_type, inputs=(a, b),
                 out_dtypes=("float32",), out_shapes=(shape,))


def _padded_mul_program() -> Program:
    """A 12-instruction program whose only defect-reachable op is one Mul."""
    instrs = [
        _const([1.5, -2.0]),          # 0
        _const([0.5, 4.0]),           # 1
        _const([[1.0, 2.0], [3.0, 4.0]]),  # 2 decoy
        _binary("Add", (0, 0), (1, 0)),    # 3 decoy chain
        _binary("Sub", (3, 0), (0, 0)),    # 4 decoy chain
        _binary("Mul", (0, 0), (1, 0)),    # 5 <- the planted-bug site
        _binary("Add", (5, 0), (4, 0)),    # 6 propagates the bug
        _const([9.0, 9.0]),           # 7 decoy
        _binary("Maximum", (6, 0), (7, 0)),  # 8 propagates further
        _binary("Add", (2, 0), (2, 0), shape=(2, 2)),  # 9 decoy
        _binary("Sub", (9, 0), (2, 0), shape=(2, 2)),  # 10 decoy
        _binary("Add", (4, 0), (7, 0)),    # 11 decoy
    ]
    # Note (8, 0) masks the defect (Maximum against 9.0 swallows the
    # perturbation) — only (6, 0) exposes it, so fetch reduction has
    # real work to do.
    return Program(
        instrs=instrs,
        fetches=[(8, 0), (10, 0), (6, 0), (11, 0), (4, 0)],
        seed=424242,
    )


def test_shrinker_reduces_planted_bug_to_five_ops_or_fewer():
    program = _padded_mul_program()
    assert run_program(program).ok  # healthy: the matrix agrees
    with override_kernel("Mul", _buggy_eager_mul(get_kernel("Mul"))):
        report = run_program(program)
        assert not report.ok
        target = next(
            d.cell for d in report.divergences
            if d.cell.frontend == "eager"
        )
        result = shrink(program, target)
        # The acceptance bar: a 12-instruction failing graph converges
        # to a minimal repro of at most 5 instructions...
        assert result.ops <= 5, (
            f"shrunk to {result.ops} instrs: "
            f"{[i.op_type for i in result.program.instrs]}"
        )
        # ...that still contains the defective op and still fails.
        assert any(
            ins.op_type == "Mul" for ins in result.program.instrs
        )
        assert has_divergence(result.program, target)
        assert result.original_ops == 12
    # Kernel restored: the shrunk program is healthy again.
    assert not has_divergence(result.program, target)


def test_shrinker_on_generated_program():
    # Same planted bug, but on a generator-drawn graph (the real
    # campaign path): find a seed with a live Mul, break Mul, shrink.
    program = None
    for seed in range(200):
        candidate = generate(seed)
        live = candidate.live_set()
        if any(candidate.instrs[i].op_type == "Mul" for i in live):
            program = candidate
            break
    assert program is not None, "no live Mul in 200 seeds"
    with override_kernel("Mul", _buggy_eager_mul(get_kernel("Mul"))):
        report = run_program(program)
        assert not report.ok
        target = next(
            d.cell for d in report.divergences
            if d.cell.frontend == "eager"
        )
        result = shrink(program, target)
        assert result.ops <= 5
        assert result.ops < result.original_ops
        assert has_divergence(result.program, target)


def test_shrunk_repro_script_fails_buggy_and_passes_fixed(tmp_path):
    program = _padded_mul_program()
    with override_kernel("Mul", _buggy_eager_mul(get_kernel("Mul"))):
        result = shrink(program, EAGER)
        script = result.program.to_python(cell=EAGER)
        path = tmp_path / "seed_424242_eager.py"
        path.write_text(script, encoding="utf-8")
        namespace = {"__name__": "__main__", "__file__": str(path)}
        with pytest.raises(AssertionError):
            exec(compile(script, str(path), "exec"), dict(namespace))
    # Defect fixed (kernel restored): the same script now passes — the
    # property that lets corpus/ scripts double as regression tests.
    exec(compile(script, str(path), "exec"), dict(namespace))


def _seed_638_shape() -> Program:
    """The fuzzer's first real find: a variable initializer that reads
    another variable's state after a placeholder was assigned into it.
    Traced functions pre-run initializers without feeds, so only the
    function cells error — and the fault is *dead code* for the fetch."""
    ph = np.array([0.5, -1.5], dtype=np.float32)
    ones = np.array([1.0, 1.0], dtype=np.float32)
    instrs = [
        Instr(op_type="Placeholder", value=ph,
              out_dtypes=("float32",), out_shapes=((2,),)),
        Instr(op_type="Const", value=ones,
              out_dtypes=("float32",), out_shapes=((2,),)),
        Instr(op_type="VariableV2", inputs=((1, 0),)),
        Instr(op_type="Assign", inputs=((0, 0),), attrs={"var": 2},
              control=("init:2",),
              out_dtypes=("float32",), out_shapes=((2,),)),
        Instr(op_type="AssignAdd", inputs=((1, 0),), attrs={"var": 2},
              control=("op:3",),
              out_dtypes=("float32",), out_shapes=((2,),)),
        Instr(op_type="VariableV2", inputs=((4, 0),)),
    ]
    return Program(instrs=instrs, fetches=[(1, 0)], seed=638)


def test_sweep_is_verified_when_fault_is_dead_for_the_fetches():
    # Regression: the shrinker once applied the dead-code sweep without
    # re-checking the oracle, so this program "shrank" to its one live
    # Const — which of course no longer failed anywhere.
    program = _seed_638_shape()
    report = run_program(program)
    assert not report.ok
    target = next(
        d.cell for d in report.divergences
        if d.cell.frontend == "function"
    )
    result = shrink(program, target)
    assert has_divergence(result.program, target), (
        "shrinker returned a program that does not reproduce"
    )
    kinds = [ins.op_type for ins in result.program.instrs]
    assert "Placeholder" in kinds and kinds.count("VariableV2") == 2


def test_shrink_returns_unchanged_when_nothing_diverges():
    program = _padded_mul_program()
    result = shrink(program, EAGER)
    assert result.rounds == 0
    assert result.ops == program.op_count()


def test_shrinker_is_deterministic():
    program = _padded_mul_program()
    with override_kernel("Mul", _buggy_eager_mul(get_kernel("Mul"))):
        first = shrink(program, EAGER)
        second = shrink(program, EAGER)
    assert [i.op_type for i in first.program.instrs] == [
        i.op_type for i in second.program.instrs
    ]
    assert first.program.fetches == second.program.fetches
