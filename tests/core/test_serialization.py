"""Wire-format tests: varints, tensors, graphs, and the 2 GB limit."""

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro as tf
from repro.core import serialization as ser
from repro.core.tensor import SymbolicValue
from repro.errors import DataLossError, ResourceExhaustedError, UnimplementedError


class TestVarints:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**32, 2**63 - 1])
    def test_roundtrip(self, value):
        encoded = ser.encode_varint(value)
        assert ser.decode_varint(io.BytesIO(encoded)) == value

    def test_negative_rejected(self):
        with pytest.raises(Exception):
            ser.encode_varint(-1)

    def test_truncated_raises(self):
        encoded = ser.encode_varint(300)
        with pytest.raises(DataLossError):
            ser.decode_varint(io.BytesIO(encoded[:1]))

    @given(st.integers(min_value=0, max_value=2**63 - 1))
    @settings(max_examples=100, deadline=None)
    def test_property_roundtrip(self, value):
        assert ser.decode_varint(io.BytesIO(ser.encode_varint(value))) == value


class TestTensorSerialization:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64, np.int32,
                                       np.int64, np.complex128, np.bool_])
    def test_roundtrip_dtypes(self, dtype):
        rng = np.random.default_rng(0)
        arr = (rng.normal(size=(3, 4)) > 0).astype(dtype)
        restored = ser.deserialize_tensor(ser.serialize_tensor(arr))
        np.testing.assert_array_equal(restored, arr)
        assert restored.dtype == arr.dtype

    def test_scalar_roundtrip(self):
        arr = np.float64(3.14)
        restored = ser.deserialize_tensor(ser.serialize_tensor(arr))
        assert restored == pytest.approx(3.14)

    def test_symbolic_roundtrip(self):
        spec = SymbolicValue((1024, 1024), tf.float32)
        restored = ser.deserialize_tensor(ser.serialize_tensor(spec))
        assert restored == spec

    def test_corrupt_payload(self):
        data = ser.serialize_tensor(np.zeros(4, np.float32))
        with pytest.raises(DataLossError):
            ser.deserialize_tensor(data[:-3])

    @given(st.lists(st.floats(-1e6, 1e6), min_size=0, max_size=32))
    @settings(max_examples=50, deadline=None)
    def test_property_roundtrip(self, values):
        arr = np.array(values, dtype=np.float64)
        restored = ser.deserialize_tensor(ser.serialize_tensor(arr))
        np.testing.assert_array_equal(restored, arr)


class TestGraphSerialization:
    def _sample_graph(self):
        g = tf.Graph(seed=9)
        with g.as_default():
            with g.device("/job:worker/task:0/device:gpu:0"):
                a = tf.random_uniform([4, 4], seed=1, name="a")
            b = tf.constant(np.eye(4, dtype=np.float32), name="b")
            c = tf.matmul(a, b, name="c")
            with g.control_dependencies([c.op]):
                tf.no_op(name="done")
        return g

    def test_roundtrip_preserves_structure(self):
        g = self._sample_graph()
        restored = ser.deserialize_graph(ser.serialize_graph(g))
        assert [op.name for op in restored.operations] == [
            op.name for op in g.operations
        ]
        c = restored.get_operation_by_name("c")
        assert c.type == "MatMul"
        assert [t.name for t in c.inputs] == ["a:0", "b:0"]
        done = restored.get_operation_by_name("done")
        assert [d.name for d in done.control_inputs] == ["c"]
        assert restored.seed == 9

    def test_roundtrip_preserves_devices_and_attrs(self):
        g = self._sample_graph()
        restored = ser.deserialize_graph(ser.serialize_graph(g))
        a = restored.get_operation_by_name("a")
        assert a.device == "/job:worker/task:0/device:gpu:0"
        assert a.get_attr("seed") == 1
        b = restored.get_operation_by_name("b")
        np.testing.assert_array_equal(b.get_attr("value"), np.eye(4))

    def test_restored_graph_executes(self):
        g = self._sample_graph()
        restored = ser.deserialize_graph(ser.serialize_graph(g))
        # Strip distributed placement for a local run.
        c_local = restored.get_tensor_by_name("b:0")
        with tf.Session(graph=restored) as sess:
            result = sess.run(c_local)
        np.testing.assert_array_equal(result, np.eye(4))

    def test_two_gb_limit_enforced(self):
        g = tf.Graph()
        with g.as_default():
            tf.constant(np.zeros(1024, np.float64), name="payload")
        with pytest.raises(ResourceExhaustedError, match="limit"):
            ser.serialize_graph(g, limit=1024)

    def test_graphdef_size_counts_constants(self):
        g1 = tf.Graph()
        with g1.as_default():
            tf.constant(np.zeros(10, np.float64))
        g2 = tf.Graph()
        with g2.as_default():
            tf.constant(np.zeros(10000, np.float64))
        assert ser.graphdef_size(g2) > ser.graphdef_size(g1) + 70000

    def test_dataset_attr_not_serializable(self):
        from repro.core.ops.data_ops import Dataset

        g = tf.Graph()
        with g.as_default():
            Dataset.range(3).make_one_shot_iterator().get_next()
        with pytest.raises(UnimplementedError):
            ser.serialize_graph(g)

    def test_bad_magic(self):
        with pytest.raises(DataLossError):
            ser.deserialize_graph(b"XXXX" + b"\x00" * 10)
