"""Unit tests for Graph: scopes, naming, collections, lookups."""

import pytest

import repro as tf
from repro.core.graph import GraphKeys, get_default_graph, reset_default_graph
from repro.errors import FailedPreconditionError, InvalidArgumentError, NotFoundError


class TestDefaultGraph:
    def test_as_default_stacks(self):
        g1 = tf.Graph()
        g2 = tf.Graph()
        with g1.as_default():
            assert get_default_graph() is g1
            with g2.as_default():
                assert get_default_graph() is g2
            assert get_default_graph() is g1

    def test_reset_default_graph(self):
        before = get_default_graph()
        tf.constant(1.0, graph=before)
        reset_default_graph()
        after = get_default_graph()
        assert after is not before
        assert len(after.operations) == 0

    def test_reset_inside_scope_raises(self):
        with tf.Graph().as_default():
            with pytest.raises(FailedPreconditionError):
                reset_default_graph()


class TestNaming:
    def test_unique_names(self):
        g = tf.Graph()
        with g.as_default():
            a = tf.constant(1.0, name="x")
            b = tf.constant(2.0, name="x")
        assert a.op.name == "x"
        assert b.op.name == "x_1"

    def test_name_scope_prefixes(self):
        g = tf.Graph()
        with g.as_default():
            with g.name_scope("layer"):
                c = tf.constant(1.0, name="w")
        assert c.op.name == "layer/w"

    def test_nested_scopes(self):
        g = tf.Graph()
        with g.as_default():
            with g.name_scope("a"):
                with g.name_scope("b"):
                    c = tf.constant(1.0, name="c")
        assert c.op.name == "a/b/c"

    def test_repeated_scope_uniquified(self):
        g = tf.Graph()
        with g.as_default():
            with g.name_scope("s"):
                x = tf.constant(1.0, name="v")
            with g.name_scope("s"):
                y = tf.constant(1.0, name="v")
        assert x.op.name == "s/v"
        assert y.op.name == "s_1/v"

    def test_empty_scope_name_rejected(self):
        g = tf.Graph()
        with pytest.raises(InvalidArgumentError):
            with g.name_scope(""):
                pass


class TestDeviceScopes:
    def test_device_applies_to_ops(self):
        g = tf.Graph()
        with g.as_default():
            with g.device("/gpu:0"):
                c = tf.constant(1.0)
        assert c.op.device == "/gpu:0"

    def test_nested_device_innermost_wins(self):
        g = tf.Graph()
        with g.as_default():
            with g.device("/cpu:0"):
                with g.device("/job:ps/task:0"):
                    c = tf.constant(1.0)
        assert c.op.device == "/job:ps/task:0"

    def test_device_none_clears(self):
        g = tf.Graph()
        with g.as_default():
            with g.device("/gpu:0"):
                with g.device(None):
                    c = tf.constant(1.0)
        assert c.op.device == ""


class TestControlDependencies:
    def test_control_deps_recorded(self):
        g = tf.Graph()
        with g.as_default():
            a = tf.constant(1.0)
            with g.control_dependencies([a]):
                b = tf.constant(2.0)
        assert a.op in b.op.control_inputs

    def test_nested_control_deps_accumulate(self):
        g = tf.Graph()
        with g.as_default():
            a = tf.constant(1.0)
            b = tf.constant(2.0)
            with g.control_dependencies([a]):
                with g.control_dependencies([b]):
                    c = tf.constant(3.0)
        assert set(c.op.control_inputs) == {a.op, b.op}

    def test_bad_control_dep_rejected(self):
        g = tf.Graph()
        with pytest.raises(InvalidArgumentError):
            with g.control_dependencies([42]):
                pass


class TestLookupAndLifecycle:
    def test_get_operation_by_name(self):
        g = tf.Graph()
        with g.as_default():
            c = tf.constant(1.0, name="target")
        assert g.get_operation_by_name("target") is c.op
        with pytest.raises(NotFoundError):
            g.get_operation_by_name("ghost")

    def test_get_tensor_by_name(self):
        g = tf.Graph()
        with g.as_default():
            c = tf.constant(1.0, name="t")
        assert g.get_tensor_by_name("t:0") is c
        with pytest.raises(InvalidArgumentError):
            g.get_tensor_by_name("t")  # missing index
        with pytest.raises(InvalidArgumentError):
            g.get_tensor_by_name("t:5")

    def test_finalize_blocks_mutation(self):
        g = tf.Graph()
        with g.as_default():
            tf.constant(1.0)
        g.finalize()
        with pytest.raises(FailedPreconditionError):
            tf.constant(2.0, graph=g)

    def test_cross_graph_inputs_rejected(self):
        g1, g2 = tf.Graph(), tf.Graph()
        with g1.as_default():
            a = tf.constant(1.0)
        with g2.as_default():
            b = tf.constant(2.0)
        with pytest.raises(InvalidArgumentError):
            tf.add(a, b)

    def test_collections(self):
        g = tf.Graph()
        g.add_to_collection("things", 1)
        g.add_to_collection("things", 2)
        assert g.get_collection("things") == [1, 2]
        assert g.get_collection("missing") == []

    def test_version_bumps_per_op(self):
        g = tf.Graph()
        v0 = g.version
        with g.as_default():
            tf.constant(1.0)
        assert g.version == v0 + 1

    def test_variables_collection(self):
        g = tf.Graph()
        with g.as_default():
            v = tf.Variable(1.0, name="v")
        assert v in g.get_collection(GraphKeys.GLOBAL_VARIABLES)
