"""FIFO queues and the Dataset input pipeline."""

import numpy as np
import pytest

import repro as tf
from repro.core.ops.data_ops import Dataset
from repro.errors import InvalidArgumentError, OutOfRangeError


class TestFIFOQueue:
    def test_enqueue_dequeue_order(self):
        g = tf.Graph()
        with g.as_default():
            q = tf.FIFOQueue(8, [tf.float32], shapes=[[]])
            x = tf.placeholder(tf.float32, shape=[])
            enq = q.enqueue(x)
            deq = q.dequeue()
        with tf.Session(graph=g) as sess:
            for value in (1.0, 2.0, 3.0):
                sess.run(enq, feed_dict={x: value})
            assert [sess.run(deq) for _ in range(3)] == [1.0, 2.0, 3.0]

    def test_queue_size(self):
        g = tf.Graph()
        with g.as_default():
            q = tf.FIFOQueue(8, [tf.float32], shapes=[[]])
            enq = q.enqueue(tf.constant(1.0))
            size = q.size()
        with tf.Session(graph=g) as sess:
            assert sess.run(size) == 0
            sess.run(enq)
            sess.run(enq)
            assert sess.run(size) == 2

    def test_multi_component(self):
        g = tf.Graph()
        with g.as_default():
            q = tf.FIFOQueue(4, [tf.int64, tf.float64], shapes=[[], [2]])
            enq = q.enqueue([
                tf.constant(7, dtype=tf.int64),
                tf.constant(np.array([1.5, 2.5])),
            ])
            idx, vec = q.dequeue()
        with tf.Session(graph=g) as sess:
            sess.run(enq)
            i, v = sess.run([idx, vec])
        assert i == 7
        np.testing.assert_allclose(v, [1.5, 2.5])

    def test_dequeue_blocks_until_enqueue(self):
        """A dequeue issued first must wait for a later enqueue."""
        g = tf.Graph()
        with g.as_default():
            q = tf.FIFOQueue(4, [tf.float32], shapes=[[]])
            enq = q.enqueue(tf.constant(5.0))
            deq = q.dequeue()
        sess = tf.Session(graph=g)
        env = sess.env
        results = {}

        def consumer():
            value = yield from sess.run_gen(deq)
            results["value"] = value
            results["time"] = env.now

        def producer():
            yield env.timeout(1.0)
            yield from sess.run_gen(enq)

        env.process(consumer())
        env.process(producer())
        env.run()
        assert results["value"] == pytest.approx(5.0)
        assert results["time"] >= 1.0

    def test_close_drains_then_out_of_range(self):
        g = tf.Graph()
        with g.as_default():
            q = tf.FIFOQueue(4, [tf.float32], shapes=[[]])
            enq = q.enqueue(tf.constant(1.0))
            deq = q.dequeue()
            close = q.close()
        with tf.Session(graph=g) as sess:
            sess.run(enq)
            sess.run(close)
            assert sess.run(deq) == pytest.approx(1.0)  # drains
            with pytest.raises(OutOfRangeError):
                sess.run(deq)

    def test_enqueue_after_close_cancelled(self):
        g = tf.Graph()
        with g.as_default():
            q = tf.FIFOQueue(4, [tf.float32], shapes=[[]])
            enq = q.enqueue(tf.constant(1.0))
            close = q.close()
        with tf.Session(graph=g) as sess:
            sess.run(close)
            with pytest.raises(tf.errors.CancelledError):
                sess.run(enq)

    def test_component_count_mismatch(self):
        g = tf.Graph()
        with g.as_default():
            q = tf.FIFOQueue(4, [tf.float32, tf.float32])
            with pytest.raises(InvalidArgumentError):
                q.enqueue(tf.constant(1.0))

    def test_dtype_mismatch(self):
        g = tf.Graph()
        with g.as_default():
            q = tf.FIFOQueue(4, [tf.float32], shapes=[[]])
            with pytest.raises(InvalidArgumentError):
                q.enqueue(tf.constant(1.0, dtype=tf.float64))

    def test_shared_name_shares_state(self):
        g = tf.Graph()
        with g.as_default():
            q1 = tf.FIFOQueue(4, [tf.float32], shapes=[[]], shared_name="shared")
            q2 = tf.FIFOQueue(4, [tf.float32], shapes=[[]], shared_name="shared")
            enq = q1.enqueue(tf.constant(3.0))
            deq = q2.dequeue()
        with tf.Session(graph=g) as sess:
            sess.run(enq)
            assert sess.run(deq) == pytest.approx(3.0)


class TestDataset:
    def test_from_tensor_slices_single(self):
        data = np.arange(5, dtype=np.int64)
        ds = Dataset.from_tensor_slices(data)
        assert [int(x) for x in ds.as_python_list()] == [0, 1, 2, 3, 4]

    def test_from_tensor_slices_tuple(self):
        idx = np.arange(3, dtype=np.int64)
        vals = np.array([[1.0], [2.0], [3.0]])
        ds = Dataset.from_tensor_slices((idx, vals))
        elements = ds.as_python_list()
        assert len(elements) == 3
        assert int(elements[1][0]) == 1

    def test_length_mismatch_rejected(self):
        with pytest.raises(InvalidArgumentError):
            Dataset.from_tensor_slices((np.arange(3), np.arange(4)))

    def test_shard_partitions_disjointly(self):
        ds = Dataset.range(10)
        shards = [ds.shard(3, i).as_python_list() for i in range(3)]
        flattened = sorted(int(x) for shard in shards for x in shard)
        assert flattened == list(range(10))
        assert [int(x) for x in shards[1]] == [1, 4, 7]

    def test_shard_bad_index(self):
        with pytest.raises(InvalidArgumentError):
            Dataset.range(10).shard(3, 3)

    def test_repeat_and_take(self):
        ds = Dataset.range(2).repeat(3)
        assert [int(x) for x in ds.as_python_list()] == [0, 1, 0, 1, 0, 1]
        assert len(Dataset.range(100).take(7).as_python_list()) == 7

    def test_map(self):
        ds = Dataset.range(4).map(
            lambda x: np.asarray(x * 2, dtype=np.int64),
            element_spec=[(tf.int64, [])],
        )
        assert [int(x) for x in ds.as_python_list()] == [0, 2, 4, 6]

    def test_batch(self):
        ds = Dataset.range(5).batch(2)
        batches = ds.as_python_list()
        assert [len(b) for b in batches] == [2, 2, 1]

    def test_batch_drop_remainder(self):
        ds = Dataset.range(5).batch(2, drop_remainder=True)
        assert len(ds.as_python_list()) == 2

    def test_iterator_get_next_in_session(self):
        g = tf.Graph()
        with g.as_default():
            ds = Dataset.range(3)
            nxt = ds.make_one_shot_iterator().get_next()
        with tf.Session(graph=g) as sess:
            values = [int(sess.run(nxt)) for _ in range(3)]
            assert values == [0, 1, 2]
            with pytest.raises(OutOfRangeError):
                sess.run(nxt)

    def test_two_iterators_are_independent(self):
        g = tf.Graph()
        with g.as_default():
            ds = Dataset.range(3)
            n1 = ds.make_one_shot_iterator().get_next()
            n2 = ds.make_one_shot_iterator().get_next()
        with tf.Session(graph=g) as sess:
            assert int(sess.run(n1)) == 0
            assert int(sess.run(n2)) == 0  # fresh iterator state
            assert int(sess.run(n1)) == 1

    def test_multicomponent_get_next(self):
        g = tf.Graph()
        with g.as_default():
            ds = Dataset.from_tensor_slices(
                (np.arange(2, dtype=np.int64), np.array([10.0, 20.0]))
            )
            idx, val = ds.make_one_shot_iterator().get_next()
        with tf.Session(graph=g) as sess:
            i, v = sess.run([idx, val])
        assert int(i) == 0 and float(v) == 10.0
