"""Compiled executor lane: plan-level kernel fusion.

The contract under test is strict: with ``kernel_fusion`` on, fetch
values AND simulated time must be byte-identical to the unfused plan —
in both executor lanes, with and without generated-source compute, and
whether chains run through the per-member cursor or the merged
single-event path.
"""

import gc
import weakref

import numpy as np
import pytest

import repro as tf
import repro.core.executor as executor_mod
from repro.core.metadata import RunMetadata
from repro.core.optimizer import OptimizerOptions
from repro.core.optimizer.kernel_fusion import fuse_kernel_chains
from repro.core.partition import build_plan
from repro.core.placement import Placer
from repro.core.session import SessionConfig


def make_placer(gpus: int = 1):
    return Placer(
        {("localhost", 0): {"cpu": 1, "gpu": gpus}},
        default_job="localhost",
        default_task=0,
    )


def fused_plan(graph, fetch_tensors=(), fetch_ops=(), gpus=1,
               codegen=False, fast_path=True, kernel_fusion=True,
               feeds=None):
    options = OptimizerOptions(
        kernel_fusion=kernel_fusion, kernel_fusion_codegen=codegen
    )
    return build_plan(
        graph,
        list(fetch_ops),
        list(fetch_tensors),
        feeds or {},
        make_placer(gpus),
        client_device="/job:localhost/task:0/device:cpu:0",
        run_id=1,
        optimizer_options=options,
        fast_path=fast_path,
    )


def fused_items(plan):
    return [i for i in plan.items if i.kind == "fused"]


def member_names(item):
    return [s.member.op.name for s in item.compiled.steps]


def fusion_config(kernel_fusion=True, codegen=False, fast_path=True,
                  shape_only=False):
    config = SessionConfig(shape_only=shape_only)
    config.graph_optimization = True
    config.executor_fast_path = fast_path
    config.optimizer.kernel_fusion = kernel_fusion
    config.optimizer.kernel_fusion_codegen = codegen
    return config


CHAIN_X = np.linspace(0.1, 1.0, 16, dtype=np.float32).reshape(4, 4)
CHAIN_FEED = {"x:0": CHAIN_X}


def chain_graph():
    """A linear pure chain (everything downstream of the matmul fuses).

    Fed through a placeholder so constant folding cannot collapse it
    before the fusion pass runs.
    """
    g = tf.Graph()
    with g.as_default():
        x = tf.placeholder(tf.float32, (4, 4), name="x")
        a = tf.matmul(x, x, name="mm")
        b = tf.multiply(a, a, name="mul")
        c = tf.add(b, b, name="add")
        d = tf.exp(c, name="exp")
    return g, d


def run_session(graph, fetch, config, feed=None):
    md = RunMetadata()
    with tf.Session(graph=graph, config=config) as sess:
        out = sess.run(fetch, feed_dict=feed or {}, run_metadata=md)
    return out, md


def run_chain(config):
    """Run the canonical chain graph under ``config``."""
    g, d = chain_graph()
    return run_session(g, d, config, feed=CHAIN_FEED)


# ---------------------------------------------------------------------------
# chain formation
# ---------------------------------------------------------------------------

class TestChainFormation:
    def test_linear_chain_fused(self):
        g, d = chain_graph()
        plan = fused_plan(g, fetch_tensors=[d], feeds=CHAIN_FEED)
        chains = fused_items(plan)
        assert len(chains) == 1
        assert member_names(chains[0]) == ["mm", "mul", "add", "exp"]
        assert plan.compiled_items == 1
        assert plan.fused_op_count == 4

    def test_pass_stats_detail(self):
        g, d = chain_graph()
        plan = fused_plan(g, fetch_tensors=[d], feeds=CHAIN_FEED)
        stats = {s.name: s for s in plan.pass_stats}["kernel_fusion"]
        assert stats.detail["chains"] == 1
        assert stats.detail["fused_ops"] == 4
        assert stats.detail["longest_chain"] == 4
        assert stats.detail["codegen"] is False

    def test_disabled_by_default(self):
        g, d = chain_graph()
        plan = build_plan(
            g, [], [d], {}, make_placer(),
            client_device="/job:localhost/task:0/device:cpu:0",
            run_id=1, optimizer_options=OptimizerOptions(),
        )
        assert not fused_items(plan)
        assert plan.compiled_items == 0

    def test_fused_item_sits_at_head_slot(self):
        # The fused item must occupy its head's plan position so initial
        # ready-list order (and therefore device FIFO order) is unchanged.
        g = tf.Graph()
        with g.as_default():
            x = tf.placeholder(tf.float32, (4, 4), name="x")
            a = tf.exp(x, name="head")
            b = tf.sqrt(a, name="tail")
            y = tf.random_uniform([4, 4], name="rand")
            out = tf.add(b, y, name="out")
        plan = fused_plan(g, fetch_tensors=[out], feeds=CHAIN_FEED)
        kinds = [i.kind for i in plan.items]
        chains = fused_items(plan)
        assert len(chains) == 1
        # rand is an op created after head in the graph; the fused chain
        # must still precede it in the plan just as head did.
        names = [getattr(i.op, "name", None) or i.kind for i in plan.items]
        assert names.index("fused") < names.index("rand")
        assert kinds.count("fused") == 1


class TestChainLegality:
    def test_stateful_breaks_chain(self):
        g = tf.Graph()
        with g.as_default():
            v = tf.Variable(np.ones(4, np.float32), name="v")
            x = tf.placeholder(tf.float32, (4,), name="x")
            a = tf.multiply(v.value(), x, name="mul")
            assign = tf.assign(v, a, name="assign")
            b = tf.add(assign, 1.0, name="add")
        plan = fused_plan(g, fetch_tensors=[b], fetch_ops=[assign.op],
                          feeds={"x:0": np.ones(4, np.float32)})
        for item in fused_items(plan):
            assert "assign" not in member_names(item)
            assert "v" not in member_names(item)

    def test_random_op_not_fused(self):
        # RandomUniform is registered non-pure: re-running it inside a
        # compiled chain would draw fresh randomness.
        g = tf.Graph()
        with g.as_default():
            r = tf.random_uniform([8], name="rand")
            a = tf.exp(r, name="exp")
            b = tf.sqrt(a, name="log")
        plan = fused_plan(g, fetch_tensors=[b])
        for item in fused_items(plan):
            assert "rand" not in member_names(item)

    def test_cross_device_breaks_chain(self):
        g = tf.Graph()
        with g.as_default():
            with tf.device("/device:gpu:0"):
                x = tf.placeholder(tf.float32, (4, 4), name="x")
                a = tf.exp(x, name="on_gpu")
                a2 = tf.negative(a, name="on_gpu2")
            with tf.device("/device:cpu:0"):
                b = tf.sqrt(a2, name="on_cpu")
                c = tf.add(b, 1.0, name="add_cpu")
        plan = fused_plan(g, fetch_tensors=[c], feeds=CHAIN_FEED)
        for item in fused_items(plan):
            names = member_names(item)
            assert not (
                ("on_gpu" in names or "on_gpu2" in names)
                and ("on_cpu" in names or "add_cpu" in names)
            )

    def test_side_input_must_be_ancestor_of_tail(self):
        # mul reads a const that is NOT upstream of mm, so [mm, mul]
        # would make the fused item ready later than mm was — illegal.
        g = tf.Graph()
        with g.as_default():
            x = tf.placeholder(tf.float32, (4, 4), name="x")
            a = tf.matmul(x, x, name="mm")
            b = tf.multiply(a, 0.5, name="mul")
            c = tf.add(b, 1.0, name="add")
            d = tf.exp(c, name="exp")
        plan = fused_plan(g, fetch_tensors=[d], feeds=CHAIN_FEED)
        chains = fused_items(plan)
        assert len(chains) == 1
        # Only the suffix whose side inputs are all chain-internal or
        # upstream of the running tail may fuse.
        assert member_names(chains[0]) == ["add", "exp"]

    def test_legacy_lane_requires_sole_consumer(self):
        # mid-chain output observed by an external op: fast-path plans
        # fuse through it (the cursor publishes member outputs), legacy
        # plans must break the chain there.
        g = tf.Graph()
        with g.as_default():
            x = tf.placeholder(tf.float32, (4, 4), name="x")
            a = tf.exp(x, name="a")
            b = tf.sqrt(a, name="b")
            c = tf.negative(b, name="c")
            observer = tf.add(b, 1.0, name="observer")
            out = tf.add(c, observer, name="out")
        fast = fused_plan(g, fetch_tensors=[out], fast_path=True,
                          feeds=CHAIN_FEED)
        legacy = fused_plan(g, fetch_tensors=[out], fast_path=False,
                            feeds=CHAIN_FEED)
        fast_members = [member_names(i) for i in fused_items(fast)]
        assert ["a", "b", "c"] in fast_members
        for names in (member_names(i) for i in fused_items(legacy)):
            # b has two consumers: no legacy chain may continue past it.
            assert names.index("b") == len(names) - 1 if "b" in names \
                else True


# ---------------------------------------------------------------------------
# execution equivalence: values and simulated time
# ---------------------------------------------------------------------------

LANES = [
    pytest.param(True, False, id="fast-interpreted"),
    pytest.param(True, True, id="fast-codegen"),
    pytest.param(False, False, id="legacy-interpreted"),
    pytest.param(False, True, id="legacy-codegen"),
]


class TestExecutionEquivalence:
    @pytest.mark.parametrize("fast_path,codegen", LANES)
    def test_linear_chain_identical(self, fast_path, codegen):
        base, base_md = run_chain(
            fusion_config(kernel_fusion=False, fast_path=fast_path))
        out, md = run_chain(
            fusion_config(codegen=codegen, fast_path=fast_path))
        assert out.tobytes() == base.tobytes()
        assert md.end_time == base_md.end_time
        assert md.compiled_items == 1 and md.fused_op_count == 4
        assert base_md.compiled_items == 0

    @pytest.mark.parametrize("fast_path,codegen", LANES)
    def test_multi_consumer_graph_identical(self, fast_path, codegen):
        # Mid-chain outputs observed externally plus a fetched mid value.
        g = tf.Graph()
        with g.as_default():
            x = tf.placeholder(tf.float32, (3, 4), name="x")
            a = tf.exp(x, name="a")
            b = tf.multiply(a, a, name="b")
            c = tf.add(b, 1.0, name="c")
            side = tf.negative(b, name="side")
            out = tf.add(c, side, name="out")
        fetches = [out, b]
        feed = {"x:0": np.linspace(-1.0, 1.0, 12, dtype=np.float32)
                .reshape(3, 4)}
        base, base_md = run_session(
            g, fetches, fusion_config(kernel_fusion=False,
                                      fast_path=fast_path), feed=feed)
        got, md = run_session(
            g, fetches, fusion_config(codegen=codegen,
                                      fast_path=fast_path), feed=feed)
        for lhs, rhs in zip(got, base):
            assert np.asarray(lhs).tobytes() == np.asarray(rhs).tobytes()
        assert md.end_time == base_md.end_time

    def test_control_dep_consumer_identical(self):
        g = tf.Graph()
        with g.as_default():
            x = tf.placeholder(tf.float32, (8,), name="x")
            a = tf.exp(x, name="a")
            b = tf.sqrt(a, name="b")
            with g.control_dependencies([b.op]):
                gated = tf.constant(np.float32(7.0), name="gated")
            out = tf.add(b, gated, name="out")
        feed = {"x:0": np.ones(8, np.float32)}
        base, base_md = run_session(
            g, out, fusion_config(kernel_fusion=False), feed=feed)
        got, md = run_session(g, out, fusion_config(), feed=feed)
        assert got.tobytes() == base.tobytes()
        assert md.end_time == base_md.end_time

    def test_feeds_into_chain_identical(self):
        g = tf.Graph()
        with g.as_default():
            x = tf.placeholder(tf.float32, (4, 4), name="x")
            a = tf.matmul(x, x, name="mm")
            b = tf.exp(a, name="exp")
            c = tf.sqrt(b, name="log")
        feed = {"x:0": np.linspace(0.5, 2.0, 16, dtype=np.float32)
                .reshape(4, 4)}
        base, base_md = run_session(g, c,
                                    fusion_config(kernel_fusion=False),
                                    feed=feed)
        got, md = run_session(g, c, fusion_config(), feed=feed)
        assert got.tobytes() == base.tobytes()
        assert md.end_time == base_md.end_time

    def test_kernel_error_surfaces_identically(self):
        # Shapes left open so the bad matmul is only discovered by the
        # kernel at execution time — inside a compiled chain when fused.
        g = tf.Graph()
        with g.as_default():
            x = tf.placeholder(tf.float32, None, name="x")
            a = tf.matmul(x, x, name="bad_mm")
            b = tf.exp(a, name="exp")
        feed = {"x:0": np.ones((2, 3), np.float32)}  # 2x3 @ 2x3: invalid
        errors = {}
        for kf in (False, True):
            with pytest.raises(Exception) as info:
                run_session(g, b, fusion_config(kernel_fusion=kf),
                            feed=feed)
            errors[kf] = type(info.value)
        assert errors[True] is errors[False]


# ---------------------------------------------------------------------------
# merged single-event path
# ---------------------------------------------------------------------------

class TestMergedPath:
    def test_merged_fires_on_quiesced_device(self):
        base, base_md = run_chain(fusion_config(kernel_fusion=False))
        got, md = run_chain(fusion_config())
        assert md.merged_chains == 1
        assert got.tobytes() == base.tobytes()
        assert md.end_time == base_md.end_time

    def test_merged_counter_zero_when_disabled(self):
        _, md = run_chain(fusion_config(kernel_fusion=False))
        assert md.merged_chains == 0

    def test_plan_blockers_cover_fifo_capable_items(self):
        g, d = chain_graph()
        plan = fused_plan(g, fetch_tensors=[d], feeds=CHAIN_FEED)
        [fused] = fused_items(plan)
        assert fused.compiled.mergeable is True
        assert fused.uid in plan.chain_blockers
        # Every counted blocker is reachable via some item's unblocks.
        counted = sum(
            1 for it in plan.items
            if it.unblocks and fused.uid in it.unblocks
        )
        assert counted == plan.chain_blockers[fused.uid]

    def test_concurrent_device_work_falls_back_to_cursor(self):
        # Two independent chains on one device: whichever dispatches
        # second sees the first still in flight and must not merge
        # unless its blockers have drained. Either way the results and
        # clock must match the unfused run exactly.
        g = tf.Graph()
        with g.as_default():
            x = tf.placeholder(tf.float32, (8, 8), name="x")
            a1 = tf.matmul(x, x, name="mm1")
            b1 = tf.exp(a1, name="exp1")
            a2 = tf.matmul(x, x, name="mm2")
            b2 = tf.sqrt(tf.add(a2, 1.0, name="add2"), name="log2")
            out = tf.add(b1, b2, name="out")
        feed = {"x:0": np.full((8, 8), 0.25, np.float32)}
        base, base_md = run_session(
            g, out, fusion_config(kernel_fusion=False), feed=feed)
        got, md = run_session(g, out, fusion_config(), feed=feed)
        assert got.tobytes() == base.tobytes()
        assert md.end_time == base_md.end_time
        assert md.compiled_items >= 1

    def test_fault_injection_disables_merged_path(self):
        # With an injector installed the dispatcher must use the cursor
        # (it re-checks task liveness before every member) even though
        # no fault ever fires.
        from repro.apps.common import build_cluster, task_device
        from repro.simnet.faults import FaultPlan

        def run(with_injector, kernel_fusion=True):
            handle = build_cluster("tegner-k420", {"worker": 1})
            g = tf.Graph()
            with g.as_default():
                with g.device(task_device("worker", 0, "cpu", 0)):
                    x = tf.placeholder(tf.float32, (4, 4), name="x")
                    a = tf.matmul(x, x, name="mm")
                    b = tf.exp(a, name="exp")
                    c = tf.sqrt(b, name="sqrt")
            if with_injector:
                tf.FaultInjector(FaultPlan()).install(handle.machine)
            config = fusion_config(kernel_fusion=kernel_fusion)
            md = RunMetadata()
            sess = tf.Session(handle.server("worker", 0), graph=g,
                              config=config)
            out = sess.run(c, feed_dict=CHAIN_FEED, run_metadata=md)
            return out, md

        base, base_md = run(False, kernel_fusion=False)
        fused, fused_md = run(False)
        faulty, faulty_md = run(True)
        assert faulty_md.merged_chains == 0  # cursor under injection
        assert fused_md.compiled_items == faulty_md.compiled_items >= 1
        assert faulty.tobytes() == fused.tobytes() == base.tobytes()
        assert faulty_md.end_time == fused_md.end_time == base_md.end_time


# ---------------------------------------------------------------------------
# codegen mode
# ---------------------------------------------------------------------------

class TestCodegen:
    def test_source_attached_and_interpreted_parity(self):
        g, d = chain_graph()
        plain = fused_plan(g, fetch_tensors=[d], codegen=False)
        gen = fused_plan(g, fetch_tensors=[d], codegen=True)
        [pc] = fused_items(plain)
        [gc_item] = fused_items(gen)
        assert pc.compiled.source is None
        src = gc_item.compiled.source
        assert src is not None and src.startswith("def compute(")
        # One kernel call per member, with the member op types inlined
        # as comments in chain order.
        for pos, step in enumerate(gc_item.compiled.steps):
            assert f"# member {pos}: {step.op.type}" in src
        stats = {s.name: s for s in gen.pass_stats}["kernel_fusion"]
        assert stats.detail["codegen"] is True

    def test_codegen_values_match_interpreted(self):
        interp, md_i = run_chain(fusion_config(codegen=False))
        gen, md_g = run_chain(fusion_config(codegen=True))
        assert gen.tobytes() == interp.tobytes()
        assert md_g.end_time == md_i.end_time
        assert md_g.merged_chains == md_i.merged_chains == 1


# ---------------------------------------------------------------------------
# verifier integration
# ---------------------------------------------------------------------------

class TestVerifier:
    def test_fused_plan_passes_verifier(self):
        from repro.analysis.plan_verifier import verify_plan

        g, d = chain_graph()
        plan = fused_plan(g, fetch_tensors=[d], feeds=CHAIN_FEED)
        report = verify_plan(plan)
        assert not report.errors

    def test_short_chain_rejected(self):
        from repro.analysis.plan_verifier import verify_plan

        g, d = chain_graph()
        plan = fused_plan(g, fetch_tensors=[d], feeds=CHAIN_FEED)
        [fused] = fused_items(plan)
        chain = fused.compiled
        chain.steps = chain.steps[:1]  # corrupt: single-member chain
        report = verify_plan(plan)
        assert any("fused" in f.rule for f in report.errors)


# ---------------------------------------------------------------------------
# registry-derived inline dispatch (executor._INLINE_OPS)
# ---------------------------------------------------------------------------

class TestInlineOpsRegistryView:
    def test_view_agrees_with_registry_for_every_op(self):
        from repro.core.kernels import registry

        for op_type in registry.registered_op_types():
            assert (op_type in executor_mod._INLINE_OPS) == \
                registry.is_inline(op_type), op_type

    def test_historic_inline_set_unchanged(self):
        # The registry flags must reproduce the executor's original
        # hard-coded zero-duration set exactly — growing it silently
        # would change device FIFO behaviour for the new op.
        from repro.core.kernels import registry

        assert registry.inline_op_types() == frozenset({
            "Const", "ExpandDims", "Identity", "NoOp", "Placeholder",
            "Reshape", "Squeeze", "VariableV2",
        })

    def test_non_strings_never_match(self):
        assert None not in executor_mod._INLINE_OPS
        assert 42 not in executor_mod._INLINE_OPS

    def test_inline_ops_have_plain_zero_cost_kernels(self):
        import inspect as _inspect

        from repro.core.kernels import registry

        for op_type in registry.inline_op_types():
            assert registry.has_kernel(op_type), op_type
            assert not registry.is_graph_only(op_type), op_type
            kernel = registry.get_kernel(op_type)
            assert not _inspect.isgeneratorfunction(kernel), op_type


# ---------------------------------------------------------------------------
# metadata accounting
# ---------------------------------------------------------------------------

class TestMetadata:
    def test_counters_roundtrip(self):
        _, md = run_chain(fusion_config())
        assert md.compiled_items == 1
        assert md.fused_op_count == 4
        assert md.merged_chains == 1
        # The plan schedules the chain as one item.
        assert md.plan_items < md.plan_items + md.fused_op_count

    def test_fast_path_items_count_members(self):
        # Each member completing still counts one fast-path item, so the
        # accounting matches the unfused run.
        _, base_md = run_chain(fusion_config(kernel_fusion=False))
        _, md = run_chain(fusion_config())
        assert md.fast_path_items == base_md.fast_path_items
