"""Execution tests for the op library: every op checked against NumPy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

import repro as tf
from repro.core.tensor import SymbolicValue
from repro.errors import FailedPreconditionError, InvalidArgumentError


def run_op(build, shape_only=False, seed=7):
    """Build a graph via ``build()`` and run its returned fetches."""
    g = tf.Graph(seed=seed)
    with g.as_default():
        fetches = build()
    config = tf.SessionConfig(shape_only=shape_only)
    with tf.Session(graph=g, config=config) as sess:
        return sess.run(fetches)


class TestElementwise:
    @pytest.mark.parametrize("fn,np_fn", [
        (tf.add, np.add),
        (tf.subtract, np.subtract),
        (tf.multiply, np.multiply),
        (tf.divide, np.divide),
        (tf.maximum, np.maximum),
        (tf.minimum, np.minimum),
    ])
    def test_binary_matches_numpy(self, fn, np_fn):
        a = np.array([[1.0, -2.0], [3.5, 4.0]], dtype=np.float32)
        b = np.array([[2.0, 2.0], [0.5, -1.0]], dtype=np.float32)
        result = run_op(lambda: fn(tf.constant(a), tf.constant(b)))
        np.testing.assert_allclose(result, np_fn(a, b), rtol=1e-6)

    def test_broadcasting(self):
        a = np.ones((3, 1), dtype=np.float32)
        b = np.arange(4, dtype=np.float32)
        result = run_op(lambda: tf.add(tf.constant(a), tf.constant(b)))
        np.testing.assert_allclose(result, a + b)

    def test_mixed_dtype_promotes(self):
        result = run_op(
            lambda: tf.add(
                tf.constant(1, dtype=tf.int32), tf.constant(2.5, dtype=tf.float64)
            )
        )
        assert result.dtype == np.float64
        assert result == pytest.approx(3.5)

    @pytest.mark.parametrize("fn,np_fn", [
        (tf.negative, np.negative),
        (tf.square, np.square),
        (tf.sqrt, np.sqrt),
    ])
    def test_unary_matches_numpy(self, fn, np_fn):
        x = np.array([1.0, 4.0, 9.0], dtype=np.float64)
        result = run_op(lambda: fn(tf.constant(x)))
        np.testing.assert_allclose(result, np_fn(x))

    @given(hnp.arrays(np.float32, hnp.array_shapes(max_dims=2, max_side=6),
                      elements=st.floats(-100, 100, width=32)))
    @settings(max_examples=20, deadline=None)
    def test_property_add_self_is_double(self, x):
        result = run_op(lambda: tf.add(tf.constant(x), tf.constant(x)))
        np.testing.assert_allclose(result, 2 * x, rtol=1e-5)


class TestMatMul:
    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(5, 7)).astype(np.float32)
        b = rng.normal(size=(7, 3)).astype(np.float32)
        result = run_op(lambda: tf.matmul(tf.constant(a), tf.constant(b)))
        np.testing.assert_allclose(result, a @ b, rtol=1e-5)

    def test_transpose_flags(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(7, 5)).astype(np.float64)
        b = rng.normal(size=(3, 7)).astype(np.float64)
        result = run_op(
            lambda: tf.matmul(
                tf.constant(a), tf.constant(b), transpose_a=True, transpose_b=True
            )
        )
        np.testing.assert_allclose(result, a.T @ b.T)

    def test_matrix_vector(self):
        a = np.arange(6, dtype=np.float64).reshape(2, 3)
        v = np.array([1.0, 2.0, 3.0])
        result = run_op(lambda: tf.matmul(tf.constant(a), tf.constant(v)))
        np.testing.assert_allclose(result, a @ v)

    def test_inner_dim_mismatch(self):
        g = tf.Graph()
        with g.as_default():
            with pytest.raises(InvalidArgumentError):
                tf.matmul(
                    tf.constant(np.zeros((2, 3), np.float32)),
                    tf.constant(np.zeros((4, 5), np.float32)),
                )

    def test_dot(self):
        x = np.arange(8, dtype=np.float64)
        y = np.arange(8, dtype=np.float64)[::-1].copy()
        result = run_op(lambda: tf.dot(tf.constant(x), tf.constant(y)))
        assert result == pytest.approx(np.dot(x, y))


class TestReductions:
    def test_reduce_sum_all(self):
        x = np.arange(12, dtype=np.float32).reshape(3, 4)
        assert run_op(lambda: tf.reduce_sum(tf.constant(x))) == pytest.approx(66.0)

    def test_reduce_sum_axis(self):
        x = np.arange(12, dtype=np.float64).reshape(3, 4)
        result = run_op(lambda: tf.reduce_sum(tf.constant(x), axis=0))
        np.testing.assert_allclose(result, x.sum(axis=0))

    def test_reduce_mean_keepdims(self):
        x = np.arange(6, dtype=np.float64).reshape(2, 3)
        result = run_op(lambda: tf.reduce_mean(tf.constant(x), axis=1, keepdims=True))
        np.testing.assert_allclose(result, x.mean(axis=1, keepdims=True))

    def test_reduce_max(self):
        x = np.array([3.0, -1.0, 7.0])
        assert run_op(lambda: tf.reduce_max(tf.constant(x))) == pytest.approx(7.0)

    def test_add_n(self):
        xs = [np.full(3, float(i)) for i in range(4)]
        result = run_op(lambda: tf.add_n([tf.constant(x) for x in xs]))
        np.testing.assert_allclose(result, sum(xs))


class TestArrayOps:
    def test_reshape_with_minus_one(self):
        x = np.arange(12, dtype=np.float32)
        result = run_op(lambda: tf.reshape(tf.constant(x), [3, -1]))
        assert result.shape == (3, 4)

    def test_reshape_bad_count(self):
        g = tf.Graph()
        with g.as_default():
            with pytest.raises(InvalidArgumentError):
                tf.reshape(tf.constant(np.zeros(10, np.float32)), [3, 4])

    def test_transpose(self):
        x = np.arange(6, dtype=np.float64).reshape(2, 3)
        result = run_op(lambda: tf.transpose(tf.constant(x)))
        np.testing.assert_allclose(result, x.T)

    def test_concat_and_split_roundtrip(self):
        x = np.arange(12, dtype=np.float32).reshape(2, 6)

        def build():
            parts = tf.split(tf.constant(x), 3, axis=1)
            return tf.concat(parts, axis=1)

        np.testing.assert_allclose(run_op(build), x)

    def test_stack(self):
        xs = [np.full((2,), float(i), dtype=np.float64) for i in range(3)]
        result = run_op(lambda: tf.stack([tf.constant(x) for x in xs]))
        np.testing.assert_allclose(result, np.stack(xs))

    def test_slice(self):
        x = np.arange(20, dtype=np.float32).reshape(4, 5)
        result = run_op(lambda: tf.slice_(tf.constant(x), [1, 2], [2, 3]))
        np.testing.assert_allclose(result, x[1:3, 2:5])

    def test_fill_zeros_ones(self):
        z, o = run_op(lambda: [tf.zeros([2, 2]), tf.ones([3], dtype=tf.float64)])
        np.testing.assert_allclose(z, np.zeros((2, 2)))
        np.testing.assert_allclose(o, np.ones(3))

    def test_cast(self):
        result = run_op(lambda: tf.cast(tf.constant([1.9, -1.9]), tf.int32))
        np.testing.assert_array_equal(result, np.array([1, -1], dtype=np.int32))

    def test_squeeze_expand_dims(self):
        x = np.zeros((2, 1, 3), dtype=np.float32)
        sq, ex = run_op(lambda: [
            tf.squeeze(tf.constant(x), axis=1),
            tf.expand_dims(tf.constant(x), axis=0),
        ])
        assert sq.shape == (2, 3)
        assert ex.shape == (1, 2, 1, 3)


class TestRandomOps:
    def test_uniform_range_and_shape(self):
        result = run_op(lambda: tf.random_uniform([100], minval=2.0, maxval=5.0))
        assert result.shape == (100,)
        assert result.min() >= 2.0
        assert result.max() < 5.0

    def test_deterministic_given_seeds(self):
        def build():
            return tf.random_uniform([8], seed=11)

        a = run_op(build, seed=3)
        b = run_op(build, seed=3)
        np.testing.assert_array_equal(a, b)

    def test_different_graph_seed_changes_values(self):
        def build():
            return tf.random_uniform([8], seed=11)

        a = run_op(build, seed=3)
        b = run_op(build, seed=4)
        assert not np.array_equal(a, b)

    def test_successive_runs_draw_fresh_values(self):
        g = tf.Graph(seed=5)
        with g.as_default():
            r = tf.random_normal([4])
        with tf.Session(graph=g) as sess:
            first = sess.run(r)
            second = sess.run(r)
        assert not np.array_equal(first, second)

    def test_normal_moments(self):
        result = run_op(lambda: tf.random_normal([5000], mean=1.0, stddev=2.0))
        assert result.mean() == pytest.approx(1.0, abs=0.15)
        assert result.std() == pytest.approx(2.0, abs=0.15)

    def test_int_dtype_rejected(self):
        g = tf.Graph()
        with g.as_default():
            with pytest.raises(InvalidArgumentError):
                tf.random_uniform([2], dtype=tf.int32)


class TestFFTOps:
    def test_fft_matches_numpy(self):
        rng = np.random.default_rng(2)
        x = (rng.normal(size=64) + 1j * rng.normal(size=64)).astype(np.complex128)
        result = run_op(lambda: tf.fft(tf.constant(x)))
        np.testing.assert_allclose(result, np.fft.fft(x), rtol=1e-10)

    def test_ifft_inverts_fft(self):
        rng = np.random.default_rng(3)
        x = (rng.normal(size=32) + 1j * rng.normal(size=32)).astype(np.complex128)
        result = run_op(lambda: tf.ifft(tf.fft(tf.constant(x))))
        np.testing.assert_allclose(result, x, atol=1e-12)

    def test_real_input_rejected(self):
        g = tf.Graph()
        with g.as_default():
            with pytest.raises(InvalidArgumentError):
                tf.fft(tf.constant(np.zeros(4, np.float64)))


class TestVariables:
    def test_init_read_assign(self):
        g = tf.Graph()
        with g.as_default():
            v = tf.Variable(np.array([1.0, 2.0]), name="v")
            update = tf.assign(v, tf.constant(np.array([5.0, 6.0])))
        with tf.Session(graph=g) as sess:
            sess.run(v.initializer)
            np.testing.assert_allclose(sess.run(v), [1.0, 2.0])
            sess.run(update.op)
            np.testing.assert_allclose(sess.run(v), [5.0, 6.0])

    def test_uninitialized_read_fails(self):
        g = tf.Graph()
        with g.as_default():
            v = tf.Variable(1.0, name="v")
        with tf.Session(graph=g) as sess:
            with pytest.raises(FailedPreconditionError):
                sess.run(v)

    def test_assign_add_sub(self):
        g = tf.Graph()
        with g.as_default():
            v = tf.Variable(10.0, name="v")
            inc = tf.assign_add(v, tf.constant(2.5))
            dec = tf.assign_sub(v, tf.constant(1.0))
        with tf.Session(graph=g) as sess:
            sess.run(v.initializer)
            sess.run(inc.op)
            sess.run(inc.op)
            sess.run(dec.op)
            assert sess.run(v) == pytest.approx(14.0)

    def test_global_variables_initializer(self):
        g = tf.Graph()
        with g.as_default():
            a = tf.Variable(1.0, name="a")
            b = tf.Variable(2.0, name="b")
            init = tf.global_variables_initializer(graph=g)
        with tf.Session(graph=g) as sess:
            sess.run(init)
            assert sess.run(a) == pytest.approx(1.0)
            assert sess.run(b) == pytest.approx(2.0)

    def test_state_persists_across_sessions_on_same_server(self):
        g = tf.Graph()
        with g.as_default():
            v = tf.Variable(3.0, name="v")
        sess1 = tf.Session(graph=g)
        sess1.run(v.initializer)
        # Second session against the same master sees the same resources.
        sess2 = tf.Session(sess1.master, graph=g)
        assert sess2.run(v) == pytest.approx(3.0)


class TestShapeOnlyMode:
    def test_matmul_symbolic(self):
        def build():
            a = tf.random_uniform([128, 64])
            b = tf.random_uniform([64, 32])
            return tf.matmul(a, b)

        result = run_op(build, shape_only=True)
        assert isinstance(result, SymbolicValue)
        assert result.shape == (128, 32)

    def test_constants_stay_concrete(self):
        result = run_op(lambda: tf.constant([1.0, 2.0]), shape_only=True)
        np.testing.assert_allclose(result, [1.0, 2.0])

    def test_mixed_symbolic_propagates(self):
        def build():
            big = tf.random_uniform([64])
            small = tf.constant(np.ones(64, dtype=np.float32))
            return tf.add(big, small)

        result = run_op(build, shape_only=True)
        assert isinstance(result, SymbolicValue)
        assert result.shape == (64,)
