"""Checkpointing, timeline, and debugger tooling."""

import json

import numpy as np
import pytest

import repro as tf
from repro.core.checkpoint import Saver, latest_checkpoint, read_checkpoint
from repro.core.debugger import DebugSession, has_inf_or_nan
from repro.core.metadata import RunMetadata, RunOptions
from repro.core.timeline import Timeline
from repro.errors import NotFoundError


class TestSaver:
    def test_save_restore_roundtrip(self, tmp_path):
        g = tf.Graph()
        with g.as_default():
            v = tf.Variable(np.array([1.0, 2.0, 3.0]), name="state")
            w = tf.Variable(np.float64(7.0), name="scalar")
            bump = tf.assign_add(v, tf.constant(np.ones(3)))
            saver = Saver(graph=g)
        with tf.Session(graph=g) as sess:
            sess.run(tf.global_variables_initializer(graph=g))
            sess.run(bump.op)
            path = saver.save(sess, str(tmp_path / "ckpt"), global_step=10)
            sess.run(bump.op)  # diverge
            np.testing.assert_allclose(sess.run(v), [3.0, 4.0, 5.0])
            saver.restore(sess, path)
            np.testing.assert_allclose(sess.run(v), [2.0, 3.0, 4.0])
            assert sess.run(w) == pytest.approx(7.0)

    def test_restart_into_fresh_session(self, tmp_path):
        """Checkpoint-restart: a brand-new session resumes from disk."""
        g = tf.Graph()
        with g.as_default():
            v = tf.Variable(np.zeros(4), name="x")
            step = tf.assign_add(v, tf.constant(np.ones(4)))
            saver = Saver(graph=g)
        with tf.Session(graph=g) as sess:
            sess.run(v.initializer)
            for _ in range(5):
                sess.run(step.op)
            path = saver.save(sess, str(tmp_path / "ckpt"))
        # New session = new simulated machine = fresh (empty) state.
        with tf.Session(graph=g) as fresh:
            saver.restore(fresh, path)
            np.testing.assert_allclose(fresh.run(v), np.full(4, 5.0))

    def test_missing_variable_in_checkpoint(self, tmp_path):
        g1 = tf.Graph()
        with g1.as_default():
            tf.Variable(1.0, name="only")
            saver1 = Saver(graph=g1)
        with tf.Session(graph=g1) as sess:
            sess.run(tf.global_variables_initializer(graph=g1))
            path = saver1.save(sess, str(tmp_path / "ckpt"))
        g2 = tf.Graph()
        with g2.as_default():
            tf.Variable(1.0, name="other")
            saver2 = Saver(graph=g2)
        with tf.Session(graph=g2) as sess:
            with pytest.raises(NotFoundError):
                saver2.restore(sess, path)

    def test_read_checkpoint_contents(self, tmp_path):
        g = tf.Graph()
        with g.as_default():
            tf.Variable(np.array([9.0]), name="v")
            saver = Saver(graph=g)
        with tf.Session(graph=g) as sess:
            sess.run(tf.global_variables_initializer(graph=g))
            path = saver.save(sess, str(tmp_path / "ckpt"))
        contents = read_checkpoint(path)
        np.testing.assert_allclose(contents["v"], [9.0])

    def test_latest_checkpoint(self, tmp_path):
        g = tf.Graph()
        with g.as_default():
            tf.Variable(1.0, name="v")
            saver = Saver(graph=g)
        with tf.Session(graph=g) as sess:
            sess.run(tf.global_variables_initializer(graph=g))
            saver.save(sess, str(tmp_path / "ckpt"), global_step=1)
            best = saver.save(sess, str(tmp_path / "ckpt"), global_step=12)
        assert latest_checkpoint(str(tmp_path)) == best
        assert latest_checkpoint(str(tmp_path / "nowhere")) is None

    def test_missing_file(self):
        g = tf.Graph()
        with g.as_default():
            tf.Variable(1.0, name="v")
            saver = Saver(graph=g)
        with tf.Session(graph=g) as sess:
            with pytest.raises(NotFoundError):
                saver.restore(sess, "/nonexistent/ckpt")


class TestTimeline:
    def _traced_metadata(self):
        g = tf.Graph()
        with g.as_default():
            with g.device("/cpu:0"):
                a = tf.random_uniform([128, 128])
            with g.device("/gpu:0"):
                c = tf.matmul(a, a)
        sess = tf.Session(graph=g)
        meta = RunMetadata()
        sess.run(c, options=RunOptions(trace_level=RunOptions.FULL_TRACE),
                 run_metadata=meta)
        return meta

    def test_chrome_trace_is_valid_json(self):
        trace = Timeline(self._traced_metadata()).generate_chrome_trace_format()
        doc = json.loads(trace)
        events = doc["traceEvents"]
        assert any(e.get("cat") == "MatMul" for e in events)
        assert any(e.get("cat") == "transfer" for e in events)
        complete = [e for e in events if e.get("ph") == "X"]
        assert all(e["dur"] > 0 for e in complete)

    def test_device_summary(self):
        summary = Timeline(self._traced_metadata()).device_summary()
        assert any("gpu" in device for device in summary)
        assert all(busy >= 0 for busy in summary.values())

    def test_save_to_file(self, tmp_path):
        path = tmp_path / "trace.json"
        Timeline(self._traced_metadata()).save(str(path))
        assert json.loads(path.read_text())["traceEvents"]


class TestDebugger:
    def test_watches_matching_tensors(self):
        g = tf.Graph()
        with g.as_default():
            a = tf.constant(2.0, name="watched/a")
            b = tf.constant(3.0, name="other")
            c = tf.multiply(a, b, name="watched/prod")
        sess = DebugSession(tf.Session(graph=g), watch_patterns=["watched/*"])
        result = sess.run(c)
        assert result == pytest.approx(6.0)
        names = {entry.tensor_name for entry in sess.dump.entries}
        assert "watched/a:0" in names
        assert "watched/prod:0" in names
        assert "other:0" not in names

    def test_has_inf_or_nan_filter(self):
        g = tf.Graph()
        with g.as_default():
            zero = tf.constant(0.0, name="zero")
            bad = tf.divide(tf.constant(1.0), zero, name="bad")
        sess = DebugSession(
            tf.Session(graph=g),
            watch_patterns=["*"],
            tensor_filters={"has_inf_or_nan": has_inf_or_nan},
        )
        with np.errstate(divide="ignore"):
            sess.run(bad)
        flagged = sess.dump.find_triggered("has_inf_or_nan")
        assert any(e.tensor_name == "bad:0" for e in flagged)

    def test_filter_helper_edge_cases(self):
        assert not has_inf_or_nan("x", np.array([1, 2], dtype=np.int64))
        assert has_inf_or_nan("x", np.array([np.nan]))
        assert has_inf_or_nan("x", np.array([np.inf]))
        assert not has_inf_or_nan("x", np.array([1.0]))

    def test_dump_pattern_query(self):
        g = tf.Graph()
        with g.as_default():
            c = tf.constant(1.0, name="q/c")
        sess = DebugSession(tf.Session(graph=g), watch_patterns=["q/*"])
        sess.run(c)
        assert len(sess.dump.tensors("q/*")) == 1
        assert len(sess.dump.tensors("nope/*")) == 0
