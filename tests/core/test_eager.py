"""Eager execution mode."""

import numpy as np
import pytest

from repro import eager
from repro.errors import InvalidArgumentError, UnimplementedError


@pytest.fixture()
def ctx():
    return eager.EagerContext(seed=7)


class TestEagerMath:
    def test_arithmetic(self, ctx):
        a = ctx.constant([1.0, 2.0])
        b = ctx.constant([3.0, 4.0])
        np.testing.assert_allclose(ctx.add(a, b), [4.0, 6.0])
        np.testing.assert_allclose(ctx.subtract(a, b), [-2.0, -2.0])
        np.testing.assert_allclose(ctx.multiply(a, b), [3.0, 8.0])
        np.testing.assert_allclose(ctx.divide(b, a), [3.0, 2.0])

    def test_matmul_matches_numpy(self, ctx):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(3, 5)).astype(np.float64)
        b = rng.normal(size=(5, 2)).astype(np.float64)
        np.testing.assert_allclose(ctx.matmul(a, b), a @ b)
        np.testing.assert_allclose(
            ctx.matmul(a, a, transpose_b=True), a @ a.T
        )

    def test_dot_and_reductions(self, ctx):
        x = np.arange(6, dtype=np.float64)
        assert ctx.dot(x, x) == pytest.approx(np.dot(x, x))
        m = x.reshape(2, 3)
        np.testing.assert_allclose(ctx.reduce_sum(m, axis=0), m.sum(axis=0))
        assert ctx.reduce_sum(m) == pytest.approx(m.sum())

    def test_sqrt(self, ctx):
        np.testing.assert_allclose(ctx.sqrt(np.array([4.0, 9.0])), [2.0, 3.0])

    def test_fft_roundtrip(self, ctx):
        rng = np.random.default_rng(1)
        x = rng.normal(size=16) + 1j * rng.normal(size=16)
        np.testing.assert_allclose(ctx.fft(x), np.fft.fft(x), atol=1e-12)
        np.testing.assert_allclose(ctx.ifft(ctx.fft(x)), x, atol=1e-12)


class TestEagerRandom:
    def test_shapes_and_ranges(self, ctx):
        u = ctx.random_uniform([50], minval=1.0, maxval=2.0)
        assert u.shape == (50,)
        assert u.min() >= 1.0 and u.max() < 2.0

    def test_successive_calls_differ(self, ctx):
        a = ctx.random_uniform([16])
        b = ctx.random_uniform([16])
        assert not np.array_equal(a, b)

    def test_same_seed_reproduces(self):
        c1 = eager.EagerContext(seed=3)
        c2 = eager.EagerContext(seed=3)
        np.testing.assert_array_equal(
            c1.random_normal([8]), c2.random_normal([8])
        )


class TestEagerVariables:
    def test_variable_lifecycle(self, ctx):
        handle = ctx.variable(np.zeros(3), name="state")
        np.testing.assert_allclose(ctx.read(handle), [0, 0, 0])
        ctx.assign_add(handle, np.ones(3))
        ctx.assign_add(handle, np.ones(3))
        np.testing.assert_allclose(ctx.read(handle), [2, 2, 2])
        ctx.assign(handle, np.full(3, 9.0))
        np.testing.assert_allclose(ctx.read(handle), [9, 9, 9])

    def test_duplicate_name_rejected(self, ctx):
        ctx.variable(1.0, name="v")
        with pytest.raises(InvalidArgumentError):
            ctx.variable(2.0, name="v")

    def test_unknown_handle(self, ctx):
        with pytest.raises(InvalidArgumentError):
            ctx.read("ghost")


class TestRegistryDrivenCoverage:
    """Coverage comes from the kernel registry, not a hand whitelist."""

    def test_flat_namespace_ops_available(self, ctx):
        np.testing.assert_allclose(
            ctx.reshape(np.arange(6.0), [2, 3]).shape, (2, 3))
        np.testing.assert_allclose(
            ctx.concat([np.ones(2), np.zeros(2)], axis=0), [1, 1, 0, 0])
        np.testing.assert_allclose(ctx.zeros([2]), [0, 0])
        np.testing.assert_allclose(
            ctx.maximum(np.array([1.0, 5.0]), np.array([3.0, 2.0])), [3, 5])
        np.testing.assert_allclose(
            ctx.add_n([np.ones(2), np.ones(2)]), [2, 2])
        assert ctx.no_op() is None

    def test_unknown_op_raises_attribute_error(self, ctx):
        with pytest.raises(AttributeError):
            ctx.definitely_not_an_op

    def test_user_arrays_not_frozen_or_mutated(self, ctx):
        a = np.eye(3)
        ctx.matmul(a, a)
        assert a.flags.writeable

    def test_arrays_in_list_arguments_not_frozen(self, ctx):
        a = np.ones(2)
        b = np.zeros(2)
        ctx.concat([a, b], axis=0)
        ctx.add_n([a, b])
        ctx.stack([a, b])
        a += 1  # would raise ValueError if concat had frozen the array
        np.testing.assert_allclose(a, [2.0, 2.0])

    def test_stateful_graph_objects_rejected(self, ctx):
        with pytest.raises(UnimplementedError):
            ctx.Variable(1.0)
        with pytest.raises(UnimplementedError):
            ctx.FIFOQueue(2, [np.float32], shapes=[[]])


class TestEagerLimits:
    def test_graph_only_ops_rejected(self, ctx):
        with pytest.raises(UnimplementedError):
            ctx.execute("QueueDequeue")
        with pytest.raises(UnimplementedError):
            ctx.execute("IteratorGetNext")
        with pytest.raises(UnimplementedError):
            ctx.execute("ReadTile")

    def test_eager_matches_graph_mode(self, ctx):
        """The same kernels back both modes: results agree exactly."""
        import repro as tf

        rng = np.random.default_rng(5)
        a = rng.normal(size=(4, 4)).astype(np.float32)
        eager_result = ctx.matmul(a, a)
        g = tf.Graph()
        with g.as_default():
            graph_result_t = tf.matmul(tf.constant(a), tf.constant(a))
        with tf.Session(graph=g) as sess:
            graph_result = sess.run(graph_result_t)
        np.testing.assert_array_equal(eager_result, graph_result)
