"""Registry-level op-constraint metadata and kernel override hooks."""

import numpy as np
import pytest

import repro as tf
from repro.core.kernels.registry import (
    declare_op_constraint,
    declared_constraints,
    get_kernel,
    op_constraint,
    override_kernel,
    registered_op_types,
)
from repro.errors import NotFoundError, UnimplementedError


def test_constraints_reference_real_builders_and_ops():
    constraints = declared_constraints()
    assert constraints, "no op constraints declared"
    registered = set(registered_op_types())
    for op_type, constraint in constraints.items():
        assert constraint.op_type == op_type
        assert op_type in registered, (
            f"{op_type} declares a constraint but has no kernel"
        )
        assert hasattr(tf, constraint.builder), (
            f"{op_type}: repro.{constraint.builder} is not a builder"
        )
        lo, hi = constraint.arity
        assert 0 <= lo <= hi


def test_op_constraint_lookup():
    add = op_constraint("Add")
    assert add is not None
    assert add.builder == "add"
    assert add.shape_rule == "elementwise_broadcast"
    assert op_constraint("NoSuchOp") is None


def test_duplicate_constraint_declaration_rejected():
    with pytest.raises(UnimplementedError):
        declare_op_constraint(
            "Add", builder="add", arity=(2, 2),
            shape_rule="elementwise_broadcast",
        )


def test_override_kernel_swaps_and_restores():
    original = get_kernel("Add")

    def fake(op, inputs, ctx):
        return original(op, inputs, ctx)

    with override_kernel("Add", fake) as previous:
        assert previous is original
        assert get_kernel("Add") is fake
    assert get_kernel("Add") is original


def test_override_kernel_restores_on_exception():
    original = get_kernel("Add")
    with pytest.raises(RuntimeError):
        with override_kernel("Add", lambda op, inputs, ctx: None):
            raise RuntimeError("boom")
    assert get_kernel("Add") is original


def test_override_kernel_unknown_op():
    with pytest.raises(NotFoundError):
        with override_kernel("NoSuchOp", lambda op, inputs, ctx: None):
            pass  # pragma: no cover


def _doubled_add():
    original = get_kernel("Add")

    def doubled(op, inputs, ctx):
        outputs, cost = original(op, inputs, ctx)
        if isinstance(outputs[0], np.ndarray):
            outputs = [outputs[0] * 2]
        return outputs, cost

    return doubled


def _add_graph():
    g = tf.Graph()
    with g.as_default():
        c = tf.add(tf.constant(np.float32([1, 2])),
                   tf.constant(np.float32([3, 4])))
    return g, c


def test_override_kernel_changes_execution_results():
    g, c = _add_graph()
    with override_kernel("Add", _doubled_add()):
        with tf.Session(graph=g) as sess:
            assert np.allclose(sess.run(c), [8, 12])
    # Restored kernel, fresh graph: healthy numerics again.
    g2, c2 = _add_graph()
    with tf.Session(graph=g2) as sess:
        assert np.allclose(sess.run(c2), [4, 6])


def test_override_kernel_does_not_invalidate_graph_fold_memos():
    # Constant folding memoizes folded values *on the graph object*, so
    # an override only shows through on graphs first executed under it
    # (why the fuzz harness materializes a fresh graph per cell run).
    g, c = _add_graph()
    with tf.Session(graph=g) as sess:
        assert np.allclose(sess.run(c), [4, 6])
    with override_kernel("Add", _doubled_add()):
        with tf.Session(graph=g) as stale:
            assert np.allclose(stale.run(c), [4, 6])  # memoized fold
        with tf.Session(
            graph=g, config=tf.SessionConfig(graph_optimization=False)
        ) as unfolded:
            assert np.allclose(unfolded.run(c), [8, 12])
