"""Plan-time optimizer: pass units, config switches, and semantics
preservation (optimized vs. unoptimized runs must fetch identical bytes).
"""

import numpy as np
import pytest

import repro as tf
from repro.core.metadata import RunMetadata, RunOptions
from repro.core.optimizer import OptimizerOptions
from repro.core.partition import build_plan

from repro.core.placement import Placer
from repro.errors import InvalidArgumentError


def make_placer(gpus: int = 1):
    return Placer(
        {("localhost", 0): {"cpu": 1, "gpu": gpus}},
        default_job="localhost",
        default_task=0,
    )


def opt_plan(graph, fetch_tensors=(), fetch_ops=(), feeds=None, gpus=1,
             options=None, symbolic=False):
    return build_plan(
        graph,
        list(fetch_ops),
        list(fetch_tensors),
        feeds or {},
        make_placer(gpus),
        client_device="/job:localhost/task:0/device:cpu:0",
        run_id=1,
        optimizer_options=options or OptimizerOptions(),
        symbolic=symbolic,
    )


def op_names(plan):
    return {i.op.name for i in plan.items if i.kind in ("op", "const")}


def stats_by_name(plan):
    return {s.name: s for s in plan.pass_stats}


class TestIdentityCollapse:
    def test_identity_chain_collapsed(self):
        g = tf.Graph()
        with g.as_default():
            a = tf.constant(np.arange(4, dtype=np.float32), name="a")
            b = tf.identity(a, name="b")
            c = tf.identity(b, name="c")
            d = tf.random_uniform([4], name="d")
            out = tf.add(c, d, name="out")
        plan = opt_plan(g, fetch_tensors=[out])
        assert "b" not in op_names(plan) and "c" not in op_names(plan)
        assert stats_by_name(plan)["identity_collapse"].detail["collapsed"] == 2

    def test_fetched_identity_value_survives(self):
        g = tf.Graph()
        with g.as_default():
            a = tf.constant(7.0, name="a")
            b = tf.identity(a, name="b")
        with tf.Session(graph=g) as sess:
            assert sess.run(b) == pytest.approx(7.0)

    def test_cross_device_pinned_identity_kept(self):
        # identity() pinned to another device is a deliberate copy.
        g = tf.Graph()
        with g.as_default():
            with g.device("/cpu:0"):
                a = tf.random_uniform([4], name="a")
            with g.device("/gpu:0"):
                b = tf.identity(a, name="b")
            out = tf.add(b, b, name="out")
        plan = opt_plan(g, fetch_tensors=[out])
        assert "b" in op_names(plan)

    def test_identity_with_control_inputs_kept(self):
        g = tf.Graph()
        with g.as_default():
            side = tf.random_uniform([2], name="side")
            a = tf.constant(1.0, name="a")
            with g.control_dependencies([side]):
                b = tf.identity(a, name="b")
        plan = opt_plan(g, fetch_tensors=[b])
        assert "b" in op_names(plan)
        assert "side" in op_names(plan)


class TestNoOpSplice:
    def test_inner_group_spliced(self):
        g = tf.Graph()
        with g.as_default():
            v = tf.Variable(0.0, name="v")
            w = tf.Variable(0.0, name="w")
            inner = tf.group(v.initializer, w.initializer, name="inner")
            outer = tf.group(inner, name="outer")
        plan = opt_plan(g, fetch_ops=[outer])
        names = op_names(plan)
        assert "outer" in names and "inner" not in names
        # outer must still order after both initializers.
        outer_item = next(i for i in plan.items if i.kind == "op"
                          and i.op.name == "outer")
        dep_names = {d.op.name for d in outer_item.extra_deps}
        assert dep_names == {"v/Assign", "w/Assign"}

    def test_fetched_noop_kept(self):
        g = tf.Graph()
        with g.as_default():
            barrier = tf.no_op(name="barrier")
        plan = opt_plan(g, fetch_ops=[barrier])
        assert "barrier" in op_names(plan)


class TestCSE:
    def test_duplicate_pure_ops_merge(self):
        g = tf.Graph()
        with g.as_default():
            x = tf.random_uniform([8], name="x")
            s1 = tf.square(x, name="s1")
            s2 = tf.square(x, name="s2")
            out = tf.add(s1, s2, name="out")
        plan = opt_plan(g, fetch_tensors=[out])
        names = op_names(plan)
        assert ("s1" in names) != ("s2" in names), "exactly one square survives"
        assert stats_by_name(plan)["common_subexpression"].detail["merged"] == 1

    def test_identical_constants_merge(self):
        g = tf.Graph()
        with g.as_default():
            a = tf.constant(np.ones(4, np.float32), name="a")
            b = tf.constant(np.ones(4, np.float32), name="b")
            r = tf.random_uniform([4], name="r")
            out = tf.add(tf.add(a, r), tf.add(b, r), name="out")
        plan = opt_plan(g, fetch_tensors=[out])
        merged = stats_by_name(plan)["common_subexpression"].detail["merged"]
        assert merged >= 1

    def test_different_attrs_do_not_merge(self):
        g = tf.Graph()
        with g.as_default():
            a = tf.constant(1.0, name="a")
            b = tf.constant(2.0, name="b")
            r = tf.random_uniform([], name="r")
            out = tf.add(tf.add(a, r), tf.add(b, r), name="out")
        plan = opt_plan(g, fetch_tensors=[out])
        assert stats_by_name(plan)["common_subexpression"].detail["merged"] == 0

    def test_different_devices_do_not_merge(self):
        g = tf.Graph()
        with g.as_default():
            x = tf.random_uniform([4], name="x")
            with g.device("/cpu:0"):
                s1 = tf.square(x, name="s1")
            with g.device("/gpu:0"):
                s2 = tf.square(x, name="s2")
            out = tf.add(s1, s2, name="out")
        plan = opt_plan(g, fetch_tensors=[out])
        names = op_names(plan)
        assert "s1" in names and "s2" in names


class TestConstantFolding:
    def test_const_subtree_folds_to_const_item(self):
        g = tf.Graph()
        with g.as_default():
            a = tf.constant(np.eye(3, dtype=np.float32), name="a")
            b = tf.matmul(a, a, name="b")
            r = tf.random_uniform([3, 3], name="r")
            out = tf.add(b, r, name="out")
        plan = opt_plan(g, fetch_tensors=[out])
        b_item = next(i for i in plan.items if i.op is not None
                      and i.op.name == "b")
        assert b_item.kind == "const"
        np.testing.assert_array_equal(b_item.const_values[0],
                                      np.eye(3, dtype=np.float32))
        assert "a" not in op_names(plan), "interior const died in the sweep"

    def test_fed_tensor_blocks_folding(self):
        # Feeding an intermediate cuts the constness of its consumers.
        g = tf.Graph()
        with g.as_default():
            a = tf.constant(2.0, name="a")
            b = tf.multiply(a, tf.constant(10.0, name="ten"), name="b")
        with tf.Session(graph=g) as sess:
            assert sess.run(b) == pytest.approx(20.0)
            assert sess.run(b, feed_dict={a: np.float32(5.0)}) == pytest.approx(50.0)

    def test_control_dep_blocks_folding(self):
        g = tf.Graph()
        with g.as_default():
            side = tf.random_uniform([2], name="side")
            a = tf.constant(3.0, name="a")
            with g.control_dependencies([side]):
                b = tf.multiply(a, a, name="b")
        plan = opt_plan(g, fetch_tensors=[b])
        b_item = next(i for i in plan.items if i.op is not None
                      and i.op.name == "b")
        assert b_item.kind == "op"
        assert "side" in op_names(plan)

    def test_size_cap_blocks_folding(self):
        g = tf.Graph()
        with g.as_default():
            big = tf.fill([64], 1.0, name="big")
            out = tf.add(big, big, name="out")
        small_cap = OptimizerOptions(max_folded_bytes=16)
        plan = opt_plan(g, fetch_tensors=[out], options=small_cap)
        kinds = {i.op.name: i.kind for i in plan.items if i.op is not None}
        assert kinds["out"] == "op"

    def test_symbolic_folding_matches_shape_only_execution(self):
        g = tf.Graph()
        with g.as_default():
            z = tf.zeros([8], name="z")
            out = tf.add(z, z, name="out")
        config = tf.SessionConfig(shape_only=True)
        with tf.Session(graph=g, config=config) as sess:
            value = sess.run(out)
        # Fill folds to a concrete array in symbolic mode too (Const-only
        # subtree), exactly as unoptimized shape-only execution computes it.
        off = tf.SessionConfig(shape_only=True, graph_optimization=False)
        g2 = tf.Graph()
        with g2.as_default():
            z2 = tf.zeros([8], name="z")
            out2 = tf.add(z2, z2, name="out")
        with tf.Session(graph=g2, config=off) as sess:
            reference = sess.run(out2)
        assert type(value) is type(reference)

    def test_fold_memo_reused_across_sessions(self):
        g = tf.Graph()
        with g.as_default():
            a = tf.constant(np.full(4, 2.0, np.float32), name="a")
            b = tf.square(a, name="b")
            r = tf.random_uniform([4], name="r")
            out = tf.add(b, r, name="out")
        opt_plan(g, fetch_tensors=[out])
        memo = getattr(g, "_constant_fold_memo")[False]
        assert "b" in memo
        first = memo["b"]
        opt_plan(g, fetch_tensors=[out])
        assert getattr(g, "_constant_fold_memo")[False]["b"] is first


class TestDependencyPruning:
    def test_redundant_control_edge_dropped(self):
        g = tf.Graph()
        with g.as_default():
            a = tf.random_uniform([4], name="a")
            b = tf.square(a, name="b")
            with g.control_dependencies([a]):  # implied by b's data path
                c = tf.square(b, name="c")
        plan = opt_plan(g, fetch_tensors=[c])
        c_item = next(i for i in plan.items if i.op is not None
                      and i.op.name == "c")
        assert c_item.extra_deps == []
        detail = stats_by_name(plan)["dependency_pruning"].detail
        assert detail["control_edges_dropped"] == 1

    def test_independent_control_edge_kept(self):
        g = tf.Graph()
        with g.as_default():
            side = tf.random_uniform([2], name="side")
            a = tf.random_uniform([4], name="a")
            with g.control_dependencies([side]):
                b = tf.square(a, name="b")
        plan = opt_plan(g, fetch_tensors=[b])
        b_item = next(i for i in plan.items if i.op is not None
                      and i.op.name == "b")
        assert len(b_item.extra_deps) == 1


class TestTransferCoalescing:
    def test_equal_constants_share_one_transfer(self):
        # Same value under different partial device scopes: CSE's
        # requested-device key cannot merge them, post-placement
        # coalescing can.
        g = tf.Graph()
        with g.as_default():
            with g.device("/gpu:0"):
                a = tf.constant(np.ones(8, np.float32), name="a")
            with g.device("/device:GPU:0"):
                b = tf.constant(np.ones(8, np.float32), name="b")
            with g.device("/gpu:0"):
                r = tf.random_uniform([8], name="r")
                out = tf.add(tf.add(a, r), tf.add(b, r), name="out")
        plan = opt_plan(g, fetch_tensors=[out])
        detail = stats_by_name(plan)["transfer_coalescing"].detail
        assert detail.get("constants_merged", 0) == 1

    def test_send_recv_edge_registered(self):
        # Satellite fix: route_value's recv really depends on its send.
        g = tf.Graph()
        with g.as_default():
            with g.device("/cpu:0"):
                a = tf.constant(np.ones(4, np.float32), name="a")
            with g.device("/gpu:0"):
                b = tf.identity(a, name="b")
        plan = build_plan(
            g, [b.op], [], {}, make_placer(),
            client_device="/job:localhost/task:0/device:cpu:0", run_id=1,
        )
        sends = [i for i in plan.items if i.kind == "send"]
        recvs = [i for i in plan.items if i.kind == "recv"]
        assert len(sends) == 1 and len(recvs) == 1
        assert recvs[0].extra_deps == [sends[0]]


class TestConfigSwitches:
    def _graph(self):
        g = tf.Graph()
        with g.as_default():
            a = tf.constant(np.eye(2, dtype=np.float32), name="a")
            b = tf.identity(a, name="b")
            out = tf.matmul(b, b, name="out")
        return g, out

    def test_master_switch_disables_everything(self):
        g, out = self._graph()
        config = tf.SessionConfig(graph_optimization=False)
        with tf.Session(graph=g, config=config) as sess:
            meta = RunMetadata()
            sess.run(out, run_metadata=meta)
        assert meta.pass_stats == []

    def test_each_pass_disables_individually(self):
        g, out = self._graph()
        options = OptimizerOptions(
            dead_code=False, common_subexpression=False,
            constant_folding=False, dependency_pruning=False,
            transfer_coalescing=False,
        )
        plan = opt_plan(g, fetch_tensors=[out], options=options)
        assert plan.pass_stats == []
        names = op_names(plan)
        assert {"a", "b", "out"} <= names

    def test_pass_stats_reported_in_metadata(self):
        g, out = self._graph()
        with tf.Session(graph=g) as sess:
            meta = RunMetadata()
            sess.run(out, run_metadata=meta)
        names = {s.name for s in meta.pass_stats}
        assert "identity_collapse" in names
        assert "constant_folding" in names
        assert meta.plan_items > 0
        assert meta.total_nodes_optimized() >= 1


class TestPlanCacheLRU:
    def test_cache_bounded(self):
        from repro.core.session import _PLAN_CACHE_CAPACITY

        g = tf.Graph()
        with g.as_default():
            consts = [tf.constant(float(i), name=f"c{i}")
                      for i in range(_PLAN_CACHE_CAPACITY + 8)]
        with tf.Session(graph=g) as sess:
            for c in consts:
                sess.run(c)
            assert len(sess._plan_cache) == _PLAN_CACHE_CAPACITY
            # The most-recent entries survived, the oldest were evicted.
            assert sess.run(consts[-1]) == pytest.approx(len(consts) - 1)


class TestFetchSlots:
    def test_mixed_list_with_variable_and_string_names(self):
        g = tf.Graph()
        with g.as_default():
            v = tf.Variable(4.0, name="v")
            c = tf.constant(2.0, name="c")
            barrier = tf.no_op(name="barrier")
        with tf.Session(graph=g) as sess:
            sess.run(v.initializer)
            out = sess.run([v, "c:0", barrier, "barrier", c])
        assert out[0] == pytest.approx(4.0)
        assert out[1] == pytest.approx(2.0)
        assert out[2] is None and out[3] is None
        assert out[4] == pytest.approx(2.0)


class TestExecutorFastPath:
    def test_fast_path_counters(self):
        g = tf.Graph()
        with g.as_default():
            a = tf.constant(np.ones(4, np.float32), name="a")
            b = tf.identity(a, name="b")
        config = tf.SessionConfig(graph_optimization=False)  # keep identity
        with tf.Session(graph=g, config=config) as sess:
            meta = RunMetadata()
            sess.run(b, run_metadata=meta)
        assert meta.fast_path_items > 0

    def test_legacy_lane_off_flag(self):
        g = tf.Graph()
        with g.as_default():
            a = tf.constant(np.ones(4, np.float32), name="a")
            b = tf.identity(a, name="b")
        config = tf.SessionConfig(graph_optimization=False,
                                  executor_fast_path=False)
        with tf.Session(graph=g, config=config) as sess:
            meta = RunMetadata()
            value = sess.run(b, run_metadata=meta)
        assert meta.fast_path_items == 0
        assert meta.process_items == meta.plan_items
        np.testing.assert_array_equal(value, np.ones(4, np.float32))

    def test_errors_propagate_through_fast_path(self):
        g = tf.Graph()
        with g.as_default():
            x = tf.placeholder(tf.float32, shape=[2], name="x")
            y = tf.identity(x, name="y")
        with tf.Session(graph=g) as sess:
            with pytest.raises(InvalidArgumentError, match="feed"):
                sess.run(y)

    def test_oom_still_raised_with_fast_path(self):
        from repro.simnet.gpu import GPUModel

        tiny = GPUModel(
            name="tiny", peak_sp_flops=1e12, peak_dp_flops=5e11,
            mem_bandwidth=1e11, mem_capacity=1024, pcie_rate=1e9,
            launch_overhead=1e-6,
        )
        g = tf.Graph()
        with g.as_default():
            with g.device("/gpu:0"):
                big = tf.fill([1024], 3.0, name="big")  # 4 KB > 1 KB, folded
        config = tf.SessionConfig(gpu_model=tiny)
        with tf.Session(graph=g, config=config) as sess:
            with pytest.raises(tf.errors.ResourceExhaustedError):
                sess.run(big)


def _programs():
    """(name, builder) pairs; builder returns (graph, fetches, feeds)."""

    def mixed_arithmetic():
        g = tf.Graph(seed=3)
        with g.as_default():
            a = tf.constant(np.arange(12, dtype=np.float32).reshape(3, 4))
            b = tf.identity(a, name="b")
            c = tf.reshape(b, [4, 3])
            d = tf.matmul(a, c)
            e = tf.reduce_sum(d)
            r = tf.random_normal([3, 3], seed=5)
            out = tf.add(d, r)
        return g, [out, e], None

    def feeds_and_overrides():
        g = tf.Graph()
        with g.as_default():
            x = tf.placeholder(tf.float32, shape=[4], name="x")
            k = tf.constant(np.full(4, 3.0, np.float32), name="k")
            out = tf.multiply(tf.add(x, k), k, name="out")
        feeds = {"x:0": np.arange(4, dtype=np.float32)}
        return g, out, feeds

    def variables_and_groups():
        g = tf.Graph()
        with g.as_default():
            v = tf.Variable(np.zeros(4, np.float32), name="v")
            bump = tf.assign_add(v, tf.constant(np.ones(4, np.float32)))
            step = tf.group(bump.op, name="step")
        # Sequential runs: init, two steps, then read the variable.
        def run_all(sess):
            sess.run(v.initializer)
            sess.run(step)
            sess.run(step)
            return sess.run(v)

        return g, run_all, None

    def cross_device():
        g = tf.Graph(seed=11)
        with g.as_default():
            with g.device("/cpu:0"):
                a = tf.random_uniform([16, 16], seed=2)
            with g.device("/gpu:0"):
                b = tf.matmul(a, a)
                c = tf.sqrt(tf.square(b))
        return g, c, None

    return [
        ("mixed_arithmetic", mixed_arithmetic),
        ("feeds_and_overrides", feeds_and_overrides),
        ("variables_and_groups", variables_and_groups),
        ("cross_device", cross_device),
    ]


class TestSemanticsPreservation:
    @pytest.mark.parametrize("name,builder", _programs(),
                             ids=[n for n, _ in _programs()])
    def test_optimized_runs_fetch_identical_bytes(self, name, builder):
        values = {}
        for optimize in (True, False):
            g, fetches, feeds = builder()
            config = tf.SessionConfig(graph_optimization=optimize,
                                      executor_fast_path=optimize)
            with tf.Session(graph=g, config=config) as sess:
                if callable(fetches):
                    values[optimize] = fetches(sess)
                else:
                    values[optimize] = sess.run(fetches, feed_dict=feeds)
        on, off = values[True], values[False]
        flat_on = on if isinstance(on, list) else [on]
        flat_off = off if isinstance(off, list) else [off]
        for v_on, v_off in zip(flat_on, flat_off):
            if v_on is None:
                assert v_off is None
                continue
            a, b = np.asarray(v_on), np.asarray(v_off)
            assert a.dtype == b.dtype
            assert a.tobytes() == b.tobytes()

    def test_transfer_counts_identical_where_no_pass_applies(self):
        # No identities, duplicates, constants or redundant deps: the
        # optimized plan must produce exactly the same transfers.
        counts = {}
        for optimize in (True, False):
            g = tf.Graph(seed=9)
            with g.as_default():
                with g.device("/cpu:0"):
                    a = tf.random_uniform([64, 64], seed=4)
                with g.device("/gpu:0"):
                    b = tf.matmul(a, a)
            config = tf.SessionConfig(graph_optimization=optimize,
                                      executor_fast_path=optimize)
            with tf.Session(graph=g, config=config) as sess:
                meta = RunMetadata()
                sess.run(b, options=RunOptions(trace_level=1),
                         run_metadata=meta)
            counts[optimize] = [
                (t.src_device, t.dst_device, t.nbytes) for t in meta.transfers
            ]
        assert counts[True] == counts[False]

    def test_cg_app_concrete_parity(self):
        from repro.apps.cg import run_cg

        results = {
            optimize: run_cg(system="tegner-k80", n=64, num_gpus=2,
                             iterations=40, shape_only=False, seed=7,
                             optimize=optimize)
            for optimize in (True, False)
        }
        on, off = results[True], results[False]
        assert on.solution.tobytes() == off.solution.tobytes()
        assert on.residual == off.residual
        assert on.elapsed == off.elapsed  # no folding applies to CG
        assert on.plan_items <= off.plan_items

    def test_fft_app_concrete_parity(self):
        from repro.apps.fft import run_fft

        results = {
            optimize: run_fft(system="tegner-k420", n=1 << 10, num_tiles=4,
                              num_gpus=2, shape_only=False, seed=3,
                              optimize=optimize)
            for optimize in (True, False)
        }
        on, off = results[True], results[False]
        assert on.spectrum.tobytes() == off.spectrum.tobytes()
        assert on.max_error == off.max_error
