"""Reverse-mode autodiff: finite-difference checks and error contracts."""

import numpy as np
import pytest

import repro as tf
from repro.core.gradients import registered_gradient_op_types
from repro.errors import InvalidArgumentError


def _finite_difference(loss_fn, inputs, index, eps=1e-6):
    """Central-difference d loss / d inputs[index], elementwise."""
    base = [np.array(v, dtype=np.float64) for v in inputs]
    grad = np.zeros_like(base[index])
    for idx in np.ndindex(base[index].shape or (1,)):
        if not base[index].shape:
            idx = ()
        plus = [v.copy() for v in base]
        minus = [v.copy() for v in base]
        plus[index][idx] += eps
        minus[index][idx] -= eps
        grad[idx] = (loss_fn(plus) - loss_fn(minus)) / (2 * eps)
        if not base[index].shape:
            break
    return grad


def check_gradients(build, shapes, positive=False, seed=0, atol=1e-5):
    """Compare tf.gradients against finite differences of the session run.

    ``build`` maps placeholders to a tensor; non-scalar outputs are
    summed into the loss (the extra Sum rides the same machinery).
    """
    rng = np.random.default_rng(seed)
    values = [rng.standard_normal(s) for s in shapes]
    if positive:
        values = [np.abs(v) + 0.5 for v in values]

    g = tf.Graph()
    with g.as_default():
        phs = [tf.placeholder(tf.float64, shape=list(s), name=f"in{i}")
               for i, s in enumerate(shapes)]
        out = build(*phs)
        loss = out if out.shape.rank == 0 else tf.reduce_sum(out, name="to_scalar")
        grads = tf.gradients(loss, phs)
    sess = tf.Session(graph=g)

    def loss_fn(concrete):
        return float(sess.run(loss, feed_dict=dict(zip(phs, concrete))))

    feeds = dict(zip(phs, values))
    for i, grad_t in enumerate(grads):
        assert grad_t is not None, f"no gradient for input {i}"
        analytic = np.asarray(sess.run(grad_t, feed_dict=feeds))
        numeric = _finite_difference(loss_fn, values, i)
        np.testing.assert_allclose(analytic, numeric, atol=atol,
                                   err_msg=f"input {i}")


# One finite-difference case per registered gradient (several per op
# where attrs change the formula). ``test_registry_fully_covered``
# asserts this table keeps up with the registry.
CASES = {
    "Identity": [(lambda x: tf.identity(x), [(2, 3)], False)],
    "Reshape": [(lambda x: tf.square(tf.reshape(x, [6])), [(2, 3)], False)],
    "Add": [
        (lambda x, y: tf.square(tf.add(x, y)), [(2, 3), (2, 3)], False),
        (lambda x, y: tf.square(tf.add(x, y)), [(2, 3), (3,)], False),
        (lambda x, y: tf.square(tf.add(x, y)), [(2, 3), ()], False),
    ],
    "Sub": [
        (lambda x, y: tf.square(tf.subtract(x, y)), [(2, 3), (2, 3)], False),
        (lambda x, y: tf.square(tf.subtract(x, y)), [(), (2, 3)], False),
    ],
    "Mul": [
        (lambda x, y: tf.multiply(x, y), [(2, 3), (2, 3)], False),
        (lambda x, y: tf.multiply(x, y), [(2, 3), (3,)], False),
    ],
    "Div": [
        (lambda x, y: tf.divide(x, y), [(2, 3), (2, 3)], True),
        (lambda x, y: tf.divide(x, y), [(3,), ()], True),
    ],
    "Neg": [(lambda x: tf.square(tf.negative(x)), [(4,)], False)],
    "Square": [(lambda x: tf.square(x), [(2, 3)], False)],
    "Sqrt": [(lambda x: tf.sqrt(x), [(2, 3)], True)],
    "Exp": [(lambda x: tf.exp(x), [(2, 3)], False)],
    "Sigmoid": [
        (lambda x: tf.sigmoid(x), [(2, 3)], False),
        # Logistic-regression shape: sigmoid of an affine score.
        (lambda a, b: tf.square(tf.sigmoid(tf.matmul(a, b))),
         [(3, 2), (2,)], False),
    ],
    "Maximum": [
        (lambda x, y: tf.square(tf.maximum(x, y)), [(2, 3), (2, 3)], False),
        # Broadcasting: the sub-gradient mask must reduce back per input.
        (lambda x, y: tf.square(tf.maximum(x, y)), [(2, 3), (3,)], False),
        (lambda x: tf.maximum(x, 0.5), [(2, 3)], False),  # relu-at-0.5
    ],
    "Concat": [
        (lambda x, y: tf.square(tf.concat([x, y], axis=0)),
         [(2, 3), (1, 3)], False),
        (lambda x, y, z: tf.square(tf.concat([x, y, z], axis=1)),
         [(2, 1), (2, 2), (2, 3)], False),
    ],
    "Slice": [
        (lambda x: tf.square(tf.slice_(x, [1, 0], [2, 2])), [(4, 3)], False),
        (lambda x: tf.square(tf.slice_(x, [1], [2])), [(5,)], False),
        # Fused-bucket shape: slices of one buffer, both differentiated.
        (lambda x: tf.add(
            tf.reduce_sum(tf.square(tf.slice_(x, [0], [2]))),
            tf.reduce_sum(tf.slice_(x, [2], [3]))), [(6,)], False),
    ],
    "AddN": [
        # Repeated argument: contributions must accumulate.
        (lambda x, y: tf.square(tf.add_n([x, y, x])), [(3,), (3,)], False),
    ],
    "Dot": [(lambda x, y: tf.dot(x, y), [(4,), (4,)], False)],
    "MatMul": [
        (lambda a, b: tf.matmul(a, b), [(2, 3), (3, 4)], False),
        (lambda a, b: tf.matmul(a, b, transpose_a=True), [(3, 2), (3, 4)], False),
        (lambda a, b: tf.matmul(a, b, transpose_b=True), [(2, 3), (4, 3)], False),
        (lambda a, b: tf.matmul(a, b, transpose_a=True, transpose_b=True),
         [(3, 2), (4, 3)], False),
        # matrix x vector, both orientations
        (lambda a, b: tf.square(tf.matmul(a, b)), [(2, 3), (3,)], False),
        (lambda a, b: tf.square(tf.matmul(a, b, transpose_a=True)),
         [(3, 2), (3,)], False),
    ],
    "Sum": [
        (lambda x: tf.square(tf.reduce_sum(x)), [(2, 3)], False),
        (lambda x: tf.square(tf.reduce_sum(x, axis=0)), [(2, 3)], False),
        (lambda x: tf.square(tf.reduce_sum(x, axis=(1,), keepdims=True)),
         [(2, 3)], False),
    ],
    "Mean": [
        (lambda x: tf.square(tf.reduce_mean(x)), [(2, 3)], False),
        (lambda x: tf.square(tf.reduce_mean(x, axis=1)), [(2, 3)], False),
        (lambda x: tf.square(tf.reduce_mean(x, axis=0, keepdims=True)),
         [(2, 3)], False),
    ],
}


class TestFiniteDifference:
    @pytest.mark.parametrize(
        "build,shapes,positive",
        [case for cases in CASES.values() for case in cases],
    )
    def test_matches_numeric_gradient(self, build, shapes, positive):
        check_gradients(build, shapes, positive=positive)

    def test_registry_fully_covered(self):
        """Every registered gradient has a finite-difference case."""
        assert set(CASES) == set(registered_gradient_op_types())

    def test_composite_chain(self):
        check_gradients(
            lambda a, b, c: tf.reduce_mean(
                tf.square(tf.subtract(tf.matmul(a, b), c))),
            [(3, 2), (2,), (3,)],
        )


class TestBackwardWalk:
    def test_disconnected_input_gets_none(self):
        g = tf.Graph()
        with g.as_default():
            x = tf.placeholder(tf.float64, [3], name="x")
            z = tf.placeholder(tf.float64, [3], name="z")
            loss = tf.reduce_sum(tf.square(x))
            gx, gz = tf.gradients(loss, [x, z])
        assert gx is not None and gz is None

    def test_fanout_accumulates(self):
        """x used twice: d(x*x)/dx = 2x via two accumulated paths."""
        g = tf.Graph()
        with g.as_default():
            x = tf.placeholder(tf.float64, [3], name="x")
            loss = tf.reduce_sum(tf.multiply(x, x))
            (gx,) = tf.gradients(loss, x)
        sess = tf.Session(graph=g)
        v = np.array([1.0, -2.0, 3.0])
        np.testing.assert_allclose(sess.run(gx, feed_dict={x: v}), 2 * v)

    def test_grad_ys_seed(self):
        g = tf.Graph()
        with g.as_default():
            x = tf.placeholder(tf.float64, [3], name="x")
            y = tf.square(x)
            (gx,) = tf.gradients(y, x, grad_ys=np.array([1.0, 2.0, 3.0]))
        sess = tf.Session(graph=g)
        v = np.array([1.0, 1.0, 1.0])
        np.testing.assert_allclose(
            sess.run(gx, feed_dict={x: v}), 2 * v * np.array([1.0, 2.0, 3.0])
        )

    def test_variables_as_xs(self):
        g = tf.Graph()
        with g.as_default():
            w = tf.Variable(np.array([2.0, 3.0]), name="w")
            loss = tf.reduce_sum(tf.square(w.value()))
            (gw,) = tf.gradients(loss, w)
        sess = tf.Session(graph=g)
        sess.run(w.initializer)
        np.testing.assert_allclose(sess.run(gw), [4.0, 6.0])

    def test_constant_data_branch_needs_no_gradient(self):
        """Ops feeding the loss but independent of xs (e.g. a Stack of
        constant data) must not require registered gradients."""
        g = tf.Graph()
        with g.as_default():
            x = tf.placeholder(tf.float64, [4], name="x")
            data = tf.reshape(tf.stack(
                [tf.constant(np.ones(2)), tf.constant(np.zeros(2))], axis=0
            ), [4])  # Stack has no gradient; it only touches constants
            loss = tf.reduce_sum(tf.multiply(x, data))
            (gx,) = tf.gradients(loss, x)
        sess = tf.Session(graph=g)
        np.testing.assert_allclose(
            sess.run(gx, feed_dict={x: np.zeros(4)}), [1, 1, 0, 0]
        )

    def test_stops_at_xs_without_differentiating_their_producer(self):
        """Gradients with respect to a non-differentiable op's *output*
        are fine: accumulation stops at the x tensor itself."""
        g = tf.Graph()
        with g.as_default():
            a = tf.placeholder(tf.float64, [3], name="a")
            b = tf.placeholder(tf.float64, [3], name="b")
            total = tf.all_reduce([a, b])[0]  # not differentiable through
            loss = tf.reduce_sum(tf.square(total))
            (gt,) = tf.gradients(loss, total)  # ...but d loss/d total is
        sess = tf.Session(graph=g)
        feed = {a: np.array([1.0, 2.0, 3.0]), b: np.array([1.0, 1.0, 1.0])}
        np.testing.assert_allclose(
            sess.run(gt, feed_dict=feed), 2 * np.array([2.0, 3.0, 4.0]))

    def test_intermediate_x_accumulates_without_dead_backward_ops(self):
        """An x produced by a differentiable op: the walk stops at x (no
        gradient subgraph is emitted for its producer)."""
        g = tf.Graph()
        with g.as_default():
            p = tf.placeholder(tf.float64, [2], name="p")
            mid = tf.sqrt(p, name="mid")
            loss = tf.reduce_sum(tf.square(mid))
            ops_before = len(g.operations)
            (gmid,) = tf.gradients(loss, mid)
            emitted = [op.type for op in g.operations[ops_before:]]
        # The Sqrt gradient would emit a Div; stopping at mid must not.
        assert "Div" not in emitted
        sess = tf.Session(graph=g)
        v = np.array([4.0, 9.0])
        np.testing.assert_allclose(
            sess.run(gmid, feed_dict={p: v}), 2 * np.sqrt(v))

    def test_deep_chains_do_not_recurse(self):
        """The backward walk is iterative: graphs deeper than Python's
        recursion limit must differentiate fine."""
        depth = 1500
        g = tf.Graph()
        with g.as_default():
            x = tf.placeholder(tf.float64, [2], name="x")
            t = x
            for _ in range(depth):
                t = tf.identity(t)
            (gx,) = tf.gradients(tf.reduce_sum(t), x)
        sess = tf.Session(graph=g)
        np.testing.assert_allclose(
            sess.run(gx, feed_dict={x: np.zeros(2)}), [1.0, 1.0])

    def test_works_inside_traced_function(self):
        @tf.function
        def value_and_grad(x):
            xt = tf.identity(x)
            loss = tf.reduce_sum(tf.square(xt))
            (gx,) = tf.gradients(loss, xt)
            return loss, gx

        v = np.array([1.0, -2.0])
        loss, grad = value_and_grad(v)
        assert float(loss) == pytest.approx(5.0)
        np.testing.assert_allclose(grad, 2 * v)
        assert value_and_grad.trace_count == 1


class TestErrors:
    def test_collective_is_not_differentiable(self):
        """The regression contract: a clear error, never a KeyError."""
        g = tf.Graph()
        with g.as_default():
            a = tf.placeholder(tf.float64, [4], name="a")
            b = tf.placeholder(tf.float64, [4], name="b")
            totals = tf.all_reduce([a, b])
            loss = tf.reduce_sum(totals[0])
            with pytest.raises(InvalidArgumentError) as excinfo:
                tf.gradients(loss, a)
        message = str(excinfo.value)
        assert "not differentiable" in message
        assert "all_reduce" in message  # names the supported pattern
        assert not isinstance(excinfo.value, KeyError)

    def test_unregistered_op_names_the_registry(self):
        g = tf.Graph()
        with g.as_default():
            x = tf.placeholder(tf.float64, [4], name="x")
            y = tf.stack([x, x], axis=0)  # Stack has no gradient
            with pytest.raises(InvalidArgumentError) as excinfo:
                tf.gradients(tf.reduce_sum(y), x)
        assert "RegisterGradient" in str(excinfo.value)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(InvalidArgumentError):
            tf.RegisterGradient("MatMul")

    def test_mixed_graphs_rejected(self):
        g1, g2 = tf.Graph(), tf.Graph()
        with g1.as_default():
            x = tf.placeholder(tf.float64, [2], name="x")
        with g2.as_default():
            y = tf.placeholder(tf.float64, [2], name="y")
        with pytest.raises(InvalidArgumentError):
            tf.gradients(tf.reduce_sum(y), x)

    def test_scalar_grad_ys_accepted(self):
        g = tf.Graph()
        with g.as_default():
            x = tf.placeholder(tf.float64, [2], name="x")
            (gx,) = tf.gradients(tf.square(x), x, grad_ys=2.0)
        sess = tf.Session(graph=g)
        v = np.array([1.0, -3.0])
        np.testing.assert_allclose(sess.run(gx, feed_dict={x: v}), 4 * v)

    def test_bad_grad_ys_rejected(self):
        g = tf.Graph()
        with g.as_default():
            x = tf.placeholder(tf.float64, [2], name="x")
            y = tf.square(x)
            with pytest.raises(InvalidArgumentError):
                tf.gradients(y, x, grad_ys=object())

    def test_grad_ys_length_mismatch(self):
        g = tf.Graph()
        with g.as_default():
            x = tf.placeholder(tf.float64, [2], name="x")
            y = tf.square(x)
            with pytest.raises(InvalidArgumentError):
                tf.gradients([y], [x], grad_ys=[None, None])


class TestApplyGradients:
    def test_sgd_update(self):
        g = tf.Graph()
        with g.as_default():
            w = tf.Variable(np.array([1.0, 2.0]), name="w")
            loss = tf.reduce_sum(tf.square(w.value()))
            (gw,) = tf.gradients(loss, w)
            updates = tf.apply_gradients([(gw, w)], learning_rate=0.25)
        sess = tf.Session(graph=g)
        sess.run(w.initializer)
        new_w = sess.run(updates[0])
        # w - 0.25 * 2w = 0.5 w
        np.testing.assert_allclose(new_w, [0.5, 1.0])
        np.testing.assert_allclose(sess.run(w.value()), [0.5, 1.0])

    def test_none_gradients_skipped(self):
        g = tf.Graph()
        with g.as_default():
            w = tf.Variable(np.array([1.0]), name="w")
            v = tf.Variable(np.array([5.0]), name="v")
            loss = tf.reduce_sum(tf.square(w.value()))
            grads = tf.gradients(loss, [w, v])
            updates = tf.apply_gradients(zip(grads, [w, v]), 0.1)
        assert len(updates) == 1  # v untouched

    def test_all_none_rejected(self):
        g = tf.Graph()
        with g.as_default():
            w = tf.Variable(np.array([1.0]), name="w")
            with pytest.raises(InvalidArgumentError):
                tf.apply_gradients([(None, w)], 0.1)

    def test_non_variable_rejected(self):
        g = tf.Graph()
        with g.as_default():
            x = tf.placeholder(tf.float64, [1], name="x")
            with pytest.raises(InvalidArgumentError):
                tf.apply_gradients([(x, x)], 0.1)

    def test_momentum_matches_reference(self):
        """Two steps of classic momentum vs the hand-rolled recurrence
        v = m v + g; w -= lr v, byte for byte."""
        m, lr = 0.9, 0.25
        g = tf.Graph()
        with g.as_default():
            w = tf.Variable(np.array([1.0, -2.0]), name="w")
            loss = tf.reduce_sum(tf.square(w.value()))
            (gw,) = tf.gradients(loss, w)
            updates = tf.apply_gradients([(gw, w)], learning_rate=lr,
                                         momentum=m)
        sess = tf.Session(graph=g)
        for v in g.get_collection(tf.GraphKeys.GLOBAL_VARIABLES):
            sess.run(v.initializer)
        ref_w = np.array([1.0, -2.0])
        ref_v = np.zeros(2)
        for _ in range(2):
            got = sess.run(updates[0])
            ref_v = m * ref_v + 2.0 * ref_w
            ref_w = ref_w - lr * ref_v
            assert np.asarray(got).tobytes() == ref_w.tobytes()

    def test_momentum_slot_lands_on_variable_device(self):
        device = "/job:localhost/task:0/device:cpu:0"
        g = tf.Graph()
        with g.as_default():
            with g.device(device):
                w = tf.Variable(np.array([1.0]), name="w")
            loss = tf.reduce_sum(tf.square(w.value()))
            (gw,) = tf.gradients(loss, w)
            tf.apply_gradients([(gw, w)], 0.1, momentum=0.5)
            slots = [
                v for v in g.get_collection(tf.GraphKeys.GLOBAL_VARIABLES)
                if "momentum" in v.name
            ]
        assert len(slots) == 1
        assert slots[0].device == device
        assert slots[0].shape == w.shape and slots[0].dtype == w.dtype

    def test_zero_momentum_adds_no_slots(self):
        g = tf.Graph()
        with g.as_default():
            w = tf.Variable(np.array([1.0]), name="w")
            loss = tf.reduce_sum(tf.square(w.value()))
            (gw,) = tf.gradients(loss, w)
            tf.apply_gradients([(gw, w)], 0.1, momentum=0.0)
        assert len(g.get_collection(tf.GraphKeys.GLOBAL_VARIABLES)) == 1

    def test_negative_momentum_rejected(self):
        g = tf.Graph()
        with g.as_default():
            w = tf.Variable(np.array([1.0]), name="w")
            with pytest.raises(InvalidArgumentError):
                tf.apply_gradients([(w.value(), w)], 0.1, momentum=-0.1)

    def test_minimize_groups_everything(self):
        g = tf.Graph()
        with g.as_default():
            w = tf.Variable(np.array([3.0]), name="w")
            b = tf.Variable(np.array([1.0]), name="b")
            pred = tf.add(w.value(), b.value())
            loss = tf.reduce_sum(tf.square(pred))
            train = tf.minimize(loss, [w, b], learning_rate=0.1)
        sess = tf.Session(graph=g)
        sess.run(w.initializer)
        sess.run(b.initializer)
        sess.run(train)
        # d loss / dw = d loss / db = 2 (w + b) = 8
        np.testing.assert_allclose(sess.run(w.value()), [2.2])
        np.testing.assert_allclose(sess.run(b.value()), [0.2])
