"""Session behaviour: feeds, fetches, placement, errors, metadata."""

import numpy as np
import pytest

import repro as tf
from repro.core.metadata import RunMetadata, RunOptions
from repro.core.placement import DeviceSpec
from repro.errors import InvalidArgumentError, NotFoundError


class TestFetches:
    def test_single_tensor(self):
        g = tf.Graph()
        with g.as_default():
            c = tf.constant(3.0)
        with tf.Session(graph=g) as sess:
            assert sess.run(c) == pytest.approx(3.0)

    def test_list_of_tensors(self):
        g = tf.Graph()
        with g.as_default():
            a = tf.constant(1.0)
            b = tf.constant(2.0)
        with tf.Session(graph=g) as sess:
            va, vb = sess.run([a, b])
        assert va == pytest.approx(1.0)
        assert vb == pytest.approx(2.0)

    def test_operation_fetch_returns_none(self):
        g = tf.Graph()
        with g.as_default():
            v = tf.Variable(1.0, name="v")
        with tf.Session(graph=g) as sess:
            assert sess.run(v.initializer) is None

    def test_mixed_list_preserves_structure(self):
        g = tf.Graph()
        with g.as_default():
            v = tf.Variable(5.0, name="v")
            c = tf.constant(2.0)
        with tf.Session(graph=g) as sess:
            out = sess.run([v.initializer, c])
        assert out[0] is None
        assert out[1] == pytest.approx(2.0)

    def test_fetch_by_name(self):
        g = tf.Graph()
        with g.as_default():
            tf.constant(9.0, name="nine")
        with tf.Session(graph=g) as sess:
            assert sess.run("nine:0") == pytest.approx(9.0)

    def test_fetch_variable_object(self):
        g = tf.Graph()
        with g.as_default():
            v = tf.Variable(4.0, name="v")
        with tf.Session(graph=g) as sess:
            sess.run(v.initializer)
            assert sess.run(v) == pytest.approx(4.0)

    def test_bad_fetch_rejected(self):
        g = tf.Graph()
        with tf.Session(graph=g) as sess:
            with pytest.raises(InvalidArgumentError):
                sess.run(42)

    def test_closed_session_rejects_run(self):
        g = tf.Graph()
        with g.as_default():
            c = tf.constant(1.0)
        sess = tf.Session(graph=g)
        sess.close()
        with pytest.raises(RuntimeError, match="closed Session"):
            sess.run(c)
        with pytest.raises(RuntimeError, match="closed Session"):
            sess.run_gen(c)

    def test_single_element_list_matches_bare_fetch(self):
        g = tf.Graph()
        with g.as_default():
            c = tf.constant(3.0)
            v = tf.Variable(1.0, name="v")
        with tf.Session(graph=g) as sess:
            bare = sess.run(c)
            listed = sess.run([c])
            assert listed == pytest.approx(bare)
            assert not isinstance(listed, list)
            # An op fetch in a single-element list also matches the bare form.
            assert sess.run([v.initializer]) is None


class TestFeeds:
    def test_placeholder_feed(self):
        g = tf.Graph()
        with g.as_default():
            x = tf.placeholder(tf.float32, shape=[2])
            y = x * tf.constant(3.0)
        with tf.Session(graph=g) as sess:
            result = sess.run(y, feed_dict={x: np.array([1.0, 2.0], np.float32)})
        np.testing.assert_allclose(result, [3.0, 6.0])

    def test_missing_feed_raises(self):
        g = tf.Graph()
        with g.as_default():
            x = tf.placeholder(tf.float32, shape=[2])
            y = tf.identity(x)
        with tf.Session(graph=g) as sess:
            with pytest.raises(InvalidArgumentError, match="feed"):
                sess.run(y)

    def test_feed_shape_mismatch_raises(self):
        g = tf.Graph()
        with g.as_default():
            x = tf.placeholder(tf.float32, shape=[3])
            y = tf.identity(x)
        with tf.Session(graph=g) as sess:
            with pytest.raises(InvalidArgumentError):
                sess.run(y, feed_dict={x: np.zeros(4, np.float32)})

    def test_feed_overrides_intermediate_tensor(self):
        g = tf.Graph()
        with g.as_default():
            a = tf.constant(2.0, name="a")
            b = a * tf.constant(10.0)
        with tf.Session(graph=g) as sess:
            default = sess.run(b)
            overridden = sess.run(b, feed_dict={a: np.float32(5.0)})
        assert default == pytest.approx(20.0)
        assert overridden == pytest.approx(50.0)

    def test_feed_by_name(self):
        g = tf.Graph()
        with g.as_default():
            x = tf.placeholder(tf.float32, shape=[], name="x")
            y = x + tf.constant(1.0)
        with tf.Session(graph=g) as sess:
            assert sess.run(y, feed_dict={"x:0": 2.0}) == pytest.approx(3.0)


class TestPlacementSemantics:
    def test_simple_placement_prefers_gpu(self):
        g = tf.Graph()
        with g.as_default():
            a = tf.constant(np.eye(2, dtype=np.float32))
            c = tf.matmul(a, a)
        sess = tf.Session(graph=g)
        meta = RunMetadata()
        sess.run(c, options=RunOptions(trace_level=RunOptions.FULL_TRACE),
                 run_metadata=meta)
        matmul_stats = [s for s in meta.step_stats if s.op_type == "MatMul"]
        assert matmul_stats and "/device:gpu:0" in matmul_stats[0].device

    def test_cpu_only_op_soft_placed(self):
        # Queue ops have no GPU kernel: pinning one to GPU must soft-place.
        g = tf.Graph()
        with g.as_default():
            with g.device("/gpu:0"):
                q = tf.FIFOQueue(4, [tf.float32], shapes=[[]])
                enq = q.enqueue(tf.constant(1.0))
                deq = q.dequeue()
        with tf.Session(graph=g) as sess:
            sess.run(enq)
            assert sess.run(deq) == pytest.approx(1.0)

    def test_soft_placement_disabled_raises(self):
        g = tf.Graph()
        with g.as_default():
            with g.device("/gpu:5"):  # no such GPU locally
                c = tf.constant(1.0)
        config = tf.SessionConfig(allow_soft_placement=False)
        with tf.Session(graph=g, config=config) as sess:
            with pytest.raises(InvalidArgumentError):
                sess.run(c)

    def test_unknown_task_raises(self):
        g = tf.Graph()
        with g.as_default():
            with g.device("/job:ps/task:0"):
                c = tf.constant(1.0)
        with tf.Session(graph=g) as sess:  # local cluster has no "ps" job
            with pytest.raises(NotFoundError):
                sess.run(c)

    def test_device_spec_parsing(self):
        spec = DeviceSpec.parse("/job:worker/task:3/device:GPU:1")
        assert (spec.job, spec.task, spec.device_type, spec.device_index) == (
            "worker", 3, "gpu", 1)
        short = DeviceSpec.parse("/gpu:2")
        assert short.device_type == "gpu" and short.device_index == 2
        assert DeviceSpec.parse("").job is None

    def test_bad_device_string_rejected(self):
        with pytest.raises(InvalidArgumentError):
            DeviceSpec.parse("/job:x/bogus:1")

    def test_list_devices(self):
        g = tf.Graph()
        config = tf.SessionConfig(num_gpus=2)
        with tf.Session(graph=g, config=config) as sess:
            devices = sess.list_devices()
        assert any("cpu:0" in d for d in devices)
        assert any("gpu:1" in d for d in devices)


class TestRunMetadata:
    def test_trace_collects_stats_and_transfers(self):
        g = tf.Graph()
        with g.as_default():
            with g.device("/cpu:0"):
                a = tf.random_uniform([64, 64])
            with g.device("/gpu:0"):
                c = tf.matmul(a, a)
        sess = tf.Session(graph=g)
        meta = RunMetadata()
        sess.run(c, options=RunOptions(trace_level=RunOptions.FULL_TRACE),
                 run_metadata=meta)
        assert meta.step_stats, "expected op stats"
        assert meta.transfers, "expected a cpu->gpu transfer"
        assert meta.wall_time > 0
        assert meta.total_bytes_transferred() >= 64 * 64 * 4

    def test_no_trace_by_default(self):
        g = tf.Graph()
        with g.as_default():
            c = tf.constant(1.0)
        sess = tf.Session(graph=g)
        meta = RunMetadata()
        sess.run(c, run_metadata=meta)
        assert not meta.step_stats

    def test_plan_cache_counters_exposed(self):
        g = tf.Graph()
        with g.as_default():
            c = tf.random_uniform([8])
        with tf.Session(graph=g) as sess:
            first = RunMetadata()
            sess.run(c, run_metadata=first)
            assert first.plan_cache_hit is False
            assert (first.plan_cache_hits, first.plan_cache_misses) == (0, 1)
            second = RunMetadata()
            sess.run(c, run_metadata=second)
            assert second.plan_cache_hit is True
            assert (second.plan_cache_hits, second.plan_cache_misses) == (1, 1)
            info = sess.plan_cache_info()
            assert info["hits"] == 1 and info["misses"] == 1

    def test_sim_time_advances_monotonically(self):
        g = tf.Graph()
        with g.as_default():
            c = tf.random_uniform([32])
        sess = tf.Session(graph=g)
        t0 = sess.env.now
        sess.run(c)
        t1 = sess.env.now
        sess.run(c)
        t2 = sess.env.now
        assert t0 < t1 < t2


class TestMemoryAccounting:
    def test_oom_on_tiny_gpu(self):
        from repro.simnet.gpu import GPUModel

        tiny = GPUModel(
            name="tiny", peak_sp_flops=1e12, peak_dp_flops=5e11,
            mem_bandwidth=1e11, mem_capacity=1024, pcie_rate=1e9,
            launch_overhead=1e-6,
        )
        g = tf.Graph()
        with g.as_default():
            with g.device("/gpu:0"):
                big = tf.random_uniform([1024])  # 4 KB > 1 KB capacity
        config = tf.SessionConfig(gpu_model=tiny)
        with tf.Session(graph=g, config=config) as sess:
            with pytest.raises(tf.errors.ResourceExhaustedError):
                sess.run(big)

    def test_memory_freed_between_runs(self):
        g = tf.Graph()
        with g.as_default():
            with g.device("/gpu:0"):
                x = tf.random_uniform([256, 256])
                y = tf.matmul(x, x)
        with tf.Session(graph=g) as sess:
            sess.run(y)
            runtime = sess.master.runtime
            gpu_pool = [
                pool for name, pool in runtime.memory_pools.items()
                if "gpu" in name
            ][0]
            assert gpu_pool.in_use == 0
            assert gpu_pool.peak > 0
