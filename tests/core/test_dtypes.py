"""Unit tests for the dtype registry."""

import numpy as np
import pytest

from repro import dtypes
from repro.errors import InvalidArgumentError


class TestDTypeBasics:
    def test_sizes(self):
        assert dtypes.float32.size == 4
        assert dtypes.float64.size == 8
        assert dtypes.complex128.size == 16
        assert dtypes.int32.size == 4
        assert dtypes.bool_.size == 1

    def test_classification(self):
        assert dtypes.float32.is_floating
        assert not dtypes.float32.is_complex
        assert dtypes.complex64.is_complex
        assert not dtypes.complex64.is_floating
        assert dtypes.int64.is_integer
        assert dtypes.bool_.is_bool
        assert not dtypes.bool_.is_numeric

    def test_real_dtype(self):
        assert dtypes.complex64.real_dtype is dtypes.float32
        assert dtypes.complex128.real_dtype is dtypes.float64
        assert dtypes.float32.real_dtype is dtypes.float32

    def test_equality_with_names_and_numpy(self):
        assert dtypes.float32 == "float32"
        assert dtypes.float32 == np.float32
        assert dtypes.float32 != dtypes.float64
        assert dtypes.int32 == np.dtype("int32")

    def test_hashable(self):
        assert len({dtypes.float32, dtypes.float32, dtypes.float64}) == 2


class TestAsDtype:
    @pytest.mark.parametrize("value,expected", [
        ("float64", dtypes.float64),
        (np.float32, dtypes.float32),
        (np.dtype(np.complex128), dtypes.complex128),
        (float, dtypes.float64),
        (int, dtypes.int64),
        (bool, dtypes.bool_),
        (complex, dtypes.complex128),
        (dtypes.int32, dtypes.int32),
    ])
    def test_coercions(self, value, expected):
        assert dtypes.as_dtype(value) is expected

    def test_unknown_name_raises(self):
        with pytest.raises(InvalidArgumentError):
            dtypes.as_dtype("float128x")

    def test_narrow_types_promote(self):
        assert dtypes.as_dtype(np.float16) is dtypes.float32
        assert dtypes.as_dtype(np.int16) is dtypes.int32
        assert dtypes.as_dtype(np.int8) is dtypes.int32

    def test_enum_roundtrip(self):
        for dt in dtypes.ALL_DTYPES:
            assert dtypes.from_enum(dt.enum) is dt

    def test_bad_enum(self):
        with pytest.raises(InvalidArgumentError):
            dtypes.from_enum(250)


class TestPromotion:
    def test_result_dtype(self):
        assert dtypes.result_dtype(dtypes.float32, dtypes.float64) is dtypes.float64
        assert dtypes.result_dtype(dtypes.int32, dtypes.float32) is dtypes.float64
        assert dtypes.result_dtype(dtypes.float64, dtypes.complex64) is dtypes.complex128

    def test_empty_raises(self):
        with pytest.raises(InvalidArgumentError):
            dtypes.result_dtype()
