"""Regression for fuzz seed 433 (campaign at --ops 24 --max-world 8).

Three chained allreduces: the third is small and same-configuration as
the first, so the fusion pass bucketed them together — but the third
*transitively* depends on the first (through plain math fed by the
second collective), so the fused op consumed a slice of itself and
``_restore_topological_order`` spun forever on the cycle. The pass now
excludes any collective downstream of another collective, and the
topological sort raises InternalError on a cycle instead of hanging.
"""

import signal

import numpy as np
import pytest

import repro as tf


def _chained_allreduce_graph(world):
    devices = tuple(f"/device:gpu:{r}" for r in range(world))
    values = [
        np.asarray([1.0 + r, 2.0, 3.0 - r], dtype=np.float32)
        for r in range(world)
    ]
    first = tf.all_reduce(
        [tf.constant(v) for v in values], devices=devices, algorithm="ring"
    )
    # Plain math between the collectives — the one-hop producer check
    # used to miss this dependency.
    sums = [tf.reduce_sum(t, keepdims=True) for t in first]
    second = tf.all_reduce(sums, devices=devices, algorithm="ring")
    third = tf.all_reduce(
        [tf.reduce_sum(t, keepdims=True) for t in second],
        devices=devices, algorithm="ring",
    )
    return first + second + third


def _run(world, fusion):
    g = tf.Graph()
    with g.as_default():
        fetches = _chained_allreduce_graph(world)
    config = tf.SessionConfig(
        num_gpus=world,
        optimizer=tf.OptimizerOptions(collective_fusion=fusion),
    )
    with tf.Session(graph=g, config=config) as sess:
        return sess.run(fetches)


def test_fusing_chained_allreduces_terminates_and_matches():
    world = 3
    # Guard the regression itself: the pre-fix failure mode was an
    # infinite loop in plan building, not a wrong answer.
    def _timed_out(signum, frame):
        raise TimeoutError("plan build did not terminate (seed 433)")

    previous = signal.signal(signal.SIGALRM, _timed_out)
    signal.alarm(60)
    try:
        fused = _run(world, fusion=True)
        plain = _run(world, fusion=False)
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)
    assert len(fused) == 3 * world
    for a, b in zip(fused, plain):
        assert np.asarray(a).tobytes() == np.asarray(b).tobytes()


def test_fuzz_seed_433_runs_clean():
    pytest.importorskip("repro.fuzz")
    from repro.fuzz.generator import GeneratorOptions, generate
    from repro.fuzz.harness import run_program

    program = generate(433, GeneratorOptions(max_ops=24, max_world=8))
    report = run_program(program)
    assert report.ok, [d.describe() for d in report.divergences]
