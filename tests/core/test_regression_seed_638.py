"""Regression for fuzz seed 638 (campaign at --ops 24 --max-world 8).

The shrunk repro: a variable whose initializer transitively depends on a
placeholder (here through another variable's update chain). The session
frontend runs it fine when the feed is supplied, but a traced function
pre-runs every variable initializer *without* feeds, so tracing such a
graph must fail with a clear "requires a feed value" error — it cannot
silently initialize from garbage. The generator-side fix (update outputs
inherit the variable state's feed taint) lives in
tests/fuzz/test_generator.py.
"""

import numpy as np
import pytest

import repro as tf
from repro.errors import InvalidArgumentError


def _feed_tainted_variable(ph):
    """w's initializer reads v after v was assigned the placeholder."""
    g = tf.get_default_graph()
    v = tf.Variable(np.ones(2, dtype=np.float32), name="v")
    with g.control_dependencies([v.initializer]):
        wrote = tf.assign(v, ph)
    with g.control_dependencies([wrote]):
        bump = tf.assign_add(v, tf.constant(np.ones(2, dtype=np.float32)))
    w = tf.Variable(bump, name="w")
    return w


def test_session_runs_feed_dependent_initializer_with_feeds():
    g = tf.Graph()
    with g.as_default():
        ph = tf.placeholder(tf.float32, shape=(2,), name="x")
        w = _feed_tainted_variable(ph)
        read = tf.identity(w.value())
    with tf.Session(graph=g) as sess:
        feed = {ph: np.array([0.5, -1.5], dtype=np.float32)}
        sess.run(w.initializer, feed_dict=feed)
        np.testing.assert_allclose(sess.run(read, feed_dict=feed),
                                   [1.5, -0.5])


def test_traced_function_rejects_feed_dependent_initializer():
    def body(x):
        w = _feed_tainted_variable(x)
        return tf.identity(w.value())

    fn = tf.function(body, name="seed_638")
    with pytest.raises(InvalidArgumentError, match="requires a feed value"):
        fn(np.array([0.5, -1.5], dtype=np.float32))
