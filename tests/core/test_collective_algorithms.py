"""The pluggable collective-algorithm layer and the fusion pass.

Contracts under test:

* the strategy registry resolves ``(op type, algorithm)`` pairs and the
  builders reject unknown algorithms at construction time;
* every registered allreduce schedule produces byte-identical values on
  both executor lanes and both frontends — algorithm choice only ever
  moves the simulated clock;
* ``algorithm="auto"`` resolves per payload/world size at lowering time
  (tree for latency-bound small buffers, ring at bandwidth scale) and
  the decision lands in ``RunMetadata.collective_algorithms``;
* ``CollectiveReduceScatter`` lowers, times like its standalone
  generator, and agrees with eager execution;
* the gradient-bucket fusion pass merges small same-group allreduces
  without changing a byte, reports its effect in ``pass_stats``, and
  keeps the graph (and therefore the plan cache) stable across rebuilds.
"""

import numpy as np
import pytest

import repro as tf
from repro import eager
from repro.apps.common import build_cluster, session_config, task_device
from repro.apps.sgd import run_sgd
from repro.apps.stencil import run_stencil
from repro.core.metadata import RunMetadata
from repro.core.session import admin_rpc_time
from repro.core.tensor import SymbolicValue
from repro.errors import InvalidArgumentError
from repro.runtime.collective import (
    allreduce_time_lower_bound,
    get_strategy,
    registered_algorithms,
    ring_allreduce,
    ring_reduce_scatter,
    select_algorithm,
    tree_allreduce,
)
from repro.simnet.events import Environment
from repro.simnet.machines import tegner

MB = 1024 * 1024

_RNG = np.random.default_rng(21)


def make_cluster(world):
    handle = build_cluster("tegner-k420", {"worker": world})
    return handle.env, [handle.server("worker", w) for w in range(world)]


def worker_device(w):
    return task_device("worker", w, "cpu", 0)


def standalone_time(strategy, world, nbytes):
    env = Environment()
    machine = tegner(env, k420_nodes=world)
    devices = [machine.node(n).cpu for n in sorted(machine.nodes)]
    values = [SymbolicValue((nbytes // 8,), "float64") for _ in range(world)]
    env.run(until=env.process(strategy(devices, values)))
    return env.now


class TestStrategyRegistry:
    def test_registered_algorithms_per_op_type(self):
        assert registered_algorithms("CollectiveAllReduce") == ("ring", "tree")
        assert registered_algorithms("CollectiveReduceScatter") == ("ring",)
        assert registered_algorithms("CollectiveAllGather") == ("ring",)
        assert registered_algorithms("CollectiveBroadcast") == ("ring",)

    def test_unknown_strategy_raises_with_registered_list(self):
        with pytest.raises(InvalidArgumentError) as excinfo:
            get_strategy("CollectiveAllReduce", "butterfly")
        message = str(excinfo.value)
        assert "butterfly" in message and "ring" in message

    def test_builder_rejects_unknown_algorithm(self):
        g = tf.Graph()
        with g.as_default():
            a, b = tf.constant(np.ones(4)), tf.constant(np.ones(4))
            with pytest.raises(InvalidArgumentError):
                tf.all_reduce([a, b], algorithm="butterfly")
            with pytest.raises(InvalidArgumentError):
                # tree is only registered for allreduce
                tf.all_gather([a, b], algorithm="tree")


class TestAutoSelection:
    def test_small_payloads_pick_tree(self):
        assert select_algorithm("CollectiveAllReduce", 8, 4) == "tree"
        assert select_algorithm("CollectiveAllReduce", 8, 8) == "tree"

    def test_large_payloads_pick_ring(self):
        assert select_algorithm("CollectiveAllReduce", 8 * MB, 8) == "ring"
        assert select_algorithm("CollectiveAllReduce", 16 * MB, 4) == "ring"

    def test_unknown_payload_defaults_to_ring(self):
        assert select_algorithm("CollectiveAllReduce", None, 8) == "ring"

    def test_non_allreduce_ops_stay_ring(self):
        assert select_algorithm("CollectiveAllGather", 8, 8) == "ring"
        assert select_algorithm("CollectiveAllReduce", 8, 1) == "ring"

    def test_resolution_recorded_in_run_metadata(self):
        world = 4
        _, servers = make_cluster(world)
        g = tf.Graph()
        with g.as_default():
            scalars, buffers = [], []
            for w in range(world):
                with g.device(worker_device(w)):
                    scalars.append(tf.constant(np.float64(w), name=f"s{w}"))
                    buffers.append(tf.constant(np.ones(1 << 17), name=f"b{w}"))
            small = tf.all_reduce(scalars, name="small")
            big = tf.all_reduce(buffers, name="big")
            pinned = tf.all_reduce(scalars, algorithm="ring", name="pinned")
        sess = tf.Session(servers[0], graph=g)
        metadata = RunMetadata()
        sess.run([small[0], big[0], pinned[0]], run_metadata=metadata)
        assert metadata.collective_algorithms["small"] == "tree"
        assert metadata.collective_algorithms["big"] == "ring"  # 1 MB buffer
        assert metadata.collective_algorithms["pinned"] == "ring"


class TestTreeTiming:
    def test_tree_beats_ring_on_scalars_from_world_4(self):
        """The ROADMAP claim: the ring's 2(W-1) latency steps lose on
        scalars; the tree's ~log2(W) rounds win from 4 ranks up."""
        for world in (4, 8):
            ring = standalone_time(ring_allreduce, world, 8)
            tree = standalone_time(tree_allreduce, world, 8)
            assert tree < ring, (world, tree, ring)

    def test_ring_beats_tree_at_bandwidth_scale(self):
        ring = standalone_time(ring_allreduce, 8, 8 * MB)
        tree = standalone_time(tree_allreduce, 8, 8 * MB)
        assert ring < tree

    def test_tree_respects_lower_bound(self):
        for world, nbytes in ((4, MB), (8, 8 * MB)):
            env = Environment()
            machine = tegner(env, k420_nodes=world)
            bound = allreduce_time_lower_bound(
                nbytes, world, machine.fabric.effective_rate)
            assert standalone_time(tree_allreduce, world, nbytes) >= bound

    def test_non_power_of_two_worlds_complete(self):
        for world in (2, 3, 5, 6):
            assert standalone_time(tree_allreduce, world, 1024) > 0

    def test_tree_concrete_values_match_ring(self):
        world = 5  # non-power-of-two: fold-in/fold-out path too
        env = Environment()
        machine = tegner(env, k420_nodes=world)
        devices = [machine.node(n).cpu for n in sorted(machine.nodes)]
        addends = [_RNG.standard_normal(16) for _ in range(world)]
        ring_out = env.run(
            until=env.process(ring_allreduce(devices, list(addends))))
        tree_out = env.run(
            until=env.process(tree_allreduce(devices, list(addends))))
        for a, b in zip(ring_out, tree_out):
            assert a.tobytes() == b.tobytes()

    def test_graph_op_matches_standalone_tree_both_lanes(self):
        """The promotion contract extends to every algorithm: a lowered
        tree allreduce charges the standalone tree generator's time."""
        world, nbytes = 4, 64 * 1024
        expected = standalone_time(tree_allreduce, world, nbytes)
        for fast_path in (True, False):
            env, servers = make_cluster(world)
            g = tf.Graph()
            with g.as_default():
                phs = []
                for w in range(world):
                    with g.device(worker_device(w)):
                        phs.append(tf.placeholder(
                            tf.float64, shape=[nbytes // 8], name=f"x{w}"))
                outs = tf.all_reduce(phs, algorithm="tree")
            sess = tf.Session(servers[0], graph=g, config=tf.SessionConfig(
                shape_only=True, executor_fast_path=fast_path))
            feeds = {ph: SymbolicValue((nbytes // 8,), "float64")
                     for ph in phs}
            start = env.now
            sess.run([outs[0].op], feed_dict=feeds)
            elapsed = env.now - start - admin_rpc_time(remote_tasks=True)
            assert elapsed == pytest.approx(expected, rel=1e-9)


class TestReduceScatter:
    def test_session_matches_eager_and_blocks_of_sum(self):
        world = 3
        addends = [_RNG.standard_normal((6, 2)) for _ in range(world)]
        _, servers = make_cluster(world)
        g = tf.Graph()
        with g.as_default():
            inputs = []
            for w, addend in enumerate(addends):
                with g.device(worker_device(w)):
                    inputs.append(tf.constant(addend, name=f"x{w}"))
            outs = tf.reduce_scatter(inputs)
        session_values = tf.Session(servers[0], graph=g).run(outs)

        ctx = eager.EagerContext()
        eager_values = ctx.reduce_scatter(list(addends))

        total = np.zeros((6, 2))
        for addend in addends:
            total = total + addend
        for values in (session_values, eager_values):
            assert len(values) == world
            for rank, value in enumerate(values):
                expected = total[rank * 2:(rank + 1) * 2]
                assert np.asarray(value).tobytes() == expected.tobytes()

    def test_output_shape_is_per_rank_block(self):
        g = tf.Graph()
        with g.as_default():
            outs = tf.reduce_scatter(
                [tf.constant(np.ones((8, 3))) for _ in range(4)])
        for out in outs:
            assert out.shape.as_tuple() == (2, 3)

    def test_graph_op_matches_standalone_generator(self):
        world, nbytes = 4, 16 * MB
        expected = standalone_time(ring_reduce_scatter, world, nbytes)
        allreduce = standalone_time(ring_allreduce, world, nbytes)
        assert expected < allreduce  # half the ring's traffic
        env, servers = make_cluster(world)
        g = tf.Graph()
        with g.as_default():
            phs = []
            for w in range(world):
                with g.device(worker_device(w)):
                    phs.append(tf.placeholder(
                        tf.float64, shape=[nbytes // 8], name=f"x{w}"))
            outs = tf.reduce_scatter(phs)
        sess = tf.Session(servers[0], graph=g,
                          config=tf.SessionConfig(shape_only=True))
        feeds = {ph: SymbolicValue((nbytes // 8,), "float64") for ph in phs}
        start = env.now
        sess.run([outs[0].op], feed_dict=feeds)
        elapsed = env.now - start - admin_rpc_time(remote_tasks=True)
        assert elapsed == pytest.approx(expected, rel=1e-12)

    def test_world_one_keeps_full_buffer(self):
        g = tf.Graph()
        with g.as_default():
            (out,) = tf.reduce_scatter([tf.constant(np.arange(4.0))])
        with tf.Session(graph=g) as sess:
            np.testing.assert_array_equal(sess.run(out), np.arange(4.0))

    def test_scalar_inputs_rejected(self):
        g = tf.Graph()
        with g.as_default():
            with pytest.raises(InvalidArgumentError):
                tf.reduce_scatter([tf.constant(1.0), tf.constant(2.0)])

    def test_indivisible_leading_dim_rejected_at_build(self):
        g = tf.Graph()
        with g.as_default():
            with pytest.raises(InvalidArgumentError):
                tf.reduce_scatter(
                    [tf.constant(np.ones(5)), tf.constant(np.ones(5))])

    def test_runtime_divisibility_check_for_unknown_shapes(self):
        g = tf.Graph()
        with g.as_default():
            a = tf.placeholder(tf.float64, shape=None, name="a")
            b = tf.placeholder(tf.float64, shape=None, name="b")
            outs = tf.reduce_scatter([a, b])
        with tf.Session(graph=g) as sess:
            with pytest.raises(InvalidArgumentError):
                sess.run(outs, feed_dict={a: np.ones(5), b: np.ones(5)})


SGD_SMALL = dict(d=16, num_workers=4, rows_per_worker=6, steps=3,
                 learning_rate=0.005)


class TestAlgorithmByteIdentity:
    """Every strategy x both executor lanes x both frontends: one
    trajectory, byte for byte — on the training and stencil workloads."""

    def test_sgd_sweep(self):
        baseline = None
        for algorithm in registered_algorithms("CollectiveAllReduce"):
            for optimize in (True, False):  # fast path vs legacy lane
                for frontend in ("session", "function"):
                    result = run_sgd(mode="collective", frontend=frontend,
                                     optimize=optimize, algorithm=algorithm,
                                     **SGD_SMALL)
                    assert result.validated, (algorithm, optimize, frontend)
                    key = [w.tobytes() for w in result.trajectory]
                    if baseline is None:
                        baseline = key
                    assert key == baseline, (algorithm, optimize, frontend)

    def test_stencil_sweep(self):
        config = dict(n=24, num_workers=2, iterations=4, check_every=2)
        baseline = None
        for algorithm in registered_algorithms("CollectiveAllReduce"):
            for optimize in (True, False):
                result = run_stencil(mode="collective", optimize=optimize,
                                     algorithm=algorithm, **config)
                assert result.validated, (algorithm, optimize)
                key = (
                    [r for r in result.residual_history],
                    result.solution.tobytes(),
                )
                if baseline is None:
                    baseline = key
                assert key == baseline, (algorithm, optimize)

    def test_tree_faster_than_ring_on_scalar_sgd_sync(self):
        """The auto rule's premise, end to end: with tiny gradients the
        tree schedule finishes the training loop sooner."""
        config = dict(d=4, num_workers=4, rows_per_worker=4, steps=2,
                      mode="collective")
        ring = run_sgd(algorithm="ring", **config)
        tree = run_sgd(algorithm="tree", **config)
        assert tree.elapsed < ring.elapsed
        assert [w.tobytes() for w in tree.trajectory] == \
            [w.tobytes() for w in ring.trajectory]


class TestCollectiveFusion:
    FUSED = dict(d=16, blocks=4, num_workers=3, rows_per_worker=6, steps=3)

    def test_fused_trajectories_byte_identical(self):
        fused = run_sgd(fusion=True, **self.FUSED)
        plain = run_sgd(fusion=False, **self.FUSED)
        assert fused.validated and plain.validated
        assert fused.loss_history == plain.loss_history
        for a, b in zip(fused.trajectory, plain.trajectory):
            assert a.tobytes() == b.tobytes()

    def test_fusion_reduces_collective_count_in_pass_stats(self):
        fused = run_sgd(fusion=True, **self.FUSED)
        stats = {p.name: p for p in fused.pass_stats}
        detail = stats["collective_fusion"].detail
        # blocks weights + bias + loss partial = 6 allreduces -> 1 bucket
        assert detail["collectives_before"] == self.FUSED["blocks"] + 2
        assert detail["collectives_after"] == 1
        assert detail["ops_fused"] == self.FUSED["blocks"] + 2
        assert detail["buckets"] == 1

    def test_fusion_cuts_collective_legs(self):
        fused = run_sgd(fusion=True, **self.FUSED)
        plain = run_sgd(fusion=False, **self.FUSED)
        # Leg count per step: one per rank per surviving collective.
        assert fused.collective_algorithms.keys() == {
            "collective_fusion/fused_allreduce"
        }
        assert len(plain.collective_algorithms) == self.FUSED["blocks"] + 2

    def test_fusion_on_legacy_lane_and_function_frontend(self):
        baseline = run_sgd(fusion=False, **self.FUSED)
        for frontend in ("session", "function"):
            fused = run_sgd(fusion=True, frontend=frontend, **self.FUSED)
            assert fused.validated
            for a, b in zip(fused.trajectory, baseline.trajectory):
                assert a.tobytes() == b.tobytes()

    def test_graph_stops_growing_after_first_fused_build(self):
        world = 2
        _, servers = make_cluster(world)
        g = tf.Graph()
        with g.as_default():
            per_op = []
            for p in range(3):
                ranks = []
                for w in range(world):
                    with g.device(worker_device(w)):
                        ranks.append(
                            tf.constant(np.full(4, w + p + 1.0),
                                        name=f"x{p}_{w}"))
                per_op.append(tf.all_reduce(ranks, name=f"ar{p}"))
            fetches = [outs[0] for outs in per_op]
        sess = tf.Session(servers[0], graph=g, config=session_config(
            fusion=True))
        sizes, hits = [], []
        for _ in range(4):
            metadata = RunMetadata()
            values = sess.run(fetches, run_metadata=metadata)
            sizes.append(len(g.operations))
            hits.append(metadata.plan_cache_hit)
        # One growth step (the fused subgraph), then memoized stability;
        # the plan cache converges to hits once the version settles.
        assert sizes[0] == sizes[1] == sizes[2] == sizes[3]
        assert hits[2] and hits[3]
        for p, value in enumerate(values):
            expected = np.zeros(4)
            for w in range(world):
                expected = expected + np.full(4, w + p + 1.0)
            np.testing.assert_array_equal(value, expected)

    def test_groups_with_different_devices_do_not_merge(self):
        """Allreduces over different rank device sets keep their own
        schedules (fusing them would silently move traffic)."""
        _, servers = make_cluster(3)
        g = tf.Graph()
        with g.as_default():
            pair_a, pair_b = [], []
            for w in (0, 1):
                with g.device(worker_device(w)):
                    pair_a.append(tf.constant(np.ones(4), name=f"a{w}"))
            for w in (0, 2):
                with g.device(worker_device(w)):
                    pair_b.append(tf.constant(np.ones(4), name=f"b{w}"))
            outs_a = tf.all_reduce(pair_a, name="ar_a")
            outs_b = tf.all_reduce(pair_b, name="ar_b")
        sess = tf.Session(servers[0], graph=g, config=session_config(
            fusion=True))
        metadata = RunMetadata()
        sess.run([outs_a[0], outs_b[0]], run_metadata=metadata)
        assert set(metadata.collective_algorithms) == {"ar_a", "ar_b"}

    def test_oversized_payloads_stay_unfused(self):
        world = 2
        _, servers = make_cluster(world)
        big = 1 << 18  # 2 MB float64 > the 1 MB default cap
        g = tf.Graph()
        with g.as_default():
            xs, ys = [], []
            for w in range(world):
                with g.device(worker_device(w)):
                    xs.append(tf.zeros([big], dtype=tf.float64, graph=g,
                                       name=f"x{w}"))
                    ys.append(tf.zeros([big], dtype=tf.float64, graph=g,
                                       name=f"y{w}"))
            outs_x = tf.all_reduce(xs, name="ar_x")
            outs_y = tf.all_reduce(ys, name="ar_y")
        sess = tf.Session(servers[0], graph=g, config=session_config(
            shape_only=True, fusion=True))
        metadata = RunMetadata()
        sess.run([outs_x[0].op, outs_y[0].op], run_metadata=metadata)
        assert set(metadata.collective_algorithms) == {"ar_x", "ar_y"}
