"""Unit tests for graph pruning and partitioning (send/recv insertion)."""

import numpy as np
import pytest

import repro as tf
from repro.core.partition import FEED, _job_task_of, build_plan
from repro.core.placement import Placer
from repro.errors import InvalidArgumentError


def make_placer(gpus: int = 1):
    return Placer(
        {("localhost", 0): {"cpu": 1, "gpu": gpus}},
        default_job="localhost",
        default_task=0,
    )


def plan_for(graph, fetch_tensors=(), fetch_ops=(), feeds=None, gpus=1):
    return build_plan(
        graph,
        list(fetch_ops),
        list(fetch_tensors),
        feeds or {},
        make_placer(gpus),
        client_device="/job:localhost/task:0/device:cpu:0",
        run_id=1,
    )


class TestPruning:
    def test_unreachable_ops_excluded(self):
        g = tf.Graph()
        with g.as_default():
            a = tf.constant(1.0, name="a")
            tf.constant(2.0, name="b")  # unreachable from fetch
            c = tf.identity(a, name="c")
        plan = plan_for(g, fetch_tensors=[c])
        names = {i.op.name for i in plan.items if i.kind == "op"}
        assert "a" in names and "c" in names
        assert "b" not in names

    def test_control_deps_are_pulled_in(self):
        g = tf.Graph()
        with g.as_default():
            side = tf.constant(0.0, name="side")
            with g.control_dependencies([side]):
                out = tf.constant(1.0, name="out")
        plan = plan_for(g, fetch_tensors=[out])
        names = {i.op.name for i in plan.items if i.kind == "op"}
        assert "side" in names

    def test_feed_cuts_upstream(self):
        g = tf.Graph()
        with g.as_default():
            expensive = tf.random_uniform([1024], name="expensive")
            out = tf.identity(expensive, name="out")
        plan = plan_for(g, fetch_tensors=[out],
                        feeds={expensive.name: np.zeros(1024, np.float32)})
        names = {i.op.name for i in plan.items if i.kind == "op"}
        assert "expensive" not in names
        # The consumer's source points at the feed.
        out_item = next(i for i in plan.items if i.kind == "op"
                        and i.op.name == "out")
        assert out_item.sources[0][0] is FEED

    def test_fetch_op_without_outputs(self):
        g = tf.Graph()
        with g.as_default():
            noop = tf.no_op(name="barrier")
        plan = plan_for(g, fetch_ops=[noop])
        assert any(i.kind == "op" and i.op.name == "barrier" for i in plan.items)


class TestSendRecvInsertion:
    def test_same_device_has_no_transfers(self):
        g = tf.Graph()
        with g.as_default():
            with g.device("/cpu:0"):
                a = tf.constant(np.ones(4, np.float32))
                b = tf.identity(a)
        plan = plan_for(g, fetch_tensors=[b])
        kinds = {i.kind for i in plan.items}
        assert "send" not in kinds and "recv" not in kinds

    def test_cross_device_edge_gets_pair(self):
        g = tf.Graph()
        with g.as_default():
            with g.device("/cpu:0"):
                a = tf.constant(np.ones(4, np.float32), name="a")
            with g.device("/gpu:0"):
                b = tf.identity(a, name="b")
        plan = plan_for(g, fetch_ops=[b.op])
        sends = [i for i in plan.items if i.kind == "send"]
        recvs = [i for i in plan.items if i.kind == "recv"]
        assert len(sends) == 1 and len(recvs) == 1
        assert sends[0].key == recvs[0].key
        assert "cpu" in sends[0].device and "gpu" in recvs[0].device

    def test_two_consumers_share_one_transfer(self):
        g = tf.Graph()
        with g.as_default():
            with g.device("/cpu:0"):
                a = tf.constant(np.ones(4, np.float32), name="a")
            with g.device("/gpu:0"):
                b = tf.identity(a, name="b")
                c = tf.identity(a, name="c")
            total = tf.add(b, c)
        plan = plan_for(g, fetch_ops=[total.op])
        data_sends = [i for i in plan.items
                      if i.kind == "send" and not i.tensor_name.startswith("^")]
        assert len(data_sends) == 1  # deduped: one transfer feeds b and c

    def test_cross_device_control_dep_uses_zero_byte_pair(self):
        g = tf.Graph()
        with g.as_default():
            with g.device("/cpu:0"):
                first = tf.constant(1.0, name="first")
            with g.device("/gpu:0"):
                with g.control_dependencies([first]):
                    second = tf.fill([2], 0.0, name="second")
        plan = plan_for(g, fetch_ops=[second.op])
        ctrl_sends = [i for i in plan.items
                      if i.kind == "send" and i.tensor_name.startswith("^")]
        assert len(ctrl_sends) == 1
        assert ctrl_sends[0].sources == []  # no payload

    def test_consumer_counts_for_memory(self):
        g = tf.Graph()
        with g.as_default():
            a = tf.constant(np.ones(4, np.float32), name="a")
            b = tf.identity(a, name="b")
            c = tf.identity(a, name="c")
        plan = plan_for(g, fetch_tensors=[b, c])
        a_item = next(i for i in plan.items if i.kind == "op" and i.op.name == "a")
        # b and c consume a:0 (fetch consumers attach to b/c items).
        assert a_item.consumer_counts[0] == 2


class TestFetchRouting:
    def test_fetch_from_gpu_routes_to_client(self):
        g = tf.Graph()
        with g.as_default():
            with g.device("/gpu:0"):
                x = tf.fill([4], 2.0, name="x")
        plan = plan_for(g, fetch_tensors=[x])
        # The fetch source must live on the client device.
        item, idx = plan.fetch_sources[0]
        assert item.device == "/job:localhost/task:0/device:cpu:0"
        assert item.kind == "recv"

    def test_fed_fetch_is_echoed(self):
        g = tf.Graph()
        with g.as_default():
            p = tf.placeholder(tf.float32, shape=[2], name="p")
        plan = plan_for(g, fetch_tensors=[p], feeds={"p:0": np.ones(2, np.float32)})
        assert plan.fetch_sources[0][0] is FEED


class TestHelpers:
    def test_job_task_of(self):
        assert _job_task_of("/job:w/task:3/device:gpu:0") == ("w", 3)
        with pytest.raises(InvalidArgumentError):
            _job_task_of("/device:gpu:0")

    def test_tasks_listing(self):
        g = tf.Graph()
        with g.as_default():
            c = tf.constant(1.0)
        plan = plan_for(g, fetch_tensors=[c])
        assert plan.tasks == [("localhost", 0)]
