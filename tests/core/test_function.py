"""The ``@repro.function`` trace-to-graph frontend."""

import numpy as np
import pytest

import repro as tf
from repro.core.metadata import RunMetadata, RunOptions
from repro.errors import InvalidArgumentError
from repro.function import is_tracing


class TestTracingAndCache:
    def test_traces_once_per_signature(self):
        @tf.function
        def mul(a, b):
            return tf.matmul(a, b)

        a = np.eye(3, dtype=np.float32)
        r1 = mul(a, a)
        r2 = mul(a, a)
        np.testing.assert_array_equal(r1, a @ a)
        np.testing.assert_array_equal(r1, r2)
        assert mul.trace_count == 1
        assert mul.cache_info() == {
            "traces": 1, "hits": 1, "misses": 1, "size": 1,
        }

    def test_retraces_on_new_shape(self):
        @tf.function
        def double(x):
            return tf.multiply(x, tf.constant(2.0, dtype=tf.float64))

        double(np.arange(3.0))
        double(np.arange(5.0))
        assert double.trace_count == 2
        double(np.arange(3.0))
        assert double.trace_count == 2

    def test_retraces_on_new_dtype(self):
        @tf.function
        def ident(x):
            return tf.identity(x)

        ident(np.zeros(2, np.float32))
        ident(np.zeros(2, np.float64))
        assert ident.trace_count == 2

    def test_static_arguments_bake_into_the_trace(self):
        @tf.function
        def poly(x, square):
            return tf.multiply(x, x) if square else tf.identity(x)

        x = np.arange(4.0)
        np.testing.assert_array_equal(poly(x, True), x * x)
        np.testing.assert_array_equal(poly(x, False), x)
        assert poly.trace_count == 2

    def test_unhashable_static_argument_rejected(self):
        @tf.function
        def f(x, meta):
            return tf.identity(x)

        with pytest.raises(InvalidArgumentError, match="hashable"):
            f(np.zeros(2), {"not": "hashable"})

    def test_keyword_and_default_arguments(self):
        @tf.function
        def affine(x, scale=2.0, *, shift=1.0):
            return tf.add(tf.multiply(x, tf.constant(scale, dtype=tf.float64)),
                          tf.constant(shift, dtype=tf.float64))

        x = np.arange(3.0)
        np.testing.assert_array_equal(affine(x), x * 2.0 + 1.0)
        np.testing.assert_array_equal(affine(x, shift=3.0), x * 2.0 + 3.0)
        np.testing.assert_array_equal(affine(scale=4.0, x=x), x * 4.0 + 1.0)
        assert affine.trace_count == 3  # three distinct static signatures

    def test_var_positional_expansion(self):
        @tf.function
        def total(*vecs):
            return tf.add_n(list(vecs))

        out = total(np.ones(3), np.full(3, 2.0), np.full(3, 3.0))
        np.testing.assert_array_equal(out, np.full(3, 6.0))
        assert total.trace_count == 1
        total(np.ones(3), np.ones(3))
        assert total.trace_count == 2


class TestOutputsAndStructure:
    def test_tuple_dict_and_none_outputs(self):
        @tf.function
        def stats(x):
            return {
                "sum": tf.reduce_sum(x),
                "pair": (tf.reduce_max(x), None),
            }

        out = stats(np.arange(4.0))
        assert out["sum"] == pytest.approx(6.0)
        assert out["pair"][0] == pytest.approx(3.0)
        assert out["pair"][1] is None

    def test_concrete_leaf_output_captured(self):
        @tf.function
        def with_scalar(x):
            return tf.identity(x), 42

        val, const = with_scalar(np.arange(2.0))
        np.testing.assert_array_equal(val, [0.0, 1.0])
        assert const == 42


class TestVariablesAndSideEffects:
    def test_variables_persist_across_calls(self):
        @tf.function
        def bump():
            v = tf.Variable(0.0, name="counter")
            return tf.assign_add(v, tf.constant(1.0))

        assert [float(bump()) for _ in range(3)] == [1.0, 2.0, 3.0]
        assert bump.trace_count == 1

    def test_side_effect_only_function_runs_effects(self):
        @tf.function
        def accumulate(delta):
            v = tf.Variable(np.zeros(2), name="state")
            tf.assign_add(v, delta)

        assert accumulate(np.ones(2)) is None
        accumulate(np.full(2, 2.0))
        state = accumulate.session.run(
            accumulate.graph.get_tensor_by_name("accumulate/state:0")
        )
        np.testing.assert_array_equal(state, [3.0, 3.0])


class TestInlining:
    def test_nested_traced_function_inlines(self):
        @tf.function
        def inner(x):
            return tf.multiply(x, tf.constant(2.0, dtype=tf.float64))

        @tf.function
        def outer(x):
            assert is_tracing()
            return tf.add(inner(x), tf.constant(1.0, dtype=tf.float64))

        np.testing.assert_array_equal(outer(np.arange(3.0)), [1.0, 3.0, 5.0])
        assert outer.trace_count == 1
        assert inner.trace_count == 0  # inlined, never traced on its own

    def test_symbolic_arguments_inline_into_manual_graph(self):
        @tf.function
        def double(x):
            return tf.multiply(x, tf.constant(2.0, dtype=tf.float64))

        g = tf.Graph()
        with g.as_default():
            t = tf.constant(np.arange(3.0))
            out = double(t)
        assert out.graph is g
        assert double.trace_count == 0
        with tf.Session(graph=g) as sess:
            np.testing.assert_array_equal(sess.run(out), [0.0, 2.0, 4.0])


class TestInputSignature:
    def test_one_trace_for_compatible_shapes(self):
        @tf.function(input_signature=[tf.TensorSpec([None], tf.float64)])
        def total(x):
            return tf.reduce_sum(x)

        assert total(np.arange(3.0)) == pytest.approx(3.0)
        assert total(np.arange(5.0)) == pytest.approx(10.0)
        assert total.trace_count == 1

    def test_incompatible_argument_rejected(self):
        @tf.function(input_signature=[tf.TensorSpec([2, 2], tf.float64)])
        def f(x):
            return tf.identity(x)

        with pytest.raises(InvalidArgumentError, match="incompatible"):
            f(np.zeros(3))

    def test_dtype_kind_mismatch_rejected(self):
        @tf.function(input_signature=[tf.TensorSpec([2], tf.float64)])
        def f(x):
            return tf.identity(x)

        np.testing.assert_allclose(f(np.array([1, 3])), [1.0, 3.0])  # int ok
        with pytest.raises(InvalidArgumentError, match="incompatible"):
            f(np.array([1 + 2j, 3 + 4j]))  # complex would drop imag parts

    def test_tensorspec_semantics(self):
        spec = tf.TensorSpec([None, 4], tf.float64)
        assert spec.is_compatible_with(np.zeros((7, 4)))
        assert not spec.is_compatible_with(np.zeros((7, 5)))
        assert not spec.is_compatible_with(np.zeros((7, 4), dtype=complex))
        assert spec == tf.TensorSpec([None, 4], tf.float64)
        assert spec != tf.TensorSpec([None, 4], tf.float32)
        assert len({spec, tf.TensorSpec([None, 4], tf.float64)}) == 1


class TestConcreteFunction:
    def test_get_concrete_function(self):
        @tf.function
        def mul(a, b):
            return tf.matmul(a, b)

        a = np.eye(2, dtype=np.float64)
        cf = mul.get_concrete_function(a, a)
        assert mul.trace_count == 1
        assert [t.dtype for t in cf.inputs] == [tf.float64, tf.float64]
        np.testing.assert_array_equal(cf(a, a), a)
        # The call through the traced function reuses the same trace.
        mul(a, a)
        assert mul.trace_count == 1
        assert mul.concrete_functions == [cf]

    def test_structured_outputs_are_symbolic(self):
        @tf.function
        def pair(x):
            return tf.identity(x), tf.reduce_sum(x)

        cf = pair.get_concrete_function(np.arange(3.0))
        out = cf.structured_outputs
        assert isinstance(out, tuple) and len(out) == 2
        assert all(isinstance(t, tf.Tensor) for t in out)


class TestSessionIntegration:
    def test_plan_cache_and_metadata_counters(self):
        @tf.function
        def mul(a, b):
            return tf.matmul(a, b)

        a = np.eye(3, dtype=np.float32)
        meta1 = RunMetadata()
        mul(a, a, run_metadata=meta1)
        assert meta1.plan_cache_hit is False
        assert meta1.trace_cache_misses == 1
        meta2 = RunMetadata()
        mul(a, a, run_metadata=meta2)
        assert meta2.plan_cache_hit is True
        assert meta2.plan_cache_hits == 1
        assert meta2.trace_cache_hits == 1
        info = mul.session.plan_cache_info()
        assert info["hits"] == 1 and info["misses"] == 1

    def test_device_scope_places_ops(self):
        @tf.function
        def on_gpu(a):
            with tf.device("/gpu:0"):
                return tf.matmul(a, a)

        meta = RunMetadata()
        on_gpu(np.eye(8, dtype=np.float32),
               options=RunOptions(trace_level=RunOptions.FULL_TRACE),
               run_metadata=meta)
        matmul_stats = [s for s in meta.step_stats if s.op_type == "MatMul"]
        assert matmul_stats and "/device:gpu:0" in matmul_stats[0].device

    def test_simulated_time_advances(self):
        @tf.function
        def mul(a):
            return tf.matmul(a, a)

        a = np.eye(16, dtype=np.float32)
        mul(a)
        env = mul.session.env
        t1 = env.now
        mul(a)
        assert env.now > t1


class TestRunEagerly:
    def test_eager_escape_matches_traced_results(self):
        @tf.function
        def fused(a, b):
            return tf.add(tf.matmul(a, b), tf.constant(1.0, dtype=tf.float64))

        a = np.random.default_rng(0).normal(size=(3, 3))
        traced = fused(a, a)
        assert fused.trace_count == 1
        tf.run_functions_eagerly(True)
        try:
            assert tf.functions_run_eagerly()
            eager = fused(a, a)
            assert fused.trace_count == 1  # no new traces in eager mode
        finally:
            tf.run_functions_eagerly(False)
        np.testing.assert_array_equal(traced, eager)
        assert not tf.functions_run_eagerly()

    def test_eager_escape_runs_side_effects(self):
        @tf.function
        def bump():
            v = tf.Variable(0.0, name="c")
            return tf.assign_add(v, tf.constant(1.0))

        tf.run_functions_eagerly(True)
        try:
            assert float(bump()) == 1.0
        finally:
            tf.run_functions_eagerly(False)

    def test_eager_escape_preserves_variable_state(self):
        """The debugging escape must not change stateful semantics."""
        @tf.function
        def bump():
            v = tf.Variable(0.0, name="c")
            return tf.assign_add(v, tf.constant(1.0))

        tf.run_functions_eagerly(True)
        try:
            assert [float(bump()) for _ in range(3)] == [1.0, 2.0, 3.0]
        finally:
            tf.run_functions_eagerly(False)


class TestDecoratorForms:
    def test_bare_and_parameterized(self):
        def f(x):
            return tf.identity(x)

        bare = tf.function(f)
        parameterized = tf.function(name="custom", seed=7)(f)
        assert isinstance(bare, tf.TracedFunction)
        assert isinstance(parameterized, tf.TracedFunction)
        np.testing.assert_array_equal(bare(np.arange(2.0)), [0.0, 1.0])
        np.testing.assert_array_equal(parameterized(np.arange(2.0)), [0.0, 1.0])
        assert parameterized.graph.seed == 7

    def test_wraps_metadata(self):
        @tf.function
        def documented(x):
            """Docs survive the decorator."""
            return tf.identity(x)

        assert documented.__name__ == "documented"
        assert "survive" in documented.__doc__
