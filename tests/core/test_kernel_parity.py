"""Eager ↔ graph kernel parity: one kernel library, two frontends.

Both execution modes dispatch the same registered kernels, so for every
op type both modes support, eager execution and ``Session.run`` must
produce *identical* values. The sweep is registry-driven: every
registered op type must either appear in a parity case, in the
graph-only skip-list (validated against the registry's ``graph_only``
metadata), or in the stateful set covered by dedicated tests — so a new
kernel cannot land without declaring its parity story.
"""

import numpy as np
import pytest

import repro as tf
from repro import eager
from repro.core.kernels.registry import is_graph_only, registered_op_types
from repro.errors import UnimplementedError

SEED = 11

_RNG = np.random.default_rng(4)
_V4 = _RNG.normal(size=4)
_W4 = _RNG.normal(size=4)
_M23 = _RNG.normal(size=(2, 3))
_M33 = _RNG.normal(size=(3, 3))
_C8 = _RNG.normal(size=8) + 1j * _RNG.normal(size=8)

# (covered op types, builder name, args, kwargs)
CASES = [
    (("Add",), "add", (_V4, _W4), {}),
    (("Sub",), "subtract", (_V4, _W4), {}),
    (("Mul",), "multiply", (_V4, _W4), {}),
    (("Div",), "divide", (_V4, _W4), {}),
    (("Maximum",), "maximum", (_V4, _W4), {}),
    (("Minimum",), "minimum", (_V4, _W4), {}),
    (("Neg",), "negative", (_V4,), {}),
    (("Square",), "square", (_V4,), {}),
    (("Sqrt",), "sqrt", (np.abs(_V4),), {}),
    (("Exp",), "exp", (_V4,), {}),
    (("Sigmoid",), "sigmoid", (_V4,), {}),
    (("GreaterEqual",), "greater_equal", (_V4, _W4), {}),
    (("MatMul",), "matmul", (_M23, _M33), {}),
    (("MatMul",), "matmul", (_M33, _M33), {"transpose_b": True}),
    (("Dot",), "dot", (_V4, _W4), {}),
    (("AddN",), "add_n", ([_V4, _W4, _V4],), {}),
    (("Sum",), "reduce_sum", (_M23,), {"axis": 0}),
    (("Sum",), "reduce_sum", (_M23,), {}),
    (("Mean",), "reduce_mean", (_M23,), {"axis": 1, "keepdims": True}),
    (("Max",), "reduce_max", (_M23,), {}),
    (("Cast",), "cast", (_V4, tf.float32), {}),
    (("Identity", "Const"), "identity", (_V4,), {}),
    (("Reshape",), "reshape", (_M23, [3, 2]), {}),
    (("Transpose",), "transpose", (_M23,), {}),
    (("Concat",), "concat", ([_V4, _W4],), {"axis": 0}),
    (("Split",), "split", (_C8.real, 2), {}),
    (("Stack",), "stack", ([_V4, _W4],), {"axis": 1}),
    (("Squeeze",), "squeeze", (_M23[None],), {"axis": 0}),
    (("ExpandDims",), "expand_dims", (_V4, 1), {}),
    (("Fill",), "fill", ([2, 3], 2.5), {"dtype": tf.float64}),
    (("Fill",), "zeros", ([4],), {}),
    (("Fill",), "ones", ([2, 2],), {"dtype": tf.float64}),
    (("ZerosLike",), "zeros_like", (_M23,), {}),
    (("Slice",), "slice_", (_M23, [0, 1], [2, 2]), {}),
    (("FFT",), "fft", (_C8,), {}),
    (("IFFT",), "ifft", (_C8,), {}),
    (("CollectiveAllReduce",), "all_reduce", ([_V4, _W4],), {}),
    (("CollectiveReduceScatter",), "reduce_scatter", ([_V4, _W4],), {}),
    (("CollectiveAllGather",), "all_gather", ([_V4, _W4],), {}),
    (("CollectiveBroadcast",), "broadcast", (_V4,),
     {"devices": ("/cpu:0", "/cpu:0", "/cpu:0")}),
    (("NoOp",), "no_op", (), {}),
    (("RandomUniform",), "random_uniform", ([6],),
     {"minval": -1.0, "maxval": 1.0, "dtype": tf.float64}),
    (("RandomNormal",), "random_normal", ([6],), {"dtype": tf.float64}),
]

# Ops that only make sense under a Session: the simulated runtime owns
# queues, datasets and the parallel filesystem. Validated against the
# registry's graph_only metadata below.
GRAPH_ONLY = {
    "FIFOQueue", "QueueEnqueue", "QueueDequeue", "QueueSize", "QueueClose",
    "IteratorV2", "IteratorGetNext", "ReadTile", "WriteTile",
}

# Stateful ops with mode-specific APIs, covered by dedicated tests:
# variables (tests/core/test_eager.py eager handles vs test_session.py
# graph Variables) and the feed mechanism (Placeholder IS the eager/
# traced argument transport, exercised by every parity case above).
COVERED_ELSEWHERE = {
    "VariableV2", "Assign", "AssignAdd", "AssignSub", "Placeholder",
}


def _wrap_graph_arg(value, graph):
    if isinstance(value, np.ndarray):
        return tf.constant(value.copy(), graph=graph)
    if isinstance(value, list) and value and isinstance(value[0], np.ndarray):
        return [tf.constant(v.copy(), graph=graph) for v in value]
    return value


def _graph_eval(builder_name, args, kwargs):
    g = tf.Graph(seed=SEED)
    with g.as_default():
        built = getattr(tf, builder_name)(
            *[_wrap_graph_arg(a, g) for a in args], **kwargs
        )
    fetch = list(built) if isinstance(built, (list, tuple)) else built
    with tf.Session(graph=g) as sess:
        return sess.run(fetch)


@pytest.mark.parametrize(
    "builder_name,args,kwargs",
    [case[1:] for case in CASES],
    ids=[f"{c[1]}:{'+'.join(c[0])}" for c in CASES],
)
def test_eager_matches_graph(builder_name, args, kwargs):
    ctx = eager.EagerContext(seed=SEED)
    eager_out = getattr(ctx, builder_name)(*args, **kwargs)
    graph_out = _graph_eval(builder_name, args, kwargs)
    if eager_out is None:
        assert graph_out is None
        return
    if isinstance(eager_out, (list, tuple)):
        assert len(eager_out) == len(graph_out)
        for e, g in zip(eager_out, graph_out):
            np.testing.assert_array_equal(np.asarray(e), np.asarray(g))
    else:
        np.testing.assert_array_equal(np.asarray(eager_out), np.asarray(graph_out))


def test_skip_list_matches_registry_metadata():
    assert GRAPH_ONLY == {
        op for op in registered_op_types() if is_graph_only(op)
    }


def test_graph_only_ops_rejected_eagerly():
    ctx = eager.EagerContext()
    for op_type in sorted(GRAPH_ONLY):
        with pytest.raises(UnimplementedError):
            ctx.execute(op_type)


def test_registry_fully_covered():
    """Every registered kernel has a declared parity story."""
    covered = set()
    for op_types, _, _, _ in CASES:
        covered.update(op_types)
    uncovered = set(registered_op_types()) - covered - GRAPH_ONLY - COVERED_ELSEWHERE
    assert not uncovered, (
        f"Ops without a parity case or skip-list entry: {sorted(uncovered)}"
    )


def test_stateful_variable_parity():
    """Same assign/read semantics across the two variable APIs."""
    ctx = eager.EagerContext()
    handle = ctx.variable(np.zeros(3), name="acc")
    ctx.assign_add(handle, np.ones(3))
    ctx.assign_add(handle, np.full(3, 2.0))
    eager_value = ctx.read(handle)

    g = tf.Graph()
    with g.as_default():
        v = tf.Variable(np.zeros(3), name="acc")
        first = tf.assign_add(v, tf.constant(np.ones(3)))
        with g.control_dependencies([first.op]):
            second = tf.assign_add(v, tf.constant(np.full(3, 2.0)))
    with tf.Session(graph=g) as sess:
        sess.run(v.initializer)
        graph_value = sess.run(second)
    np.testing.assert_array_equal(eager_value, graph_value)
