"""Graph-level collectives: one op, three frontends, ring-exact timing.

The promotion contract: ``CollectiveAllReduce`` (and friends) produce
byte-identical values whether run through a raw Session, a traced
``@repro.function``, or eagerly — and under a Session the lowered ring
legs charge exactly the standalone ring generator's simulated time.
"""

import numpy as np
import pytest

import repro as tf
from repro import eager
from repro.apps.common import build_cluster, task_device
from repro.core.metadata import RunMetadata
from repro.core.session import admin_rpc_time
from repro.core.tensor import SymbolicValue
from repro.errors import InvalidArgumentError
from repro.runtime.collective import (
    allreduce_time_lower_bound,
    ring_allreduce,
)
from repro.simnet.events import Environment
from repro.simnet.machines import tegner

MB = 1024 * 1024

_RNG = np.random.default_rng(7)
_ADDENDS = [_RNG.standard_normal(16) for _ in range(4)]


def make_cluster(world):
    handle = build_cluster("tegner-k420", {"worker": world})
    servers = [handle.server("worker", w) for w in range(world)]
    return handle.env, handle.machine, servers


def worker_device(w):
    return task_device("worker", w, "cpu", 0)


class TestFrontendParity:
    def _session_values(self, config=None):
        world = len(_ADDENDS)
        _, _, servers = make_cluster(world)
        g = tf.Graph()
        with g.as_default():
            inputs = []
            for w, addend in enumerate(_ADDENDS):
                with g.device(worker_device(w)):
                    inputs.append(tf.constant(addend, name=f"x{w}"))
            outs = tf.all_reduce(inputs)
        sess = tf.Session(servers[0], graph=g, config=config)
        return sess.run(outs)

    def test_session_function_eager_byte_identical(self):
        session_values = self._session_values()

        @tf.function
        def reduce_fn(a, b, c, d):
            return tf.all_reduce([a, b, c, d])

        function_values = reduce_fn(*_ADDENDS)

        ctx = eager.EagerContext()
        eager_values = ctx.all_reduce(list(_ADDENDS))

        expected = np.zeros(16)
        for addend in _ADDENDS:
            expected = expected + addend
        for values in (session_values, function_values, eager_values):
            assert len(values) == len(_ADDENDS)
            for rank_value in values:
                assert np.asarray(rank_value).tobytes() == expected.tobytes()

    def test_legacy_executor_lane_matches(self):
        fast = self._session_values()
        legacy = self._session_values(
            tf.SessionConfig(executor_fast_path=False,
                             graph_optimization=False)
        )
        for a, b in zip(fast, legacy):
            assert np.asarray(a).tobytes() == np.asarray(b).tobytes()

    def test_all_gather_parity(self):
        blocks = [_RNG.standard_normal((2, 3)) for _ in range(3)]
        _, _, servers = make_cluster(3)
        g = tf.Graph()
        with g.as_default():
            inputs = []
            for w, block in enumerate(blocks):
                with g.device(worker_device(w)):
                    inputs.append(tf.constant(block, name=f"b{w}"))
            outs = tf.all_gather(inputs)
        session_values = tf.Session(servers[0], graph=g).run(outs)

        ctx = eager.EagerContext()
        eager_values = ctx.all_gather(list(blocks))
        expected = np.concatenate(blocks, axis=0)
        for values in (session_values, eager_values):
            for rank_value in values:
                assert np.asarray(rank_value).tobytes() == expected.tobytes()

    def test_broadcast_parity(self):
        payload = _RNG.standard_normal(8)
        world = 3
        _, _, servers = make_cluster(world)
        g = tf.Graph()
        with g.as_default():
            with g.device(worker_device(0)):
                root = tf.constant(payload, name="root")
            outs = tf.broadcast(
                root, devices=[worker_device(w) for w in range(world)]
            )
        session_values = tf.Session(servers[0], graph=g).run(outs)

        ctx = eager.EagerContext()
        eager_values = ctx.broadcast(payload, world=world)
        for values in (session_values, eager_values):
            for rank_value in values:
                assert np.asarray(rank_value).tobytes() == payload.tobytes()


class TestRingTiming:
    def _standalone_time(self, world, nbytes):
        env = Environment()
        machine = tegner(env, k420_nodes=world)
        devices = [machine.node(n).cpu for n in sorted(machine.nodes)]
        values = [SymbolicValue((nbytes // 8,), "float64")
                  for _ in range(world)]
        env.run(until=env.process(ring_allreduce(devices, values)))
        return env.now

    def _graph_op_time(self, world, nbytes, fast_path=True):
        env, _, servers = make_cluster(world)
        g = tf.Graph()
        with g.as_default():
            phs = []
            for w in range(world):
                with g.device(worker_device(w)):
                    phs.append(tf.placeholder(
                        tf.float64, shape=[nbytes // 8], name=f"x{w}"))
            outs = tf.all_reduce(phs)
        sess = tf.Session(servers[0], graph=g, config=tf.SessionConfig(
            shape_only=True, executor_fast_path=fast_path))
        feeds = {ph: SymbolicValue((nbytes // 8,), "float64") for ph in phs}
        start = env.now
        # Fetch the op (not a tensor) so no result transfer pollutes the
        # measurement; inputs are fed, so only admin RPC + ring remain.
        sess.run([outs[0].op], feed_dict=feeds)
        return env.now - start - admin_rpc_time(remote_tasks=True)

    def test_graph_op_matches_standalone_ring(self):
        """The acceptance bar: the lowered op's simulated time is the
        standalone generator's time, on both executor lanes."""
        world, nbytes = 4, 16 * MB
        standalone = self._standalone_time(world, nbytes)
        assert self._graph_op_time(world, nbytes) == pytest.approx(
            standalone, rel=1e-12)
        assert self._graph_op_time(world, nbytes, fast_path=False) == \
            pytest.approx(standalone, rel=1e-9)

    def test_graph_op_respects_lower_bound(self):
        world, nbytes = 4, 64 * MB
        elapsed = self._graph_op_time(world, nbytes)
        env = Environment()
        machine = tegner(env, k420_nodes=world)
        bound = allreduce_time_lower_bound(
            nbytes, world, machine.fabric.effective_rate)
        assert bound <= elapsed < 4.0 * bound


class TestGraphSemantics:
    def test_world_one_is_identity(self):
        g = tf.Graph()
        with g.as_default():
            (out,) = tf.all_reduce([tf.constant(np.arange(4.0))])
        with tf.Session(graph=g) as sess:
            np.testing.assert_array_equal(sess.run(out), np.arange(4.0))

    def test_output_feeds_downstream_ops_across_devices(self):
        """Collective outputs are ordinary tensors: consumable by ops on
        other devices through the usual send/recv routing."""
        world = 2
        _, _, servers = make_cluster(world)
        g = tf.Graph()
        with g.as_default():
            inputs = []
            for w in range(world):
                with g.device(worker_device(w)):
                    inputs.append(tf.constant(np.full(4, w + 1.0)))
            outs = tf.all_reduce(inputs)
            with g.device(worker_device(1)):
                doubled = tf.multiply(outs[0], tf.constant(2.0))
        with tf.Session(servers[1], graph=g) as sess:
            np.testing.assert_array_equal(sess.run(doubled), np.full(4, 6.0))

    def test_chained_collectives_colocate_legs_per_rank(self):
        """Regression: a collective consuming another collective's
        outputs must colocate each leg with the upstream *leg*, not
        collapse every leg onto the upstream op's nominal placement."""
        world = 2
        _, _, servers = make_cluster(world)
        g = tf.Graph()
        with g.as_default():
            ins = []
            for w in range(world):
                with g.device(worker_device(w)):
                    ins.append(tf.constant(np.full(4, w + 1.0), name=f"x{w}"))
            sums = tf.all_reduce(ins)
            gathered = tf.all_gather(sums)
        sess = tf.Session(servers[0], graph=g)
        metadata = RunMetadata()
        values = sess.run(gathered, run_metadata=metadata,
                          options=tf.RunOptions(trace_level=1))
        for rank_value in values:
            np.testing.assert_array_equal(rank_value, np.full(8, 3.0))
        gather_devices = {
            s.device for s in metadata.step_stats
            if s.op_type == "CollectiveAllGather"
        }
        assert gather_devices == {worker_device(0), worker_device(1)}

    def test_plan_cache_and_metadata(self):
        world = 2
        _, _, servers = make_cluster(world)
        g = tf.Graph()
        with g.as_default():
            phs = []
            for w in range(world):
                with g.device(worker_device(w)):
                    phs.append(tf.placeholder(tf.float64, shape=[4],
                                              name=f"x{w}"))
            outs = tf.all_reduce(phs)
        sess = tf.Session(servers[0], graph=g)
        feeds = {ph: np.ones(4) for ph in phs}
        first = RunMetadata()
        sess.run(outs, feed_dict=feeds, run_metadata=first)
        second = RunMetadata()
        sess.run(outs, feed_dict=feeds, run_metadata=second)
        assert first.collective_items == world
        assert second.collective_items == world
        assert not first.plan_cache_hit
        assert second.plan_cache_hit  # lowered plans are cacheable

    def test_shape_mismatch_rejected_at_build(self):
        g = tf.Graph()
        with g.as_default():
            a = tf.constant(np.ones(4))
            b = tf.constant(np.ones(5))
            with pytest.raises(InvalidArgumentError):
                tf.all_reduce([a, b])

    def test_dtype_mismatch_rejected_at_build(self):
        g = tf.Graph()
        with g.as_default():
            a = tf.constant(np.ones(4, np.float32))
            b = tf.constant(np.ones(4, np.float64))
            with pytest.raises(InvalidArgumentError):
                tf.all_reduce([a, b])

    def test_runtime_shape_mismatch_fails_the_run(self):
        """Partially-known static shapes defer the check to the ring."""
        g = tf.Graph()
        with g.as_default():
            a = tf.placeholder(tf.float64, shape=None, name="a")
            b = tf.placeholder(tf.float64, shape=None, name="b")
            outs = tf.all_reduce([a, b])
        with tf.Session(graph=g) as sess:
            with pytest.raises(InvalidArgumentError):
                sess.run(outs, feed_dict={a: np.ones(4), b: np.ones(5)})

    def test_empty_rank_list_rejected(self):
        with pytest.raises(InvalidArgumentError):
            tf.all_reduce([])

    def test_broadcast_needs_world_or_devices(self):
        g = tf.Graph()
        with g.as_default():
            with pytest.raises(InvalidArgumentError):
                tf.broadcast(tf.constant(1.0))

    def test_broadcast_without_devices_rejected_under_session(self):
        """world > 1 with no devices= would silently colocate every leg
        with the root and model the broadcast as zero communication —
        and the error must name the fix, not just the constraint."""
        g = tf.Graph()
        with g.as_default():
            outs = tf.broadcast(tf.constant(np.ones(4)), world=3)
        with tf.Session(graph=g) as sess:
            with pytest.raises(InvalidArgumentError) as excinfo:
                sess.run(outs)
        message = str(excinfo.value)
        assert "devices=[...]" in message
        assert "colocate inputs" in message

    def test_broadcast_world_devices_contradiction_rejected(self):
        g = tf.Graph()
        with g.as_default():
            with pytest.raises(InvalidArgumentError):
                tf.broadcast(tf.constant(1.0), world=4,
                             devices=[worker_device(0), worker_device(1)])

    def test_devices_length_must_match_world(self):
        g = tf.Graph()
        with g.as_default():
            a = tf.constant(np.ones(2))
            b = tf.constant(np.ones(2))
            with pytest.raises(InvalidArgumentError):
                tf.all_reduce([a, b], devices=["/job:worker/task:0"])
