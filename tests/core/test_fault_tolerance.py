"""Detection and recovery: deadlines, retries, crash-safe checkpoints.

The PR-level contract: a lost worker turns into a diagnosable
``DeadlineExceededError`` (never a silent hang) in BOTH executor lanes,
transient message loss is absorbed by the session's retry policy, and a
crash mid-checkpoint can never destroy the previous good snapshot.
"""

import os

import numpy as np
import pytest

import repro as tf
from repro.apps.common import build_cluster, task_device
from repro.core.checkpoint import (
    Saver,
    checkpoint_step,
    latest_checkpoint,
    read_checkpoint,
)
from repro.core.executor import DEFAULT_COLLECTIVE_JOIN_TIMEOUT
from repro.errors import (
    DataLossError,
    DeadlineExceededError,
    InvalidArgumentError,
    UnavailableError,
)
from repro.runtime.rendezvous import Rendezvous
from repro.runtime.retry import RetryPolicy, retry_gen
from repro.simnet.events import Environment
from repro.simnet.faults import FaultPlan, MessageDrop


def lane_config(fast, **kwargs):
    """SessionConfig pinned to one executor lane."""
    return tf.SessionConfig(executor_fast_path=fast,
                            graph_optimization=fast, **kwargs)


def two_worker_allreduce():
    handle = build_cluster("tegner-k420", {"worker": 2})
    g = tf.Graph()
    with g.as_default():
        inputs = []
        for w in range(2):
            with g.device(task_device("worker", w, "cpu", 0)):
                inputs.append(tf.constant(np.ones(8), name=f"x{w}"))
        outs = tf.all_reduce(inputs)
    return handle, g, outs


class TestCollectiveJoinDeadline:
    @pytest.mark.parametrize("fast", [True, False],
                             ids=["fast-path", "legacy"])
    def test_dropped_rank_names_the_missing_rank(self, fast):
        """The acceptance scenario, in both lanes: crash worker 1 before
        the run; rank 0's collective leg must fail with a deadline error
        naming rank 1 instead of deadlocking the ring."""
        handle, g, outs = two_worker_allreduce()
        tf.FaultInjector(
            tf.FaultPlan.single_crash("worker", 1, at=0.0)
        ).install(handle.machine)
        sess = tf.Session(handle.server("worker", 0), graph=g,
                          config=lane_config(fast, operation_timeout_ms=100.0))
        metadata = tf.RunMetadata()
        with pytest.raises(
            DeadlineExceededError,
            match=r"rank\(s\) \[1\] of world 2 never arrived.*arrived: \[0\]",
        ):
            sess.run(outs, run_metadata=metadata)
        assert metadata.deadline_exceeded >= 1
        assert metadata.stalled_items >= 1

    @pytest.mark.parametrize("fast", [True, False],
                             ids=["fast-path", "legacy"])
    def test_deadline_error_reports_down_tasks(self, fast):
        handle, g, outs = two_worker_allreduce()
        tf.FaultInjector(
            tf.FaultPlan.single_crash("worker", 1, at=0.0)
        ).install(handle.machine)
        sess = tf.Session(handle.server("worker", 0), graph=g,
                          config=lane_config(fast, operation_timeout_ms=50.0))
        with pytest.raises(DeadlineExceededError,
                           match=r"tasks down: \[\('worker', 1\)\]"):
            sess.run(outs)

    def test_healthy_run_unaffected_by_timeout(self):
        handle, g, outs = two_worker_allreduce()
        sess = tf.Session(handle.server("worker", 0), graph=g,
                          config=lane_config(True,
                                             operation_timeout_ms=100.0))
        values = sess.run(outs)
        for v in values:
            np.testing.assert_array_equal(np.asarray(v), np.full(8, 2.0))

    def test_default_join_timeout_guards_even_without_config(self):
        """No operation_timeout_ms set: the collective join still cannot
        hang forever — the 300 sim-second default watchdog fires."""
        assert DEFAULT_COLLECTIVE_JOIN_TIMEOUT == 300.0
        handle, g, outs = two_worker_allreduce()
        tf.FaultInjector(
            tf.FaultPlan.single_crash("worker", 1, at=0.0)
        ).install(handle.machine)
        sess = tf.Session(handle.server("worker", 0), graph=g,
                          config=lane_config(True))
        with pytest.raises(DeadlineExceededError, match=r"300 sim-seconds"):
            sess.run(outs)


class TestRecvDeadline:
    def test_rendezvous_recv_deadline_names_key(self):
        env = Environment()
        rdv = Rendezvous(env)
        event = rdv.recv("a;b;t:0;run1", deadline=2.0)
        # Unconsumed failures surface out of env.run — the kernel's
        # nobody-handled-it contract (the executor lanes consume and
        # defuse this event instead).
        with pytest.raises(DeadlineExceededError,
                           match=r"a;b;t:0;run1.*producer never sent"):
            env.run(until=env.timeout(5.0))
        assert event.triggered and not event._ok
        assert rdv.deadline_failures == 1

    def test_recv_deadline_cancelled_by_send(self):
        env = Environment()
        rdv = Rendezvous(env)
        event = rdv.recv("k", deadline=2.0)
        rdv.send("k", 42)
        env.run(until=env.timeout(5.0))  # deadline passes harmlessly
        assert event.value == 42
        assert rdv.deadline_failures == 0

    @pytest.mark.parametrize("fast", [True, False],
                             ids=["fast-path", "legacy"])
    def test_cross_worker_edge_to_dead_producer(self, fast):
        """A plain send/recv edge whose producer died: the consumer's
        recv deadline fires (naming the stalled exchange) instead of
        waiting forever."""
        handle = build_cluster("tegner-k420", {"worker": 2})
        g = tf.Graph()
        with g.as_default():
            with g.device(task_device("worker", 1, "cpu", 0)):
                x = tf.constant(np.arange(4.0), name="x")
            with g.device(task_device("worker", 0, "cpu", 0)):
                y = tf.identity(x, name="y")
        tf.FaultInjector(
            tf.FaultPlan.single_crash("worker", 1, at=0.0)
        ).install(handle.machine)
        # graph_optimization off in both lanes: constant folding would
        # otherwise collapse the cross-worker edge this test needs.
        config = tf.SessionConfig(executor_fast_path=fast,
                                  graph_optimization=False,
                                  operation_timeout_ms=50.0)
        sess = tf.Session(handle.server("worker", 0), graph=g, config=config)
        with pytest.raises(DeadlineExceededError):
            sess.run(y)


class TestRetryPolicy:
    def test_delay_schedule_caps_at_max_backoff(self):
        policy = RetryPolicy(max_attempts=5, initial_backoff=0.1,
                             multiplier=2.0, max_backoff=0.3)
        assert list(policy.delays()) == pytest.approx([0.1, 0.2, 0.3, 0.3])

    def test_validation(self):
        with pytest.raises(InvalidArgumentError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(InvalidArgumentError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(InvalidArgumentError):
            RetryPolicy(initial_backoff=-1.0)

    def test_retry_gen_succeeds_after_transient_failures(self):
        env = Environment()
        calls = {"n": 0}

        def attempt():
            calls["n"] += 1
            if calls["n"] < 3:
                raise UnavailableError("flaky")
            return calls["n"]
            yield  # pragma: no cover — marks this as a generator

        def driver():
            value = yield from retry_gen(
                env, attempt, RetryPolicy(initial_backoff=0.5, multiplier=2.0)
            )
            return value

        proc = env.process(driver())
        env.run(until=proc)
        assert calls["n"] == 3
        assert env.now == pytest.approx(0.5 + 1.0)  # two backoffs elapsed

    def test_retry_gen_exhausts_attempts(self):
        env = Environment()

        def attempt():
            raise UnavailableError("always down")
            yield  # pragma: no cover

        proc = env.process(retry_gen(
            env, attempt, RetryPolicy(max_attempts=3, initial_backoff=0.01)
        ))
        with pytest.raises(UnavailableError, match="always down"):
            env.run(until=proc)

    def test_retry_gen_none_policy_passthrough(self):
        env = Environment()

        def attempt():
            raise UnavailableError("no retries configured")
            yield  # pragma: no cover

        proc = env.process(retry_gen(env, attempt, None))
        with pytest.raises(UnavailableError):
            env.run(until=proc)

    @pytest.mark.parametrize("fast", [True, False],
                             ids=["fast-path", "legacy"])
    def test_session_absorbs_message_drops(self, fast):
        """Transient drops on the wire: the send edge retries under the
        session's policy and the run completes with correct values."""
        handle = build_cluster("tegner-k420", {"worker": 2})
        g = tf.Graph()
        with g.as_default():
            with g.device(task_device("worker", 1, "cpu", 0)):
                x = tf.constant(np.arange(4.0), name="x")
            with g.device(task_device("worker", 0, "cpu", 0)):
                y = tf.identity(x, name="y")
        injector = tf.FaultInjector(
            FaultPlan(faults=(MessageDrop(count=2),))
        ).install(handle.machine)
        # Keep the cross-worker edge: no constant folding.
        config = tf.SessionConfig(executor_fast_path=fast,
                                  graph_optimization=False,
                                  retry_policy=RetryPolicy())
        sess = tf.Session(handle.server("worker", 0), graph=g, config=config)
        metadata = tf.RunMetadata()
        value = sess.run(y, run_metadata=metadata)
        np.testing.assert_array_equal(np.asarray(value), np.arange(4.0))
        assert injector.stats["drops"] == 2
        assert metadata.retries == 2

    def test_drops_without_policy_fail_the_run(self):
        handle = build_cluster("tegner-k420", {"worker": 2})
        g = tf.Graph()
        with g.as_default():
            with g.device(task_device("worker", 1, "cpu", 0)):
                x = tf.constant(np.arange(4.0), name="x")
            with g.device(task_device("worker", 0, "cpu", 0)):
                y = tf.identity(x, name="y")
        tf.FaultInjector(
            FaultPlan(faults=(MessageDrop(count=1),))
        ).install(handle.machine)
        sess = tf.Session(handle.server("worker", 0), graph=g,
                          config=tf.SessionConfig(graph_optimization=False))
        with pytest.raises(UnavailableError, match="dropped"):
            sess.run(y)


def _single_var_session(tmp_path):
    g = tf.Graph()
    with g.as_default():
        v = tf.Variable(np.arange(4.0), name="state")
        bump = tf.assign_add(v, tf.constant(np.ones(4)))
        saver = Saver(graph=g)
    sess = tf.Session(graph=g)
    sess.run(v.initializer)
    return sess, saver, bump, v


class TestCrashSafeCheckpoints:
    def test_save_leaves_no_tmp_file(self, tmp_path):
        sess, saver, _, _ = _single_var_session(tmp_path)
        path = saver.save(sess, str(tmp_path / "ckpt"), global_step=1)
        assert os.path.exists(path)
        assert not os.path.exists(path + ".tmp")

    def test_crash_mid_save_keeps_previous_checkpoint(self, tmp_path):
        """A kill mid-write leaves a ``.tmp`` (or a truncated file under
        a *different* name) — the previous snapshot must stay the one
        latest_checkpoint resolves, and must load cleanly."""
        sess, saver, bump, v = _single_var_session(tmp_path)
        good = saver.save(sess, str(tmp_path / "ckpt"), global_step=5)
        # Simulated mid-write kill: the temp file of the step-10 save
        # survives, the rename never happened.
        blob = open(good, "rb").read()
        with open(tmp_path / "ckpt-10.tmp", "wb") as f:
            f.write(blob[: len(blob) // 2])
        assert latest_checkpoint(str(tmp_path), prefix="ckpt") == good
        saver.restore(sess, good)
        np.testing.assert_array_equal(sess.run(v), np.arange(4.0))

    def test_truncated_checkpoint_raises_dataloss_and_is_skipped(
            self, tmp_path):
        sess, saver, _, _ = _single_var_session(tmp_path)
        good = saver.save(sess, str(tmp_path / "ckpt"), global_step=5)
        blob = open(good, "rb").read()
        bad = tmp_path / "ckpt-10"  # newer step, torn bytes
        bad.write_bytes(blob[: len(blob) - 7])
        with pytest.raises(DataLossError, match="ckpt-10"):
            read_checkpoint(str(bad))
        # Validation walks back to the newest intact snapshot…
        assert latest_checkpoint(str(tmp_path), prefix="ckpt") == good
        # …and only an explicit validate=False returns the torn one.
        assert latest_checkpoint(str(tmp_path), prefix="ckpt",
                                 validate=False) == str(bad)

    def test_bad_magic_raises_dataloss(self, tmp_path):
        bad = tmp_path / "ckpt-3"
        bad.write_bytes(b"GARBAGE BYTES")
        with pytest.raises(DataLossError, match="not a repro checkpoint"):
            read_checkpoint(str(bad))
        assert latest_checkpoint(str(tmp_path), prefix="ckpt") is None

    def test_checkpoint_step_parsing(self, tmp_path):
        assert checkpoint_step("/ckpts/sgd-42") == 42
        with pytest.raises(InvalidArgumentError):
            checkpoint_step("/ckpts/untagged")
