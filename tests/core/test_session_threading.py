"""Many threads, one Session: locking, in-flight guard, cache churn.

The serving layer's workers all call ``Session.run`` on a shared
session, so the plan cache's lookup/insert/evict path and the
in-flight-plan guard must hold up under real thread interleavings.
These tests hammer both regimes:

* hot-plan contention — few signatures, many threads, so concurrent
  runs race for the *same* cached plan and the in-flight guard must
  hand out duplicates rather than shared mutable plan state;
* cache churn — more distinct signatures than ``_PLAN_CACHE_CAPACITY``,
  so eviction runs concurrently with lookups and insertions.

Correctness oracle: every run's numerical result matches NumPy, the
hit/miss counters exactly partition the runs, the cache never exceeds
capacity, and no plan is left registered as in-flight afterwards.
"""

import gc
import threading
import weakref

import numpy as np

import repro as tf
from repro.core.metadata import RunMetadata
from repro.core.session import _PLAN_CACHE_CAPACITY, SessionConfig


def _run_threads(workers):
    """Start, join, and re-raise the first exception from any worker."""
    errors = []

    def wrap(fn):
        def runner():
            try:
                fn()
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        return runner

    threads = [threading.Thread(target=wrap(fn)) for fn in workers]
    for t in threads:
        t.start()
    for t in threads:
        t.join(60)
    assert not any(t.is_alive() for t in threads), "worker thread hung"
    if errors:
        raise errors[0]


class TestHotPlanContention:
    def test_many_threads_share_one_signature(self):
        """All threads race for one cached plan; results stay correct."""
        g = tf.Graph()
        with g.as_default():
            x = tf.placeholder(tf.float32, [None, 4], name="x")
            w = tf.constant(np.eye(4, dtype=np.float32) * 3.0, name="w")
            y = tf.add(tf.matmul(x, w), tf.constant(1.0), name="y")
        sess = tf.Session(graph=g)
        num_threads, runs_each = 8, 10
        barrier = threading.Barrier(num_threads)

        def worker(seed):
            def body():
                rng = np.random.default_rng(seed)
                barrier.wait()
                for _ in range(runs_each):
                    payload = rng.random((2, 4), dtype=np.float32)
                    out = sess.run(y, feed_dict={x: payload})
                    np.testing.assert_allclose(
                        out, payload @ (np.eye(4, dtype=np.float32) * 3.0) + 1.0,
                        rtol=1e-6,
                    )

            return body

        _run_threads([worker(i) for i in range(num_threads)])

        info = sess.plan_cache_info()
        total = num_threads * runs_each
        # Every run is either a hit or a miss — no lookup is lost or
        # double-counted under contention.
        assert info["hits"] + info["misses"] == total
        assert info["hits"] >= 1  # the hot plan did get reused
        # One signature: at most one resident plan, never any eviction.
        assert info["plans"] == 1
        assert info["evictions"] == 0
        # The in-flight guard must fully unwind once runs complete.
        assert sess._plans_in_flight == set()

    def test_concurrent_results_match_serial_baseline(self):
        """Thread interleaving must not perturb any run's bytes."""
        g = tf.Graph()
        with g.as_default():
            x = tf.placeholder(tf.float32, [None, 3], name="x")
            y = tf.sigmoid(tf.multiply(x, tf.constant(2.0)), name="y")
        rng = np.random.default_rng(3)
        payloads = [rng.random((4, 3), dtype=np.float32) for _ in range(24)]

        baseline_sess = tf.Session(graph=g)
        baseline = [
            baseline_sess.run(y, feed_dict={x: p}) for p in payloads
        ]

        sess = tf.Session(graph=g)
        results = [None] * len(payloads)

        def worker(index):
            def body():
                results[index] = sess.run(y, feed_dict={x: payloads[index]})

            return body

        _run_threads([worker(i) for i in range(len(payloads))])
        for got, want in zip(results, baseline):
            assert got.tobytes() == want.tobytes()


class TestCacheChurn:
    def test_eviction_races_with_concurrent_runs(self):
        """More signatures than capacity, from many threads at once."""
        num_signatures = _PLAN_CACHE_CAPACITY + 32
        g = tf.Graph()
        with g.as_default():
            x = tf.placeholder(tf.float32, [None, 2], name="x")
            # Each distinct fetch name is a distinct cache signature.
            fetches = [
                tf.add(x, tf.constant(float(i)), name=f"shift{i}")
                for i in range(num_signatures)
            ]
        sess = tf.Session(graph=g)
        payload = np.ones((1, 2), dtype=np.float32)
        num_threads = 8
        chunks = [fetches[i::num_threads] for i in range(num_threads)]

        def worker(chunk):
            def body():
                for index, fetch in chunk:
                    out = sess.run(fetch, feed_dict={x: payload})
                    np.testing.assert_allclose(out, payload + float(index))

            return body

        indexed = [
            [(fetches.index(f), f) for f in chunk] for chunk in chunks
        ]
        _run_threads([worker(chunk) for chunk in indexed])

        info = sess.plan_cache_info()
        assert info["hits"] + info["misses"] == num_signatures
        assert info["misses"] == num_signatures  # all distinct signatures
        # The LRU bound held even while eviction raced with inserts.
        assert info["plans"] <= info["capacity"] == _PLAN_CACHE_CAPACITY
        assert info["evictions"] >= num_signatures - _PLAN_CACHE_CAPACITY
        assert sess._plans_in_flight == set()

        # Revisiting an evicted signature rebuilds and still computes.
        out = sess.run(fetches[0], feed_dict={x: payload})
        np.testing.assert_allclose(out, payload)

    def test_churn_with_repeat_visits_keeps_counters_consistent(self):
        """Hits and misses stay an exact partition under re-runs."""
        num_signatures = _PLAN_CACHE_CAPACITY + 8
        g = tf.Graph()
        with g.as_default():
            x = tf.placeholder(tf.float32, [None, 2], name="x")
            fetches = [
                tf.multiply(x, tf.constant(float(i + 1)), name=f"scale{i}")
                for i in range(num_signatures)
            ]
        sess = tf.Session(graph=g)
        payload = np.full((1, 2), 2.0, dtype=np.float32)
        rounds = 2

        def worker(offset):
            def body():
                for r in range(rounds):
                    for i in range(offset, num_signatures, 4):
                        out = sess.run(fetches[i], feed_dict={x: payload})
                        np.testing.assert_allclose(
                            out, payload * float(i + 1)
                        )

            return body

        _run_threads([worker(i) for i in range(4)])

        info = sess.plan_cache_info()
        assert info["hits"] + info["misses"] == rounds * num_signatures
        assert info["plans"] <= _PLAN_CACHE_CAPACITY
        assert info["evictions"] > 0
        assert sess._plans_in_flight == set()


def _fusion_session(graph):
    """A session whose plans run pure-op chains through the compiled lane."""
    config = SessionConfig()
    config.graph_optimization = True
    config.optimizer.kernel_fusion = True
    return tf.Session(graph=graph, config=config)


def _chain_graph():
    """A fed pure chain that the fusion pass compiles into one item."""
    g = tf.Graph()
    with g.as_default():
        x = tf.placeholder(tf.float32, (4, 4), name="x")
        a = tf.matmul(x, x, name="mm")
        b = tf.multiply(a, a, name="mul")
        y = tf.exp(tf.add(b, b, name="add"), name="exp")
    return g, x, y


_CHAIN_PAYLOAD = np.linspace(0.05, 0.8, 16, dtype=np.float32).reshape(4, 4)


class TestCompiledPlanCache:
    """Plan cache × compiled chains: closures are cached plan state."""

    def test_compiled_closures_survive_cache_hits(self):
        """A cache hit reuses the plan's CompiledChain objects as-is."""
        g, x, y = _chain_graph()
        sess = _fusion_session(g)

        first = RunMetadata()
        out_first = sess.run(y, feed_dict={x: _CHAIN_PAYLOAD},
                             run_metadata=first)
        assert not first.plan_cache_hit
        assert first.compiled_items >= 1

        (plan,) = sess._plan_cache.values()
        chains_before = [
            id(item.compiled) for item in plan.items if item.kind == "fused"
        ]
        assert chains_before

        second = RunMetadata()
        out_second = sess.run(y, feed_dict={x: _CHAIN_PAYLOAD},
                              run_metadata=second)
        assert second.plan_cache_hit
        assert second.compiled_items == first.compiled_items
        assert second.fused_op_count == first.fused_op_count
        assert out_second.tobytes() == out_first.tobytes()

        (plan_after,) = sess._plan_cache.values()
        chains_after = [
            id(item.compiled)
            for item in plan_after.items if item.kind == "fused"
        ]
        # Same plan object, same compiled closures — the hit-path reset
        # clears per-run state but never rebuilds or recompiles chains.
        assert plan_after is plan
        assert chains_after == chains_before

    def test_fusion_leaves_cache_counters_unchanged(self):
        """Fused and unfused sessions count hits/misses identically."""
        runs = 5
        results = {}
        for fused in (False, True):
            g, x, y = _chain_graph()
            sess = _fusion_session(g) if fused else tf.Session(graph=g)
            outs = [
                sess.run(y, feed_dict={x: _CHAIN_PAYLOAD})
                for _ in range(runs)
            ]
            info = sess.plan_cache_info()
            assert info["misses"] == 1
            assert info["hits"] == runs - 1
            assert info["plans"] == 1
            assert info["evictions"] == 0
            assert sess._plans_in_flight == set()
            results[fused] = outs
        for got, want in zip(results[True], results[False]):
            assert got.tobytes() == want.tobytes()

    def test_eviction_releases_compiled_closures(self):
        """Evicting a fused plan frees its chain closures (no leaks)."""
        g = tf.Graph()
        with g.as_default():
            x = tf.placeholder(tf.float32, (4, 4), name="x")
            mm = tf.matmul(x, x, name="mm")
            mul = tf.multiply(mm, mm, name="mul")
            # Distinct fetch names -> distinct cache signatures, each
            # plan carrying a compiled [mm, mul] chain.
            fetches = [
                tf.add(mul, tf.constant(float(i)), name=f"shift{i}")
                for i in range(_PLAN_CACHE_CAPACITY + 8)
            ]
        sess = _fusion_session(g)

        sess.run(fetches[0], feed_dict={x: _CHAIN_PAYLOAD})
        (plan,) = sess._plan_cache.values()
        fused = [item for item in plan.items if item.kind == "fused"]
        assert fused
        ref = weakref.ref(fused[0].compiled)
        del plan, fused

        for fetch in fetches[1:]:
            sess.run(fetch, feed_dict={x: _CHAIN_PAYLOAD})

        info = sess.plan_cache_info()
        assert info["evictions"] >= 8
        gc.collect()
        # The evicted plan was the only owner of the compiled closure.
        assert ref() is None

    def test_concurrent_fused_runs_match_unfused_serial_bytes(self):
        """Thread contention over cached compiled plans stays exact."""
        g, x, y = _chain_graph()
        rng = np.random.default_rng(7)
        payloads = [
            (0.1 + 0.7 * rng.random((4, 4))).astype(np.float32)
            for _ in range(24)
        ]

        baseline_sess = tf.Session(graph=g)
        baseline = [
            baseline_sess.run(y, feed_dict={x: p}) for p in payloads
        ]

        sess = _fusion_session(g)
        results = [None] * len(payloads)
        metadata = [RunMetadata() for _ in payloads]

        def worker(index):
            def body():
                results[index] = sess.run(
                    y, feed_dict={x: payloads[index]},
                    run_metadata=metadata[index],
                )

            return body

        _run_threads([worker(i) for i in range(len(payloads))])
        for got, want in zip(results, baseline):
            assert got.tobytes() == want.tobytes()
        # Every concurrent run went through the compiled lane.
        assert all(md.compiled_items >= 1 for md in metadata)
        assert sess._plans_in_flight == set()
