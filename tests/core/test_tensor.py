"""Unit tests for TensorShape, Tensor handles, and SymbolicValue."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro as tf
from repro import dtypes
from repro.core.tensor import SymbolicValue, TensorShape, as_shape, value_nbytes
from repro.errors import InvalidArgumentError


class TestTensorShape:
    def test_fully_defined(self):
        s = TensorShape([2, 3])
        assert s.is_fully_defined
        assert s.rank == 2
        assert s.num_elements() == 6
        assert s.as_tuple() == (2, 3)

    def test_partial(self):
        s = TensorShape([None, 3])
        assert not s.is_fully_defined
        assert s.rank == 2
        assert s.num_elements() is None
        with pytest.raises(InvalidArgumentError):
            s.as_tuple()

    def test_unknown_rank(self):
        s = TensorShape(None)
        assert s.rank is None
        with pytest.raises(InvalidArgumentError):
            len(s)
        with pytest.raises(InvalidArgumentError):
            s.as_list()

    def test_negative_dim_rejected(self):
        with pytest.raises(InvalidArgumentError):
            TensorShape([-2])

    def test_compatibility(self):
        assert TensorShape([None, 3]).is_compatible_with(TensorShape([2, 3]))
        assert TensorShape(None).is_compatible_with(TensorShape([7]))
        assert not TensorShape([2, 3]).is_compatible_with(TensorShape([2, 4]))
        assert not TensorShape([2]).is_compatible_with(TensorShape([2, 1]))

    def test_merge(self):
        merged = TensorShape([None, 3]).merge_with(TensorShape([2, None]))
        assert merged == TensorShape([2, 3])

    def test_merge_incompatible_raises(self):
        with pytest.raises(InvalidArgumentError):
            TensorShape([2]).merge_with(TensorShape([3]))

    def test_concatenate(self):
        assert TensorShape([2]).concatenate(TensorShape([3, 4])) == TensorShape([2, 3, 4])
        assert TensorShape(None).concatenate(TensorShape([3])).rank is None

    def test_indexing_and_slicing(self):
        s = TensorShape([2, None, 4])
        assert s[0] == 2
        assert s[1] is None
        assert s[1:] == TensorShape([None, 4])

    def test_equality_with_lists(self):
        assert TensorShape([2, 3]) == [2, 3]
        assert as_shape((5,)) == TensorShape([5])

    def test_str(self):
        assert str(TensorShape([2, None])) == "(2, ?)"
        assert str(TensorShape(None)) == "<unknown>"

    @given(dims=st.lists(st.integers(min_value=0, max_value=64), max_size=4))
    @settings(max_examples=50, deadline=None)
    def test_property_merge_idempotent(self, dims):
        s = TensorShape(dims)
        assert s.merge_with(s) == s
        assert s.is_compatible_with(s)


class TestTensorHandle:
    def test_name_and_metadata(self):
        g = tf.Graph()
        with g.as_default():
            c = tf.constant([[1.0, 2.0]])
        assert c.name.endswith(":0")
        assert c.dtype is dtypes.float32
        assert c.shape == TensorShape([1, 2])
        assert c.graph is g

    def test_operator_overloads_build_ops(self):
        g = tf.Graph()
        with g.as_default():
            a = tf.constant(2.0)
            b = tf.constant(3.0)
            ops_made = {
                (a + b).op.type: "Add",
                (a - b).op.type: "Sub",
                (a * b).op.type: "Mul",
                (a / b).op.type: "Div",
                (-a).op.type: "Neg",
            }
        for actual, expected in ops_made.items():
            assert actual == expected

    def test_matmul_operator(self):
        g = tf.Graph()
        with g.as_default():
            a = tf.constant(np.eye(2, dtype=np.float32))
            b = tf.constant(np.ones((2, 2), dtype=np.float32))
            c = a @ b
        assert c.op.type == "MatMul"

    def test_no_truth_value(self):
        g = tf.Graph()
        with g.as_default():
            c = tf.constant(1.0)
        with pytest.raises(TypeError):
            bool(c)

    def test_set_shape_refines(self):
        g = tf.Graph()
        with g.as_default():
            p = tf.placeholder(tf.float32, shape=[None, 4])
            p.set_shape([2, 4])
        assert p.shape == TensorShape([2, 4])

    def test_set_shape_conflict_raises(self):
        g = tf.Graph()
        with g.as_default():
            p = tf.placeholder(tf.float32, shape=[3])
        with pytest.raises(InvalidArgumentError):
            p.set_shape([4])


class TestSymbolicValue:
    def test_metadata(self):
        v = SymbolicValue((4, 8), dtypes.float64)
        assert v.size == 32
        assert v.nbytes == 256
        assert v.ndim == 2

    def test_of_ndarray(self):
        spec = SymbolicValue.of(np.zeros((2, 2), dtype=np.complex128))
        assert spec == SymbolicValue((2, 2), dtypes.complex128)

    def test_of_is_idempotent(self):
        v = SymbolicValue((3,), dtypes.int32)
        assert SymbolicValue.of(v) is v

    def test_value_nbytes(self):
        assert value_nbytes(np.zeros(10, dtype=np.float32)) == 40
        assert value_nbytes(SymbolicValue((10,), dtypes.float32)) == 40
