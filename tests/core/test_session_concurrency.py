"""Concurrent sessions, plan caching, and determinism properties."""

import numpy as np
import pytest

import repro as tf
from repro.simnet.events import Environment
from repro.simnet.machines import tegner


class TestConcurrentSessions:
    def test_two_workers_progress_in_parallel(self):
        """Two sessions sharing one simulation overlap in simulated time."""
        env = Environment()
        machine = tegner(env, k420_nodes=2)
        cluster = tf.ClusterSpec({
            "worker": ["t01n01:8888", "t01n02:8888"],
        })
        servers = [tf.Server(cluster, "worker", i, machine=machine)
                   for i in range(2)]
        g = tf.Graph()
        with g.as_default():
            products = []
            for w in range(2):
                with g.device(f"/job:worker/task:{w}/device:gpu:0"):
                    x = tf.random_uniform([256, 256], name=f"x{w}")
                    products.append(tf.matmul(x, x, name=f"prod{w}"))
        sessions = [tf.Session(servers[w], graph=g,
                               config=tf.SessionConfig(shape_only=True))
                    for w in range(2)]

        # Serial execution.
        t0 = env.now
        sessions[0].run(products[0].op)
        sessions[1].run(products[1].op)
        serial = env.now - t0

        # Concurrent execution: both sessions as simultaneous processes.
        t0 = env.now

        def runner(w):
            yield from sessions[w].run_gen(products[w].op)

        procs = [env.process(runner(w)) for w in range(2)]
        for proc in procs:
            env.run(until=proc)
        concurrent = env.now - t0
        assert concurrent < serial * 0.75

    def test_plan_cache_reused_across_runs(self):
        g = tf.Graph()
        with g.as_default():
            v = tf.Variable(0.0, name="v")
            bump = tf.assign_add(v, tf.constant(1.0))
        sess = tf.Session(graph=g)
        sess.run(v.initializer)
        for _ in range(3):
            sess.run(bump.op)
        assert sess.run(v) == pytest.approx(3.0)
        # One plan per distinct (fetch, feeds, graph version).
        assert len(sess._plan_cache) == 3  # initializer, bump, read

    def test_graph_growth_invalidates_cache(self):
        g = tf.Graph()
        with g.as_default():
            a = tf.constant(1.0, name="a")
        sess = tf.Session(graph=g)
        assert sess.run(a) == pytest.approx(1.0)
        with g.as_default():
            b = a + tf.constant(2.0)
        assert sess.run(b) == pytest.approx(3.0)
        assert sess.run(a) == pytest.approx(1.0)

    def test_same_fetch_twice_in_one_run(self):
        g = tf.Graph()
        with g.as_default():
            c = tf.constant(5.0)
        with tf.Session(graph=g) as sess:
            x, y = sess.run([c, c])
        assert x == y == pytest.approx(5.0)

    def test_eviction_skips_in_flight_plans(self):
        """LRU eviction must never drop a plan a concurrent run holds.

        A run blocked on an empty queue keeps its plan in flight while
        enough distinct fetches pour in to overflow the cache; the
        in-flight plan's entry has to survive (evicting it would let a
        same-key rerun rebuild and re-cache a duplicate plan while the
        first still executes on the original's items).
        """
        from repro.core.session import _PLAN_CACHE_CAPACITY

        g = tf.Graph()
        with g.as_default():
            q = tf.FIFOQueue(1, [tf.float32], shapes=[[]], name="q")
            blocked = q.dequeue(name="blocked")
            unblock = q.enqueue(tf.constant(7.0), name="unblock")
            extras = [
                tf.add(tf.constant(float(i)), tf.constant(1.0), name=f"e{i}")
                for i in range(_PLAN_CACHE_CAPACITY + 5)
            ]
        sess = tf.Session(graph=g)
        env = sess.env

        got = {}

        def runner():
            got["value"] = yield from sess.run_gen(blocked)

        proc = env.process(runner())
        # Advance past the admin RPC: the run is now blocked inside the
        # executor with its plan registered in flight.
        env.run(until=env.now + 0.001)
        assert len(sess._plans_in_flight) == 1
        blocked_plan_ids = set(sess._plans_in_flight)

        for tensor in extras:  # overflow the cache while the run blocks
            sess.run(tensor)
        assert len(sess._plan_cache) <= _PLAN_CACHE_CAPACITY
        cached_ids = {id(plan) for plan in sess._plan_cache.values()}
        assert blocked_plan_ids <= cached_ids  # survived eviction

        sess.run(unblock)
        env.run(until=proc)
        assert got["value"] == pytest.approx(7.0)
        # Finished runs become evictable again.
        assert not sess._plans_in_flight


class TestDeterminism:
    def test_identical_programs_identical_schedules(self):
        """The DES is deterministic: same program, same simulated times."""

        def run_once():
            env = Environment()
            machine = tegner(env, k420_nodes=2)
            cluster = tf.ClusterSpec({"ps": ["t01n01:8888"],
                                      "worker": ["t01n02:8888"]})
            tf.Server(cluster, "ps", 0, machine=machine)
            worker = tf.Server(cluster, "worker", 0, machine=machine)
            g = tf.Graph(seed=1)
            with g.as_default():
                with g.device("/job:ps/task:0/device:cpu:0"):
                    v = tf.Variable(np.zeros(1000, np.float32), name="v")
                with g.device("/job:worker/task:0/device:cpu:0"):
                    d = tf.ones([1000], dtype=tf.float32)
                update = tf.assign_add(v, d)
            sess = tf.Session(worker, graph=g)
            sess.run(v.initializer)
            for _ in range(5):
                sess.run(update.op)
            return env.now

        assert run_once() == run_once()

    def test_random_values_depend_only_on_seeds(self):
        def values(graph_seed):
            g = tf.Graph(seed=graph_seed)
            with g.as_default():
                r = tf.random_normal([16], seed=2)
            with tf.Session(graph=g) as sess:
                return sess.run(r)

        np.testing.assert_array_equal(values(10), values(10))
        assert not np.array_equal(values(10), values(11))
