"""Edge cases: tile I/O ops, empty traces, and odd-but-legal graphs."""

import json

import numpy as np
import pytest

import repro as tf
from repro.core.metadata import RunMetadata
from repro.core.timeline import Timeline
from repro.errors import InvalidArgumentError, NotFoundError
from repro.simnet.events import Environment
from repro.simnet.machines import localhost


class TestTileIOOps:
    def _session(self):
        env = Environment()
        machine = localhost(env)
        return tf.Session(graph=tf.Graph(), machine=machine), machine

    def test_read_tile_by_index(self):
        sess, machine = self._session()
        machine.filesystem.store_array("t_0_1.npy",
                                       np.full((2, 2), 7.0, np.float32))
        with sess.graph.as_default():
            tile = tf.read_tile("t_{0}_{1}.npy", [0, 1], dtype=tf.float32,
                                shape=[2, 2])
        np.testing.assert_allclose(sess.run(tile), np.full((2, 2), 7.0))

    def test_read_missing_tile_raises(self):
        sess, machine = self._session()
        with sess.graph.as_default():
            tile = tf.read_tile("ghost_{0}.npy", [3], dtype=tf.float32,
                                shape=[2])
        with pytest.raises(NotFoundError):
            sess.run(tile)

    def test_write_then_read_roundtrip(self):
        sess, machine = self._session()
        data = np.arange(6, dtype=np.float64).reshape(2, 3)
        with sess.graph.as_default():
            write = tf.write_tile(tf.constant(data), "out_{0}.npy", [5])
            back = tf.read_tile("out_{0}.npy", [5], dtype=tf.float64,
                                shape=[2, 3])
        sess.run(write)
        np.testing.assert_allclose(sess.run(back), data)
        assert machine.filesystem.exists("out_5.npy")

    def test_bad_pattern_raises(self):
        sess, machine = self._session()
        machine.filesystem.store_array("x.npy", np.zeros(1))
        with sess.graph.as_default():
            tile = tf.read_tile("x_{0}_{1}.npy", [0], dtype=tf.float64,
                                shape=[1])
        with pytest.raises(InvalidArgumentError):
            sess.run(tile)

    def test_io_advances_simulated_clock(self):
        sess, machine = self._session()
        machine.filesystem.store_array(
            "big_0.npy", np.zeros(1024 * 1024, np.float64))
        with sess.graph.as_default():
            tile = tf.read_tile("big_{0}.npy", [0], dtype=tf.float64,
                                shape=[1024 * 1024])
        t0 = sess.env.now
        sess.run(tile)
        # 8 MB through the 2 GB/s localhost filesystem: milliseconds.
        assert sess.env.now - t0 > 1e-3


class TestTimelineEdges:
    def test_empty_metadata_renders(self):
        trace = Timeline(RunMetadata()).generate_chrome_trace_format()
        assert json.loads(trace) == {"traceEvents": []}

    def test_transfers_can_be_hidden(self):
        g = tf.Graph()
        with g.as_default():
            with g.device("/cpu:0"):
                a = tf.random_uniform([64, 64])
            with g.device("/gpu:0"):
                c = tf.matmul(a, a)
        sess = tf.Session(graph=g)
        meta = RunMetadata()
        sess.run(c, options=tf.RunOptions(trace_level=1), run_metadata=meta)
        with_x = json.loads(Timeline(meta).generate_chrome_trace_format(True))
        without = json.loads(Timeline(meta).generate_chrome_trace_format(False))
        assert len(without["traceEvents"]) < len(with_x["traceEvents"])


class TestOddGraphs:
    def test_diamond_dependency(self):
        g = tf.Graph()
        with g.as_default():
            a = tf.constant(2.0)
            left = a * tf.constant(3.0)
            right = a * tf.constant(5.0)
            out = left + right
        with tf.Session(graph=g) as sess:
            assert sess.run(out) == pytest.approx(16.0)

    def test_deep_chain(self):
        g = tf.Graph()
        with g.as_default():
            x = tf.constant(0.0)
            for _ in range(64):
                x = x + tf.constant(1.0)
        with tf.Session(graph=g) as sess:
            assert sess.run(x) == pytest.approx(64.0)

    def test_wide_fanout(self):
        g = tf.Graph()
        with g.as_default():
            base = tf.constant(1.0)
            total = tf.add_n([tf.multiply(base, tf.constant(float(i)))
                              for i in range(32)])
        with tf.Session(graph=g) as sess:
            assert sess.run(total) == pytest.approx(sum(range(32)))

    def test_scalar_broadcast_through_stack(self):
        g = tf.Graph()
        with g.as_default():
            rows = tf.stack([tf.fill([3], float(i)) for i in range(2)])
            doubled = rows * tf.constant(2.0)
        with tf.Session(graph=g) as sess:
            np.testing.assert_allclose(
                sess.run(doubled), [[0, 0, 0], [2, 2, 2]])
