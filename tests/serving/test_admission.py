"""Admission controller: bounded queue, quotas, deadlines, shutdown."""

import threading

import numpy as np
import pytest

from repro.errors import (
    CancelledError,
    DeadlineExceededError,
    ResourceExhaustedError,
)
from repro.serving.admission import AdmissionController, AdmissionPolicy
from repro.serving.request import PendingRequest, now


def _pending(tenant="t0", signature="sig", deadline_ms=None, rows=1):
    at = now()
    return PendingRequest(
        tenant=tenant,
        signature=signature,  # any hashable sentinel works for the queue
        inputs={"x": np.zeros((rows, 2), np.float32)},
        rows=rows,
        deadline_at=at + deadline_ms / 1e3 if deadline_ms is not None else None,
        submitted_at=at,
    )


class TestAdmission:
    def test_fifo_order_and_depth(self):
        ctl = AdmissionController(AdmissionPolicy(max_queue=8))
        pendings = [_pending(tenant=f"t{i}") for i in range(3)]
        for p in pendings:
            ctl.offer(p)
        assert ctl.depth() == 3
        batch = ctl.next_batch(max_batch=8)
        assert batch == pendings
        assert ctl.depth() == 0
        assert all(p.dequeued_at is not None for p in batch)

    def test_queue_full_rejection_is_typed_and_attributed(self):
        ctl = AdmissionController(AdmissionPolicy(max_queue=2))
        ctl.offer(_pending())
        ctl.offer(_pending())
        with pytest.raises(ResourceExhaustedError, match="admission queue full") as err:
            ctl.offer(_pending(tenant="flood"))
        assert err.value.admission_reason == "queue_full"

    def test_per_tenant_quota(self):
        ctl = AdmissionController(
            AdmissionPolicy(max_queue=16, per_tenant_quota=2)
        )
        ctl.offer(_pending(tenant="greedy"))
        ctl.offer(_pending(tenant="greedy"))
        with pytest.raises(ResourceExhaustedError, match="quota") as err:
            ctl.offer(_pending(tenant="greedy"))
        assert err.value.admission_reason == "quota"
        # Other tenants are unaffected by one tenant's quota exhaustion.
        ctl.offer(_pending(tenant="modest"))
        # Dequeue frees quota.
        ctl.next_batch(max_batch=16)
        ctl.offer(_pending(tenant="greedy"))

    def test_dead_on_arrival_rejected_with_deadline_error(self):
        ctl = AdmissionController()
        with pytest.raises(DeadlineExceededError, match="already"):
            ctl.offer(_pending(deadline_ms=-1.0))

    def test_batches_are_same_signature_only(self):
        ctl = AdmissionController()
        a1, b1, a2 = (
            _pending(signature="A"),
            _pending(signature="B"),
            _pending(signature="A"),
        )
        for p in (a1, b1, a2):
            ctl.offer(p)
        first = ctl.next_batch(max_batch=8)
        assert first == [a1, a2]  # head-of-line signature, FIFO within it
        second = ctl.next_batch(max_batch=8)
        assert second == [b1]

    def test_max_batch_caps_coalescing(self):
        ctl = AdmissionController()
        pendings = [_pending() for _ in range(5)]
        for p in pendings:
            ctl.offer(p)
        assert ctl.next_batch(max_batch=3) == pendings[:3]
        assert ctl.next_batch(max_batch=3) == pendings[3:]

    def test_batch_window_waits_for_stragglers(self):
        ctl = AdmissionController()
        ctl.offer(_pending())

        def late_arrival():
            ctl.offer(_pending())

        timer = threading.Timer(0.02, late_arrival)
        timer.start()
        try:
            batch = ctl.next_batch(max_batch=2, window_s=1.0)
        finally:
            timer.cancel()
        assert len(batch) == 2  # straggler joined within the window

    def test_close_unblocks_waiters_and_drains(self):
        ctl = AdmissionController()
        got = {}

        def worker():
            got["batch"] = ctl.next_batch(max_batch=4)

        thread = threading.Thread(target=worker)
        thread.start()
        ctl.close()
        thread.join(5)
        assert not thread.is_alive()
        assert got["batch"] is None
        with pytest.raises(CancelledError):
            ctl.offer(_pending())

    def test_close_cancel_pending_returns_orphans(self):
        ctl = AdmissionController()
        pendings = [_pending() for _ in range(3)]
        for p in pendings:
            ctl.offer(p)
        cancelled = ctl.close(cancel_pending=True)
        assert cancelled == pendings
        assert ctl.depth() == 0
