"""Signature validation and the micro-batcher's gather/scatter math."""

import numpy as np
import pytest

import repro as tf
from repro.errors import InvalidArgumentError
from repro.serving.batcher import MicroBatcher, ServingSignature
from repro.serving.request import PendingRequest, now


def _graph_with_placeholder(shape=[None, 3]):
    g = tf.Graph()
    with g.as_default():
        x = tf.placeholder(tf.float32, shape, name="x")
        y = tf.add(x, tf.constant(1.0), name="y")
    return g, x, y


def _pending(sig, arrays):
    inputs, rows = sig.validate_inputs(arrays)
    return PendingRequest(
        tenant="t",
        signature=sig,
        inputs=inputs,
        rows=rows,
        deadline_at=None,
        submitted_at=now(),
    )


class TestSignature:
    def test_requires_variable_batch_dim(self):
        g, x, y = _graph_with_placeholder(shape=[4, 3])
        with pytest.raises(InvalidArgumentError, match="batch"):
            ServingSignature("s", {"x": x}, y)

    def test_requires_inputs_and_outputs(self):
        g, x, y = _graph_with_placeholder()
        with pytest.raises(InvalidArgumentError, match="input"):
            ServingSignature("s", {}, y)

    def test_validate_inputs_checks_names_shape_and_rows(self):
        g, x, y = _graph_with_placeholder()
        sig = ServingSignature("s", {"x": x}, y)
        with pytest.raises(InvalidArgumentError, match="expects inputs"):
            sig.validate_inputs({"wrong": np.zeros((1, 3))})
        with pytest.raises(InvalidArgumentError, match="shape"):
            sig.validate_inputs({"x": np.zeros((1, 4), np.float32)})
        arrays, rows = sig.validate_inputs(
            {"x": np.ones((5, 3), np.float64)}  # coerced to float32
        )
        assert rows == 5
        assert arrays["x"].dtype == np.float32

    def test_mismatched_rows_across_inputs_rejected(self):
        g = tf.Graph()
        with g.as_default():
            a = tf.placeholder(tf.float32, [None, 2], name="a")
            b = tf.placeholder(tf.float32, [None, 2], name="b")
            y = tf.add(a, b, name="y")
        sig = ServingSignature("s", {"a": a, "b": b}, y)
        with pytest.raises(InvalidArgumentError, match="disagree"):
            sig.validate_inputs(
                {"a": np.zeros((2, 2), np.float32),
                 "b": np.zeros((3, 2), np.float32)}
            )


class TestMicroBatcher:
    def test_assemble_concatenates_along_batch_axis(self):
        g, x, y = _graph_with_placeholder()
        sig = ServingSignature("s", {"x": x}, y)
        p1 = _pending(sig, {"x": np.full((2, 3), 1.0, np.float32)})
        p2 = _pending(sig, {"x": np.full((3, 3), 2.0, np.float32)})
        feed, sizes = MicroBatcher.assemble(sig, [p1, p2])
        assert sizes == [2, 3]
        assert feed["x"].shape == (5, 3)
        np.testing.assert_array_equal(feed["x"][:2], p1.inputs["x"])
        np.testing.assert_array_equal(feed["x"][2:], p2.inputs["x"])

    def test_single_request_passes_arrays_through(self):
        g, x, y = _graph_with_placeholder()
        sig = ServingSignature("s", {"x": x}, y)
        p = _pending(sig, {"x": np.zeros((2, 3), np.float32)})
        feed, sizes = MicroBatcher.assemble(sig, [p])
        assert feed["x"] is p.inputs["x"]
        assert sizes == [2]

    def test_scatter_roundtrips_rows(self):
        g, x, y = _graph_with_placeholder()
        sig = ServingSignature("s", {"x": x}, y)
        batched = np.arange(15, dtype=np.float32).reshape(5, 3)
        parts = MicroBatcher.scatter(sig, batched, [2, 1, 2])
        assert [p.shape for p in parts] == [(2, 3), (1, 3), (2, 3)]
        np.testing.assert_array_equal(np.concatenate(parts), batched)
        # Copies, not views into the batch buffer.
        assert all(p.base is None for p in parts)

    def test_scatter_multi_output_structure(self):
        g = tf.Graph()
        with g.as_default():
            x = tf.placeholder(tf.float32, [None, 2], name="x")
            y1 = tf.add(x, tf.constant(1.0), name="y1")
            y2 = tf.multiply(x, tf.constant(2.0), name="y2")
        sig = ServingSignature("s", {"x": x}, [y1, y2])
        assert not sig.single_output
        a = np.ones((3, 2), np.float32)
        b = np.full((3, 2), 2.0, np.float32)
        parts = MicroBatcher.scatter(sig, [a, b], [1, 2])
        first, second = parts
        assert isinstance(first, list) and len(first) == 2
        np.testing.assert_array_equal(first[0], a[:1])
        np.testing.assert_array_equal(second[1], b[1:])
