"""ModelServer end-to-end: byte-identity, deadlines, tenants, accounting."""


import numpy as np
import pytest

import repro as tf
from repro.apps.serving import build_mlp_server, mlp_reference, run_serving_load
from repro.errors import (
    AlreadyExistsError,
    CancelledError,
    DeadlineExceededError,
    NotFoundError,
    ResourceExhaustedError,
)
from repro.serving import ModelServer, ServingConfig


def _affine_graph(features=6):
    """Row-independent arithmetic: batched == unbatched byte-for-byte."""
    rng = np.random.default_rng(7)
    g = tf.Graph()
    with g.as_default():
        x = tf.placeholder(tf.float32, [None, features], name="x")
        w = tf.constant(
            rng.standard_normal((features, features)).astype(np.float32),
            name="w",
        )
        b = tf.constant(
            rng.standard_normal(features).astype(np.float32), name="b"
        )
        y = tf.sigmoid(tf.add(tf.matmul(x, w), b), name="y")
    return g, x, y


class TestByteIdentity:
    def test_micro_batched_results_byte_identical_to_individual_runs(self):
        """The acceptance property: coalescing must not change one byte."""
        g, x, y = _affine_graph()
        rng = np.random.default_rng(11)
        # Mixed rows-per-request exercises uneven scatter offsets.
        payloads = [
            rng.random((rows, 6), dtype=np.float32)
            for rows in (1, 3, 1, 2, 1, 1, 4, 1)
        ]
        reference_sess = tf.Session(graph=g)
        references = [
            reference_sess.run(y, feed_dict={x: p}) for p in payloads
        ]

        server = ModelServer(
            graph=g,
            config=ServingConfig(
                max_batch_size=len(payloads), num_workers=1,
                batch_window_ms=20.0,
            ),
        )
        server.register_signature("affine", {"x": x}, y)
        with server:
            futures = [
                server.submit_async(f"tenant-{i % 3}", "affine", {"x": p})
                for i, p in enumerate(payloads)
            ]
            responses = [f.result(30) for f in futures]

        for response, reference in zip(responses, references):
            assert response.outputs.dtype == reference.dtype
            assert response.outputs.shape == reference.shape
            assert response.outputs.tobytes() == reference.tobytes()
        # The point of batching: fewer runs than requests actually happened.
        assert max(r.batch_size for r in responses) > 1

    def test_batched_execution_reuses_one_cached_plan(self):
        g, x, y = _affine_graph()
        server = ModelServer(
            graph=g, config=ServingConfig(max_batch_size=4, num_workers=1)
        )
        server.register_signature("affine", {"x": x}, y)
        rng = np.random.default_rng(0)
        with server:
            for rows in (1, 2, 5, 1, 3):  # varying batch shapes
                server.submit("t", "affine", {"x": rng.random((rows, 6), dtype=np.float32)})
        info = server.session.plan_cache_info()
        assert info["plans"] == 1  # one signature -> one plan, any batch size
        assert info["misses"] == 1
        assert info["hits"] >= 4
        assert info["capacity"] > 0
        assert info["evictions"] == 0


class TestAdmissionIntegration:
    def test_deadline_expired_in_queue_rejected_at_dispatch(self):
        g, x, y = _affine_graph()
        server = ModelServer(
            graph=g, config=ServingConfig(max_batch_size=4, num_workers=1)
        )
        server.register_signature("affine", {"x": x}, y)
        payload = {"x": np.zeros((1, 6), np.float32)}
        # Submit before start: requests queue with nobody dispatching, so
        # a tight deadline deterministically expires in the queue.
        future = server.submit_async("late", "affine", payload, deadline_ms=1.0)
        healthy = server.submit_async("ok", "affine", payload)
        import time

        time.sleep(0.01)
        with server:
            healthy.result(30)
            with pytest.raises(DeadlineExceededError, match="queue"):
                future.result(30)
        stats = server.tenant_stats("late")
        assert stats.rejected_deadline == 1
        assert stats.completed == 0

    def test_dead_on_arrival_rejected_at_admission(self):
        g, x, y = _affine_graph()
        server = ModelServer(graph=g)
        server.register_signature("affine", {"x": x}, y)
        with pytest.raises(DeadlineExceededError, match="admission"):
            server.submit_async(
                "t", "affine", {"x": np.zeros((1, 6), np.float32)},
                deadline_ms=-5.0,
            )
        assert server.tenant_stats("t").rejected_deadline == 1

    def test_queue_full_backpressure(self):
        g, x, y = _affine_graph()
        server = ModelServer(
            graph=g, config=ServingConfig(max_queue=2)
        )
        server.register_signature("affine", {"x": x}, y)
        payload = {"x": np.zeros((1, 6), np.float32)}
        server.submit_async("t", "affine", payload)
        server.submit_async("t", "affine", payload)
        with pytest.raises(ResourceExhaustedError, match="full"):
            server.submit_async("t", "affine", payload)
        assert server.tenant_stats("t").rejected_queue_full == 1

    def test_per_tenant_quota_isolates_tenants(self):
        g, x, y = _affine_graph()
        server = ModelServer(
            graph=g,
            config=ServingConfig(max_queue=16, per_tenant_quota=1),
        )
        server.register_signature("affine", {"x": x}, y)
        payload = {"x": np.zeros((1, 6), np.float32)}
        server.submit_async("greedy", "affine", payload)
        with pytest.raises(ResourceExhaustedError, match="quota"):
            server.submit_async("greedy", "affine", payload)
        # The other tenant still gets in.
        server.submit_async("modest", "affine", payload)
        assert server.tenant_stats("greedy").rejected_quota == 1
        assert server.tenant_stats("modest").rejected_quota == 0


class TestLifecycleAndErrors:
    def test_unknown_signature(self):
        g, x, y = _affine_graph()
        server = ModelServer(graph=g)
        server.register_signature("affine", {"x": x}, y)
        with pytest.raises(NotFoundError, match="affine"):
            server.submit_async("t", "nope", {"x": np.zeros((1, 6))})

    def test_duplicate_signature(self):
        g, x, y = _affine_graph()
        server = ModelServer(graph=g)
        server.register_signature("affine", {"x": x}, y)
        with pytest.raises(AlreadyExistsError):
            server.register_signature("affine", {"x": x}, y)

    def test_start_requires_a_signature(self):
        g, _, _ = _affine_graph()
        from repro.errors import FailedPreconditionError

        with pytest.raises(FailedPreconditionError, match="signature"):
            ModelServer(graph=g).start()

    def test_stop_without_drain_cancels_queued_requests(self):
        g, x, y = _affine_graph()
        server = ModelServer(graph=g)
        server.register_signature("affine", {"x": x}, y)
        future = server.submit_async(
            "t", "affine", {"x": np.zeros((1, 6), np.float32)}
        )
        server.stop(drain=False)  # never started: queue is cancelled
        with pytest.raises(CancelledError):
            future.result(5)
        with pytest.raises(CancelledError):
            server.submit_async(
                "t", "affine", {"x": np.zeros((1, 6), np.float32)}
            )

    def test_stop_with_drain_serves_queued_requests(self):
        g, x, y = _affine_graph()
        server = ModelServer(
            graph=g, config=ServingConfig(max_batch_size=4, num_workers=2)
        )
        server.register_signature("affine", {"x": x}, y)
        futures = [
            server.submit_async(
                "t", "affine", {"x": np.zeros((1, 6), np.float32)}
            )
            for _ in range(6)
        ]
        server.start()
        server.stop(drain=True)
        for future in futures:
            assert future.result(0.0).outputs.shape == (1, 6)


class TestMultiSignature:
    def test_signatures_never_batch_together_but_share_the_session(self):
        rng = np.random.default_rng(5)
        g = tf.Graph()
        with g.as_default():
            x = tf.placeholder(tf.float32, [None, 4], name="x")
            w = tf.constant(
                rng.standard_normal((4, 4)).astype(np.float32), name="w"
            )
            double = tf.multiply(x, tf.constant(2.0), name="double")
            project = tf.matmul(x, w, name="project")
        server = ModelServer(
            graph=g,
            config=ServingConfig(
                max_batch_size=8, num_workers=2, batch_window_ms=5.0
            ),
        )
        server.register_signature("double", {"x": x}, double)
        server.register_signature("project", {"x": x}, project)
        payloads = [rng.random((1, 4), dtype=np.float32) for _ in range(12)]
        with server:
            futures = [
                server.submit_async(
                    "t", "double" if i % 2 else "project", {"x": p}
                )
                for i, p in enumerate(payloads)
            ]
            responses = [f.result(30) for f in futures]
        for i, (response, payload) in enumerate(zip(responses, payloads)):
            expected = payload * 2 if i % 2 else payload @ (
                server.session.run(g.get_tensor_by_name("w:0"))
            )
            np.testing.assert_allclose(response.outputs, expected, rtol=1e-6)
            assert response.signature == ("double" if i % 2 else "project")
        # Two signatures -> exactly two plans in the shared cache (the
        # w fetch above adds a third entry).
        assert server.session.plan_cache_info()["plans"] == 3


class TestAccounting:
    def test_per_tenant_attribution(self):
        g, x, y = _affine_graph()
        server = ModelServer(
            graph=g,
            config=ServingConfig(
                max_batch_size=4, num_workers=1, batch_window_ms=10.0
            ),
        )
        server.register_signature("affine", {"x": x}, y)
        rng = np.random.default_rng(1)
        with server:
            futures = [
                server.submit_async(
                    f"tenant-{i % 2}", "affine",
                    {"x": rng.random((1, 6), dtype=np.float32)},
                )
                for i in range(8)
            ]
            for future in futures:
                future.result(30)
        all_stats = server.tenant_stats()
        assert set(all_stats) == {"tenant-0", "tenant-1"}
        for stats in all_stats.values():
            assert stats.submitted == 4
            assert stats.completed == 4
            assert stats.rejected == 0
            assert stats.batches >= 1
            assert stats.mean_batch_occupancy > 1.0  # coalescing happened
            assert stats.queue_wait_total_s >= 0.0
            assert stats.sim_time_total_s > 0.0
        # Cache hits: everything after the first batch run reused the plan.
        combined = server.stats()
        assert combined["requests_completed"] == 8
        assert combined["mean_batch_occupancy"] > 1.0
        assert combined["plan_cache"]["misses"] == 1

    def test_response_carries_shared_run_metadata(self):
        g, x, y = _affine_graph()
        server = ModelServer(graph=g)
        server.register_signature("affine", {"x": x}, y)
        with server:
            response = server.submit(
                "t", "affine", {"x": np.zeros((2, 6), np.float32)}
            )
        assert response.metadata.plan_items > 0
        assert response.metadata.wall_time > 0.0
        assert response.batch_rows == 2
        assert response.run_wall_s > 0.0


class TestLoadDriver:
    def test_closed_loop_load_completes_and_validates(self):
        server = build_mlp_server(
            config=ServingConfig(
                max_batch_size=8, num_workers=2, batch_window_ms=1.0
            )
        )
        result = run_serving_load(server, clients=6, requests_per_client=10)
        server.stop()
        assert result.completed == 60
        assert result.rejected == 0
        assert result.throughput_rps > 0
        assert result.p99_ms >= result.p50_ms > 0
        assert result.mean_batch_occupancy >= 1.0
        assert result.plan_cache["plans"] == 1

    def test_load_results_match_numpy_reference(self):
        server = build_mlp_server(
            config=ServingConfig(max_batch_size=4, num_workers=1)
        )
        reference = mlp_reference()
        rng = np.random.default_rng(2)
        x = rng.random((3, 16), dtype=np.float32)
        with server:
            response = server.submit("t", "mlp", {"x": x})
        np.testing.assert_allclose(
            response.outputs, reference(x), rtol=1e-5, atol=1e-6
        )
