"""Verification wired into the optimizer pipeline and the session.

The tentpole integration contract: a buggy optimizer pass is caught by
the re-verification that runs after *that* pass, and the resulting
VerificationError names it; sessions opt in through
SessionConfig.verify_plans or the REPRO_VERIFY_PLANS environment
variable; verified plans record their status in RunMetadata.
"""

import pytest

import repro as tf
from repro.core.metadata import PassStats
from repro.core.optimizer import OptimizerOptions, run_pipeline
from repro.errors import VerificationError


def simple_graph():
    g = tf.Graph()
    with g.as_default():
        a = tf.constant([1.0, 2.0], name="a")
        b = tf.identity(a, name="b")
        c = tf.add(b, b, name="c")
    return g, c


def pipeline(g, fetches, verify=True, options=None):
    return run_pipeline(
        g,
        g.operations,
        [],
        list(fetches),
        {},
        options or OptimizerOptions(),
        verify=verify,
    )


class TestPerPassVerification:
    def test_clean_pipeline_marks_every_pass_verified(self):
        g, c = simple_graph()
        result = pipeline(g, [c])
        assert result.stats  # at least one pass ran
        for stats in result.stats:
            assert stats.detail.get("verified") is True

    def test_buggy_pass_caught_and_attributed(self, monkeypatch):
        from repro.core.optimizer import cse

        def bad_merge(sg):
            # Drops an op that still has consumers — the defect class a
            # wrong CSE canonicalization produces. ("a" is the canonical
            # producer every surviving edge resolves to by this point.)
            victim = next(op for op in sg.ops if op.name == "a")
            sg.ops = [op for op in sg.ops if op is not victim]
            return PassStats(
                name="common_subexpression",
                nodes_before=len(sg.ops) + 1,
                nodes_after=len(sg.ops),
            )

        monkeypatch.setattr(cse, "merge_common_subexpressions", bad_merge)
        g, c = simple_graph()
        with pytest.raises(VerificationError) as excinfo:
            pipeline(g, [c])
        err = excinfo.value
        assert "common_subexpression" in str(err)
        assert any(d.rule == "graph/dangling-ref" for d in err.diagnostics)
        assert all(
            d.opt_pass == "common_subexpression" for d in err.diagnostics
        )

    def test_buggy_type_changing_fold_caught(self, monkeypatch):
        import numpy as np

        from repro.core.optimizer import constant_folding

        def bad_fold(sg, max_bytes):
            root = next(op for op in sg.ops if op.name == "c")
            # Wrong shape: folding must preserve the recorded specs.
            sg.folded[root.name] = [np.zeros((9, 9), np.float32)]
            return PassStats(name="constant_folding")

        monkeypatch.setattr(constant_folding, "fold_constants", bad_fold)
        g, c = simple_graph()
        with pytest.raises(VerificationError) as excinfo:
            pipeline(g, [c])
        assert any(
            d.rule == "graph/folded-spec" for d in excinfo.value.diagnostics
        )

    def test_verify_off_lets_buggy_pass_through(self, monkeypatch):
        from repro.core.optimizer import cse

        def bad_merge(sg):
            sg.ops = [op for op in sg.ops if op.name != "b"]
            return PassStats(name="common_subexpression")

        monkeypatch.setattr(cse, "merge_common_subexpressions", bad_merge)
        g, c = simple_graph()
        result = pipeline(g, [c], verify=False)  # no verification: no raise
        assert all("verified" not in s.detail for s in result.stats)


class TestSessionIntegration:
    def test_racy_graph_rejected_before_execution(self):
        g = tf.Graph()
        with g.as_default():
            v = tf.Variable(tf.constant([1.0]), name="v")
            a = tf.assign(v, tf.constant([2.0]), name="w1")
            b = tf.assign(v, tf.constant([3.0]), name="w2")
        config = tf.SessionConfig(verify_plans=True)
        with tf.Session(graph=g, config=config) as sess:
            sess.run(v.initializer)
            with pytest.raises(VerificationError) as excinfo:
                sess.run([a, b])
        assert excinfo.value.diagnostics[0].rule == "plan/variable-race"

    def test_verified_run_records_metadata(self):
        g = tf.Graph()
        with g.as_default():
            a = tf.constant([1.0, 2.0], name="a")
            c = tf.add(a, a, name="c")
        config = tf.SessionConfig(verify_plans=True)
        with tf.Session(graph=g, config=config) as sess:
            md = tf.RunMetadata()
            out = sess.run(c, run_metadata=md)
        assert list(out) == [2.0, 4.0]
        assert md.plan_verified and md.verifier_warnings == 0

    def test_unverified_run_records_metadata(self, monkeypatch):
        monkeypatch.delenv("REPRO_VERIFY_PLANS", raising=False)
        g = tf.Graph()
        with g.as_default():
            c = tf.constant([1.0], name="c")
        with tf.Session(graph=g) as sess:
            md = tf.RunMetadata()
            sess.run(c, run_metadata=md)
        assert md.plan_verified is False

    def test_rejected_plan_never_cached(self):
        g = tf.Graph()
        with g.as_default():
            v = tf.Variable(tf.constant([1.0]), name="v")
            a = tf.assign(v, tf.constant([2.0]), name="w1")
            b = tf.assign(v, tf.constant([3.0]), name="w2")
        config = tf.SessionConfig(verify_plans=True)
        with tf.Session(graph=g, config=config) as sess:
            for _ in range(2):
                with pytest.raises(VerificationError):
                    sess.run([a, b])
            info = sess.plan_cache_info()
            assert info["hits"] == 0  # the bad plan never entered the cache

    def test_results_identical_with_and_without_verification(self):
        import numpy as np

        def build():
            g = tf.Graph()
            with g.as_default():
                x = tf.constant(np.arange(12, dtype=np.float32).reshape(3, 4))
                y = tf.matmul(x, tf.transpose(x))
                z = tf.reduce_sum(y, axis=1)
            return g, z

        outs = []
        for verify in (False, True):
            g, z = build()
            config = tf.SessionConfig(verify_plans=verify)
            with tf.Session(graph=g, config=config) as sess:
                outs.append(sess.run(z))
        assert outs[0].tobytes() == outs[1].tobytes()


class TestEnvironmentFlag:
    def test_env_flag_enables_verification(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY_PLANS", "1")
        assert tf.SessionConfig().verify_plans is True

    def test_env_flag_zero_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY_PLANS", "0")
        assert tf.SessionConfig().verify_plans is False

    def test_default_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_VERIFY_PLANS", raising=False)
        assert tf.SessionConfig().verify_plans is False

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.delenv("REPRO_VERIFY_PLANS", raising=False)
        assert tf.SessionConfig(verify_plans=True).verify_plans is True
