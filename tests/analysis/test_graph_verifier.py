"""Adversarial tests for verify_graph: each seeded defect class must be
caught with exactly the expected diagnostic."""

import numpy as np
import pytest

import repro as tf
from repro.analysis import Severity, verify_graph
from repro.core.placement import Placer


def rules_of(report):
    return [d.rule for d in report]


def make_placer(gpus=1):
    return Placer(
        {("localhost", 0): {"cpu": 1, "gpu": gpus}},
        default_job="localhost",
        default_task=0,
    )


class TestCleanGraphs:
    def test_simple_graph_verifies_clean(self):
        g = tf.Graph()
        with g.as_default():
            a = tf.constant([[1.0, 2.0]], name="a")
            b = tf.constant([[3.0], [4.0]], name="b")
            tf.matmul(a, b, name="c")
        report = verify_graph(g)
        assert report.ok and len(report) == 0

    def test_variable_graph_verifies_clean(self):
        g = tf.Graph()
        with g.as_default():
            v = tf.Variable(tf.constant([1.0, 2.0]), name="v")
            tf.add(v.value(), tf.constant([1.0, 1.0]), name="r")
        assert verify_graph(g).ok

    def test_subset_mode_skips_initializer_rule(self):
        # A pruned fetch closure legitimately reads a variable whose
        # initializer ran in an earlier session.run.
        g = tf.Graph()
        with g.as_default():
            v = tf.Variable(tf.constant([1.0]), name="v")
            read = tf.identity(v.value(), name="read")
        subset = [v.op, read.op]  # no v/Assign
        assert verify_graph(g, ops=subset).ok


class TestDanglingRefs:
    def test_unregistered_producer_detected(self):
        g = tf.Graph()
        with g.as_default():
            a = tf.constant(1.0, name="a")
            c = tf.identity(a, name="c")
        del g._nodes["a"]  # simulate a pass corrupting the graph index
        report = verify_graph(g, ops=[c.op])
        assert "graph/dangling-ref" in rules_of(report)
        assert report.errors[0].op == "c"

    def test_unregistered_control_input_detected(self):
        g = tf.Graph()
        with g.as_default():
            a = tf.constant(1.0, name="a")
            b = tf.constant(2.0, name="b")
            with g.control_dependencies([a.op]):
                c = tf.identity(b, name="c")
        del g._nodes["a"]
        report = verify_graph(g, ops=[b.op, c.op])
        assert "graph/dangling-ref" in rules_of(report)


class TestCycles:
    def test_control_cycle_detected(self):
        g = tf.Graph()
        with g.as_default():
            a = tf.constant(1.0, name="a")
            b = tf.identity(a, name="b")
        # Mutate control edges into a 2-cycle (no builder can do this).
        a.op.control_inputs = (b.op,)
        b.op.control_inputs = (a.op,)
        report = verify_graph(g)
        assert "graph/cycle" in rules_of(report)
        assert report.errors[0].op in ("a", "b")


class TestDevices:
    def test_unparseable_device_detected(self):
        g = tf.Graph()
        with g.as_default():
            with g.device("/job:worker/task:not-a-number"):
                tf.constant(1.0, name="a")
        report = verify_graph(g)
        assert "graph/invalid-device" in rules_of(report)
        assert report.errors[0].op == "a"

    def test_unknown_task_detected_with_placer(self):
        g = tf.Graph()
        with g.as_default():
            with g.device("/job:ps/task:3"):
                tf.constant(1.0, name="a")
        report = verify_graph(g, placer=make_placer())
        assert "graph/invalid-device" in rules_of(report)
        assert report.errors[0].device == "/job:ps/task:3"

    def test_known_device_resolves_clean(self):
        g = tf.Graph()
        with g.as_default():
            with g.device("/device:gpu:0"):
                tf.constant(1.0, name="a")
        assert verify_graph(g, placer=make_placer()).ok


class TestVariableInitializers:
    def test_uninitialized_variable_detected(self):
        g = tf.Graph()
        with g.as_default():
            v = tf.Variable(tf.constant([1.0]), name="v")
            tf.identity(v.value(), name="read")
        del g._nodes["v/Assign"]  # drop the initializer from the graph
        g._node_order[:] = [op for op in g._node_order
                            if op.name != "v/Assign"]
        report = verify_graph(g)
        assert "graph/uninitialized-variable" in rules_of(report)
        assert report.errors[0].op == "v"

    def test_initialized_variable_clean(self):
        g = tf.Graph()
        with g.as_default():
            tf.Variable(tf.constant([1.0]), name="v")
        assert verify_graph(g).ok


class TestShapeDtype:
    def test_mutated_const_value_detected(self):
        g = tf.Graph()
        with g.as_default():
            a = tf.constant([1.0, 2.0], name="a")
        # A buggy rewrite replaces the payload with a different shape.
        a.op.attrs["value"] = np.zeros((3, 3), np.float32)
        report = verify_graph(g)
        assert "graph/shape-dtype" in rules_of(report)
        assert report.errors[0].op == "a"

    def test_mutated_matmul_attr_detected(self):
        g = tf.Graph()
        with g.as_default():
            a = tf.constant(np.zeros((2, 3), np.float32), name="a")
            b = tf.constant(np.zeros((3, 4), np.float32), name="b")
            c = tf.matmul(a, b, name="c")
        # transpose_a flips the contraction: recorded (2,4) now invalid.
        c.op.attrs["transpose_a"] = True
        report = verify_graph(g)
        assert "graph/shape-dtype" in rules_of(report)
        assert report.errors[0].op == "c"

    def test_mutated_reduce_axis_detected(self):
        g = tf.Graph()
        with g.as_default():
            a = tf.constant(np.zeros((2, 3), np.float32), name="a")
            s = tf.reduce_sum(a, axis=0, name="s")
        s.op.attrs["axis"] = (0, 1)  # recorded shape (3,) is now wrong
        report = verify_graph(g)
        assert "graph/shape-dtype" in rules_of(report)


class TestSubgraphChecks:
    """Post-pass working-set invariants (what the pipeline hook runs)."""

    def _subgraph(self, g, fetches, fetch_ops=()):
        from repro.core.optimizer.pipeline import Subgraph

        return Subgraph(
            graph=g,
            ops=list(g.operations),
            feeds=frozenset(),
            fetch_op_names=frozenset(op.name for op in fetch_ops),
            fetch_tensors=tuple(fetches),
            symbolic=False,
        )

    def test_dtype_changing_substitution_detected(self):
        g = tf.Graph()
        with g.as_default():
            a = tf.constant([1.0, 2.0], name="a")
            b = tf.constant([1, 2], name="b")  # int32
            c = tf.identity(a, name="c")
        sg = self._subgraph(g, [c])
        sg.value_subs[a.name] = b  # float tensor replaced by int tensor
        report = verify_graph(sg, opt_pass="bad_pass")
        assert "graph/substitution-type" in rules_of(report)
        assert report.errors[0].opt_pass == "bad_pass"

    def test_substitution_cycle_detected(self):
        g = tf.Graph()
        with g.as_default():
            a = tf.constant(1.0, name="a")
            b = tf.identity(a, name="b")
        sg = self._subgraph(g, [b])
        sg.value_subs[a.name] = b
        sg.value_subs[b.name] = a  # resolve() would loop forever
        report = verify_graph(sg)
        assert "graph/substitution-cycle" in rules_of(report)

    def test_dropped_producer_detected(self):
        g = tf.Graph()
        with g.as_default():
            a = tf.constant(1.0, name="a")
            c = tf.identity(a, name="c")
        sg = self._subgraph(g, [c])
        sg.ops = [c.op]  # pass dropped 'a' but 'c' still consumes it
        report = verify_graph(sg)
        assert "graph/dangling-ref" in rules_of(report)
        assert report.errors[0].op == "c"

    def test_dropped_fetch_detected(self):
        g = tf.Graph()
        with g.as_default():
            a = tf.constant(1.0, name="a")
            c = tf.identity(a, name="c")
        sg = self._subgraph(g, [c])
        sg.ops = [a.op]  # fetched op vanished entirely
        report = verify_graph(sg)
        assert "graph/fetch-dropped" in rules_of(report)

    def test_folded_value_shape_mismatch_detected(self):
        g = tf.Graph()
        with g.as_default():
            a = tf.constant([1.0, 2.0], name="a")
        sg = self._subgraph(g, [a])
        sg.folded["a"] = [np.zeros((7, 7), np.float32)]
        report = verify_graph(sg)
        assert "graph/folded-spec" in rules_of(report)

    def test_folded_root_with_swept_inputs_is_clean(self):
        # Constant folding keeps the root, the sweep removes its const
        # inputs: the verifier must not flag the missing producers.
        g = tf.Graph()
        with g.as_default():
            a = tf.constant([1.0], name="a")
            b = tf.constant([2.0], name="b")
            c = tf.add(a, b, name="c")
        sg = self._subgraph(g, [c])
        sg.folded["c"] = [np.array([3.0], np.float32)]
        sg.ops = [c.op]  # a and b swept
        report = verify_graph(sg)
        assert report.ok


class TestSeverityContract:
    def test_all_graph_errors_are_error_severity(self):
        g = tf.Graph()
        with g.as_default():
            a = tf.constant([1.0], name="a")
        a.op.attrs["value"] = np.zeros((2, 2), np.float32)
        report = verify_graph(g)
        assert report.errors
        assert all(d.severity is Severity.ERROR for d in report.errors)
        with pytest.raises(Exception):
            report.raise_if_errors()
