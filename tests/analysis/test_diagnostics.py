"""Unit tests for the diagnostics core (rules, reports, error raising)."""

import pytest

from repro.analysis import (
    Diagnostic,
    Report,
    Severity,
    get_rule,
    register_rule,
    rule_catalog,
)
from repro.errors import InvalidArgumentError, VerificationError


class TestRuleRegistry:
    def test_builtin_rules_registered(self):
        names = {rule.name for rule in rule_catalog()}
        assert "graph/cycle" in names
        assert "plan/variable-race" in names
        assert "plan/collective-order" in names

    def test_catalog_sorted_by_scope_then_name(self):
        catalog = rule_catalog()
        keys = [(rule.scope, rule.name) for rule in catalog]
        assert keys == sorted(keys)

    def test_register_idempotent(self):
        rule = get_rule("graph/cycle")
        again = register_rule(
            rule.name, rule.severity, rule.scope, rule.description
        )
        assert again == rule

    def test_register_conflict_rejected(self):
        rule = get_rule("graph/cycle")
        with pytest.raises(ValueError):
            register_rule(rule.name, rule.severity, rule.scope, "different")

    def test_register_bad_scope_rejected(self):
        with pytest.raises(ValueError):
            register_rule("bogus/rule", Severity.ERROR, "universe", "x")


class TestDiagnostic:
    def test_format_names_every_location_field(self):
        diag = Diagnostic(
            rule="plan/variable-race",
            severity=Severity.ERROR,
            message="unordered writes",
            op="w1",
            item=3,
            rank=1,
            device="/device:gpu:0",
            hint="add a control dependency",
            opt_pass="cse",
        )
        text = diag.format()
        assert "error: plan/variable-race" in text
        assert "op=w1" in text and "item=#3" in text
        assert "rank=1" in text and "device=/device:gpu:0" in text
        assert "pass=cse" in text
        assert "fix: add a control dependency" in text

    def test_to_dict_round_trips_fields(self):
        diag = Diagnostic(
            rule="graph/cycle", severity=Severity.WARNING, message="m", op="a"
        )
        d = diag.to_dict()
        assert d["rule"] == "graph/cycle"
        assert d["severity"] == "WARNING"
        assert d["op"] == "a" and d["rank"] is None


class TestReport:
    def test_emit_uses_rule_default_severity(self):
        report = Report()
        diag = report.emit("plan/orphan-recv", "no send")
        assert diag.severity == Severity.ERROR

    def test_emit_severity_override(self):
        report = Report()
        diag = report.emit(
            "plan/variable-race", "both accumulate", severity=Severity.WARNING
        )
        assert diag.severity == Severity.WARNING
        assert report.ok  # warnings do not fail verification

    def test_attribute_stamps_only_unattributed(self):
        report = Report()
        report.emit("graph/cycle", "a")
        report.add(
            Diagnostic(
                rule="graph/cycle",
                severity=Severity.ERROR,
                message="b",
                opt_pass="earlier",
            )
        )
        report.attribute("constant_folding")
        passes = [d.opt_pass for d in report]
        assert passes == ["constant_folding", "earlier"]

    def test_raise_if_errors_carries_all_diagnostics(self):
        report = Report(context="test")
        report.emit("graph/cycle", "loop", op="a")
        report.emit("plan/orphan-recv", "no send", severity=Severity.WARNING)
        with pytest.raises(VerificationError) as excinfo:
            report.raise_if_errors()
        err = excinfo.value
        assert err.node_def == "a"
        assert len(err.diagnostics) == 2
        assert isinstance(err, InvalidArgumentError)  # status-code contract

    def test_clean_report_does_not_raise(self):
        report = Report()
        report.raise_if_errors()
        assert report.ok and len(report) == 0
        assert report.render().endswith("clean")

    def test_merge_concatenates(self):
        a, b = Report(), Report()
        a.emit("graph/cycle", "x")
        b.emit("graph/cycle", "y")
        assert len(a.merge(b)) == 2
