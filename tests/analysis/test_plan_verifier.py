"""Adversarial tests for verify_plan: races, send/recv pairing, and
collective deadlocks, each seeded into a real lowered plan."""

import numpy as np

import repro as tf
from repro.analysis import Severity, verify_plan
from repro.core.ops import collective_ops
from repro.core.optimizer import OptimizerOptions
from repro.core.partition import build_plan
from repro.core.placement import Placer

CLIENT = "/job:localhost/task:0/device:cpu:0"
GPUS = ["/job:localhost/task:0/device:gpu:0",
        "/job:localhost/task:0/device:gpu:1"]


def make_placer(gpus=2):
    return Placer(
        {("localhost", 0): {"cpu": 1, "gpu": gpus}},
        default_job="localhost",
        default_task=0,
    )


def plan_for(graph, fetch_tensors=(), fetch_ops=(), optimize=False, gpus=2):
    return build_plan(
        graph,
        list(fetch_ops),
        list(fetch_tensors),
        {},
        make_placer(gpus),
        client_device=CLIENT,
        run_id=1,
        optimizer_options=OptimizerOptions() if optimize else None,
    )


def rules_of(report):
    return [d.rule for d in report]


class TestCleanPlans:
    def test_cross_device_plan_clean(self):
        g = tf.Graph()
        with g.as_default():
            a = tf.constant([1.0, 2.0], name="a")
            with g.device("/device:gpu:1"):
                b = tf.add(a, a, name="b")
            c = tf.multiply(b, b, name="c")
        report = verify_plan(plan_for(g, fetch_tensors=[c]))
        assert report.ok and len(report) == 0

    def test_optimized_collective_plan_clean(self):
        g = tf.Graph()
        with g.as_default():
            vals = []
            for rank, dev in enumerate(GPUS):
                with g.device(dev):
                    vals.append(tf.constant([float(rank)] * 4))
            reduced = collective_ops.all_reduce(vals, devices=GPUS)
        report = verify_plan(plan_for(g, fetch_tensors=list(reduced),
                                      optimize=True))
        assert report.ok


class TestVariableRaces:
    def _racy_plan(self, op_a=tf.assign, op_b=tf.assign):
        g = tf.Graph()
        with g.as_default():
            v = tf.Variable(tf.constant([1.0]), name="v")
            a = op_a(v, tf.constant([2.0]), name="w1")
            b = op_b(v, tf.constant([3.0]), name="w2")
        return plan_for(g, fetch_ops=[a.op, b.op])

    def test_unordered_assign_pair_is_error(self):
        report = verify_plan(self._racy_plan())
        assert rules_of(report) == ["plan/variable-race"]
        diag = report.errors[0]
        assert diag.severity is Severity.ERROR
        assert "write-write" in diag.message
        assert "'v'" in diag.message
        assert diag.op == "w2" and diag.device is not None

    def test_accumulate_pair_downgrades_to_warning(self):
        report = verify_plan(
            self._racy_plan(op_a=tf.assign_add, op_b=tf.assign_sub)
        )
        assert rules_of(report) == ["plan/variable-race"]
        assert report.warnings and not report.errors
        assert "order-independent" in report.warnings[0].message

    def test_assign_vs_accumulate_is_error(self):
        report = verify_plan(
            self._racy_plan(op_a=tf.assign, op_b=tf.assign_add)
        )
        assert report.errors

    def test_unordered_read_write_is_error(self):
        g = tf.Graph()
        with g.as_default():
            v = tf.Variable(tf.constant([1.0]), name="v")
            read = tf.identity(v.value(), name="read")
            w = tf.assign(v, tf.constant([2.0]), name="w")
        report = verify_plan(plan_for(g, fetch_tensors=[read],
                                      fetch_ops=[w.op]))
        assert "plan/variable-race" in rules_of(report)
        assert "read-write" in report.errors[0].message

    def test_control_ordered_writes_clean(self):
        g = tf.Graph()
        with g.as_default():
            v = tf.Variable(tf.constant([1.0]), name="v")
            a = tf.assign(v, tf.constant([2.0]), name="w1")
            with g.control_dependencies([a.op]):
                b = tf.assign(v, tf.constant([3.0]), name="w2")
        report = verify_plan(plan_for(g, fetch_ops=[a.op, b.op]))
        assert report.ok

    def test_data_ordered_read_then_write_clean(self):
        # The SGD idiom: the write's input depends on the read, so the
        # pair is ordered by the data path.
        g = tf.Graph()
        with g.as_default():
            v = tf.Variable(tf.constant([1.0]), name="v")
            doubled = tf.multiply(v.value(), tf.constant([2.0]), name="d")
            w = tf.assign(v, doubled, name="w")
        report = verify_plan(plan_for(g, fetch_ops=[w.op]))
        assert report.ok

    def test_same_name_on_other_task_not_grouped(self):
        # Same var_name on different tasks is different storage.
        g = tf.Graph()
        with g.as_default():
            v = tf.Variable(tf.constant([1.0]), name="v")
            a = tf.assign(v, tf.constant([2.0]), name="w1")
            b = tf.assign(v, tf.constant([3.0]), name="w2")
        plan = plan_for(g, fetch_ops=[a.op, b.op])
        for item in plan.items:
            if item.kind == "op" and item.op.name == "w2":
                item.device = "/job:worker/task:1/device:cpu:0"
        assert verify_plan(plan).ok

    def test_writes_in_separate_runs_clean(self):
        g = tf.Graph()
        with g.as_default():
            v = tf.Variable(tf.constant([1.0]), name="v")
            a = tf.assign(v, tf.constant([2.0]), name="w1")
            b = tf.assign(v, tf.constant([3.0]), name="w2")
        assert verify_plan(plan_for(g, fetch_ops=[a.op])).ok
        assert verify_plan(plan_for(g, fetch_ops=[b.op])).ok


class TestSendRecvPairing:
    def _transfer_plan(self):
        g = tf.Graph()
        with g.as_default():
            a = tf.constant([1.0, 2.0], name="a")
            with g.device("/device:gpu:1"):
                b = tf.add(a, a, name="b")
        return plan_for(g, fetch_tensors=[b])

    def test_orphan_recv_detected(self):
        plan = self._transfer_plan()
        sends = [i for i in plan.items if i.kind == "send"]
        assert sends
        plan.items.remove(sends[0])
        report = verify_plan(plan)
        assert "plan/orphan-recv" in rules_of(report)
        orphan = next(d for d in report if d.rule == "plan/orphan-recv")
        assert orphan.severity is Severity.ERROR
        assert orphan.item is not None and orphan.device is not None

    def test_double_send_detected(self):
        import dataclasses

        plan = self._transfer_plan()
        send = next(i for i in plan.items if i.kind == "send")
        clone = dataclasses.replace(send, uid=max(
            i.uid for i in plan.items) + 1, dependents=[], sources=list(send.sources))
        plan.items.append(clone)
        report = verify_plan(plan)
        assert "plan/double-send" in rules_of(report)

    def test_unpaired_send_is_warning(self):
        plan = self._transfer_plan()
        recv = next(i for i in plan.items if i.kind == "recv")
        # Orphan the recv's consumers too, so only the dead send remains.
        for item in plan.items:
            item.sources = [
                s for s in item.sources
                if not (s[0] is recv)
            ]
            item.extra_deps = [d for d in item.extra_deps if d is not recv]
        plan.fetch_sources = [
            s for s in plan.fetch_sources if s[0] is not recv
        ]
        plan.items.remove(recv)
        report = verify_plan(plan)
        assert "plan/unpaired-send" in rules_of(report)
        assert not report.errors  # dead traffic is a warning, not an error


class TestCollectives:
    def _two_collective_plan(self):
        g = tf.Graph()
        with g.as_default():
            vals = []
            for rank, dev in enumerate(GPUS):
                with g.device(dev):
                    vals.append(tf.constant([float(rank + 1)] * 4))
            first = collective_ops.all_reduce(vals, devices=GPUS, name="ar1")
            second = collective_ops.all_reduce(
                [tf.identity(t) for t in first], devices=GPUS, name="ar2")
        return plan_for(g, fetch_tensors=list(second))

    def test_rank_order_mismatch_detected(self):
        plan = self._two_collective_plan()
        legs1 = [i for i in plan.items
                 if i.kind == "collective" and i.op.name == "ar1"]
        legs2 = [i for i in plan.items
                 if i.kind == "collective" and i.op.name == "ar2"]
        # Force rank 0 to issue ar2 before ar1 while rank 1 keeps
        # ar1-then-ar2: the classic cross-rank ordering deadlock.
        legs1[0].extra_deps = list(legs1[0].extra_deps) + [legs2[0]]
        report = verify_plan(plan)
        assert "plan/collective-order" in rules_of(report)
        diag = next(d for d in report if d.rule == "plan/collective-order")
        assert diag.severity is Severity.ERROR
        assert "ar1" in diag.message and "ar2" in diag.message
        assert diag.rank is not None and diag.device is not None

    def test_missing_leg_detected(self):
        plan = self._two_collective_plan()
        leg = next(i for i in plan.items
                   if i.kind == "collective" and i.op.name == "ar2"
                   and i.collective_rank == 1)
        plan.items.remove(leg)
        report = verify_plan(plan)
        assert "plan/collective-world" in rules_of(report)
        diag = next(d for d in report if d.rule == "plan/collective-world")
        assert diag.op == "ar2" and diag.rank == 1
        assert "missing rank(s) [1]" in diag.message

    def test_duplicate_rank_detected(self):
        plan = self._two_collective_plan()
        legs = [i for i in plan.items
                if i.kind == "collective" and i.op.name == "ar1"]
        legs[1].collective_rank = 0
        report = verify_plan(plan)
        diag = next(d for d in report if d.rule == "plan/collective-world")
        assert "duplicate rank(s) [0]" in diag.message


class TestMembershipAndCycles:
    def test_dangling_source_detected(self):
        g = tf.Graph()
        with g.as_default():
            a = tf.constant([1.0], name="a")
            b = tf.identity(a, name="b")
        plan = plan_for(g, fetch_tensors=[b])
        victim = next(i for i in plan.items
                      if i.kind == "op" and i.op.name == "a")
        plan.items.remove(victim)
        report = verify_plan(plan)
        assert "plan/dangling-item" in rules_of(report)

    def test_item_cycle_detected(self):
        g = tf.Graph()
        with g.as_default():
            a = tf.constant([1.0], name="a")
            b = tf.identity(a, name="b")
        plan = plan_for(g, fetch_tensors=[b])
        items = {i.op.name: i for i in plan.items if i.kind == "op"}
        items["a"].extra_deps = list(items["a"].extra_deps) + [items["b"]]
        report = verify_plan(plan)
        assert "plan/cycle" in rules_of(report)

    def test_out_of_range_output_index_detected(self):
        g = tf.Graph()
        with g.as_default():
            a = tf.constant([1.0], name="a")
            b = tf.identity(a, name="b")
        plan = plan_for(g, fetch_tensors=[b])
        items = {i.op.name: i for i in plan.items if i.kind == "op"}
        items["b"].sources = [(items["a"], 5)]
        report = verify_plan(plan)
        assert "plan/dangling-item" in rules_of(report)


class TestVerifiedPlanMetadata:
    def test_build_plan_verify_attaches_results(self):
        g = tf.Graph()
        with g.as_default():
            a = tf.constant([1.0], name="a")
            b = tf.identity(a, name="b")
        plan = build_plan(
            g, [], [b], {}, make_placer(),
            client_device=CLIENT, run_id=1,
            optimizer_options=OptimizerOptions(), verify=True,
        )
        assert plan.verified
        assert plan.verifier_diagnostics == []

    def test_build_plan_verify_keeps_warnings(self):
        g = tf.Graph()
        with g.as_default():
            v = tf.Variable(tf.constant([1.0]), name="v")
            a = tf.assign_add(v, tf.constant([2.0]), name="w1")
            b = tf.assign_sub(v, tf.constant([3.0]), name="w2")
        plan = build_plan(
            g, [a.op, b.op], [], {}, make_placer(),
            client_device=CLIENT, run_id=1, verify=True,
        )
        assert plan.verified  # warnings do not fail the build
        assert [d.rule for d in plan.verifier_diagnostics] == [
            "plan/variable-race"
        ]
        assert plan.verifier_diagnostics[0].severity is Severity.WARNING

    def test_verify_report_env_appends_jsonl(self, tmp_path, monkeypatch):
        import json

        report_file = tmp_path / "plans.jsonl"
        monkeypatch.setenv("REPRO_VERIFY_REPORT", str(report_file))
        g = tf.Graph()
        with g.as_default():
            a = tf.constant([1.0], name="a")
        build_plan(
            g, [], [a], {}, make_placer(),
            client_device=CLIENT, run_id=1, verify=True,
        )
        records = [json.loads(line)
                   for line in report_file.read_text().splitlines()]
        assert len(records) == 1
        assert records[0]["errors"] == 0 and records[0]["items"] >= 1
