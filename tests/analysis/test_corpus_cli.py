"""The random-graph corpus and the ``python -m repro.analysis`` CLI."""

import json
import random
import subprocess
import sys
from pathlib import Path

from repro.analysis.corpus import random_graph, verify_corpus

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestRandomGraph:
    def test_deterministic_for_a_seed(self):
        g1, fetches1, _ = random_graph(random.Random(123))
        g2, fetches2, _ = random_graph(random.Random(123))
        assert [op.name for op in g1.operations] == [
            op.name for op in g2.operations
        ]
        assert [t.name for t in fetches1] == [t.name for t in fetches2]

    def test_seeds_differ(self):
        g1, _, _ = random_graph(random.Random(1))
        g2, _, _ = random_graph(random.Random(2))
        assert [op.type for op in g1.operations] != [
            op.type for op in g2.operations
        ]

    def test_generated_graphs_are_bounded(self):
        for seed in range(5):
            g, fetches, init_ops = random_graph(
                random.Random(seed), max_ops=16
            )
            # max_ops step budget + palette seeds + variable chain +
            # collective legs: comfortably bounded.
            assert len(g.operations) < 4 * 16
            assert fetches and init_ops


class TestVerifyCorpus:
    def test_small_sweep_is_clean(self):
        result = verify_corpus(4, seed=99)
        assert result.ok, result.to_dict()
        assert result.graphs == 4
        assert result.plans_verified >= 4
        assert result.mismatches == []

    def test_result_serializes(self):
        result = verify_corpus(1, seed=5)
        d = result.to_dict()
        assert set(d) >= {"graphs", "ops", "plans_verified",
                          "false_positives", "mismatches"}
        json.dumps(d)  # must be JSON-serializable for the CI artifact


class TestCli:
    def _run(self, *args):
        env = {"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"}
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *args],
            capture_output=True,
            text=True,
            env=env,
            timeout=300,
        )

    def test_rules_listing(self):
        proc = self._run("--rules")
        assert proc.returncode == 0
        assert "plan/variable-race" in proc.stdout
        assert "graph/cycle" in proc.stdout

    def test_corpus_mode_with_json_artifact(self, tmp_path):
        artifact = tmp_path / "report.json"
        proc = self._run(
            "--skip-examples", "--corpus", "3", "--seed", "11",
            "--json", str(artifact),
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        report = json.loads(artifact.read_text())
        assert report["ok"] is True
        assert report["corpus"]["graphs"] == 3
        assert report["corpus"]["seed"] == 11
        assert report["corpus"]["false_positives"] == []

    def test_single_example_verifies(self, tmp_path):
        # One representative example end-to-end through the subprocess
        # lane (the full sweep is the CI verifier job's work).
        examples = tmp_path / "examples"
        examples.mkdir()
        script = examples / "tiny.py"
        script.write_text(
            "import repro as tf\n"
            "g = tf.Graph()\n"
            "with g.as_default():\n"
            "    c = tf.add(tf.constant([1.0]), tf.constant([2.0]))\n"
            "with tf.Session(graph=g) as sess:\n"
            "    assert sess.run(c)[0] == 3.0\n"
        )
        artifact = tmp_path / "report.json"
        proc = self._run(
            "--examples-dir", str(examples), "--json", str(artifact)
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        report = json.loads(artifact.read_text())
        (outcome,) = report["examples"]
        assert outcome["ok"] and outcome["plans"] >= 1
