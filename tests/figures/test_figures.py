"""Figure drivers: Table I derivation, formatting, and small live slices."""

import pytest

from repro.apps.fft import FFTResult
from repro.apps.matmul import MatmulResult
from repro.apps.stream import StreamResult
from repro.figures import fig7_stream, fig8_matmul, fig10_cg, fig11_fft
from repro.figures.table1_nodes import format_table1, run_table1, topology_diagram


class TestTable1:
    def test_matches_paper_table(self):
        rows = {r["node_type"]: r for r in run_table1()}
        assert rows["Tegner K420"]["instances"] == 1
        assert rows["Tegner K80"]["instances"] == 2
        assert rows["Kebnekaise K80"]["instances"] == 4
        assert rows["Kebnekaise V100"]["instances"] == 2
        assert rows["Tegner K420"]["gpu_memory_gb"] == 1
        assert rows["Kebnekaise V100"]["gpu_memory_gb"] == 16

    def test_format_contains_all_rows(self):
        text = format_table1(run_table1())
        for label in ("Tegner K420", "Tegner K80", "Kebnekaise K80",
                      "Kebnekaise V100"):
            assert label in text

    def test_topology_mentions_numa_and_qpi(self):
        text = topology_diagram()
        assert "QPI" in text
        assert "NUMA island 0" in text and "NUMA island 1" in text
        assert "GK210" in text


class TestFig7Driver:
    def test_small_live_slice(self):
        points = fig7_stream.run_fig7(iterations=3, sizes=(2,))
        assert len(points) == 9
        table = fig7_stream.format_fig7(points)
        assert "Tegner GPU" in table and "RDMA" in table

    def test_comparison_requires_128mb(self):
        points = fig7_stream.run_fig7(iterations=3, sizes=(2,))
        # No 128 MB points -> comparison table has no data rows beyond header.
        text = fig7_stream.paper_comparison(points)
        assert "target" in text


class TestFig8Formatting:
    def _points(self):
        result = MatmulResult(system="tegner-k420", n=1024, tile=256,
                              num_gpus=2, num_reducers=2, protocol="grpc+verbs",
                              elapsed=2.0, products=64, validated=False)
        return [
            fig8_matmul.Fig8Point("tegner-k420", 1024, 2, result),
            fig8_matmul.Fig8Point("tegner-k420", 1024, 4, None),  # OOM
        ]

    def test_format_includes_oom_rows(self):
        text = fig8_matmul.format_fig8(self._points())
        assert "OOM" in text
        assert "2+2" in text and "2+4" in text

    def test_gflops_math(self):
        point = self._points()[0]
        expected = (2 * 1024**3 - 1024**2) / 2.0 / 1e9
        assert point.result.gflops == pytest.approx(expected)


class TestFig10Formatting:
    def test_oom_points_render(self):
        from repro.apps.cg import CGResult

        ok = CGResult(system="tegner-k80", n=1024, num_gpus=2, iterations=10,
                      elapsed=1.0, residual=float("nan"), validated=False)
        points = [
            fig10_cg.Fig10Point("tegner-k80", 1024, 2, ok),
            fig10_cg.Fig10Point("tegner-k80", 65536, 2, None),
        ]
        text = fig10_cg.format_fig10(points)
        assert "OOM" in text
        assert "ms/iteration" in text


class TestFig11Driver:
    def test_small_live_slice(self, monkeypatch):
        monkeypatch.setattr(
            fig11_fft, "SWEEP",
            {"tegner-k420": dict(n=1 << 16, tiles=8, gpus=(2, 4))},
        )
        points = fig11_fft.run_fig11()
        assert len(points) == 2
        assert all(p.result is not None for p in points)
        text = fig11_fft.format_fig11(points)
        assert "1+2" in text and "1+4" in text

    def test_gflops_with_merge_lower(self):
        result = FFTResult(system="tegner-k80", n=1 << 20, num_tiles=16,
                           num_gpus=4, collect_seconds=1.0, merge_seconds=3.0,
                           validated=False)
        assert result.gflops_with_merge < result.gflops
        assert result.gflops == pytest.approx(result.flops / 1e9)


class TestStreamResultMath:
    def test_bandwidth_properties(self):
        result = StreamResult(system="tegner-k420", device="cpu",
                              protocol="grpc+verbs", size_bytes=2 * 1024 * 1024,
                              iterations=10, seconds_per_transfer=1.0,
                              validated=True)
        assert result.bandwidth == pytest.approx(2 * 1024 * 1024)
        assert result.bandwidth_mbs == pytest.approx(2.0)
