"""Slurm simulation: hostlists, workload manager, scontrol, resolver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro as tf
from repro.errors import InvalidArgumentError, ResourceExhaustedError
from repro.simnet.events import Environment
from repro.simnet.machines import kebnekaise, tegner
from repro.slurm.cluster_resolver import SlurmClusterResolver
from repro.slurm.hostlist import compress_hostlist, expand_hostlist
from repro.slurm.scontrol import Scontrol
from repro.slurm.workload_manager import (
    SlurmWorkloadManager,
    decode_tasks_per_node,
    encode_tasks_per_node,
)


class TestHostlist:
    @pytest.mark.parametrize("text,expected", [
        ("t01n01", ["t01n01"]),
        ("t01n[01-03]", ["t01n01", "t01n02", "t01n03"]),
        ("t01n[01-02,05]", ["t01n01", "t01n02", "t01n05"]),
        ("a[1-2],b03", ["a1", "a2", "b03"]),
        ("gpu[08-11]", ["gpu08", "gpu09", "gpu10", "gpu11"]),
        ("", []),
    ])
    def test_expand(self, text, expected):
        assert expand_hostlist(text) == expected

    @pytest.mark.parametrize("bad", [
        "t01n[01-",  # unbalanced
        "t01n[1-2][3-4]",  # multiple groups
        "t01n[b-c]",  # non-numeric
        "t01n[05-02]",  # descending
    ])
    def test_expand_rejects_garbage(self, bad):
        with pytest.raises(InvalidArgumentError):
            expand_hostlist(bad)

    def test_compress_ranges(self):
        hosts = ["t01n01", "t01n02", "t01n03", "t01n07"]
        assert compress_hostlist(hosts) == "t01n[01-03,07]"

    def test_compress_single(self):
        assert compress_hostlist(["t01n05"]) == "t01n05"

    def test_zero_padding_preserved(self):
        assert expand_hostlist(compress_hostlist(["n001", "n002"])) == ["n001", "n002"]

    @given(st.lists(st.integers(min_value=0, max_value=200), min_size=1,
                    max_size=30, unique=True))
    @settings(max_examples=60, deadline=None)
    def test_property_roundtrip(self, numbers):
        hosts = [f"node{n:03d}" for n in sorted(numbers)]
        assert expand_hostlist(compress_hostlist(hosts)) == hosts


class TestTasksPerNodeRLE:
    @pytest.mark.parametrize("counts,text", [
        ([2, 2, 2], "2(x3)"),
        ([4], "4"),
        ([2, 2, 1], "2(x2),1"),
        ([1, 2, 1], "1,2,1"),
    ])
    def test_encode(self, counts, text):
        assert encode_tasks_per_node(counts) == text

    @given(st.lists(st.integers(min_value=1, max_value=8), min_size=1, max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_property_roundtrip(self, counts):
        assert decode_tasks_per_node(encode_tasks_per_node(counts)) == counts


@pytest.fixture()
def tegner_slurm():
    env = Environment()
    machine = tegner(env, k420_nodes=4)
    return machine, SlurmWorkloadManager(machine)


class TestWorkloadManager:
    def test_submit_by_nodes(self, tegner_slurm):
        machine, slurm = tegner_slurm
        job = slurm.submit(num_nodes=2, tasks_per_node=1)
        assert len(job.nodes) == 2
        assert job.ntasks == 2
        assert job.nodelist == "t01n[01-02]"

    def test_allocation_excludes_busy_nodes(self, tegner_slurm):
        machine, slurm = tegner_slurm
        first = slurm.submit(num_nodes=2)
        second = slurm.submit(num_nodes=2)
        assert not set(first.nodes) & set(second.nodes)
        with pytest.raises(ResourceExhaustedError):
            slurm.submit(num_nodes=1)

    def test_cancel_frees_nodes(self, tegner_slurm):
        machine, slurm = tegner_slurm
        job = slurm.submit(num_nodes=4)
        slurm.cancel(job.job_id)
        assert len(slurm.idle_nodes()) == 4

    def test_submit_by_ntasks(self, tegner_slurm):
        machine, slurm = tegner_slurm
        job = slurm.submit(ntasks=5, tasks_per_node=2)
        assert job.tasks_per_node == [2, 2, 1]
        assert job.ntasks == 5

    def test_explicit_nodelist(self, tegner_slurm):
        machine, slurm = tegner_slurm
        job = slurm.submit(nodelist="t01n[02-03]", tasks_per_node=1)
        assert job.nodes == ["t01n02", "t01n03"]

    def test_environment_variables(self, tegner_slurm):
        machine, slurm = tegner_slurm
        job = slurm.submit(num_nodes=2, tasks_per_node=2)
        environ = job.environment(procid=3)
        assert environ["SLURM_JOB_NODELIST"] == "t01n[01-02]"
        assert environ["SLURM_NTASKS"] == "4"
        assert environ["SLURM_TASKS_PER_NODE"] == "2(x2)"
        assert environ["SLURM_PROCID"] == "3"

    def test_bad_partition(self, tegner_slurm):
        machine, slurm = tegner_slurm
        with pytest.raises(InvalidArgumentError):
            slurm.submit(num_nodes=1, partition="gpu")

    def test_task_hosts_plane_distribution(self, tegner_slurm):
        machine, slurm = tegner_slurm
        job = slurm.submit(num_nodes=2, tasks_per_node=2)
        assert job.task_hosts() == ["t01n01", "t01n01", "t01n02", "t01n02"]


class TestScontrol:
    def test_show_hostnames(self):
        ctl = Scontrol()
        assert ctl.show_hostnames("a[1-3]") == "a1\na2\na3"

    def test_show_job(self, tegner_slurm):
        machine, slurm = tegner_slurm
        job = slurm.submit(num_nodes=2)
        text = Scontrol(slurm).show_job(job.job_id)
        assert f"JobId={job.job_id}" in text
        assert "NodeList=t01n[01-02]" in text

    def test_run_dispatch(self, tegner_slurm):
        machine, slurm = tegner_slurm
        ctl = Scontrol(slurm)
        assert ctl.run("show", "hostnames", "x[1-2]") == "x1\nx2"
        with pytest.raises(InvalidArgumentError):
            ctl.run("update", "nodename=x")


class TestClusterResolver:
    def _resolver(self, machine, slurm, jobs, tasks_per_node):
        job = slurm.submit(
            num_nodes=-(-sum(jobs.values()) // tasks_per_node),
            tasks_per_node=tasks_per_node,
        )
        return SlurmClusterResolver(
            jobs=jobs,
            environ=job.environment(),
            scontrol=Scontrol(slurm),
        )

    def test_ps_worker_layout(self, tegner_slurm):
        machine, slurm = tegner_slurm
        resolver = self._resolver(machine, slurm, {"ps": 1, "worker": 3}, 1)
        spec = resolver.cluster_spec()
        assert spec.as_dict() == {
            "ps": ["t01n01:8888"],
            "worker": ["t01n02:8888", "t01n03:8888", "t01n04:8888"],
        }

    def test_colocated_tasks_get_distinct_ports(self):
        env = Environment()
        machine = kebnekaise(env, k80_nodes=2)
        slurm = SlurmWorkloadManager(machine)
        job = slurm.submit(num_nodes=2, tasks_per_node=4)
        resolver = SlurmClusterResolver(
            jobs={"worker": 8},
            environ=job.environment(),
            scontrol=Scontrol(slurm),
        )
        addresses = resolver.cluster_spec().job_tasks("worker")
        assert addresses[0] == "b-cn0001:8888"
        assert addresses[3] == "b-cn0001:8891"
        assert addresses[4] == "b-cn0002:8888"

    def test_gpu_masks_disjoint_per_node(self):
        env = Environment()
        machine = kebnekaise(env, k80_nodes=1)
        slurm = SlurmWorkloadManager(machine)
        job = slurm.submit(num_nodes=1, tasks_per_node=4)
        resolver = SlurmClusterResolver(
            jobs={"worker": 4},
            environ=job.environment(),
            scontrol=Scontrol(slurm),
        )
        masks = resolver.gpu_allocation()
        flat = [gpu for mask in masks.values() for gpu in mask]
        assert sorted(flat) == [0, 1, 2, 3]  # Table I: 4 engines, 4 tasks

    def test_get_task_info(self, tegner_slurm):
        machine, slurm = tegner_slurm
        resolver = self._resolver(machine, slurm, {"ps": 1, "worker": 2}, 1)
        assert resolver.get_task_info(0) == ("ps", 0)
        assert resolver.get_task_info(1) == ("worker", 0)
        assert resolver.get_task_info(2) == ("worker", 1)
        with pytest.raises(InvalidArgumentError):
            resolver.get_task_info(99)

    def test_too_many_tasks_rejected(self, tegner_slurm):
        machine, slurm = tegner_slurm
        job = slurm.submit(num_nodes=2, tasks_per_node=1)
        with pytest.raises(ResourceExhaustedError):
            SlurmClusterResolver(
                jobs={"worker": 5},
                environ=job.environment(),
                scontrol=Scontrol(slurm),
            )

    def test_missing_env_rejected(self):
        with pytest.raises(InvalidArgumentError, match="SLURM"):
            SlurmClusterResolver(jobs={"worker": 1}, environ={})

    def test_create_servers_end_to_end(self):
        """Resolver-booted servers run a distributed graph (Table I config)."""
        env = Environment()
        machine = kebnekaise(env, k80_nodes=1)
        slurm = SlurmWorkloadManager(machine)
        job = slurm.submit(num_nodes=1, tasks_per_node=4)
        resolver = SlurmClusterResolver(
            jobs={"ps": 1, "worker": 3},
            environ=job.environment(),
            scontrol=Scontrol(slurm),
        )
        servers = resolver.create_servers(machine, protocol="grpc+verbs")
        g = tf.Graph()
        with g.as_default():
            with g.device("/job:ps/task:0/device:cpu:0"):
                total = tf.Variable(np.zeros(2), name="total")
            updates = []
            for i in range(3):
                with g.device(f"/job:worker/task:{i}/device:gpu:0"):
                    contribution = tf.fill([2], float(i + 1), dtype=tf.float64)
                updates.append(tf.assign_add(total, contribution))
        sess = tf.Session(servers[("worker", 0)], graph=g)
        sess.run(total.initializer)
        for update in updates:
            sess.run(update.op)
        np.testing.assert_allclose(sess.run(total), [6.0, 6.0])
