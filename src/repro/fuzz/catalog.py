"""Operator catalog: which ops the fuzzer may draw, and under what contract.

One :class:`CatalogEntry` per fuzzable op type, assembled by crossing
three existing sources of truth — never duplicating them:

* the *generation contracts* declared next to each builder
  (:func:`repro.core.kernels.registry.declare_op_constraint`): arity,
  input dtypes, and the shape rule the generator dispatches on;
* the *kernel registry* flags: pure / stateful / graph-only;
* the *gradient registry*: whether the op is differentiable, which
  decides if its outputs may sit on a ``tf.gradients`` tail.

Every pure op type with a kernel must either appear here or carry an
entry in :data:`EXCLUDED_OPS` with a human-readable reason — the
coverage test in ``tests/fuzz/test_catalog.py`` enforces it, so a newly
registered op cannot silently dodge fuzzing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.gradients import registered_gradient_op_types
from repro.core.kernels.registry import (
    OpConstraint,
    declared_constraints,
    is_graph_only,
    is_pure,
    is_stateful,
    registered_op_types,
)
from repro.core.ops.collective_ops import COLLECTIVE_OP_TYPES

__all__ = [
    "CatalogEntry",
    "EXCLUDED_OPS",
    "catalog",
    "catalog_entry",
    "uncovered_op_types",
]


# Pure-or-registered op types deliberately NOT fuzzed, with the reason.
# The coverage test fails when a registered op type is neither here nor
# in the catalog: adding an op means choosing — fuzz it or document why
# not.
EXCLUDED_OPS: dict[str, str] = {
    "FFT": "complex128-only; the host-merge cost model is exercised by "
           "the fig11 figure tests, and complex payloads are outside "
           "the fuzzer's dtype palette",
    "IFFT": "complex128-only (see FFT)",
    "NoOp": "produces no values to compare; ordering-only — covered "
            "structurally by control-dependency chains the generator "
            "already emits",
    "Placeholder": "a graph *input*, not a drawn op: the generator "
                   "plants placeholders itself so every frontend feeds "
                   "identical values",
    "RandomUniform": "stateful RNG lane: eager contexts and Session "
                     "resource managers draw from differently keyed "
                     "lanes, so cross-frontend byte-identity is not a "
                     "contract these ops make",
    "RandomNormal": "stateful RNG lane (see RandomUniform)",
    "FIFOQueue": "graph-only runtime resource (blocks on simulated "
                 "events); no eager semantics to differentiate against",
    "QueueEnqueue": "graph-only queue traffic (see FIFOQueue)",
    "QueueDequeue": "graph-only queue traffic (see FIFOQueue)",
    "QueueClose": "graph-only queue traffic (see FIFOQueue)",
    "QueueSize": "graph-only queue traffic (see FIFOQueue)",
    "IteratorV2": "graph-only dataset resource (see FIFOQueue)",
    "IteratorGetNext": "graph-only dataset traffic (see FIFOQueue)",
    "ReadTile": "graph-only parallel-filesystem I/O; depends on files "
                "staged into the simulated Lustre namespace",
    "WriteTile": "graph-only parallel-filesystem I/O (see ReadTile)",
}


@dataclass(frozen=True)
class CatalogEntry:
    """Everything the generator needs to draw one op type."""

    op_type: str
    builder: str
    arity: tuple[int, int]
    dtypes: tuple[str, ...]
    shape_rule: str
    differentiable: bool
    pure: bool
    stateful: bool
    collective: bool


def _entry(constraint: OpConstraint) -> CatalogEntry:
    return CatalogEntry(
        op_type=constraint.op_type,
        builder=constraint.builder,
        arity=constraint.arity,
        dtypes=constraint.dtypes,
        shape_rule=constraint.shape_rule,
        differentiable=(
            constraint.op_type in registered_gradient_op_types()
        ),
        pure=is_pure(constraint.op_type),
        stateful=is_stateful(constraint.op_type),
        collective=constraint.op_type in COLLECTIVE_OP_TYPES,
    )


def catalog() -> dict[str, CatalogEntry]:
    """The full fuzz catalog, keyed by op type.

    Derived fresh on each call so kernels/constraints registered later
    (e.g. a planted-defect test op) are picked up.
    """
    entries: dict[str, CatalogEntry] = {}
    for op_type, constraint in declared_constraints().items():
        if op_type in EXCLUDED_OPS:
            continue
        if is_graph_only(op_type):
            # Graph-only kernels cannot run under the eager frontend, so
            # they cannot participate in the differential matrix.
            continue
        entries[op_type] = _entry(constraint)
    return entries


def catalog_entry(op_type: str) -> CatalogEntry:
    entry = catalog().get(op_type)
    if entry is None:
        raise KeyError(f"{op_type!r} is not in the fuzz catalog")
    return entry


def uncovered_op_types() -> tuple[str, ...]:
    """Registered op types neither fuzzed nor on the exclusion list.

    Non-empty output fails the coverage test: every new op must either
    declare a generation contract (and thereby join the catalog) or be
    excluded with a reason.
    """
    covered = set(catalog()) | set(EXCLUDED_OPS)
    return tuple(
        op_type for op_type in registered_op_types() if op_type not in covered
    )
