"""Differential execution matrix: run one program through every cell.

A *cell* is one configuration of the execution matrix — frontend (eager
interpreter / Session / ``@repro.function`` trace) × executor lane
(fast-path / legacy) × optimizer (on / off, plus ``verify_plans``) ×
collective algorithm (ring / tree) × collective fusion. The baseline
cell is the most literal interpretation of the graph: Session, legacy
lane, optimizer off, ring collectives, no fusion. Every other cell must
reproduce the baseline's fetches **byte for byte** — same dtype, same
shape, same bits, NaNs included — because nothing in the matrix is
allowed to change numerics, only scheduling and lowering.

On top of byte identity the harness checks two sim-time invariants:

* the fast-path and legacy executors are alternative drivers of the
  *same* plan, so identical configs across that axis must report the
  identical simulated completion time;
* plan-time optimization may only help: optimized sim time must not
  exceed unoptimized sim time (within float slack).

Algorithm/fusion cells are excluded from time comparison — changing the
collective schedule legitimately changes the timeline — and the eager
interpreter has no clock at all. Kernel-fusion cells (the compiled
executor lane) are held to a *stricter* bar than the optimize-only-helps
inequality: the lane promises bit-identical scheduling, so each
``kernel_fusion`` cell's sim time must equal its unfused twin's exactly
(within float slack).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Optional

import numpy as np

import repro
from repro.core.kernels.registry import KernelContext, ResourceManager
from repro.errors import ReproError, VerificationError
from repro.eager import evaluate
from repro.fuzz.generator import Program

__all__ = [
    "BASELINE",
    "Cell",
    "CellRun",
    "Divergence",
    "ProgramReport",
    "matrix_cells",
    "run_cell",
    "run_program",
    "run_script_body",
]

_SIM_SLACK = 1e-9


@dataclass(frozen=True)
class Cell:
    """One point of the execution matrix."""

    frontend: str = "session"  # "eager" | "session" | "function"
    fast_path: bool = True
    optimize: bool = True
    algorithm: Optional[str] = None  # allreduce override; None = as built
    fusion: bool = False
    kernel_fusion: bool = False  # compiled executor lane (pure-op chains)
    verify: bool = False  # verify_plans=True differential check

    def label(self) -> str:
        if self.frontend == "eager":
            return "eager"
        parts = [
            self.frontend,
            "fast" if self.fast_path else "legacy",
            "opt" if self.optimize else "noopt",
        ]
        if self.algorithm:
            parts.append(self.algorithm)
        if self.fusion:
            parts.append("fused")
        if self.kernel_fusion:
            parts.append("kfused")
        if self.verify:
            parts.append("verify")
        return "/".join(parts)

    def script_kwargs(self) -> str:
        """Constructor kwargs as source text (repro-script codegen)."""
        fields = [f"frontend={self.frontend!r}"]
        if self.frontend != "eager":
            fields += [
                f"fast_path={self.fast_path!r}",
                f"optimize={self.optimize!r}",
                f"algorithm={self.algorithm!r}",
                f"fusion={self.fusion!r}",
                f"kernel_fusion={self.kernel_fusion!r}",
                f"verify={self.verify!r}",
            ]
        return ", ".join(fields)

    @property
    def timeable(self) -> bool:
        """Whether this cell participates in sim-time invariants."""
        return (
            self.frontend == "session"
            and self.algorithm is None
            and not self.fusion
            and not self.kernel_fusion  # held to the stricter equality
            and not self.verify
        )


BASELINE = Cell(frontend="session", fast_path=False, optimize=False)


@dataclass
class CellRun:
    """Outcome of one program under one cell."""

    cell: Cell
    values: Optional[list] = None  # one ndarray per fetch
    sim_time: Optional[float] = None
    error: Optional[str] = None  # repr of the raised error, if any
    verifier_rejected: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class Divergence:
    """One detected disagreement between a cell and its reference."""

    kind: str  # "value" | "dtype" | "shape" | "error" | "verifier" | "sim_time"
    cell: Cell
    fetch: Optional[int] = None  # index into program.fetches, if per-fetch
    detail: str = ""

    def describe(self) -> str:
        where = f" fetch[{self.fetch}]" if self.fetch is not None else ""
        return f"[{self.kind}] {self.cell.label()}{where}: {self.detail}"


@dataclass
class ProgramReport:
    """Everything one program's trip through the matrix produced."""

    program: Program
    runs: dict[str, CellRun] = field(default_factory=dict)
    divergences: list[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def to_dict(self) -> dict:
        return {
            "seed": self.program.seed,
            "ops": self.program.op_count(),
            "world": self.program.world,
            "fetches": len(self.program.fetches),
            "ok": self.ok,
            "cells": {
                label: {
                    "ok": run.ok,
                    "error": run.error,
                    "sim_time": run.sim_time,
                }
                for label, run in self.runs.items()
            },
            "divergences": [d.describe() for d in self.divergences],
        }


# ---------------------------------------------------------------------------
# matrix enumeration
# ---------------------------------------------------------------------------

def matrix_cells(program: Program, subset: Optional[list[str]] = None
                 ) -> list[Cell]:
    """Every cell the program is eligible for (baseline excluded).

    ``subset`` filters by substring match against cell labels — the
    CLI's ``--matrix`` argument.
    """
    cells: list[Cell] = [
        # Session lane × optimizer grid (baseline is legacy/noopt).
        Cell(frontend="session", fast_path=True, optimize=False),
        Cell(frontend="session", fast_path=False, optimize=True),
        Cell(frontend="session", fast_path=True, optimize=True),
        # Static verifier as a differential observer: a verifier crash
        # or rejection of a graph every other cell executes cleanly is
        # itself a divergence (verifier false positive).
        Cell(frontend="session", fast_path=True, optimize=True,
             verify=True),
        # Tracing frontend over both lanes.
        Cell(frontend="function", fast_path=True, optimize=True),
        Cell(frontend="function", fast_path=False, optimize=True),
        # Compiled executor lane: chains of pure ops fused into single
        # plan items. Byte identity AND exact sim-time equality against
        # the unfused twins (see _time_invariants).
        Cell(frontend="session", fast_path=True, optimize=True,
             kernel_fusion=True),
        Cell(frontend="session", fast_path=False, optimize=True,
             kernel_fusion=True),
        Cell(frontend="function", fast_path=True, optimize=True,
             kernel_fusion=True),
        # Direct interpreter: no simulator, no planner, no placement.
        Cell(frontend="eager"),
    ]
    if program.has_allreduce:
        cells += [
            Cell(frontend="session", fast_path=True, optimize=True,
                 algorithm="tree"),
            Cell(frontend="session", fast_path=False, optimize=True,
                 algorithm="tree"),
            Cell(frontend="function", fast_path=True, optimize=True,
                 algorithm="tree"),
        ]
    if program.has_collective:
        cells += [
            Cell(frontend="session", fast_path=True, optimize=True,
                 fusion=True),
            Cell(frontend="session", fast_path=False, optimize=True,
                 fusion=True),
            Cell(frontend="function", fast_path=True, optimize=True,
                 fusion=True),
        ]
    if program.has_allreduce:
        cells.append(
            Cell(frontend="session", fast_path=True, optimize=True,
                 algorithm="tree", fusion=True)
        )
    if subset:
        cells = [
            c for c in cells
            if any(token in c.label() for token in subset)
        ]
    return cells


# ---------------------------------------------------------------------------
# running one cell
# ---------------------------------------------------------------------------

def _session_config(program: Program, cell: Cell) -> "repro.SessionConfig":
    return repro.SessionConfig(
        num_gpus=program.gpus,
        graph_optimization=cell.optimize,
        executor_fast_path=cell.fast_path,
        verify_plans=cell.verify,
        optimizer=repro.OptimizerOptions(
            collective_fusion=cell.fusion,
            kernel_fusion=cell.kernel_fusion,
        ),
    )


def run_cell(program: Program, cell: Cell) -> CellRun:
    """Execute ``program`` under ``cell``; never raises on graph errors."""
    # Drawn programs legitimately hit sqrt(-x), x/0, exp overflow, ...;
    # the resulting NaN/inf bit patterns are exactly what the matrix
    # compares, so the warnings are noise.
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        return _run_cell_quiet(program, cell)


def _run_cell_quiet(program: Program, cell: Cell) -> CellRun:
    try:
        if cell.frontend == "eager":
            return _run_eager(program, cell)
        if cell.frontend == "session":
            return _run_session(program, cell)
        if cell.frontend == "function":
            return _run_function(program, cell)
        raise ValueError(f"unknown frontend {cell.frontend!r}")
    except VerificationError as exc:
        return CellRun(cell=cell, error=repr(exc), verifier_rejected=True)
    except (ReproError, ValueError, TypeError, ZeroDivisionError,
            FloatingPointError, OverflowError, IndexError, KeyError) as exc:
        return CellRun(cell=cell, error=repr(exc))


def _run_eager(program: Program, cell: Cell) -> CellRun:
    graph = repro.Graph()
    with graph.as_default():
        built = program.materialize()
        ctx = KernelContext(
            feeds=dict(built.feeds),
            resources=ResourceManager("eager"),
        )
        values = evaluate(built.fetch_tensors, built.feeds, ctx)
    return CellRun(cell=cell, values=[np.asarray(v) for v in values])


def _run_session(program: Program, cell: Cell) -> CellRun:
    graph = repro.Graph()
    with graph.as_default():
        built = program.materialize(algorithm=cell.algorithm)
    config = _session_config(program, cell)
    with repro.Session(graph=graph, config=config) as sess:
        values = sess.run(built.fetch_tensors, feed_dict=dict(built.feeds))
        sim_time = float(sess.env.now)
    if not isinstance(values, list):
        values = [values]
    return CellRun(
        cell=cell,
        values=[np.asarray(v) for v in values],
        sim_time=sim_time,
    )


def _run_function(program: Program, cell: Cell) -> CellRun:
    ph_indices = program.placeholder_indices
    feed_arrays = [program.instrs[i].value for i in ph_indices]

    def traced(*args):
        by_index = dict(zip(ph_indices, args))
        built = program.materialize(
            algorithm=cell.algorithm,
            placeholder_lookup=lambda index: by_index[index],
        )
        return built.fetch_tensors

    fn = repro.function(
        traced,
        name=f"fuzz_seed_{program.seed}",
        config=_session_config(program, cell),
    )
    values = fn(*feed_arrays)
    if not isinstance(values, list):
        values = [values]
    sim_time = (
        float(fn.session.env.now) if fn.session is not None else None
    )
    return CellRun(
        cell=cell,
        values=[np.asarray(v) for v in values],
        sim_time=sim_time,
    )


# ---------------------------------------------------------------------------
# comparison
# ---------------------------------------------------------------------------

def _compare_values(reference: CellRun, run: CellRun) -> list[Divergence]:
    diffs: list[Divergence] = []
    assert reference.values is not None and run.values is not None
    for index, (want, got) in enumerate(zip(reference.values, run.values)):
        want = np.asarray(want)
        got = np.asarray(got)
        if want.dtype != got.dtype:
            diffs.append(Divergence(
                kind="dtype", cell=run.cell, fetch=index,
                detail=f"baseline {want.dtype} != {got.dtype}",
            ))
            continue
        if want.shape != got.shape:
            diffs.append(Divergence(
                kind="shape", cell=run.cell, fetch=index,
                detail=f"baseline {want.shape} != {got.shape}",
            ))
            continue
        # tobytes() compares exact bit patterns: NaN==NaN, -0.0!=0.0.
        if want.tobytes() != got.tobytes():
            delta = ""
            if np.issubdtype(want.dtype, np.floating):
                with np.errstate(invalid="ignore"):
                    magnitude = np.nanmax(np.abs(
                        want.astype(np.float64) - got.astype(np.float64)
                    )) if want.size else 0.0
                delta = f" (max |delta| {magnitude:g})"
            diffs.append(Divergence(
                kind="value", cell=run.cell, fetch=index,
                detail=f"bytes differ{delta}",
            ))
    return diffs


def compare_runs(reference: CellRun, run: CellRun) -> list[Divergence]:
    """Divergences of ``run`` against the byte-identity ``reference``."""
    if reference.error is not None:
        # A broken baseline is reported once by the caller, not per cell.
        return []
    if run.verifier_rejected:
        return [Divergence(
            kind="verifier", cell=run.cell,
            detail=f"verifier rejected an executable graph: {run.error}",
        )]
    if run.error is not None:
        return [Divergence(
            kind="error", cell=run.cell,
            detail=f"baseline succeeded, cell raised {run.error}",
        )]
    return _compare_values(reference, run)


def _time_invariants(runs: dict[str, CellRun]) -> list[Divergence]:
    diffs: list[Divergence] = []
    timed = {
        run.cell: run for run in runs.values()
        if run.ok and run.cell.timeable and run.sim_time is not None
    }
    for cell, run in timed.items():
        if cell.fast_path:
            continue
        twin = timed.get(replace(cell, fast_path=True))
        if twin is None:
            continue
        if abs(run.sim_time - twin.sim_time) > _SIM_SLACK:
            diffs.append(Divergence(
                kind="sim_time", cell=twin.cell,
                detail=(
                    f"fast-path t={twin.sim_time!r} != legacy "
                    f"t={run.sim_time!r} for the same plan"
                ),
            ))
    for cell, run in timed.items():
        if not cell.optimize:
            continue
        unopt = timed.get(replace(cell, optimize=False))
        if unopt is None:
            continue
        if run.sim_time > unopt.sim_time + _SIM_SLACK:
            diffs.append(Divergence(
                kind="sim_time", cell=cell,
                detail=(
                    f"optimized t={run.sim_time!r} slower than "
                    f"unoptimized t={unopt.sim_time!r}"
                ),
            ))
    # Kernel fusion promises bit-identical scheduling, not merely "no
    # slower": each session kernel_fusion cell must report *exactly* the
    # sim time of its unfused twin.
    for run in runs.values():
        cell = run.cell
        if not (run.ok and cell.kernel_fusion and cell.frontend == "session"
                and run.sim_time is not None):
            continue
        twin = runs.get(replace(cell, kernel_fusion=False).label())
        if twin is None or not twin.ok or twin.sim_time is None:
            continue
        if abs(run.sim_time - twin.sim_time) > _SIM_SLACK:
            diffs.append(Divergence(
                kind="sim_time", cell=cell,
                detail=(
                    f"kernel fusion t={run.sim_time!r} != unfused "
                    f"t={twin.sim_time!r} for the same program"
                ),
            ))
    return diffs


# ---------------------------------------------------------------------------
# whole-matrix driver
# ---------------------------------------------------------------------------

def run_program(program: Program,
                cells: Optional[list[Cell]] = None) -> ProgramReport:
    """Run the full matrix over one program and collect divergences."""
    report = ProgramReport(program=program)
    baseline = run_cell(program, BASELINE)
    report.runs[BASELINE.label() + " [baseline]"] = baseline
    if baseline.error is not None:
        # The generator only emits programs it believes are valid, so a
        # baseline failure is itself a finding (generator or runtime).
        report.divergences.append(Divergence(
            kind="error", cell=BASELINE,
            detail=f"baseline failed: {baseline.error}",
        ))
        return report
    for cell in (cells if cells is not None else matrix_cells(program)):
        run = run_cell(program, cell)
        report.runs[cell.label()] = run
        report.divergences.extend(compare_runs(baseline, run))
    report.divergences.extend(_time_invariants(report.runs))
    return report


def has_divergence(program: Program, cell: Cell) -> bool:
    """Does ``cell`` still disagree with the baseline on ``program``?

    The shrinker's oracle: candidates whose *baseline* breaks are
    invalid reductions (they changed the program, not just shrank the
    failure) and count as non-reproducing.
    """
    baseline = run_cell(program, BASELINE)
    if baseline.error is not None:
        return False
    run = run_cell(program, cell)
    return bool(compare_runs(baseline, run))


def run_script_body(body, feeds, gpus, cell: Cell) -> None:
    """Entry point for emitted repro scripts (see Program.to_python).

    ``body(*placeholder_tensors, algorithm=...)`` rebuilds the graph in
    the current default graph and returns the fetch tensors. Runs the
    baseline and the diverging cell, asserting byte identity.
    """
    def run_one(target_cell: Cell) -> list:
        algorithm = target_cell.algorithm or "ring"
        if target_cell.frontend == "eager":
            graph = repro.Graph()
            with graph.as_default():
                phs = [
                    repro.placeholder(
                        value.dtype, shape=list(value.shape),
                        name=f"script_ph_{pos}",
                    )
                    for pos, value in enumerate(feeds)
                ]
                fetches = body(*phs, algorithm=algorithm)
                feed_map = {
                    ph.name: value for ph, value in zip(phs, feeds)
                }
                ctx = KernelContext(
                    feeds=dict(feed_map),
                    resources=ResourceManager("eager"),
                )
                return [np.asarray(v)
                        for v in evaluate(fetches, feed_map, ctx)]
        if target_cell.frontend == "function":
            fn = repro.function(
                lambda *args: body(*args, algorithm=algorithm),
                config=repro.SessionConfig(
                    num_gpus=gpus,
                    graph_optimization=target_cell.optimize,
                    executor_fast_path=target_cell.fast_path,
                    verify_plans=target_cell.verify,
                    optimizer=repro.OptimizerOptions(
                        collective_fusion=target_cell.fusion,
                        kernel_fusion=target_cell.kernel_fusion,
                    ),
                ),
            )
            values = fn(*feeds)
            return [np.asarray(v)
                    for v in (values if isinstance(values, list)
                              else [values])]
        graph = repro.Graph()
        with graph.as_default():
            phs = [
                repro.placeholder(
                    value.dtype, shape=list(value.shape),
                    name=f"script_ph_{pos}",
                )
                for pos, value in enumerate(feeds)
            ]
            fetches = body(*phs, algorithm=algorithm)
        config = repro.SessionConfig(
            num_gpus=gpus,
            graph_optimization=target_cell.optimize,
            executor_fast_path=target_cell.fast_path,
            verify_plans=target_cell.verify,
            optimizer=repro.OptimizerOptions(
                collective_fusion=target_cell.fusion,
                kernel_fusion=target_cell.kernel_fusion,
            ),
        )
        with repro.Session(graph=graph, config=config) as sess:
            values = sess.run(
                fetches, feed_dict=dict(zip(phs, feeds))
            )
        return [np.asarray(v)
                for v in (values if isinstance(values, list) else [values])]

    want = run_one(BASELINE)
    got = run_one(cell)
    assert len(want) == len(got), (
        f"fetch count: baseline {len(want)} != cell {len(got)}"
    )
    for index, (w, g) in enumerate(zip(want, got)):
        assert w.dtype == g.dtype, (
            f"fetch[{index}] dtype: baseline {w.dtype} != {g.dtype}"
        )
        assert w.shape == g.shape, (
            f"fetch[{index}] shape: baseline {w.shape} != {g.shape}"
        )
        assert w.tobytes() == g.tobytes(), (
            f"fetch[{index}] bytes differ:\nbaseline={w!r}\ncell={g!r}"
        )
