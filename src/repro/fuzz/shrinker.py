"""Delta-debugging shrinker: reduce a failing program to a minimal repro.

Given a program and the matrix cell it diverges on, the shrinker
repeatedly edits the program and keeps any edit after which the
divergence still reproduces (``harness.has_divergence``). Candidate
edits, in order of aggressiveness:

1. **fetch reduction** — keep a single fetch; the smallest set of
   outputs that still shows the disagreement;
2. **dead-code sweep** — drop every instruction unreachable from the
   surviving fetches (re-indexing all references); verified like any
   other edit, because "dead for the fetches" is not "dead for the
   frontend" — a traced function still builds and initializes swept
   variables, and a divergence may live exactly there;
3. **instruction removal** — for each instruction, try deleting it and
   rewiring its consumers to an earlier value of identical dtype/shape,
   or to a fresh zero constant; control edges fall back to the removed
   instruction's own dependencies;
4. **placeholder demotion** — replace a placeholder with a constant
   holding its feed value (divergences that survive need fewer moving
   parts to explain).

Each round re-runs from step 2; the loop stops at a fixpoint (no edit
reproduces) or after ``max_rounds``. Candidates whose *baseline* run
fails are rejected outright — a reduction must shrink the failure, not
replace it with a different one.

The result ships as a self-contained script via
:meth:`Program.to_python`, which asserts byte identity: it fails while
the defect lives and passes once fixed, so shrunk repros double as
regression tests (the ``corpus/`` directory CI replays).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.fuzz.generator import Instr, Program
from repro.fuzz.harness import Cell, has_divergence

__all__ = ["ShrinkResult", "shrink"]


@dataclass
class ShrinkResult:
    program: Program
    cell: Cell
    attempts: int  # candidate programs executed
    rounds: int
    original_ops: int

    @property
    def ops(self) -> int:
        return self.program.op_count()


def shrink(program: Program, cell: Cell, *, max_rounds: int = 12,
           max_attempts: int = 400) -> ShrinkResult:
    """Minimize ``program`` while ``cell`` still diverges from baseline.

    ``program`` must currently diverge on ``cell`` (the caller found it
    via :func:`repro.fuzz.harness.run_program`); if it does not, the
    program is returned unchanged.
    """
    original_ops = program.op_count()
    state = _ShrinkState(max_attempts=max_attempts)
    current = program.clone()
    if not state.reproduces(current, cell):
        return ShrinkResult(program=current, cell=cell, attempts=state.attempts,
                            rounds=0, original_ops=original_ops)

    current = _reduce_fetches(current, cell, state)
    # The sweep is a guess, not a theorem: a divergence can live in code
    # that is dead *for the fetches* but still built/initialized by a
    # frontend (e.g. a traced function pre-runs every variable
    # initializer). Keep the invariant that ``current`` reproduces.
    swept = _sweep_dead(current)
    if swept is not current and state.reproduces(swept, cell):
        current = swept
    rounds = 0
    for rounds in range(1, max_rounds + 1):
        changed = False
        candidate = _try_removals(current, cell, state)
        if candidate is not None:
            current, changed = candidate, True
        candidate = _try_demote_placeholders(current, cell, state)
        if candidate is not None:
            current, changed = candidate, True
        if not changed or state.exhausted:
            break
    return ShrinkResult(program=current, cell=cell, attempts=state.attempts,
                        rounds=rounds, original_ops=original_ops)


@dataclass
class _ShrinkState:
    max_attempts: int
    attempts: int = 0
    # Memo: identical candidate programs reproduce (or not) identically.
    seen: dict[str, bool] = field(default_factory=dict)

    @property
    def exhausted(self) -> bool:
        return self.attempts >= self.max_attempts

    def reproduces(self, program: Program, cell: Cell) -> bool:
        if self.exhausted:
            return False
        key = _fingerprint(program)
        if key in self.seen:
            return self.seen[key]
        self.attempts += 1
        result = has_divergence(program, cell)
        self.seen[key] = result
        return result


def _fingerprint(program: Program) -> str:
    parts = []
    for ins in program.instrs:
        value = (ins.value.tobytes() if ins.value is not None else b"")
        parts.append(
            f"{ins.op_type}|{ins.inputs}|{sorted(ins.attrs.items())!r}|"
            f"{value!r}|{ins.device}|{ins.control}"
        )
    parts.append(repr(program.fetches))
    parts.append(str(program.world))
    return "\n".join(parts)


# ---------------------------------------------------------------------------
# passes
# ---------------------------------------------------------------------------

def _reduce_fetches(program: Program, cell: Cell,
                    state: _ShrinkState) -> Program:
    if len(program.fetches) <= 1:
        return program
    for fetch in program.fetches:
        candidate = program.clone()
        candidate.fetches = [fetch]
        if state.reproduces(candidate, cell):
            return candidate
    # No single fetch suffices; try halving.
    half = len(program.fetches) // 2
    for chunk in (program.fetches[:half], program.fetches[half:]):
        if not chunk:
            continue
        candidate = program.clone()
        candidate.fetches = list(chunk)
        if state.reproduces(candidate, cell):
            return _reduce_fetches(candidate, cell, state)
    return program


def _sweep_dead(program: Program) -> Program:
    live = program.live_set()
    if len(live) == len(program.instrs):
        return program
    order = sorted(live)
    remap = {old: new for new, old in enumerate(order)}
    swept = Program(
        instrs=[], fetches=[], world=program.world, seed=program.seed,
    )
    for old in order:
        ins = program.instrs[old].clone()
        ins.inputs = tuple((remap[src], out) for src, out in ins.inputs)
        ins.control = tuple(
            f"{kind}:{remap[int(idx)]}"
            for kind, idx in (c.split(":", 1) for c in ins.control)
        )
        if "var" in ins.attrs:
            ins.attrs["var"] = remap[ins.attrs["var"]]
        swept.instrs.append(ins)
    swept.fetches = [(remap[src], out) for src, out in program.fetches]
    if not swept.has_collective:
        swept.world = 0
    return swept


def _try_removals(program: Program, cell: Cell,
                  state: _ShrinkState) -> Optional[Program]:
    """First successful single-instruction removal, already swept."""
    for index in reversed(range(len(program.instrs))):
        if state.exhausted:
            return None
        for candidate in _removal_candidates(program, index):
            if state.reproduces(candidate, cell):
                # Greedily continue removing on the winner.
                deeper = _try_removals(candidate, cell, state)
                return deeper if deeper is not None else candidate
    return None


def _removal_candidates(program: Program, index: int):
    ins = program.instrs[index]
    if ins.op_type == "VariableV2":
        # Removable only via its updates (dead sweep picks the var up).
        return
    consumers = _consumers(program, index)
    # (a) rewire every use to an existing earlier value of the same
    # dtype/shape, then drop the instruction.
    substitutes = [
        _find_substitute(program, index, dtype, tuple(shape))
        for dtype, shape in zip(ins.out_dtypes, ins.out_shapes)
    ]
    used = {out for _, out in _used_outputs(program, index)}
    if used and all(substitutes[out] is not None for out in used):
        candidate = _rewire_and_drop(program, index, {
            out: sub for out, sub in enumerate(substitutes)
            if sub is not None
        })
        if candidate is not None:
            yield candidate
    # (b) replace the instruction with a zero constant of its spec.
    if ins.op_type != "Gradients":
        candidate = _constify(program, index)
        if candidate is not None:
            yield candidate
    # (c) fetch-only use: stop fetching it and sweep it away.
    if not consumers:
        candidate = program.clone()
        candidate.fetches = [
            f for f in candidate.fetches if f[0] != index
        ]
        if candidate.fetches:
            yield _sweep_dead(candidate)


def _used_outputs(program: Program, index: int) -> set[tuple[int, int]]:
    used = set()
    for ins in program.instrs:
        for src, out in ins.inputs:
            if src == index:
                used.add((src, out))
    for src, out in program.fetches:
        if src == index:
            used.add((src, out))
    return used


def _consumers(program: Program, index: int) -> list[int]:
    found = []
    for j, other in enumerate(program.instrs):
        if any(src == index for src, _ in other.inputs):
            found.append(j)
        elif any(int(c.split(":", 1)[1]) == index for c in other.control):
            found.append(j)
        elif other.attrs.get("var") == index:
            found.append(j)
    return found


def _find_substitute(program: Program, index: int, dtype: str,
                     shape: tuple[int, ...]) -> Optional[tuple[int, int]]:
    for j in range(index):
        ins = program.instrs[j]
        for out, (d, s) in enumerate(zip(ins.out_dtypes, ins.out_shapes)):
            if d == dtype and tuple(s) == tuple(shape):
                return (j, out)
    return None


def _rewire_and_drop(program: Program, index: int,
                     substitutes: dict[int, tuple[int, int]]
                     ) -> Optional[Program]:
    candidate = program.clone()
    removed = candidate.instrs[index]
    fallback_control = tuple(removed.control)
    for j, ins in enumerate(candidate.instrs):
        if j == index:
            continue
        new_inputs = []
        for src, out in ins.inputs:
            if src == index:
                sub = substitutes.get(out)
                if sub is None:
                    return None
                new_inputs.append(sub)
            else:
                new_inputs.append((src, out))
        ins.inputs = tuple(new_inputs)
        if any(int(c.split(":", 1)[1]) == index for c in ins.control):
            kept = tuple(c for c in ins.control
                         if int(c.split(":", 1)[1]) != index)
            ins.control = tuple(dict.fromkeys(kept + fallback_control))
        if ins.attrs.get("var") == index:
            return None
    new_fetches = []
    for src, out in candidate.fetches:
        if src == index:
            sub = substitutes.get(out)
            if sub is None:
                return None
            new_fetches.append(sub)
        else:
            new_fetches.append((src, out))
    candidate.fetches = new_fetches
    del candidate.instrs[index]
    _shift_after_delete(candidate, index)
    return _sweep_dead(candidate)


def _shift_after_delete(program: Program, index: int) -> None:
    def shift(i: int) -> int:
        return i - 1 if i > index else i

    for ins in program.instrs:
        ins.inputs = tuple((shift(src), out) for src, out in ins.inputs)
        ins.control = tuple(
            f"{kind}:{shift(int(i))}"
            for kind, i in (c.split(":", 1) for c in ins.control)
        )
        if "var" in ins.attrs:
            ins.attrs["var"] = shift(ins.attrs["var"])
    program.fetches = [(shift(src), out) for src, out in program.fetches]


def _constify(program: Program, index: int) -> Optional[Program]:
    """Replace instruction ``index`` with zero Consts of its out specs."""
    ins = program.instrs[index]
    if not ins.out_dtypes:
        return None
    if len(ins.out_dtypes) != 1:
        return None  # multi-output: removal handles via substitutes
    if ins.op_type == "Const":
        return None
    dtype, shape = ins.out_dtypes[0], tuple(ins.out_shapes[0])
    if dtype == "bool":
        value = np.zeros(shape, dtype=np.bool_)
    else:
        value = np.zeros(shape, dtype=np.dtype(dtype))
    candidate = program.clone()
    candidate.instrs[index] = Instr(
        op_type="Const", value=value,
        out_dtypes=(dtype,), out_shapes=(shape,),
    )
    return _sweep_dead(candidate)


def _try_demote_placeholders(program: Program, cell: Cell,
                             state: _ShrinkState) -> Optional[Program]:
    for index, ins in enumerate(program.instrs):
        if ins.op_type != "Placeholder" or state.exhausted:
            continue
        candidate = program.clone()
        candidate.instrs[index] = Instr(
            op_type="Const", value=np.asarray(ins.value),
            out_dtypes=tuple(ins.out_dtypes),
            out_shapes=tuple(ins.out_shapes),
        )
        if state.reproduces(candidate, cell):
            return candidate
    return None
