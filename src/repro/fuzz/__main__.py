"""``python -m repro.fuzz`` — the differential fuzz campaign driver.

For each seed in the range the CLI generates one random program from
the operator catalog and runs it through every cell of the frontend ×
executor-lane × collective-algorithm × fusion matrix
(:mod:`repro.fuzz.harness`), comparing fetch bytes and sim-time
invariants against the baseline cell. Any divergence is delta-debugged
(:mod:`repro.fuzz.shrinker`) and the minimal repro is written out as a
self-contained Python script.

Typical invocations::

    # the acceptance sweep: 200 seeds, up to 12 drawn ops each
    python -m repro.fuzz --seeds 0..200 --ops 12

    # CI: replay the regression corpus first, then a bounded sweep
    python -m repro.fuzz --corpus corpus/seeds.json --seeds 0..60 \\
        --json fuzz-report.json --out fuzz-repros

    # chase one seed through a subset of the matrix
    python -m repro.fuzz --seeds 1337 --matrix tree,fused

Exit status is non-zero when any seed diverges — the lane is red
precisely when two cells of the matrix disagree about the same graph.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.fuzz.generator import GeneratorOptions, generate
from repro.fuzz.harness import matrix_cells, run_program
from repro.fuzz.shrinker import shrink


def _parse_seeds(spec: str) -> list[int]:
    """``"0..200"`` (half-open), ``"3"``, or ``"1,5,9"``."""
    spec = spec.strip()
    if ".." in spec:
        lo, hi = spec.split("..", 1)
        return list(range(int(lo), int(hi)))
    return [int(tok) for tok in spec.split(",") if tok.strip()]


def _campaign_entry(seed: int, options: GeneratorOptions,
                    matrix: list[str] | None, do_shrink: bool,
                    out_dir: Path, source: str) -> dict:
    program = generate(seed, options)
    cells = matrix_cells(program, subset=matrix) if matrix else None
    report = run_program(program, cells=cells)
    entry = report.to_dict()
    entry["source"] = source
    if report.divergences and do_shrink:
        # Shrink against the first diverging cell with a concrete cell
        # attached (sim-time invariants compare pairs; value/dtype/
        # shape/error/verifier divergences name a single cell).
        target = report.divergences[0].cell
        result = shrink(program, target)
        script = result.program.to_python(
            cell=target,
            note=(f"Original program: {result.original_ops} instruction(s); "
                  f"shrunk to {result.ops} in {result.attempts} attempt(s)."),
        )
        out_dir.mkdir(parents=True, exist_ok=True)
        safe_label = target.label().replace("/", "-")
        path = out_dir / f"seed_{seed}_{safe_label}.py"
        path.write_text(script, encoding="utf-8")
        entry["shrunk"] = {
            "ops": result.ops,
            "original_ops": result.original_ops,
            "attempts": result.attempts,
            "cell": target.label(),
            "script": str(path),
        }
    return entry


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description=(
            "differential-fuzz the execution matrix with random graphs"
        ),
    )
    parser.add_argument(
        "--seeds", default="0..50", metavar="SPEC",
        help="seed range 'A..B' (half-open), single seed, or 'a,b,c' "
             "(default: 0..50)",
    )
    parser.add_argument(
        "--ops", type=int, default=12, metavar="N",
        help="op budget per generated program (default: 12)",
    )
    parser.add_argument(
        "--matrix", default=None, metavar="TOKENS",
        help="comma-separated label substrings selecting matrix cells "
             "(e.g. 'tree,fused'); default: the full matrix",
    )
    parser.add_argument(
        "--max-world", type=int, default=4, metavar="N",
        help="largest collective world size to draw, 2..8 (default: 4)",
    )
    parser.add_argument(
        "--no-collectives", action="store_true",
        help="generate single-device programs only",
    )
    parser.add_argument(
        "--no-gradients", action="store_true",
        help="never append tf.gradients tails",
    )
    parser.add_argument(
        "--no-shrink", action="store_true",
        help="report divergences without delta-debugging them",
    )
    parser.add_argument(
        "--corpus", type=Path, default=None, metavar="PATH",
        help="seeds.json regression corpus to replay before the sweep",
    )
    parser.add_argument(
        "--out", type=Path, default=Path("fuzz-repros"), metavar="DIR",
        help="directory for shrunk repro scripts (default: fuzz-repros)",
    )
    parser.add_argument(
        "--json", type=Path, default=None, metavar="PATH",
        help="write the machine-readable report here (CI artifact)",
    )
    args = parser.parse_args(argv)

    options = GeneratorOptions(
        max_ops=args.ops,
        collectives=not args.no_collectives,
        gradients=not args.no_gradients,
        max_world=max(2, min(8, args.max_world)),
    )
    matrix = (
        [tok.strip() for tok in args.matrix.split(",") if tok.strip()]
        if args.matrix else None
    )

    jobs: list[tuple[int, GeneratorOptions, str]] = []
    if args.corpus is not None and args.corpus.exists():
        for record in json.loads(args.corpus.read_text(encoding="utf-8")):
            corpus_options = GeneratorOptions(
                max_ops=record.get("ops", args.ops),
                collectives=record.get("collectives", True),
                gradients=record.get("gradients", True),
                max_world=record.get("max_world", 4),
            )
            jobs.append((record["seed"], corpus_options, "corpus"))
    jobs.extend((seed, options, "sweep") for seed in _parse_seeds(args.seeds))

    report: dict = {"seeds": [], "summary": {}}
    failures = 0
    started = time.perf_counter()
    for seed, job_options, source in jobs:
        entry = _campaign_entry(seed, job_options, matrix,
                                not args.no_shrink, args.out, source)
        report["seeds"].append(entry)
        if not entry["ok"]:
            failures += 1
            print(f"FAIL seed {seed} [{source}] "
                  f"({entry['ops']} op(s), world={entry['world']}):")
            for line in entry["divergences"]:
                print(f"     {line}")
            if "shrunk" in entry:
                shrunk = entry["shrunk"]
                print(f"     shrunk {shrunk['original_ops']} -> "
                      f"{shrunk['ops']} op(s): {shrunk['script']}")
    elapsed = time.perf_counter() - started

    total_cells = sum(len(e["cells"]) for e in report["seeds"])
    report["summary"] = {
        "programs": len(jobs),
        "cells": total_cells,
        "failures": failures,
        "seconds": round(elapsed, 2),
        "ops": args.ops,
        "matrix": matrix,
        "ok": failures == 0,
    }
    status = "ok" if failures == 0 else "FAIL"
    print(
        f"{status:4s} fuzz: {len(jobs)} program(s), {total_cells} "
        f"cell-run(s), {failures} diverging seed(s)  [{elapsed:.1f}s]"
    )

    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(report, indent=2), encoding="utf-8")
        print(f"report written to {args.json}")

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
