"""Seeded graph programs: generation, materialization, and codegen.

The fuzzer never hands a :class:`repro.Graph` around directly — a graph
can only be *run*, not re-built under a different frontend. Instead the
generator emits a :class:`Program`: a frontend-neutral instruction list
(SSA-style — each instruction consumes references to earlier results)
that can be materialized

* into a fresh graph for a Session run,
* inside a ``@repro.function`` trace (placeholders resolve to the traced
  call's argument tensors),
* into a throwaway graph evaluated by the eager interpreter,

and — crucially for shrinking — edited: the delta-debugging shrinker
deletes and rewires instructions, and :meth:`Program.to_python` prints
any program as a self-contained repro script against the public API.

Generation draws from the operator catalog (:mod:`repro.fuzz.catalog`),
dispatching on each entry's declared ``shape_rule`` to sample valid
input shapes and static attributes. All randomness comes from one
caller-seeded :class:`random.Random`: the same ``(seed, options)`` pair
always yields the same program, byte for byte.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Optional

import numpy as np

import repro
from repro.core.graph import get_default_graph
from repro.errors import InvalidArgumentError
from repro.fuzz.catalog import CatalogEntry, catalog

__all__ = [
    "GeneratorOptions",
    "Instr",
    "Program",
    "Built",
    "generate",
]

# A reference to output ``out`` of instruction ``instr``.
Ref = tuple[int, int]

_NP_DTYPES = {
    "float32": np.float32,
    "float64": np.float64,
    "int32": np.int32,
    "bool": np.bool_,
}
# Base shape palette: small (generated graphs must run in milliseconds)
# but varied enough to exercise broadcasting, reduction, matmul, layout
# ops and collectives. Derived shapes (transposes, stacks, gathers...)
# enter the pool dynamically.
_SHAPES: tuple[tuple[int, ...], ...] = (
    (), (2,), (3,), (4,), (1, 3), (2, 3), (3, 2), (4, 4), (2, 2, 2),
)

# Shape-growing ops (Concat, Stack, AllGather x world) compound: without
# a cap a 24-op budget can snowball kilobyte tensors into gigabytes.
_MAX_ELEMENTS = 4096


@dataclass
class Instr:
    """One program step.

    ``op_type`` is a catalog op type, or the pseudo-type ``"Gradients"``
    (a ``tf.gradients`` tail: inputs are ``(loss, *xs)``, one output per
    ``x``). ``control`` entries are ``"op:<i>"`` (after instruction
    ``i``'s op) or ``"init:<i>"`` (after variable instruction ``i``'s
    initializer).
    """

    op_type: str
    inputs: tuple[Ref, ...] = ()
    attrs: dict = field(default_factory=dict)
    value: Optional[np.ndarray] = None  # Const payload / Placeholder feed
    device: Optional[str] = None
    control: tuple[str, ...] = ()
    out_dtypes: tuple[str, ...] = ()
    out_shapes: tuple[tuple[int, ...], ...] = ()

    def clone(self) -> "Instr":
        return replace(
            self, inputs=tuple(self.inputs), attrs=dict(self.attrs),
            control=tuple(self.control),
        )


@dataclass
class Program:
    """An executable, editable, printable graph recipe."""

    instrs: list[Instr]
    fetches: list[Ref]
    world: int = 0  # 0 = no collectives
    seed: Optional[int] = None

    # -- structure queries -------------------------------------------------

    @property
    def gpus(self) -> int:
        return max(self.world, 1)

    @property
    def has_collective(self) -> bool:
        return any(i.op_type.startswith("Collective") for i in self.instrs)

    @property
    def has_allreduce(self) -> bool:
        return any(i.op_type == "CollectiveAllReduce" for i in self.instrs)

    @property
    def placeholder_indices(self) -> list[int]:
        return [i for i, ins in enumerate(self.instrs)
                if ins.op_type == "Placeholder"]

    def op_count(self) -> int:
        """Instructions that create at least one graph op."""
        return len(self.instrs)

    def clone(self) -> "Program":
        return Program(
            instrs=[i.clone() for i in self.instrs],
            fetches=list(self.fetches),
            world=self.world,
            seed=self.seed,
        )

    # -- dependency helpers (used by the shrinker) -------------------------

    def deps_of(self, index: int) -> set[int]:
        """Indices of instructions instruction ``index`` depends on."""
        ins = self.instrs[index]
        deps = {src for src, _ in ins.inputs}
        for entry in ins.control:
            deps.add(int(entry.split(":", 1)[1]))
        if "var" in ins.attrs:
            deps.add(ins.attrs["var"])
        return deps

    def live_set(self) -> set[int]:
        """Instructions reachable from the fetches."""
        live: set[int] = set()
        stack = [src for src, _ in self.fetches]
        while stack:
            index = stack.pop()
            if index in live:
                continue
            live.add(index)
            stack.extend(self.deps_of(index))
        return live

    # -- materialization ---------------------------------------------------

    def materialize(
        self,
        algorithm: Optional[str] = None,
        placeholder_lookup: Optional[Callable[[int], Any]] = None,
    ) -> "Built":
        """Build this program's ops into the *current default graph*.

        Args:
            algorithm: override the ``algorithm=`` attr of every
                ``CollectiveAllReduce`` (the harness's algorithm axis;
                other collectives only register a ring schedule).
            placeholder_lookup: maps a Placeholder instruction index to
                an existing tensor — how a ``@repro.function`` trace
                substitutes its argument tensors. By default a fresh
                ``tf.placeholder`` named ``ph_<index>`` is created and
                its feed value recorded.
        """
        built = Built()
        graph = get_default_graph()
        for index, ins in enumerate(self.instrs):
            control_ops = [
                built.variables[int(c.split(":", 1)[1])].initializer
                if c.startswith("init:")
                else built.ops[int(c.split(":", 1)[1])]
                for c in ins.control
            ]
            inputs = [built.results[src][out] for src, out in ins.inputs]
            device_scope = graph.device(ins.device) if ins.device else None
            control_scope = (
                graph.control_dependencies(control_ops) if control_ops
                else None
            )
            try:
                if device_scope is not None:
                    device_scope.__enter__()
                if control_scope is not None:
                    control_scope.__enter__()
                self._build_one(index, ins, inputs, built, algorithm,
                                placeholder_lookup)
            finally:
                if control_scope is not None:
                    control_scope.__exit__(None, None, None)
                if device_scope is not None:
                    device_scope.__exit__(None, None, None)
        built.fetch_tensors = [
            built.results[src][out] for src, out in self.fetches
        ]
        return built

    def _build_one(self, index: int, ins: Instr, inputs: list,
                   built: "Built", algorithm: Optional[str],
                   placeholder_lookup) -> None:
        tf = repro
        op_type = ins.op_type
        if op_type == "Const":
            out = tf.constant(ins.value)
        elif op_type == "Placeholder":
            if placeholder_lookup is not None:
                out = placeholder_lookup(index)
            else:
                out = tf.placeholder(
                    _NP_DTYPES[ins.out_dtypes[0]],
                    shape=list(ins.out_shapes[0]),
                    name=f"ph_{index}",
                )
                built.feeds[out.name] = ins.value
            built.placeholders.append((index, out))
        elif op_type == "Fill":
            out = tf.fill(list(ins.attrs["shape"]), ins.attrs["value"],
                          dtype=_NP_DTYPES[ins.out_dtypes[0]])
        elif op_type == "VariableV2":
            var = tf.Variable(inputs[0], name=f"fuzz_var_{index}")
            built.variables[index] = var
            built.ops[index] = var.op
            built.results[index] = []
            return
        elif op_type in ("Assign", "AssignAdd", "AssignSub"):
            builder = {"Assign": tf.assign, "AssignAdd": tf.assign_add,
                       "AssignSub": tf.assign_sub}[op_type]
            out = builder(built.variables[ins.attrs["var"]], inputs[0])
        elif op_type == "Cast":
            out = tf.cast(inputs[0], _NP_DTYPES[ins.attrs["dst_dtype"]])
        elif op_type == "Reshape":
            out = tf.reshape(inputs[0], list(ins.attrs["shape"]))
        elif op_type == "Transpose":
            out = tf.transpose(inputs[0], perm=list(ins.attrs["perm"]))
        elif op_type == "Concat":
            out = tf.concat(inputs, axis=ins.attrs["axis"])
        elif op_type == "Split":
            out = tf.split(inputs[0], ins.attrs["num_splits"],
                           axis=ins.attrs["axis"])
        elif op_type == "Stack":
            out = tf.stack(inputs, axis=ins.attrs["axis"])
        elif op_type == "Squeeze":
            out = tf.squeeze(inputs[0], axis=ins.attrs["axis"])
        elif op_type == "ExpandDims":
            out = tf.expand_dims(inputs[0], axis=ins.attrs["axis"])
        elif op_type == "Slice":
            out = tf.slice_(inputs[0], list(ins.attrs["begin"]),
                            list(ins.attrs["size"]))
        elif op_type in ("Sum", "Mean", "Max"):
            builder = {"Sum": tf.reduce_sum, "Mean": tf.reduce_mean,
                       "Max": tf.reduce_max}[op_type]
            out = builder(inputs[0], axis=ins.attrs.get("axis"),
                          keepdims=ins.attrs.get("keepdims", False))
        elif op_type == "MatMul":
            out = tf.matmul(inputs[0], inputs[1],
                            transpose_a=ins.attrs.get("transpose_a", False),
                            transpose_b=ins.attrs.get("transpose_b", False))
        elif op_type == "AddN":
            out = tf.add_n(inputs)
        elif op_type.startswith("Collective"):
            alg = ins.attrs.get("algorithm", "ring")
            if algorithm is not None and op_type == "CollectiveAllReduce":
                alg = algorithm
            devices = list(ins.attrs["devices"])
            if op_type == "CollectiveBroadcast":
                out = tf.broadcast(inputs[0], devices=devices, algorithm=alg)
            else:
                builder = {
                    "CollectiveAllReduce": tf.all_reduce,
                    "CollectiveReduceScatter": tf.reduce_scatter,
                    "CollectiveAllGather": tf.all_gather,
                }[op_type]
                out = builder(inputs, devices=devices, algorithm=alg)
        elif op_type == "Gradients":
            loss, xs = inputs[0], inputs[1:]
            out = tf.gradients(loss, list(xs))
            missing = [i for i, g in enumerate(out) if g is None]
            if missing:
                raise InvalidArgumentError(
                    f"generated gradient tail lost xs {missing} "
                    f"(generator connectivity tracking is wrong)"
                )
        else:
            # Plain unary/binary elementwise builders share a calling
            # convention: positional tensor inputs only.
            builder = getattr(tf, catalog()[op_type].builder)
            out = builder(*inputs)
        if isinstance(out, (list, tuple)):
            tensors = list(out)
        else:
            tensors = [out]
        built.results[index] = tensors
        built.ops[index] = tensors[0].op

    # -- codegen -----------------------------------------------------------

    def body_source(self, indent: str = "    ") -> str:
        """The instruction list as Python source against ``repro``'s API.

        Placeholder instructions are *parameters*: the emitted lines
        reference ``ph_<i>`` names the caller binds (script preamble or
        traced-function arguments).
        """
        lines: list[str] = []
        for index, ins in enumerate(self.instrs):
            lines.extend(_emit_instr(index, ins))
        if not lines:
            lines.append("pass")
        return "\n".join(indent + line for line in lines)

    def to_python(self, cell: Any = None, note: str = "") -> str:
        """A self-contained repro script for this program.

        The script rebuilds the program with the public ``repro`` API,
        runs the baseline cell (session / legacy lane / optimizer off)
        and the diverging cell, and asserts byte-identity fetch by
        fetch. While the underlying defect exists the script raises
        ``AssertionError``; once fixed it prints ``OK`` (which is why
        shrunk repros are checked into ``corpus/`` and replayed by CI
        as regression tests).
        """
        return _render_script(self, cell, note)


@dataclass
class Built:
    """Materialization products, keyed by instruction index."""

    results: dict[int, list] = field(default_factory=dict)
    ops: dict[int, Any] = field(default_factory=dict)
    variables: dict[int, Any] = field(default_factory=dict)
    placeholders: list[tuple[int, Any]] = field(default_factory=list)
    feeds: dict[str, np.ndarray] = field(default_factory=dict)
    fetch_tensors: list = field(default_factory=list)


# ---------------------------------------------------------------------------
# codegen helpers
# ---------------------------------------------------------------------------

def _np_literal(arr: Optional[np.ndarray]) -> str:
    arr = np.asarray(arr)
    return f"np.array({arr.tolist()!r}, dtype=np.{arr.dtype.name})"


def _ref_expr(ref: Ref) -> str:
    src, out = ref
    return f"t{src}[{out}]"


def _emit_instr(index: int, ins: Instr) -> list[str]:
    """Lines creating ``t<index>`` (always a *list* of output tensors)."""
    args = [_ref_expr(ref) for ref in ins.inputs]
    op_type = ins.op_type
    if op_type == "Const":
        expr = f"tf.constant({_np_literal(ins.value)})"
    elif op_type == "Placeholder":
        # Bound by the script preamble / traced-function signature.
        return [f"t{index} = [ph_{index}]"]
    elif op_type == "Fill":
        expr = (f"tf.fill({list(ins.attrs['shape'])!r}, "
                f"{ins.attrs['value']!r}, "
                f"dtype=np.{ins.out_dtypes[0]})")
    elif op_type == "VariableV2":
        expr = f"tf.Variable({args[0]}, name='fuzz_var_{index}')"
        return _wrap_scopes(ins, [f"v{index} = {expr}"])
    elif op_type in ("Assign", "AssignAdd", "AssignSub"):
        builder = {"Assign": "tf.assign", "AssignAdd": "tf.assign_add",
                   "AssignSub": "tf.assign_sub"}[op_type]
        expr = f"{builder}(v{ins.attrs['var']}, {args[0]})"
    elif op_type == "Cast":
        expr = f"tf.cast({args[0]}, np.{ins.attrs['dst_dtype']})"
    elif op_type == "Reshape":
        expr = f"tf.reshape({args[0]}, {list(ins.attrs['shape'])!r})"
    elif op_type == "Transpose":
        expr = f"tf.transpose({args[0]}, perm={list(ins.attrs['perm'])!r})"
    elif op_type == "Concat":
        expr = f"tf.concat([{', '.join(args)}], axis={ins.attrs['axis']!r})"
    elif op_type == "Split":
        expr = (f"tf.split({args[0]}, {ins.attrs['num_splits']!r}, "
                f"axis={ins.attrs['axis']!r})")
        return _wrap_scopes(ins, [f"t{index} = {expr}"])
    elif op_type == "Stack":
        expr = f"tf.stack([{', '.join(args)}], axis={ins.attrs['axis']!r})"
    elif op_type == "Squeeze":
        expr = f"tf.squeeze({args[0]}, axis={ins.attrs['axis']!r})"
    elif op_type == "ExpandDims":
        expr = f"tf.expand_dims({args[0]}, axis={ins.attrs['axis']!r})"
    elif op_type == "Slice":
        expr = (f"tf.slice_({args[0]}, {list(ins.attrs['begin'])!r}, "
                f"{list(ins.attrs['size'])!r})")
    elif op_type in ("Sum", "Mean", "Max"):
        builder = {"Sum": "tf.reduce_sum", "Mean": "tf.reduce_mean",
                   "Max": "tf.reduce_max"}[op_type]
        expr = (f"{builder}({args[0]}, axis={ins.attrs.get('axis')!r}, "
                f"keepdims={ins.attrs.get('keepdims', False)!r})")
    elif op_type == "MatMul":
        expr = (f"tf.matmul({args[0]}, {args[1]}, "
                f"transpose_a={ins.attrs.get('transpose_a', False)!r}, "
                f"transpose_b={ins.attrs.get('transpose_b', False)!r})")
    elif op_type == "AddN":
        expr = f"tf.add_n([{', '.join(args)}])"
    elif op_type.startswith("Collective"):
        builder = {
            "CollectiveAllReduce": "tf.all_reduce",
            "CollectiveReduceScatter": "tf.reduce_scatter",
            "CollectiveAllGather": "tf.all_gather",
            "CollectiveBroadcast": "tf.broadcast",
        }[op_type]
        devices = list(ins.attrs["devices"])
        alg = ("algorithm" if op_type == "CollectiveAllReduce"
               else f"{ins.attrs.get('algorithm', 'ring')!r}")
        if op_type == "CollectiveBroadcast":
            expr = (f"{builder}({args[0]}, devices={devices!r}, "
                    f"algorithm={alg})")
        else:
            expr = (f"{builder}([{', '.join(args)}], devices={devices!r}, "
                    f"algorithm={alg})")
        return _wrap_scopes(ins, [f"t{index} = {expr}"])
    elif op_type == "Gradients":
        loss, xs = args[0], args[1:]
        expr = f"tf.gradients({loss}, [{', '.join(xs)}])"
        return _wrap_scopes(ins, [f"t{index} = {expr}"])
    else:
        from repro.fuzz.catalog import catalog as _cat

        expr = f"tf.{_cat()[op_type].builder}({', '.join(args)})"
    return _wrap_scopes(ins, [f"t{index} = [{expr}]"])


def _wrap_scopes(ins: Instr, lines: list[str]) -> list[str]:
    if ins.control:
        deps = ", ".join(
            f"v{c.split(':', 1)[1]}.initializer" if c.startswith("init:")
            else f"t{c.split(':', 1)[1]}[0].op"
            for c in ins.control
        )
        lines = [f"with g.control_dependencies([{deps}]):"] + [
            "    " + line for line in lines
        ]
    if ins.device:
        lines = [f"with g.device({ins.device!r}):"] + [
            "    " + line for line in lines
        ]
    return lines


_SCRIPT_TEMPLATE = '''{header}

import numpy as np

import repro as tf
from repro.fuzz.harness import Cell, run_cell
from repro.fuzz.generator import Program


def body(*placeholders, algorithm="ring"):
    g = tf.get_default_graph()
    _phs = list(placeholders)
{ph_bind}
{body}
    return [{fetch_exprs}]


FEEDS = [
    {feed_values}
]

GPUS = {gpus}

if __name__ == "__main__":
    from repro.fuzz.harness import run_script_body

    run_script_body(body, FEEDS, GPUS,
                    Cell({cell_kwargs}))
    print("OK: {label} matches the baseline bytes")
'''


# The template is substituted chunk-by-chunk rather than with .format():
# emitted bodies contain literal braces (dict attrs, list reprs) that
# .format would misparse.
def _render_script(program: Program, cell: Any, note: str) -> str:
    from repro.fuzz.harness import Cell  # local: avoid import cycle

    cell = cell if cell is not None else Cell(frontend="session")
    ph_indices = program.placeholder_indices
    feed_lines = ",\n    ".join(
        _np_literal(program.instrs[i].value) for i in ph_indices
    )
    header = (
        f'"""Shrunk differential-fuzz repro (seed={program.seed}, '
        f'cell={cell.label()}).\n\n'
        f"Auto-generated by python -m repro.fuzz. Asserts that the cell "
        f"produces the\nbaseline's bytes; raises AssertionError while "
        f"the defect reproduces.\n"
        f"{note}\"\"\""
    )
    fetch_exprs = ", ".join(_ref_expr(ref) for ref in program.fetches)
    bind_lines = "\n".join(
        f"    ph_{idx} = _phs[{pos}]" for pos, idx in enumerate(ph_indices)
    ) or "    del _phs"
    pieces = {
        "header": header,
        "ph_bind": bind_lines,
        "body": program.body_source(indent="    "),
        "fetch_exprs": fetch_exprs,
        "feed_values": feed_lines,
        "gpus": str(program.gpus),
        "cell_kwargs": cell.script_kwargs(),
        "label": cell.label(),
    }
    script = _SCRIPT_TEMPLATE
    for key, chunk in pieces.items():
        script = script.replace("{%s}" % key, chunk)
    return script


# ---------------------------------------------------------------------------
# generation
# ---------------------------------------------------------------------------

@dataclass
class GeneratorOptions:
    """Knobs bounding what a generated program may contain."""

    max_ops: int = 12
    placeholders: bool = True
    variables: bool = True
    collectives: bool = True
    gradients: bool = True
    max_world: int = 4  # collective ranks drawn from 2..max_world (cap 8)
    max_fetches: int = 8


@dataclass
class _RefMeta:
    dtype: str
    shape: tuple[int, ...]
    needs_feed: bool = False  # transitively depends on a placeholder
    # Every placeholder->here path crosses only gradient-registered ops
    # (vacuously true with no placeholder ancestry): the invariant that
    # makes a ``tf.gradients(loss, placeholders)`` tail legal.
    diff_ok: bool = True
    ph_ancestry: frozenset = frozenset()


class _GenState:
    def __init__(self, rng: random.Random, options: GeneratorOptions):
        self.rng = rng
        self.options = options
        self.instrs: list[Instr] = []
        self.meta: dict[Ref, _RefMeta] = {}
        self.pool: dict[tuple[str, tuple[int, ...]], list[Ref]] = {}
        self.world = 0

    # -- bookkeeping -------------------------------------------------------

    def add(self, ins: Instr, metas: list[_RefMeta]) -> int:
        index = len(self.instrs)
        self.instrs.append(ins)
        ins.out_dtypes = tuple(m.dtype for m in metas)
        ins.out_shapes = tuple(tuple(m.shape) for m in metas)
        for out, m in enumerate(metas):
            ref = (index, out)
            self.meta[ref] = m
            self.pool.setdefault((m.dtype, m.shape), []).append(ref)
        return index

    def pick(self, dtype: Optional[str] = None,
             shape: Optional[tuple[int, ...]] = None,
             pred: Optional[Callable[[_RefMeta], bool]] = None
             ) -> Optional[Ref]:
        candidates = [
            ref
            for (d, s), refs in self.pool.items()
            if (dtype is None or d == dtype)
            and (shape is None or s == shape)
            for ref in refs
            if pred is None or pred(self.meta[ref])
        ]
        if not candidates:
            return None
        return self.rng.choice(candidates)

    def combined(self, refs: list[Ref], entry: CatalogEntry,
                 dtype: str, shape: tuple[int, ...]) -> _RefMeta:
        metas = [self.meta[r] for r in refs]
        ancestry = frozenset().union(*(m.ph_ancestry for m in metas)) \
            if metas else frozenset()
        diff_ok = (
            not ancestry
            or (entry.differentiable and all(
                m.diff_ok or not m.ph_ancestry for m in metas
            ))
        )
        return _RefMeta(
            dtype=dtype,
            shape=shape,
            needs_feed=any(m.needs_feed for m in metas),
            diff_ok=bool(diff_ok),
            ph_ancestry=ancestry,
        )

    # -- value synthesis ---------------------------------------------------

    def random_array(self, dtype: str, shape: tuple[int, ...]) -> np.ndarray:
        if dtype == "int32":
            return np.asarray(
                self.rng.choices(range(-4, 5), k=_size(shape)),
                dtype=np.int32,
            ).reshape(shape)
        values = [round(self.rng.uniform(-2.0, 2.0), 3)
                  for _ in range(_size(shape))]
        return np.asarray(values, dtype=_NP_DTYPES[dtype]).reshape(shape)


def _size(shape: tuple[int, ...]) -> int:
    n = 1
    for d in shape:
        n *= d
    return n


def generate(seed: int, options: Optional[GeneratorOptions] = None
             ) -> Program:
    """Draw one random valid program (deterministic per seed+options)."""
    options = options or GeneratorOptions()
    rng = random.Random(seed)
    state = _GenState(rng, options)
    entries = catalog()
    if options.collectives and rng.random() < 0.6:
        state.world = rng.randint(2, max(2, min(8, options.max_world)))

    # Seed pool: a constant per palette shape (float32), plus extras.
    for shape in ((), (3,), (2, 3), (4, 4)):
        _sample_const(state, "float32", shape)
    if options.placeholders:
        for _ in range(rng.randint(1, 3)):
            dtype = rng.choice(("float32", "float64"))
            shape = rng.choice(_SHAPES)
            meta = _RefMeta(dtype=dtype, shape=shape, needs_feed=True,
                            diff_ok=True)
            index = state.add(
                Instr(op_type="Placeholder",
                      value=state.random_array(dtype, shape)),
                [meta],
            )
            state.meta[(index, 0)] = replace(
                state.meta[(index, 0)], ph_ancestry=frozenset({index})
            )

    budget = rng.randint(max(2, options.max_ops // 2), options.max_ops)
    drawable = [e for t, e in sorted(entries.items())
                if t not in ("Placeholder",)]
    for _ in range(budget):
        for _attempt in range(6):
            entry = rng.choice(drawable)
            if entry.collective and (
                not options.collectives or state.world < 2
            ):
                continue
            if entry.op_type in ("VariableV2", "Assign", "AssignAdd",
                                 "AssignSub"):
                if not options.variables:
                    continue
                if _sample_variable_chain(state):
                    break
                continue
            if _SAMPLERS[entry.shape_rule](state, entry):
                break

    if options.gradients:
        _sample_gradient_tail(state)

    fetches = _choose_fetches(state)
    return Program(instrs=state.instrs, fetches=fetches,
                   world=state.world, seed=seed)


# -- per-shape-rule samplers -------------------------------------------------
# Each sampler returns True when it appended an instruction.

def _sample_const(state: _GenState, dtype: Optional[str] = None,
                  shape: Optional[tuple[int, ...]] = None) -> bool:
    rng = state.rng
    dtype = dtype or rng.choice(("float32", "float64", "int32"))
    shape = shape if shape is not None else rng.choice(_SHAPES)
    value = state.random_array(dtype, shape)
    state.add(Instr(op_type="Const", value=value),
              [_RefMeta(dtype=dtype, shape=shape)])
    return True


def _sample_source(state: _GenState, entry: CatalogEntry) -> bool:
    if entry.op_type == "Fill":
        rng = state.rng
        dtype = rng.choice(entry.dtypes)
        shape = rng.choice([s for s in _SHAPES if s])
        value = (rng.randint(-3, 3) if dtype == "int32"
                 else round(rng.uniform(-2, 2), 3))
        state.add(
            Instr(op_type="Fill", attrs={"shape": shape, "value": value}),
            [_RefMeta(dtype=dtype, shape=shape)],
        )
        return True
    return _sample_const(state)


def _sample_unary(state: _GenState, entry: CatalogEntry) -> bool:
    dtype = state.rng.choice(entry.dtypes)
    ref = state.pick(dtype=dtype)
    if ref is None:
        return False
    meta = state.meta[ref]
    out = state.combined([ref], entry, dtype, meta.shape)
    state.add(Instr(op_type=entry.op_type, inputs=(ref,)), [out])
    return True


def _sample_binary(state: _GenState, entry: CatalogEntry) -> bool:
    rng = state.rng
    dtype = rng.choice(entry.dtypes)
    a = state.pick(dtype=dtype)
    if a is None:
        return False
    sa = state.meta[a].shape
    # Same-shape, scalar, or broadcast-compatible partner.
    partner_shapes = [sa, ()]
    if len(sa) >= 1:
        partner_shapes.append(sa[-1:])
        partner_shapes.append((1,) * (len(sa) - 1) + sa[-1:])
    b = None
    for shape in rng.sample(partner_shapes, len(partner_shapes)):
        b = state.pick(dtype=dtype, shape=shape)
        if b is not None:
            break
    if b is None:
        return False
    sb = state.meta[b].shape
    out_shape = tuple(np.broadcast_shapes(sa, sb))
    out_dtype = "bool" if entry.op_type == "GreaterEqual" else dtype
    out = state.combined([a, b], entry, out_dtype, out_shape)
    state.add(Instr(op_type=entry.op_type, inputs=(a, b)), [out])
    return True


def _sample_same_shape_n(state: _GenState, entry: CatalogEntry) -> bool:
    rng = state.rng
    dtype = rng.choice(entry.dtypes)
    first = state.pick(dtype=dtype)
    if first is None:
        return False
    shape = state.meta[first].shape
    count = rng.randint(entry.arity[0], entry.arity[1])
    refs = [first] + [
        state.pick(dtype=dtype, shape=shape) for _ in range(count - 1)
    ]
    refs = [r for r in refs if r is not None]
    if len(refs) < entry.arity[0]:
        return False
    out = state.combined(refs, entry, dtype, shape)
    state.add(Instr(op_type=entry.op_type, inputs=tuple(refs)), [out])
    return True


def _sample_matmul(state: _GenState, entry: CatalogEntry) -> bool:
    rng = state.rng
    dtype = rng.choice(entry.dtypes)
    a = state.pick(dtype=dtype, pred=lambda m: len(m.shape) == 2)
    if a is None:
        return False
    ta = rng.random() < 0.25
    sa = state.meta[a].shape
    m, k = (sa[1], sa[0]) if ta else (sa[0], sa[1])
    rank1 = rng.random() < 0.2
    if rank1:
        b = state.pick(dtype=dtype, shape=(k,))
        if b is None:
            return False
        out_shape: tuple[int, ...] = (m,)
        attrs = {"transpose_a": ta, "transpose_b": False}
        refs = [a, b]
    else:
        tb = rng.random() < 0.25
        b = state.pick(
            dtype=dtype,
            pred=lambda mt: len(mt.shape) == 2
            and (mt.shape[1] if tb else mt.shape[0]) == k,
        )
        if b is None:
            return False
        sb = state.meta[b].shape
        n = sb[0] if tb else sb[1]
        out_shape = (m, n)
        attrs = {"transpose_a": ta, "transpose_b": tb}
        refs = [a, b]
    out = state.combined(refs, entry, dtype, out_shape)
    state.add(Instr(op_type="MatMul", inputs=tuple(refs), attrs=attrs),
              [out])
    return True


def _sample_dot(state: _GenState, entry: CatalogEntry) -> bool:
    dtype = state.rng.choice(entry.dtypes)
    a = state.pick(dtype=dtype, pred=lambda m: len(m.shape) == 1)
    if a is None:
        return False
    b = state.pick(dtype=dtype, shape=state.meta[a].shape)
    if b is None:
        return False
    out = state.combined([a, b], entry, dtype, ())
    state.add(Instr(op_type="Dot", inputs=(a, b)), [out])
    return True


def _sample_reduce(state: _GenState, entry: CatalogEntry) -> bool:
    rng = state.rng
    dtype = rng.choice(entry.dtypes)
    ref = state.pick(dtype=dtype, pred=lambda m: len(m.shape) >= 1)
    if ref is None:
        return False
    shape = state.meta[ref].shape
    keepdims = rng.random() < 0.3
    if rng.random() < 0.4:
        axis = None
        out_shape = tuple([1] * len(shape)) if keepdims else ()
    else:
        ax = rng.randrange(len(shape))
        axis = [ax]
        dims = list(shape)
        if keepdims:
            dims[ax] = 1
        else:
            dims.pop(ax)
        out_shape = tuple(dims)
    out = state.combined([ref], entry, dtype, out_shape)
    state.add(
        Instr(op_type=entry.op_type, inputs=(ref,),
              attrs={"axis": axis, "keepdims": keepdims}),
        [out],
    )
    return True


def _sample_cast(state: _GenState, entry: CatalogEntry) -> bool:
    rng = state.rng
    ref = state.pick(pred=lambda m: m.dtype in entry.dtypes)
    if ref is None:
        return False
    src = state.meta[ref].dtype
    # float -> int is skipped: inf/NaN-to-int casts are platform-defined.
    targets = {
        "float32": ("float64",),
        "float64": ("float32",),
        "int32": ("float32", "float64", "int32"),
        "bool": ("float32", "int32"),
    }[src]
    dst = rng.choice(targets)
    out = state.combined([ref], entry, dst, state.meta[ref].shape)
    state.add(
        Instr(op_type="Cast", inputs=(ref,), attrs={"dst_dtype": dst}),
        [out],
    )
    return True


def _sample_reshape(state: _GenState, entry: CatalogEntry) -> bool:
    rng = state.rng
    ref = state.pick(pred=lambda m: m.dtype in entry.dtypes
                     and len(m.shape) >= 1)
    if ref is None:
        return False
    meta = state.meta[ref]
    n = _size(meta.shape)
    options: list[tuple[int, ...]] = [(n,), tuple(reversed(meta.shape))]
    for d in (2, 3, 4):
        if n % d == 0:
            options.append((d, n // d))
    new_shape = rng.choice(options)
    out = state.combined([ref], entry, meta.dtype, new_shape)
    state.add(
        Instr(op_type="Reshape", inputs=(ref,),
              attrs={"shape": new_shape}),
        [out],
    )
    return True


def _sample_transpose(state: _GenState, entry: CatalogEntry) -> bool:
    rng = state.rng
    ref = state.pick(pred=lambda m: m.dtype in entry.dtypes
                     and len(m.shape) >= 2)
    if ref is None:
        return False
    meta = state.meta[ref]
    perm = list(range(len(meta.shape)))
    rng.shuffle(perm)
    out_shape = tuple(meta.shape[p] for p in perm)
    out = state.combined([ref], entry, meta.dtype, out_shape)
    state.add(
        Instr(op_type="Transpose", inputs=(ref,),
              attrs={"perm": tuple(perm)}),
        [out],
    )
    return True


def _sample_concat(state: _GenState, entry: CatalogEntry) -> bool:
    rng = state.rng
    dtype = rng.choice(entry.dtypes)
    first = state.pick(dtype=dtype, pred=lambda m: len(m.shape) >= 1)
    if first is None:
        return False
    shape = state.meta[first].shape
    axis = rng.randrange(len(shape))
    count = rng.randint(entry.arity[0], entry.arity[1])
    refs = [first] + [
        state.pick(dtype=dtype, shape=shape) for _ in range(count - 1)
    ]
    refs = [r for r in refs if r is not None]
    if len(refs) < 2:
        return False
    dims = list(shape)
    dims[axis] = shape[axis] * len(refs)
    if _size(tuple(dims)) > _MAX_ELEMENTS:
        return False
    out = state.combined(refs, entry, dtype, tuple(dims))
    state.add(
        Instr(op_type="Concat", inputs=tuple(refs), attrs={"axis": axis}),
        [out],
    )
    return True


def _sample_split(state: _GenState, entry: CatalogEntry) -> bool:
    rng = state.rng
    candidates = []
    for (dtype, shape), refs in state.pool.items():
        if dtype not in entry.dtypes or not shape:
            continue
        for axis, dim in enumerate(shape):
            for parts in (2, 3, 4):
                if dim % parts == 0 and dim >= parts and parts > 1:
                    candidates.append((refs, axis, parts, dtype, shape))
    if not candidates:
        return False
    refs, axis, parts, dtype, shape = rng.choice(candidates)
    ref = rng.choice(refs)
    dims = list(shape)
    dims[axis] //= parts
    metas = [
        state.combined([ref], entry, dtype, tuple(dims))
        for _ in range(parts)
    ]
    state.add(
        Instr(op_type="Split", inputs=(ref,),
              attrs={"num_splits": parts, "axis": axis}),
        metas,
    )
    return True


def _sample_stack(state: _GenState, entry: CatalogEntry) -> bool:
    rng = state.rng
    dtype = rng.choice(entry.dtypes)
    first = state.pick(dtype=dtype)
    if first is None:
        return False
    shape = state.meta[first].shape
    count = rng.randint(entry.arity[0], entry.arity[1])
    refs = [first] + [
        state.pick(dtype=dtype, shape=shape) for _ in range(count - 1)
    ]
    refs = [r for r in refs if r is not None]
    if len(refs) < 2:
        return False
    axis = rng.randrange(len(shape) + 1)
    dims = list(shape)
    dims.insert(axis, len(refs))
    if _size(tuple(dims)) > _MAX_ELEMENTS:
        return False
    out = state.combined(refs, entry, dtype, tuple(dims))
    state.add(
        Instr(op_type="Stack", inputs=tuple(refs), attrs={"axis": axis}),
        [out],
    )
    return True


def _sample_squeeze(state: _GenState, entry: CatalogEntry) -> bool:
    rng = state.rng
    ref = state.pick(pred=lambda m: m.dtype in entry.dtypes
                     and 1 in m.shape)
    if ref is None:
        return False
    meta = state.meta[ref]
    ones = [i for i, d in enumerate(meta.shape) if d == 1]
    axis = rng.choice(ones)
    dims = list(meta.shape)
    dims.pop(axis)
    out = state.combined([ref], entry, meta.dtype, tuple(dims))
    state.add(
        Instr(op_type="Squeeze", inputs=(ref,), attrs={"axis": axis}),
        [out],
    )
    return True


def _sample_expand_dims(state: _GenState, entry: CatalogEntry) -> bool:
    rng = state.rng
    ref = state.pick(pred=lambda m: m.dtype in entry.dtypes)
    if ref is None:
        return False
    meta = state.meta[ref]
    axis = rng.randrange(len(meta.shape) + 1)
    dims = list(meta.shape)
    dims.insert(axis, 1)
    out = state.combined([ref], entry, meta.dtype, tuple(dims))
    state.add(
        Instr(op_type="ExpandDims", inputs=(ref,), attrs={"axis": axis}),
        [out],
    )
    return True


def _sample_slice(state: _GenState, entry: CatalogEntry) -> bool:
    rng = state.rng
    ref = state.pick(pred=lambda m: m.dtype in entry.dtypes
                     and len(m.shape) >= 1 and min(m.shape) >= 1)
    if ref is None:
        return False
    meta = state.meta[ref]
    begin, size = [], []
    for dim in meta.shape:
        s = rng.randint(1, dim)
        b = rng.randint(0, dim - s)
        begin.append(b)
        size.append(s)
    out = state.combined([ref], entry, meta.dtype, tuple(size))
    state.add(
        Instr(op_type="Slice", inputs=(ref,),
              attrs={"begin": tuple(begin), "size": tuple(size)}),
        [out],
    )
    return True


def _sample_collective(state: _GenState, entry: CatalogEntry) -> bool:
    rng = state.rng
    world = state.world
    if world < 2:
        return False
    devices = tuple(f"/device:gpu:{i}" for i in range(world))
    dtype = rng.choice(entry.dtypes)
    op_type = entry.op_type
    if op_type == "CollectiveBroadcast":
        ref = state.pick(dtype=dtype)
        if ref is None:
            return False
        meta = state.meta[ref]
        metas = [state.combined([ref], entry, dtype, meta.shape)
                 for _ in range(world)]
        state.add(
            Instr(op_type=op_type, inputs=(ref,),
                  attrs={"devices": devices, "algorithm": "ring"}),
            metas,
        )
        return True
    if op_type == "CollectiveReduceScatter":
        pred = (lambda m: len(m.shape) >= 1
                and m.shape[0] % world == 0 and m.shape[0] >= world)
    elif op_type == "CollectiveAllGather":
        pred = lambda m: len(m.shape) >= 1
    else:
        pred = None
    first = state.pick(dtype=dtype, pred=pred)
    if first is None:
        return False
    shape = state.meta[first].shape
    refs = [first]
    for _ in range(world - 1):
        other = state.pick(dtype=dtype, shape=shape)
        if other is None:
            return False
        refs.append(other)
    if op_type == "CollectiveAllReduce":
        out_shape = shape
    elif op_type == "CollectiveReduceScatter":
        out_shape = (shape[0] // world,) + shape[1:]
    else:  # CollectiveAllGather
        out_shape = (shape[0] * world,) + shape[1:]
    if _size(out_shape) * world > _MAX_ELEMENTS:
        return False
    metas = [state.combined(refs, entry, dtype, out_shape)
             for _ in range(world)]
    alg = "ring"
    state.add(
        Instr(op_type=op_type, inputs=tuple(refs),
              attrs={"devices": devices, "algorithm": alg}),
        metas,
    )
    return True


def _sample_variable_chain(state: _GenState) -> bool:
    """Variable + ordered update chain, read through the update outputs."""
    rng = state.rng
    dtype = rng.choice(("float32", "float64", "int32"))
    init = state.pick(dtype=dtype,
                      pred=lambda m: not m.needs_feed and m.shape)
    if init is None:
        return False
    shape = state.meta[init].shape
    var_index = state.add(
        Instr(op_type="VariableV2", inputs=(init,),
              attrs={}),
        [],
    )
    prev = f"init:{var_index}"
    # Running meta of the variable's *state*: an update output reflects
    # every write so far, not just its own delta. Found by the fuzzer
    # itself (seed 638): an AssignAdd whose variable had been Assign-ed a
    # placeholder value was marked feed-free, got picked as a later
    # variable's initializer, and the tracing frontend's no-feed init
    # pre-run blew up on the unfed placeholder.
    state_meta = state.meta[init]
    updates = rng.randint(1, 2)
    for _ in range(updates):
        delta = state.pick(dtype=dtype, shape=shape)
        if delta is None:
            delta = init
        op_type = rng.choice(("Assign", "AssignAdd", "AssignSub"))
        delta_meta = state.meta[delta]
        if op_type == "Assign":
            tainted = [delta_meta]
        else:
            tainted = [state_meta, delta_meta]
        state_meta = _RefMeta(
            dtype=dtype,
            shape=shape,
            needs_feed=any(m.needs_feed for m in tainted),
            diff_ok=False,
            ph_ancestry=frozenset().union(
                *(m.ph_ancestry for m in tainted)
            ),
        )
        update_index = state.add(
            Instr(op_type=op_type, inputs=(delta,),
                  attrs={"var": var_index}, control=(prev,)),
            [state_meta],
        )
        prev = f"op:{update_index}"
    return True


def _sample_gradient_tail(state: _GenState) -> bool:
    rng = state.rng
    candidates = [
        ref for ref, meta in state.meta.items()
        if meta.dtype in ("float32", "float64")
        and meta.diff_ok and meta.ph_ancestry
        and all(
            state.instrs[ph].out_dtypes[0] in ("float32", "float64")
            for ph in meta.ph_ancestry
        )
    ]
    if not candidates:
        return False
    loss_ref = rng.choice(candidates)
    meta = state.meta[loss_ref]
    entries = catalog()
    if meta.shape:
        out = state.combined([loss_ref], entries["Sum"], meta.dtype, ())
        sum_index = state.add(
            Instr(op_type="Sum", inputs=(loss_ref,),
                  attrs={"axis": None, "keepdims": False}),
            [out],
        )
        loss_ref = (sum_index, 0)
        meta = state.meta[loss_ref]
    xs = sorted(meta.ph_ancestry)
    grad_metas = [
        _RefMeta(
            dtype=state.instrs[ph].out_dtypes[0],
            shape=tuple(state.instrs[ph].out_shapes[0]),
            needs_feed=True,
            diff_ok=False,
            ph_ancestry=meta.ph_ancestry,
        )
        for ph in xs
    ]
    state.add(
        Instr(op_type="Gradients",
              inputs=(loss_ref,) + tuple((ph, 0) for ph in xs)),
        grad_metas,
    )
    return True


def _choose_fetches(state: _GenState) -> list[Ref]:
    rng = state.rng
    fetches: list[Ref] = []
    # Every gradient output is a fetch (the tails exist to be compared).
    for index, ins in enumerate(state.instrs):
        if ins.op_type == "Gradients":
            fetches.extend((index, out) for out in range(len(ins.out_dtypes)))
    # One representative per (dtype, shape) bucket, newest first, capped.
    buckets = sorted(state.pool.items(), key=lambda kv: -max(
        ref[0] for ref in kv[1]
    ))
    for (_dtype, _shape), refs in buckets:
        if len(fetches) >= state.options.max_fetches:
            break
        ref = max(refs)  # the most-derived tensor of the bucket
        if ref not in fetches:
            fetches.append(ref)
    if not fetches:
        # Degenerate programs still fetch something comparable.
        index = len(state.instrs)
        _sample_const(state, "float32", (2,))
        fetches.append((index, 0))
    return fetches


_SAMPLERS: dict[str, Callable[[_GenState, CatalogEntry], bool]] = {
    "source": _sample_source,
    "unary_same": _sample_unary,
    "elementwise_broadcast": _sample_binary,
    "same_shape_n": _sample_same_shape_n,
    "matmul": _sample_matmul,
    "dot": _sample_dot,
    "reduce": _sample_reduce,
    "cast": _sample_cast,
    "reshape": _sample_reshape,
    "transpose": _sample_transpose,
    "concat": _sample_concat,
    "split": _sample_split,
    "stack": _sample_stack,
    "squeeze": _sample_squeeze,
    "expand_dims": _sample_expand_dims,
    "slice": _sample_slice,
    "collective": _sample_collective,
}
