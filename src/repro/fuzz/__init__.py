"""Differential graph fuzzing for the execution matrix.

``python -m repro.fuzz`` draws seeded random graphs from the operator
catalog and executes each one through every cell of the frontend ×
executor-lane × collective-algorithm × fusion matrix, asserting that
all cells reproduce the baseline's fetch bytes and that sim-time
invariants hold. Failures are delta-debugged down to minimal
self-contained repro scripts.

Layers (each importable on its own):

* :mod:`repro.fuzz.catalog` — which ops are fuzzable, from the kernel
  registry + declared op constraints + gradient registry;
* :mod:`repro.fuzz.generator` — seeded program generation, the
  frontend-neutral :class:`~repro.fuzz.generator.Program` IR, and repro
  script codegen;
* :mod:`repro.fuzz.harness` — the execution matrix and byte-identity /
  sim-time comparison;
* :mod:`repro.fuzz.shrinker` — delta-debugging reduction of failing
  programs.
"""

from repro.fuzz.catalog import (
    EXCLUDED_OPS,
    CatalogEntry,
    catalog,
    catalog_entry,
    uncovered_op_types,
)
from repro.fuzz.generator import (
    GeneratorOptions,
    Instr,
    Program,
    generate,
)
from repro.fuzz.harness import (
    BASELINE,
    Cell,
    CellRun,
    Divergence,
    ProgramReport,
    matrix_cells,
    run_cell,
    run_program,
)
from repro.fuzz.shrinker import ShrinkResult, shrink

__all__ = [
    "BASELINE",
    "CatalogEntry",
    "Cell",
    "CellRun",
    "Divergence",
    "EXCLUDED_OPS",
    "GeneratorOptions",
    "Instr",
    "Program",
    "ProgramReport",
    "ShrinkResult",
    "catalog",
    "catalog_entry",
    "generate",
    "matrix_cells",
    "run_cell",
    "run_program",
    "shrink",
    "uncovered_op_types",
]
