"""Interconnect fabrics.

Port rates are theoretical link speeds; ``efficiency`` is the sustained
fraction achievable by a well-tuned zero-copy protocol (the paper reports
>50 % of the 12 GB/s EDR theoretical bandwidth for RDMA on host memory).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Interconnect", "EDR_INFINIBAND", "FDR_INFINIBAND", "GIGABIT_ETHERNET"]


@dataclass(frozen=True)
class Interconnect:
    """A network fabric technology."""

    name: str
    port_rate: float  # theoretical per-port rate, B/s
    latency: float  # one-way wire+switch latency, s
    efficiency: float  # sustained fraction of port_rate for native verbs
    ip_efficiency: float  # sustained fraction for IP traffic (IPoIB / TCP)

    @property
    def effective_rate(self) -> float:
        return self.port_rate * self.efficiency

    @property
    def ip_rate(self) -> float:
        return self.port_rate * self.ip_efficiency


# Tegner: EDR InfiniBand (100 Gb/s ~ 12 GB/s, "theoretical bandwidth on
# Tegner is 12 GB/s" per the paper).
EDR_INFINIBAND = Interconnect(
    name="EDR InfiniBand",
    port_rate=12.0e9,
    latency=1.5e-6,
    efficiency=0.70,
    ip_efficiency=0.18,
)

# Kebnekaise: FDR InfiniBand (56 Gb/s ~ 6.8 GB/s). The low sustained
# efficiency reflects what the paper measured through TF's RDMA module on
# this fabric (STREAM saturates below 2.3 GB/s even from host memory
# staging paths) — consistent with an oversubscribed island topology.
FDR_INFINIBAND = Interconnect(
    name="FDR InfiniBand",
    port_rate=6.8e9,
    latency=1.9e-6,
    efficiency=0.33,
    ip_efficiency=0.16,
)

# Management Ethernet (what Tegner's gRPC connections resolve to).
GIGABIT_ETHERNET = Interconnect(
    name="1GbE",
    port_rate=0.125e9,
    latency=40e-6,
    efficiency=0.95,
    ip_efficiency=0.95,
)
