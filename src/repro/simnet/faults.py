"""Deterministic fault injection for the simulated cluster.

HPC jobs share nodes, networks and filesystems with other tenants;
the paper leans on TensorFlow's checkpoint-restart support precisely
because long CG solves and training runs outlive the mean time between
node failures on a busy cluster. This module makes those failures a
first-class, *replayable* part of the simulation: a :class:`FaultPlan`
lists faults at absolute simulated times, a :class:`FaultInjector`
installs them on a :class:`~repro.simnet.machines.Machine`, and every
run of the same plan on the same workload reproduces the same failure
byte for byte (message-drop sampling is driven by a seeded generator,
and the DES clock is deterministic).

Three fault classes cover the taxonomy the runtime must survive:

* :class:`WorkerCrash` — a task (job, index) dies at time T: its
  resource manager is wiped (variables, queues, RNG lanes — exactly
  what a killed process loses), registered sim processes are
  interrupted, and plan items placed on it stall until the optional
  ``restart_after`` revives the task.
* :class:`LinkDegradation` — a transient cut of a node's NIC/Ethernet
  bandwidth and/or extra per-message latency for a window of time
  (cable flap, congested leaf switch, thermal throttling of the HCA).
* :class:`MessageDrop` — individual inter-node messages vanish
  (lossy fabric, RDMA retry exhaustion); the sender observes
  :class:`~repro.errors.UnavailableError` and may retry.

Detection and recovery live elsewhere (executor deadlines, the retry
policy, checkpoint-restart drivers); this module only *creates* the
trouble, deterministically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from typing import Optional, Union

import numpy as np

from repro.errors import InvalidArgumentError, UnavailableError
from repro.simnet.events import Environment


__all__ = [
    "WorkerCrash",
    "LinkDegradation",
    "MessageDrop",
    "FaultPlan",
    "FaultInjector",
]


@dataclass(frozen=True)
class WorkerCrash:
    """Task ``/job:{job}/task:{task}`` dies at simulated time ``at``.

    ``restart_after`` seconds later (if given) the task comes back
    *empty* — exactly like a respawned process: reachable again, but
    holding none of its variables. Recovery of state is the
    application's job (restore from the latest checkpoint).
    """

    job: str
    task: int
    at: float
    restart_after: Optional[float] = None


@dataclass(frozen=True)
class LinkDegradation:
    """Transient degradation of one node's link for a time window.

    ``bandwidth_scale`` multiplies the link rate during the window
    (0.1 = a 90 % bandwidth cut); ``extra_latency`` is added to every
    inter-node message touching the node while degraded. ``link``
    selects the interconnect: ``"nic"`` (fabric HCA) or ``"eth"``
    (management Ethernet).
    """

    node: str
    at: float
    duration: float
    bandwidth_scale: float = 1.0
    extra_latency: float = 0.0
    link: str = "nic"


@dataclass(frozen=True)
class MessageDrop:
    """Inter-node messages vanish inside a time window.

    ``src``/``dst`` name nodes (None = any). At most ``count`` messages
    are dropped, each matching message independently with
    ``probability`` (sampled from the plan's seeded generator, so the
    same plan drops the same messages every run).
    """

    src: Optional[str] = None
    dst: Optional[str] = None
    after: float = 0.0
    until: float = math.inf
    count: int = 1
    probability: float = 1.0


FaultSpec = Union[WorkerCrash, LinkDegradation, MessageDrop]


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, replayable schedule of faults.

    The ``seed`` drives all stochastic decisions (message-drop
    sampling); two injectors built from equal plans inject identical
    faults against identical workloads.
    """

    faults: tuple = ()
    seed: int = 0

    def __post_init__(self):
        for spec in self.faults:
            if not isinstance(spec, (WorkerCrash, LinkDegradation, MessageDrop)):
                raise InvalidArgumentError(
                    f"Unknown fault spec {type(spec).__name__}: {spec!r}"
                )

    @classmethod
    def single_crash(cls, job: str, task: int, at: float,
                     restart_after: Optional[float] = None) -> "FaultPlan":
        """The canonical scenario: one worker dies (and maybe returns)."""
        return cls(faults=(WorkerCrash(job, task, at, restart_after),))

    @classmethod
    def random_crashes(cls, jobs: dict[str, int], horizon: float,
                       num_crashes: int = 1, seed: int = 0,
                       restart_after: Optional[float] = None) -> "FaultPlan":
        """``num_crashes`` crashes at seeded-random times in (0, horizon).

        ``jobs`` maps job name -> task count (the pool crashes are drawn
        from). Deterministic for a given seed, so tests and benchmarks
        can sweep crash rate reproducibly.
        """
        if horizon <= 0:
            raise InvalidArgumentError(f"horizon must be > 0, got {horizon}")
        rng = np.random.default_rng(seed)
        pool = [(job, t) for job, n in sorted(jobs.items()) for t in range(n)]
        if not pool:
            raise InvalidArgumentError("jobs must name at least one task")
        faults = []
        for _ in range(num_crashes):
            job, task = pool[int(rng.integers(len(pool)))]
            at = float(rng.uniform(0.05, 0.95)) * horizon
            faults.append(WorkerCrash(job, task, at, restart_after))
        return cls(faults=tuple(sorted(faults, key=lambda c: c.at)), seed=seed)


class _DropState:
    __slots__ = ("spec", "remaining")

    def __init__(self, spec: MessageDrop):
        self.spec = spec
        self.remaining = spec.count


class FaultInjector:
    """Installs a :class:`FaultPlan` onto a simulated machine.

    After :meth:`install`, the machine's ``faults`` attribute points
    here; the transports consult :meth:`on_message` per inter-node
    message and the executor consults :meth:`is_down` per dispatched
    item. ``stats`` counts what actually fired.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.env: Optional[Environment] = None
        self.machine = None
        self._rng = np.random.default_rng(plan.seed)
        self._down: set[tuple[str, int]] = set()
        self._drops: list[_DropState] = []
        # (node, link, start, end, extra_latency) latency windows.
        self._latency_windows: list[tuple[str, float, float, float]] = []
        # (job, task) -> sim processes to interrupt on crash.
        self._procs: dict[tuple[str, int], list] = {}
        self.stats = {
            "crashes": 0,
            "restarts": 0,
            "drops": 0,
            "degradations": 0,
            "delayed_messages": 0,
        }

    # -- installation ---------------------------------------------------------
    def install(self, machine) -> "FaultInjector":
        """Arm every fault of the plan on ``machine``'s calendar."""
        if self.env is not None:
            raise InvalidArgumentError("FaultInjector is already installed")
        self.env = machine.env
        self.machine = machine
        machine.faults = self
        for spec in self.plan.faults:
            if isinstance(spec, WorkerCrash):
                self._at(spec.at, lambda s=spec: self._crash(s))
            elif isinstance(spec, LinkDegradation):
                self._at(spec.at, lambda s=spec: self._degrade(s))
            else:  # MessageDrop: consulted lazily by on_message
                self._drops.append(_DropState(spec))
        return self

    def _at(self, when: float, action) -> None:
        delay = max(0.0, when - self.env.now)
        timeout = self.env.timeout(delay)
        timeout.callbacks.append(lambda _ev: action())

    # -- worker crash/restart -------------------------------------------------
    def register_worker(self, job: str, task: int, process) -> None:
        """Attach a sim process to a task: crashed tasks interrupt it."""
        self._procs.setdefault((job, task), []).append(process)

    def is_down(self, job: str, task: int) -> bool:
        return (job, task) in self._down

    def down_tasks(self) -> list[tuple[str, int]]:
        return sorted(self._down)

    def _crash(self, spec: WorkerCrash) -> None:
        key = (spec.job, spec.task)
        if key in self._down:
            return
        self._down.add(key)
        self.stats["crashes"] += 1
        self._wipe_task(spec.job, spec.task)
        for proc in self._procs.get(key, ()):  # registered app processes
            if proc.is_alive:
                proc.interrupt(cause=f"worker /job:{spec.job}/task:{spec.task} "
                                     f"crashed at t={self.env.now:g}")
        if spec.restart_after is not None:
            self._at(self.env.now + spec.restart_after,
                     lambda: self._restart(key))

    def _restart(self, key: tuple[str, int]) -> None:
        if key in self._down:
            self._down.discard(key)
            self.stats["restarts"] += 1

    def _wipe_task(self, job: str, task: int) -> None:
        """Drop the task's resource manager, as a killed process would.

        Variable memory-pool accounting entries (``__mem__*``) are freed
        before the wipe so pool occupancy stays conserved.
        """
        for server in self.machine.address_table.values():
            if server.job_name == job and server.task_index == task:
                resources = server.runtime.resources
                for name, value in list(resources.variables.items()):
                    if name.startswith("__mem__"):
                        pool, nbytes = value
                        pool.free(nbytes)
                resources.clear()

    # -- link degradation -----------------------------------------------------
    def _link_of(self, spec: LinkDegradation):
        node = self.machine.node(spec.node)
        if spec.link == "nic":
            return node.nic_link
        if spec.link == "eth":
            return node.eth_link
        raise InvalidArgumentError(
            f"Unknown link {spec.link!r}; expected 'nic' or 'eth'"
        )

    def _degrade(self, spec: LinkDegradation) -> None:
        self.stats["degradations"] += 1
        end = self.env.now + spec.duration
        if spec.bandwidth_scale != 1.0:
            if spec.bandwidth_scale <= 0:
                raise InvalidArgumentError(
                    f"bandwidth_scale must be > 0, got {spec.bandwidth_scale}"
                )
            link = self._link_of(spec)
            healthy = link.rate
            link.set_rate(healthy * spec.bandwidth_scale)
            self._at(end, lambda: link.set_rate(healthy))
        if spec.extra_latency > 0.0:
            self._latency_windows.append(
                (spec.node, self.env.now, end, spec.extra_latency)
            )

    # -- per-message hook (called by simnet.transports) -----------------------
    def on_message(self, src_node, dst_node, nbytes: int, protocol: str) -> float:
        """Consulted once per inter-node message before it hits the wire.

        Returns extra latency seconds to charge; raises
        :class:`UnavailableError` when the message is dropped.
        """
        now = self.env.now
        for drop in self._drops:
            spec = drop.spec
            if drop.remaining <= 0:
                continue
            if not (spec.after <= now <= spec.until):
                continue
            if spec.src is not None and spec.src != src_node.name:
                continue
            if spec.dst is not None and spec.dst != dst_node.name:
                continue
            if spec.probability < 1.0 and self._rng.random() >= spec.probability:
                continue
            drop.remaining -= 1
            self.stats["drops"] += 1
            raise UnavailableError(
                f"message {src_node.name} -> {dst_node.name} "
                f"({nbytes} bytes, {protocol}) dropped at t={now:g}"
            )
        extra = 0.0
        for node_name, start, end, latency in self._latency_windows:
            if start <= now <= end and node_name in (src_node.name,
                                                     dst_node.name):
                extra += latency
        if extra > 0.0:
            self.stats["delayed_messages"] += 1
        return extra

    def __repr__(self) -> str:
        return (
            f"<FaultInjector {len(self.plan.faults)} faults, "
            f"{len(self._down)} tasks down, stats={self.stats}>"
        )
