"""Host CPU models.

The host matters in two ways the paper calls out explicitly:

* serial Python/NumPy phases (the FFT merger: "the process of merging in
  Python takes considerably longer than the computation part") — charged
  through ``Cost.host_bytes`` at ``python_bytes_rate``;
* serialization for MPI/gRPC transports — the staging copies that cap MPI
  at a few hundred MB/s in Fig. 7.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simnet.events import Environment
from repro.simnet.memory import MemoryPool
from repro.simnet.resources import Resource

__all__ = ["CPUModel", "CPUDevice", "HASWELL_E5_2690V3", "BROADWELL_E5_2690V4", "GENERIC_CPU"]


@dataclass(frozen=True)
class CPUModel:
    """Static description of a host processor configuration (per node)."""

    name: str
    cores: int
    sustained_flops: float  # aggregate usable flop/s for numpy-backed math
    mem_bandwidth: float  # sustained host memory bandwidth, B/s
    mem_capacity: int  # host RAM, bytes
    memcpy_rate: float  # plain host memcpy, B/s
    serialize_rate: float  # protobuf-style serialization throughput, B/s
    python_bytes_rate: float  # interpreter-bound slicing/merge throughput, B/s
    numpy_bytes_rate: float  # single vectorized NumPy op (e.g. +=), B/s
    dispatch_overhead: float  # per-op scheduling latency, s


# Tegner: dual E5-2690v3 (2x12 cores), 512 GB.
HASWELL_E5_2690V3 = CPUModel(
    name="2xE5-2690v3",
    cores=24,
    sustained_flops=350.0e9,
    mem_bandwidth=95.0e9,
    mem_capacity=512 * 1024**3,
    memcpy_rate=9.0e9,
    serialize_rate=1.4e9,
    python_bytes_rate=0.9e9,
    numpy_bytes_rate=4.0e9,
    dispatch_overhead=25e-6,
)

# Kebnekaise: dual E5-2690v4 (2x14 cores), 128 GB.
BROADWELL_E5_2690V4 = CPUModel(
    name="2xE5-2690v4",
    cores=28,
    sustained_flops=420.0e9,
    mem_bandwidth=110.0e9,
    mem_capacity=128 * 1024**3,
    memcpy_rate=10.0e9,
    serialize_rate=1.5e9,
    python_bytes_rate=0.9e9,
    numpy_bytes_rate=4.5e9,
    dispatch_overhead=25e-6,
)

GENERIC_CPU = CPUModel(
    name="generic-cpu",
    cores=8,
    sustained_flops=150.0e9,
    mem_bandwidth=50.0e9,
    mem_capacity=32 * 1024**3,
    memcpy_rate=8.0e9,
    serialize_rate=1.5e9,
    python_bytes_rate=1.0e9,
    numpy_bytes_rate=4.0e9,
    dispatch_overhead=10e-6,
)


class CPUDevice:
    """The host processor of one node, viewed as an execution device.

    Capacity equals the core count so independent ops overlap, while each
    op's execution time assumes it uses a proportional slice of the chip
    (coarse but adequate: the paper's kernels are GPU-bound).
    """

    def __init__(self, env: Environment, model: CPUModel, node, numa_island: int = 0):
        self.env = env
        self.model = model
        self.node = node
        self.index = 0
        self.numa_island = numa_island
        self.device_type = "cpu"
        self.resource = Resource(env, capacity=model.cores, name=f"{node.name}/cpu:0")
        self.memory = MemoryPool(model.mem_capacity, name=f"{node.name}/host-mem")

    def time_for_cost(self, cost, op_type: str, double_precision: bool) -> float:
        seconds = self.model.dispatch_overhead
        per_op_flops = self.model.sustained_flops / self.model.cores
        compute = cost.flops / per_op_flops if cost.flops > 0 else 0.0
        memory = cost.mem_bytes / self.model.mem_bandwidth if cost.mem_bytes > 0 else 0.0
        host = cost.host_bytes / self.model.python_bytes_rate if cost.host_bytes > 0 else 0.0
        return seconds + max(compute, memory) + host

    def __repr__(self) -> str:
        return f"<CPUDevice {self.model.name} {self.node.name}/cpu:0>"
