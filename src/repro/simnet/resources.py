"""Shared resources for the DES kernel.

Three primitives cover everything the runtime needs:

* :class:`Resource` — a counted FIFO resource (GPU compute stream = capacity
  1, CPU with N usable cores = capacity N).
* :class:`Store` — a blocking FIFO buffer of items (the basis of simulated
  TensorFlow ``FIFOQueue``\\ s and RPC inboxes).
* :class:`BandwidthLink` — a *processor-sharing* link: ``k`` concurrent
  transfers each progress at ``rate / k``. This is what creates the NUMA /
  I/O contention behaviour the paper observes on Kebnekaise (Fig. 9).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from repro.simnet.events import Environment, Event


__all__ = ["Resource", "Store", "BandwidthLink", "Request"]


class Request(Event):
    """A pending claim on a :class:`Resource` slot."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource


class Resource:
    """A counted resource with FIFO granting order."""

    def __init__(self, env: Environment, capacity: int = 1, name: str = "resource"):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._users: set[Request] = set()
        self._waiters: deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def request(self) -> Request:
        """Claim a slot; the returned event succeeds once granted."""
        req = Request(self)
        if len(self._users) < self.capacity:
            self._users.add(req)
            req.succeed(req)
        else:
            self._waiters.append(req)
        return req

    def try_acquire(self) -> Optional[Request]:
        """Grant a slot immediately, or return ``None`` if all are taken.

        Equivalent to :meth:`request` when a slot is free, but the
        returned request is already processed — no calendar event is
        scheduled, so callers on a synchronous fast path pay nothing.
        ``release`` works on it as usual.
        """
        if len(self._users) >= self.capacity:
            return None
        req = Request(self)
        req._ok = True
        req._value = req
        req._processed = True
        req.callbacks = None  # processed: nothing can wait on it
        self._users.add(req)
        return req

    def release(self, request: Request) -> None:
        """Return a previously granted slot."""
        if request in self._users:
            self._users.remove(request)
        elif request in self._waiters:
            # Cancelling a never-granted claim.
            self._waiters.remove(request)
            return
        else:
            raise RuntimeError(f"{self.name}: releasing a slot that was never granted")
        while self._waiters and len(self._users) < self.capacity:
            nxt = self._waiters.popleft()
            self._users.add(nxt)
            nxt.succeed(nxt)

    def use(self, duration: float):
        """Convenience process body: hold one slot for ``duration`` seconds."""
        req = self.request()
        yield req
        try:
            yield self.env.timeout(duration)
        finally:
            self.release(req)


class Store:
    """A blocking FIFO buffer with optional capacity.

    ``put`` returns an event that succeeds when the item has been accepted;
    ``get`` returns an event that succeeds with the oldest item. FIFO order
    holds for both items and waiters.
    """

    def __init__(self, env: Environment, capacity: float = float("inf"), name: str = "store"):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self.items: deque[Any] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()
        self._getters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self.items)

    @property
    def put_queue_length(self) -> int:
        return len(self._putters)

    @property
    def get_queue_length(self) -> int:
        return len(self._getters)

    def put(self, item: Any) -> Event:
        event = Event(self.env)
        self._putters.append((event, item))
        self._dispatch()
        return event

    def get(self) -> Event:
        event = Event(self.env)
        self._getters.append(event)
        self._dispatch()
        return event

    def try_put(self, item: Any) -> bool:
        """Accept ``item`` synchronously, or return False if it would wait.

        FIFO-fair: refuses while earlier putters queue. Waiting getters
        are served immediately, exactly as an event-based put would.
        """
        if self._putters or len(self.items) >= self.capacity:
            return False
        self.items.append(item)
        self._dispatch()  # serve any blocked getters
        return True

    def try_get(self):
        """``(True, item)`` if available synchronously, else ``(False, None)``.

        FIFO-fair: refuses while earlier getters queue.
        """
        if self._getters or not self.items:
            return False, None
        item = self.items.popleft()
        self._dispatch()  # accept any blocked putters into the free slot
        return True, item

    def _dispatch(self) -> None:
        # Accept puts while there is room.
        while self._putters and len(self.items) < self.capacity:
            put_event, item = self._putters.popleft()
            if put_event.triggered:  # cancelled externally
                continue
            self.items.append(item)
            put_event.succeed()
        # Serve gets while there are items.
        while self._getters and self.items:
            get_event = self._getters.popleft()
            if get_event.triggered:
                continue
            get_event.succeed(self.items.popleft())
        # Serving gets may have freed room for more puts.
        while self._putters and len(self.items) < self.capacity:
            put_event, item = self._putters.popleft()
            if put_event.triggered:
                continue
            self.items.append(item)
            put_event.succeed()
            while self._getters and self.items:
                get_event = self._getters.popleft()
                if get_event.triggered:
                    continue
                get_event.succeed(self.items.popleft())

    def cancel(self, event: Event, error: BaseException) -> None:
        """Fail a pending put/get (queue close / cancellation semantics)."""
        if event.triggered:
            return
        self._getters = deque(e for e in self._getters if e is not event)
        self._putters = deque((e, i) for (e, i) in self._putters if e is not event)
        event.fail(error)

    def fail_all_waiters(self, error_factory) -> None:
        """Fail every pending get/put, e.g. when a queue is closed."""
        getters, self._getters = self._getters, deque()
        putters, self._putters = self._putters, deque()
        for ev in getters:
            if not ev.triggered:
                ev.fail(error_factory())
        for ev, _ in putters:
            if not ev.triggered:
                ev.fail(error_factory())


class _Flow:
    __slots__ = ("remaining", "event", "nbytes")

    def __init__(self, nbytes: float, event: Event):
        self.nbytes = nbytes
        self.remaining = float(nbytes)
        self.event = event


class BandwidthLink:
    """A fair-share (processor-sharing) bandwidth resource.

    With ``k`` active transfers each progresses at ``rate / k`` bytes/s.
    Whenever the active set changes, all flows' progress is brought up to
    date and the next completion is (re)scheduled. Stale wake-ups are
    filtered through a generation token.

    Bytes are conserved exactly: the integral of per-flow rate over time
    equals the flow's size at completion.
    """

    def __init__(self, env: Environment, rate: float, name: str = "link"):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.env = env
        self.rate = float(rate)
        self.name = name
        self._flows: list[_Flow] = []
        self._last_update = env.now
        self._generation = 0
        self.bytes_moved = 0.0  # lifetime accounting, for utilisation reports

    @property
    def active_transfers(self) -> int:
        return len(self._flows)

    def current_rate_per_flow(self) -> float:
        return self.rate / len(self._flows) if self._flows else self.rate

    def set_rate(self, rate: float) -> None:
        """Change the link rate mid-simulation (fault injection).

        In-flight flows are credited their progress at the old rate up
        to now, then continue at the new rate; completions are
        rescheduled accordingly.
        """
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self._advance()
        self.rate = float(rate)
        self._reschedule()

    def transfer(self, nbytes: float) -> Event:
        """Start a transfer; the event succeeds when the last byte arrives."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        event = Event(self.env)
        if nbytes == 0:
            event.succeed(0.0)
            return event
        self._advance()
        self._flows.append(_Flow(nbytes, event))
        self._reschedule()
        return event

    # -- internals ------------------------------------------------------------
    def _advance(self) -> None:
        """Credit progress to all active flows up to ``env.now``."""
        now = self.env.now
        dt = now - self._last_update
        self._last_update = now
        if dt <= 0 or not self._flows:
            return
        per_flow = self.rate / len(self._flows)
        credit = per_flow * dt
        for flow in self._flows:
            flow.remaining -= credit
        self.bytes_moved += credit * len(self._flows)

    def _reschedule(self) -> None:
        """Schedule a wake-up at the earliest projected completion."""
        self._generation += 1
        if not self._flows:
            return
        per_flow = self.rate / len(self._flows)
        min_remaining = min(f.remaining for f in self._flows)
        delay = max(min_remaining, 0.0) / per_flow
        token = self._generation
        timeout = self.env.timeout(delay)
        timeout.callbacks.append(lambda _ev, tok=token: self._on_wake(tok))

    def _on_wake(self, token: int) -> None:
        if token != self._generation:
            return  # superseded by a newer schedule
        self._advance()
        # This wake targets the projected completion of the flow that had
        # the least remaining bytes; floating-point drift can leave a sub-
        # byte residue (and a naive epsilon test would then re-schedule a
        # zero-length timeout forever). Completing every flow within a
        # sub-byte band of the minimum guarantees progress each wake.
        min_remaining = min(f.remaining for f in self._flows)
        threshold = min_remaining + 1e-6
        finished = [f for f in self._flows if f.remaining <= threshold]
        self._flows = [f for f in self._flows if f.remaining > threshold]
        for flow in finished:
            # Absorb accumulated floating error into the accounting.
            self.bytes_moved -= flow.remaining
            flow.event.succeed(flow.nbytes)
        self._reschedule()
