"""A deterministic discrete-event simulation kernel.

The kernel follows the SimPy model: *processes* are Python generators that
``yield`` *events*; the :class:`Environment` owns a virtual clock and an
event calendar. Determinism is guaranteed by breaking ties on
``(time, priority, sequence_number)`` so repeated runs of the same program
produce identical schedules — essential for reproducible benchmarks.

Only the features the runtime needs are implemented: timeouts, generic
events, process events, ``AllOf``/``AnyOf`` conditions and interrupts.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "URGENT",
    "NORMAL",
]

# Scheduling priorities: URGENT is used for propagating already-triggered
# events (zero logical delay), NORMAL for timeouts and fresh work.
URGENT = 0
NORMAL = 1

_PENDING = object()  # sentinel: event value not yet decided


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    @property
    def cause(self):
        return self.args[0] if self.args else None


class Event:
    """An occurrence at a point in simulated time.

    An event goes through three states: *pending* (created), *triggered*
    (value decided, sitting in the calendar) and *processed* (callbacks run).
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused", "_processed")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        self._defused = False
        self._processed = False

    # -- state inspection ---------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        if not self.triggered:
            raise RuntimeError("Event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise RuntimeError("Event value not yet available")
        return self._value

    # -- triggering -----------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self, URGENT)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env._schedule(self, URGENT)
        return self

    def defused(self) -> "Event":
        """Mark a failed event as handled so the kernel will not re-raise."""
        self._defused = True
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed" if self._processed else "triggered" if self.triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers ``delay`` seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"Negative delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, NORMAL, delay)


class Initialize(Event):
    """Internal event that starts a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self.callbacks = [process._resume]
        self._ok = True
        self._value = None
        env._schedule(self, URGENT)


class Process(Event):
    """A running generator; also an event that fires when it returns.

    The process event's value is the generator's return value; if the
    generator raises, the process event fails with that exception.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env: "Environment", generator: Generator, name: str | None = None):
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        return self._value is _PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting for."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise RuntimeError(f"{self.name} has terminated; cannot interrupt")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        event.callbacks = [self._resume]
        self.env._schedule(event, URGENT)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        self.env._active_process = self
        while True:
            # Detach from the event that woke us.
            if self._target is not None and self._target.callbacks is not None:
                try:
                    self._target.callbacks.remove(self._resume)
                except ValueError:
                    pass
            self._target = None
            try:
                if event._ok:
                    next_target = self._generator.send(event._value)
                else:
                    # The event failed: throw into the generator so it can
                    # handle (or propagate) the failure.
                    event._defused = True
                    next_target = self._generator.throw(event._value)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                self.env._schedule(self, URGENT)
                break
            except BaseException as exc:
                self._ok = False
                self._value = exc
                self.env._schedule(self, URGENT)
                break

            if not isinstance(next_target, Event):
                exc = RuntimeError(
                    f"Process {self.name!r} yielded a non-event: {next_target!r}"
                )
                event = Event(self.env)
                event._ok = False
                event._value = exc
                event._defused = True
                continue
            if next_target.env is not self.env:
                raise RuntimeError("Cannot wait for an event from another environment")

            if next_target.callbacks is None:
                # Already processed: loop immediately with its outcome.
                event = next_target
                self._target = next_target
                continue
            next_target.callbacks.append(self._resume)
            self._target = next_target
            break
        self.env._active_process = None


class Condition(Event):
    """Waits for a quorum of child events (basis of AllOf / AnyOf)."""

    __slots__ = ("_events", "_count_needed", "_count_done")

    def __init__(self, env: "Environment", events: Iterable[Event], need_all: bool):
        super().__init__(env)
        self._events = list(events)
        for ev in self._events:
            if ev.env is not env:
                raise RuntimeError("Conditions span a single environment")
        self._count_needed = len(self._events) if need_all else min(1, len(self._events))
        self._count_done = 0
        if self._count_needed == 0:
            self.succeed(self._collect())
            return
        for ev in self._events:
            if ev.callbacks is None:  # already processed
                self._check(ev)
                if self.triggered:
                    break
            else:
                ev.callbacks.append(self._check)

    def _collect(self) -> dict[Event, Any]:
        # Only *processed* events count: Timeouts carry their value from
        # creation, so `triggered` alone would leak future outcomes.
        return {
            ev: ev._value
            for ev in self._events
            if ev.triggered and ev._ok and ev.callbacks is None
        }

    def _check(self, event: Event) -> None:
        if not event._ok:
            # Always defuse: a child failing after the condition has already
            # triggered (e.g. a cascade of dependent process failures) must
            # not crash the simulation loop.
            event._defused = True
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._count_done += 1
        if self._count_done >= self._count_needed:
            self.succeed(self._collect())


class AllOf(Condition):
    """Triggers once every child event has triggered successfully."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, events, need_all=True)


class AnyOf(Condition):
    """Triggers as soon as any child event triggers."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, events, need_all=False)


class Environment:
    """Execution environment: virtual clock plus event calendar."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None

    # -- clock ---------------------------------------------------------------
    @property
    def now(self) -> float:
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- event construction ----------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def timeout_at(self, time: float, value: Any = None) -> Event:
        """An event that fires at absolute simulated ``time`` (>= now).

        Like :meth:`timeout`, but the fire time is given exactly instead
        of as ``now + delay``: a caller replaying a chain of float
        additions (the compiled executor lane collapsing per-op timeouts
        into one event) lands on the bit-identical timestamp the
        individual timeouts would have reached, which ``now + (time -
        now)`` does not guarantee.
        """
        if time < self._now:
            raise ValueError(f"timeout_at into the past: {time} < {self._now}")
        event = Event(self)
        event._ok = True
        event._value = value
        self._seq += 1
        heapq.heappush(self._queue, (time, NORMAL, self._seq, event))
        return event

    def process(self, generator: Generator, name: str | None = None) -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling -----------------------------------------------------------
    def _schedule(self, event: Event, priority: int, delay: float = 0.0) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event (``inf`` when drained)."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        if not self._queue:
            raise RuntimeError("No scheduled events")
        self._now, _, _, event = heapq.heappop(self._queue)
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        event._processed = True
        if not event._ok and not event._defused:
            # Nobody handled the failure: surface it to the caller of run().
            exc = event._value
            raise exc

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        Args:
            until: ``None`` drains the calendar; a number runs until the
                clock reaches that time; an :class:`Event` runs until the
                event is processed and returns its value.
        """
        if until is None:
            while self._queue:
                self.step()
            return None
        if isinstance(until, Event):
            sentinel = until
            while not sentinel.processed:
                if not self._queue:
                    raise RuntimeError(
                        f"Simulation drained before {sentinel!r} triggered (deadlock?)"
                    )
                self.step()
            if not sentinel._ok:
                raise sentinel._value
            return sentinel._value
        horizon = float(until)
        if horizon < self._now:
            raise ValueError(f"until={horizon} lies in the past (now={self._now})")
        while self._queue and self._queue[0][0] <= horizon:
            self.step()
        self._now = horizon
        return None
