"""Simulated parallel filesystem (Lustre).

Files are ``.npy``-style arrays living in machine-wide storage. Reads and
writes move bytes across the filesystem's aggregate link *and* the calling
node's NIC (Lustre traffic rides the same fabric), so many co-located
instances pulling tiles contend exactly where the paper's Kebnekaise runs
did.

Files can be stored *concrete* (real ndarray) or *declared* (metadata
only) — declared files support paper-scale problems in shape-only mode.
"""

from __future__ import annotations

from typing import Iterator, Optional, Union

import numpy as np

from repro.core.tensor import SymbolicValue
from repro.errors import AlreadyExistsError, NotFoundError
from repro.simnet.events import AllOf, Environment
from repro.simnet.resources import BandwidthLink

__all__ = ["SimFileSystem"]


class SimFileSystem:
    """Machine-wide shared store of named arrays."""

    def __init__(self, env: Environment, aggregate_rate: float,
                 name: str = "lustre", client_rate: Optional[float] = None):
        self.env = env
        self.name = name
        self.link = BandwidthLink(env, aggregate_rate, name=f"{name}/ost")
        # A single client stream cannot saturate the filesystem: np.load
        # over Lustre tops out well below the fabric (striping, request
        # pipelining, the Python read path). Modelled as a per-read cap.
        self.client_rate = client_rate if client_rate is not None else aggregate_rate
        self._files: dict[str, Union[np.ndarray, SymbolicValue]] = {}
        self.bytes_read = 0
        self.bytes_written = 0

    # -- setup-time API (no simulated time) -----------------------------------
    def store_array(self, path: str, array: np.ndarray, overwrite: bool = True) -> None:
        """Place a concrete array into the filesystem (pre-processing step)."""
        if not overwrite and path in self._files:
            raise AlreadyExistsError(f"File {path!r} already exists")
        arr = np.asarray(array)
        arr.setflags(write=False)
        self._files[path] = arr

    def declare_file(self, path: str, shape, dtype, overwrite: bool = True) -> None:
        """Register a file by metadata only (paper-scale shape-only runs)."""
        if not overwrite and path in self._files:
            raise AlreadyExistsError(f"File {path!r} already exists")
        self._files[path] = SymbolicValue(shape, dtype)

    def exists(self, path: str) -> bool:
        return path in self._files

    def listdir(self, prefix: str = "") -> list[str]:
        return sorted(p for p in self._files if p.startswith(prefix))

    def stat(self, path: str) -> SymbolicValue:
        value = self._lookup(path)
        return SymbolicValue.of(value)

    def get_array(self, path: str) -> np.ndarray:
        """Direct concrete access (testing / final validation)."""
        value = self._lookup(path)
        if isinstance(value, SymbolicValue):
            raise NotFoundError(f"File {path!r} is declared metadata-only")
        return value

    def delete(self, path: str) -> None:
        self._lookup(path)
        del self._files[path]

    def _lookup(self, path: str):
        try:
            return self._files[path]
        except KeyError:
            raise NotFoundError(f"No such file: {path!r}") from None

    # -- simulated-time API ------------------------------------------------------
    def read(self, path: str, node, symbolic: bool = False) -> Iterator:
        """Generator: move the file to ``node`` and return its contents."""
        value = self._lookup(path)
        spec = SymbolicValue.of(value)
        yield from self._move(spec.nbytes, node)
        self.bytes_read += spec.nbytes
        if symbolic or isinstance(value, SymbolicValue):
            return spec
        return value

    def write(self, path: str, value, node) -> Iterator:
        """Generator: move ``value`` from ``node`` to storage and persist it."""
        spec = SymbolicValue.of(value)
        yield from self._move(spec.nbytes, node)
        self.bytes_written += spec.nbytes
        if isinstance(value, SymbolicValue):
            self._files[path] = spec
        else:
            arr = np.asarray(value).copy()
            arr.setflags(write=False)
            self._files[path] = arr
        return None

    def _move(self, nbytes: int, node) -> Iterator:
        """Occupy the OST link, the node NIC, and the per-stream cap."""
        if nbytes == 0:
            return
        events = [
            self.link.transfer(nbytes),
            self.env.timeout(nbytes / self.client_rate),
        ]
        if node is not None:
            events.append(node.nic_link.transfer(nbytes))
        yield AllOf(self.env, events)
