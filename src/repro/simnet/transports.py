"""Tensor transport models: gRPC, MPI and InfiniBand-verbs RDMA.

The three protocols differ exactly where the paper says they do
(Section VI-A):

* **RDMA (verbs)** — zero-copy pipelined: the GPU staging hop, NIC hops
  and (if needed) inter-socket hop are occupied *concurrently*; throughput
  is set by the slowest hop. Host-memory tensors on Tegner therefore reach
  >6 GB/s (>50 % of EDR's 12 GB/s); GPU tensors saturate at the PCIe
  staging rate (≈1.3 GB/s on K420, ≈2.3 GB/s on Kebnekaise's K80s).
* **MPI** — the TF MPI module's default path: tensors are copied off the
  GPU and serialized to host memory *before* transfer (no GPUDirect), so
  the phases add up store-and-forward style and throughput plateaus in the
  hundreds of MB/s.
* **gRPC** — like MPI but with protobuf framing, and the connection
  resolves over whatever network the hostname maps to: management Ethernet
  on Tegner (hence the paper's "lowest bandwidth"), IPoIB on Kebnekaise
  (hence "similar bandwidth to that of MPI").
"""

from __future__ import annotations

from typing import Iterator


from repro.errors import InvalidArgumentError
from repro.simnet.events import AllOf, Environment

__all__ = [
    "DATA_PROTOCOLS",
    "SERVER_PROTOCOLS",
    "data_protocol",
    "transfer",
    "protocol_latency",
]

# Server-level protocol strings follow TF's naming.
SERVER_PROTOCOLS = ("grpc", "grpc+mpi", "grpc+verbs")
DATA_PROTOCOLS = ("grpc", "mpi", "rdma")

# Per-message protocol overheads (handshakes, rendezvous, framing).
_PROTOCOL_LATENCY = {
    "rdma": 6e-6,
    "mpi": 25e-6,
    "grpc": 120e-6,
}

# gRPC spends extra CPU on protobuf framing relative to MPI's packing.
_GRPC_SERIALIZE_DERATE = 0.75


def data_protocol(server_protocol: str) -> str:
    """Map a TF server protocol to the bulk-data protocol it uses."""
    if server_protocol not in SERVER_PROTOCOLS:
        raise InvalidArgumentError(
            f"Unknown server protocol {server_protocol!r}; "
            f"expected one of {SERVER_PROTOCOLS}"
        )
    return {"grpc": "grpc", "grpc+mpi": "mpi", "grpc+verbs": "rdma"}[server_protocol]


def protocol_latency(protocol: str) -> float:
    try:
        return _PROTOCOL_LATENCY[protocol]
    except KeyError:
        raise InvalidArgumentError(f"Unknown protocol {protocol!r}") from None


def _is_gpu(device) -> bool:
    return getattr(device, "device_type", "cpu") == "gpu"


def _same_node(a, b) -> bool:
    return a.node is b.node


def transfer(src_device, dst_device, nbytes: int, protocol: str = "rdma") -> Iterator:
    """Generator moving ``nbytes`` from ``src_device`` to ``dst_device``.

    Drives the appropriate links of the simulated machine; completes when
    the last byte lands. Within a node the protocol is irrelevant (TF uses
    direct DMA locally); across nodes the protocol chooses the path.
    """
    if protocol not in DATA_PROTOCOLS:
        raise InvalidArgumentError(
            f"Unknown data protocol {protocol!r}; expected one of {DATA_PROTOCOLS}"
        )
    if nbytes < 0:
        raise InvalidArgumentError(f"negative transfer size: {nbytes}")
    env: Environment = src_device.env
    if src_device is dst_device or nbytes == 0:
        return
    if _same_node(src_device, dst_device):
        yield from _local_transfer(env, src_device, dst_device, nbytes)
        return
    # Inter-node messages pass through the machine's fault injector (if
    # one is installed): drops raise UnavailableError on the sender,
    # degraded links charge extra latency before the wire.
    faults = getattr(src_device.node.machine, "faults", None)
    if faults is not None:
        extra = faults.on_message(src_device.node, dst_device.node, nbytes,
                                  protocol)
        if extra > 0.0:
            yield env.timeout(extra)
    if protocol == "rdma":
        yield from _rdma_transfer(env, src_device, dst_device, nbytes)
    elif protocol == "mpi":
        yield from _staged_transfer(env, src_device, dst_device, nbytes,
                                    serialize_derate=1.0, latency_key="mpi",
                                    use_ip=False)
    else:
        yield from _staged_transfer(env, src_device, dst_device, nbytes,
                                    serialize_derate=_GRPC_SERIALIZE_DERATE,
                                    latency_key="grpc", use_ip=True)


def _all_hops(env: Environment, events: list):
    """Wait-all over concurrent hops, skipping the AllOf for one hop."""
    return events[0] if len(events) == 1 else AllOf(env, events)


def _local_transfer(env: Environment, src, dst, nbytes: int) -> Iterator:
    """Same-node movement: PCIe staging and/or host memcpy."""
    events = []
    if _is_gpu(src):
        events.append(src.pcie_link.transfer(nbytes))
    if _is_gpu(dst):
        events.append(dst.pcie_link.transfer(nbytes))
    if not events:
        # Host-to-host copy within the node.
        yield env.timeout(nbytes / src.node.cpu.model.memcpy_rate)
        return
    yield _all_hops(env, events)


def _socket_hop(node, device, nbytes: int):
    """Inter-socket transfer event when the device sits on the far island."""
    if node.crosses_socket(device):
        return node.intersocket_link.transfer(nbytes)
    return None


def _rdma_transfer(env: Environment, src, dst, nbytes: int) -> Iterator:
    """Pipelined verbs path: all hops occupied concurrently."""
    src_node, dst_node = src.node, dst.node
    fabric_latency = src_node.machine.fabric.latency
    yield env.timeout(protocol_latency("rdma") + fabric_latency)
    events = [
        src_node.nic_link.transfer(nbytes),
        dst_node.nic_link.transfer(nbytes),
    ]
    # Without GPUDirect RDMA (not supported on either platform, per the
    # paper) GPU tensors stage through pinned host memory at PCIe rate.
    if _is_gpu(src):
        events.append(src.pcie_link.transfer(nbytes))
        hop = _socket_hop(src_node, src, nbytes)
        if hop is not None:
            events.append(hop)
    if _is_gpu(dst):
        events.append(dst.pcie_link.transfer(nbytes))
        hop = _socket_hop(dst_node, dst, nbytes)
        if hop is not None:
            events.append(hop)
    yield AllOf(env, events)


def _staged_transfer(env: Environment, src, dst, nbytes: int,
                     serialize_derate: float, latency_key: str,
                     use_ip: bool) -> Iterator:
    """Store-and-forward path: D2H, serialize, send, deserialize, H2D."""
    src_node, dst_node = src.node, dst.node
    machine = src_node.machine
    yield env.timeout(protocol_latency(latency_key) + machine.fabric.latency)
    # Phase 1: copy the tensor off the device into host memory.
    if _is_gpu(src):
        events = [src.pcie_link.transfer(nbytes)]
        hop = _socket_hop(src_node, src, nbytes)
        if hop is not None:
            events.append(hop)
        yield _all_hops(env, events)
    # Phase 2: serialize into the wire format on the host CPU.
    serialize_rate = src_node.cpu.model.serialize_rate * serialize_derate
    yield env.timeout(nbytes / serialize_rate)
    # Phase 3: the wire. gRPC rides whatever the hostname resolves to.
    if use_ip and machine.grpc_over_ethernet:
        yield AllOf(env, [
            src_node.eth_link.transfer(nbytes),
            dst_node.eth_link.transfer(nbytes),
        ])
    else:
        rate_scale = 1.0
        if use_ip:
            # IPoIB: same NIC, lower sustained rate. Occupancy is scaled so
            # the fair-share link yields ip_rate for this flow.
            rate_scale = machine.fabric.effective_rate / machine.fabric.ip_rate
        scaled = nbytes * rate_scale
        yield AllOf(env, [
            src_node.nic_link.transfer(scaled),
            dst_node.nic_link.transfer(scaled),
        ])
    # Phase 4: deserialize on the receiving host.
    deserialize_rate = dst_node.cpu.model.serialize_rate * serialize_derate
    yield env.timeout(nbytes / deserialize_rate)
    # Phase 5: copy up to the destination device.
    if _is_gpu(dst):
        events = [dst.pcie_link.transfer(nbytes)]
        hop = _socket_hop(dst_node, dst, nbytes)
        if hop is not None:
            events.append(hop)
        yield _all_hops(env, events)
