"""Machine catalogs: the paper's two evaluation systems plus a localhost.

The catalogs encode Section V and Table I of the paper:

========== ============ =========== ==================== =================
Machine    Node type    GPUs/node   TF instances/node    GPU exposed/inst.
========== ============ =========== ==================== =================
Tegner     K420         1 K420      1                    1 K420 (1 GB)
Tegner     K80          1 K80 board 2                    1 GK210 (12 GB)
Kebnekaise K80          2 K80 board 4                    1 GK210 (12 GB)
Kebnekaise V100         2 V100      2                    1 V100 (16 GB)
========== ============ =========== ==================== =================
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import InvalidArgumentError, NotFoundError
from repro.simnet.cpu import (
    BROADWELL_E5_2690V4,
    GENERIC_CPU,
    HASWELL_E5_2690V3,
    CPUModel,
)
from repro.simnet.events import Environment
from repro.simnet.filesystem import SimFileSystem
from repro.simnet.gpu import GENERIC_GPU, K420, K80_GK210, V100, GPUModel
from repro.simnet.network import (
    EDR_INFINIBAND,
    FDR_INFINIBAND,
    GIGABIT_ETHERNET,
    Interconnect,
)
from repro.simnet.node import Node

__all__ = [
    "Machine",
    "NODE_TYPES",
    "instances_per_node",
    "tegner",
    "kebnekaise",
    "localhost",
]

# Table I: TF instances per node, per node type.
NODE_TYPES = {
    "tegner-k420": {"instances": 1, "gpus": 1, "gpu_model": K420},
    "tegner-k80": {"instances": 2, "gpus": 2, "gpu_model": K80_GK210},
    "kebnekaise-k80": {"instances": 4, "gpus": 4, "gpu_model": K80_GK210},
    "kebnekaise-v100": {"instances": 2, "gpus": 2, "gpu_model": V100},
    "localhost": {"instances": 1, "gpus": 1, "gpu_model": GENERIC_GPU},
}


def instances_per_node(node_type: str) -> int:
    """How many TensorFlow instances the paper runs per node of this type."""
    try:
        return NODE_TYPES[node_type]["instances"]
    except KeyError:
        raise InvalidArgumentError(f"Unknown node type {node_type!r}") from None


class Machine:
    """A simulated cluster: nodes, fabric, parallel filesystem, servers."""

    def __init__(
        self,
        env: Environment,
        name: str,
        fabric: Interconnect,
        ethernet: Interconnect = GIGABIT_ETHERNET,
        lustre_rate: float = 16.0e9,
        lustre_client_rate: float = 1.0e9,
        grpc_over_ethernet: bool = False,
        default_protocol: str = "grpc+verbs",
    ):
        self.env = env
        self.name = name
        self.fabric = fabric
        self.ethernet = ethernet
        self.grpc_over_ethernet = grpc_over_ethernet
        self.default_protocol = default_protocol
        self.filesystem = SimFileSystem(
            env, lustre_rate, name=f"{name}/lustre",
            client_rate=lustre_client_rate,
        )
        self.nodes: dict[str, Node] = {}
        # host:port -> Server (populated by repro.runtime.server.Server).
        self.address_table: dict[str, object] = {}
        # Set by FaultInjector.install(); transports and the executor
        # consult it when present.
        self.faults = None

    # -- construction ----------------------------------------------------------
    def add_node(
        self,
        name: str,
        cpu_model: CPUModel,
        gpu_models: Sequence[GPUModel] = (),
        gpu_numa: Optional[Sequence[int]] = None,
        nic_numa: int = 0,
        node_type: str = "localhost",
    ) -> Node:
        if name in self.nodes:
            raise InvalidArgumentError(f"Duplicate node name {name!r}")
        node = Node(
            self.env,
            name,
            machine=self,
            cpu_model=cpu_model,
            gpu_models=gpu_models,
            gpu_numa=gpu_numa,
            nic_numa=nic_numa,
        )
        node.node_type = node_type
        self.nodes[name] = node
        return node

    # -- lookup ----------------------------------------------------------------
    def node(self, name: str) -> Node:
        try:
            return self.nodes[name]
        except KeyError:
            raise NotFoundError(f"No node named {name!r} on {self.name}") from None

    def node_names(self) -> list[str]:
        return sorted(self.nodes)

    def register_server(self, address: str, server) -> None:
        if address in self.address_table:
            raise InvalidArgumentError(f"Address {address!r} already bound")
        self.address_table[address] = server

    def resolve(self, address: str):
        try:
            return self.address_table[address]
        except KeyError:
            raise NotFoundError(
                f"No server listening on {address!r} (known: "
                f"{sorted(self.address_table)})"
            ) from None

    def __repr__(self) -> str:
        return f"<Machine {self.name}: {len(self.nodes)} nodes, {self.fabric.name}>"


def tegner(env: Environment, k420_nodes: int = 0, k80_nodes: int = 0) -> Machine:
    """PDC's Tegner: Haswell nodes, EDR InfiniBand, Ethernet-resolved gRPC."""
    machine = Machine(
        env,
        name="tegner",
        fabric=EDR_INFINIBAND,
        grpc_over_ethernet=True,  # paper: "gRPC connection is resolved to
        # communicate through Ethernet" on Tegner
        lustre_rate=20.0e9,
        lustre_client_rate=1.1e9,
    )
    index = 1
    for _ in range(k420_nodes):
        machine.add_node(
            f"t01n{index:02d}",
            cpu_model=HASWELL_E5_2690V3,
            gpu_models=[K420],
            gpu_numa=[0],
            nic_numa=0,
            node_type="tegner-k420",
        )
        index += 1
    for _ in range(k80_nodes):
        # One K80 board = two GK210 engines behind one PCIe slot on socket 0.
        machine.add_node(
            f"t01n{index:02d}",
            cpu_model=HASWELL_E5_2690V3,
            gpu_models=[K80_GK210, K80_GK210],
            gpu_numa=[0, 0],
            nic_numa=0,
            node_type="tegner-k80",
        )
        index += 1
    return machine


def kebnekaise(env: Environment, k80_nodes: int = 0, v100_nodes: int = 0) -> Machine:
    """HPC2N's Kebnekaise: Broadwell nodes, FDR InfiniBand, NUMA-split GPUs."""
    machine = Machine(
        env,
        name="kebnekaise",
        fabric=FDR_INFINIBAND,
        grpc_over_ethernet=False,  # gRPC ~ MPI bandwidth => IPoIB
        lustre_rate=16.0e9,
        lustre_client_rate=1.0e9,
    )
    index = 1
    for _ in range(k80_nodes):
        # Fig. 9: two K80 boards on two NUMA islands; NIC + I/O on island 0.
        machine.add_node(
            f"b-cn{index:04d}",
            cpu_model=BROADWELL_E5_2690V4,
            gpu_models=[K80_GK210] * 4,
            gpu_numa=[0, 0, 1, 1],
            nic_numa=0,
            node_type="kebnekaise-k80",
        )
        index += 1
    for _ in range(v100_nodes):
        machine.add_node(
            f"b-cn{index:04d}",
            cpu_model=BROADWELL_E5_2690V4,
            gpu_models=[V100, V100],
            gpu_numa=[0, 1],
            nic_numa=0,
            node_type="kebnekaise-v100",
        )
        index += 1
    return machine


def localhost(env: Environment, num_gpus: int = 1,
              gpu_model: GPUModel = GENERIC_GPU,
              cpu_model: CPUModel = GENERIC_CPU) -> Machine:
    """A single-node machine backing plain local sessions."""
    machine = Machine(
        env,
        name="localhost",
        fabric=GIGABIT_ETHERNET,
        lustre_rate=2.0e9,
        lustre_client_rate=2.0e9,
    )
    machine.add_node(
        "localhost",
        cpu_model=cpu_model,
        gpu_models=[gpu_model] * num_gpus,
        gpu_numa=[0] * num_gpus,
        nic_numa=0,
        node_type="localhost",
    )
    return machine
