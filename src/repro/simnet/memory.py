"""Device memory accounting.

A :class:`MemoryPool` tracks allocations against a capacity and raises
:class:`~repro.errors.ResourceExhaustedError` on overflow — giving the
K420's 1 GB limit (which forced the paper to use 4096² tiles on Tegner)
real teeth in the simulation.
"""

from __future__ import annotations

from repro.errors import InternalError, ResourceExhaustedError

__all__ = ["MemoryPool"]


class MemoryPool:
    """A simple high-water-mark allocator for one device."""

    def __init__(self, capacity: int, name: str = "mem"):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self.name = name
        self.in_use = 0
        self.peak = 0
        self.alloc_count = 0

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    def allocate(self, nbytes: int) -> int:
        """Reserve ``nbytes``; returns the amount for symmetric freeing."""
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError(f"negative allocation: {nbytes}")
        if self.in_use + nbytes > self.capacity:
            raise ResourceExhaustedError(
                f"OOM on {self.name}: requested {nbytes} B with "
                f"{self.available} B free of {self.capacity} B"
            )
        self.in_use += nbytes
        self.alloc_count += 1
        self.peak = max(self.peak, self.in_use)
        return nbytes

    def free(self, nbytes: int) -> None:
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError(f"negative free: {nbytes}")
        if nbytes > self.in_use:
            raise InternalError(
                f"{self.name}: freeing {nbytes} B but only {self.in_use} B in use"
            )
        self.in_use -= nbytes

    def utilisation(self) -> float:
        return self.in_use / self.capacity

    def __repr__(self) -> str:
        return (
            f"<MemoryPool {self.name} {self.in_use}/{self.capacity} B "
            f"(peak {self.peak})>"
        )
