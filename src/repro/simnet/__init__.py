"""Simulated cluster substrate.

``repro.simnet`` provides the discrete-event simulation (DES) kernel and the
hardware models (GPUs, CPUs, nodes, interconnects, transports, machines) on
which the TF-like runtime executes. Simulated time is in **seconds**; data
sizes are in **bytes** unless a name says otherwise.
"""

from repro.simnet.events import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    Timeout,
)
from repro.simnet.faults import (
    FaultInjector,
    FaultPlan,
    LinkDegradation,
    MessageDrop,
    WorkerCrash,
)
from repro.simnet.resources import BandwidthLink, Resource, Store

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Resource",
    "Store",
    "BandwidthLink",
    "FaultPlan",
    "FaultInjector",
    "WorkerCrash",
    "LinkDegradation",
    "MessageDrop",
]
