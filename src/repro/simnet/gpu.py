"""GPU device models.

Each model carries vendor peak numbers plus *sustained-efficiency* factors
calibrated against the paper's measurements (see
``repro.perf.calibration`` for provenance). The executor converts a kernel
:class:`~repro.core.kernels.registry.Cost` into simulated seconds with
:meth:`GPUDevice.time_for_cost`.

Per the paper's convention, "one K80 GPU" means one GK210 engine (half a
K80 board).
"""

from __future__ import annotations

from dataclasses import dataclass



from repro.simnet.events import Environment
from repro.simnet.memory import MemoryPool
from repro.simnet.resources import BandwidthLink, Resource

__all__ = ["GPUModel", "GPUDevice", "K420", "K80_GK210", "V100", "GENERIC_GPU"]

GIGA = 1.0e9


@dataclass(frozen=True)
class GPUModel:
    """Static description of a GPU part."""

    name: str
    peak_sp_flops: float  # single-precision peak, flop/s
    peak_dp_flops: float  # double-precision peak, flop/s
    mem_bandwidth: float  # device memory bandwidth, B/s
    mem_capacity: int  # device memory, bytes
    pcie_rate: float  # effective host<->device staging rate, B/s
    launch_overhead: float  # per-kernel launch latency, s
    # Sustained fractions of peak by op class.
    matmul_efficiency: float = 0.70
    fft_efficiency: float = 0.10
    default_efficiency: float = 0.50
    mem_efficiency: float = 0.75

    def sustained_flops(self, op_type: str, double_precision: bool) -> float:
        peak = self.peak_dp_flops if double_precision else self.peak_sp_flops
        if op_type == "MatMul":
            return peak * self.matmul_efficiency
        if op_type in ("FFT", "IFFT"):
            return peak * self.fft_efficiency
        return peak * self.default_efficiency

    def sustained_bandwidth(self) -> float:
        return self.mem_bandwidth * self.mem_efficiency


# Vendor numbers: NVIDIA datasheets for Quadro K420, Tesla K80 (per GK210
# engine at base clock), Tesla V100-PCIe. ``pcie_rate`` is the *effective*
# staging throughput observed by the paper's STREAM runs (Fig. 7): the
# K420 path saturates ≈1.3 GB/s and the Kebnekaise K80 path ≈2.3 GB/s.
K420 = GPUModel(
    name="K420",
    peak_sp_flops=300.0e9,
    peak_dp_flops=12.5e9,
    mem_bandwidth=29.0e9,
    mem_capacity=1 * 1024**3,
    pcie_rate=1.5e9,
    launch_overhead=18e-6,
)

K80_GK210 = GPUModel(
    name="K80-GK210",
    peak_sp_flops=2796.0e9,
    peak_dp_flops=932.0e9,
    mem_bandwidth=240.0e9,
    mem_capacity=12 * 1024**3,
    pcie_rate=2.4e9,
    launch_overhead=12e-6,
)

V100 = GPUModel(
    name="V100",
    peak_sp_flops=14000.0e9,
    peak_dp_flops=7000.0e9,
    mem_bandwidth=900.0e9,
    mem_capacity=16 * 1024**3,
    pcie_rate=10.0e9,
    launch_overhead=8e-6,
)

# A fast laptop-ish default for local sessions outside any machine catalog.
GENERIC_GPU = GPUModel(
    name="generic-gpu",
    peak_sp_flops=5000.0e9,
    peak_dp_flops=2500.0e9,
    mem_bandwidth=400.0e9,
    mem_capacity=8 * 1024**3,
    pcie_rate=8.0e9,
    launch_overhead=10e-6,
)


class GPUDevice:
    """One physical GPU engine installed in a node."""

    def __init__(self, env: Environment, model: GPUModel, node, index: int,
                 numa_island: int = 0):
        self.env = env
        self.model = model
        self.node = node
        self.index = index
        self.numa_island = numa_island
        self.device_type = "gpu"
        # One compute stream: kernels on the same GPU serialize, as on real
        # hardware with a single default CUDA stream.
        self.resource = Resource(env, capacity=1, name=f"{node.name}/gpu:{index}")
        self.memory = MemoryPool(model.mem_capacity, name=f"{node.name}/gpu:{index}")
        # Host<->device staging path (PCIe + copy engine), fair-shared
        # between concurrent H2D/D2H traffic.
        self.pcie_link = BandwidthLink(env, model.pcie_rate,
                                       name=f"{node.name}/pcie:{index}")

    def time_for_cost(self, cost, op_type: str, double_precision: bool) -> float:
        """Simulated execution time of one kernel on this GPU."""
        seconds = self.model.launch_overhead
        compute = 0.0
        if cost.flops > 0:
            compute = cost.flops / self.model.sustained_flops(op_type, double_precision)
        memory = 0.0
        if cost.mem_bytes > 0:
            memory = cost.mem_bytes / self.model.sustained_bandwidth()
        return seconds + max(compute, memory)

    def __repr__(self) -> str:
        return f"<GPUDevice {self.model.name} {self.node.name}/gpu:{self.index}>"
