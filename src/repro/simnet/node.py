"""Compute-node topology.

A node couples a CPU, zero or more GPU engines, a NIC and NUMA islands.
The Kebnekaise topology (paper Fig. 9) places the two K80 boards on two
different NUMA islands while "I/O and network communication are only
connected to either one island" — traffic from the far island crosses the
inter-socket link, and all co-located TensorFlow instances share the one
NIC. Both effects are modelled as fair-share :class:`BandwidthLink`\\ s.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.simnet.cpu import CPUDevice, CPUModel
from repro.simnet.events import Environment
from repro.simnet.gpu import GPUDevice, GPUModel
from repro.simnet.network import Interconnect
from repro.simnet.resources import BandwidthLink

__all__ = ["Node"]

# Intel QPI/UPI sustained inter-socket bandwidth (one direction).
INTERSOCKET_RATE = 12.0e9


class Node:
    """One compute node within a machine."""

    def __init__(
        self,
        env: Environment,
        name: str,
        machine,
        cpu_model: CPUModel,
        gpu_models: Sequence[GPUModel] = (),
        gpu_numa: Optional[Sequence[int]] = None,
        nic_numa: int = 0,
        numa_islands: int = 2,
        fabric: Optional[Interconnect] = None,
    ):
        self.env = env
        self.name = name
        self.machine = machine
        self.numa_islands = numa_islands
        self.nic_numa = nic_numa
        self.cpu = CPUDevice(env, cpu_model, node=self, numa_island=0)
        if gpu_numa is None:
            # Spread GPUs round-robin across islands (Kebnekaise layout).
            gpu_numa = [i % numa_islands for i in range(len(gpu_models))]
        self.gpus = [
            GPUDevice(env, model, node=self, index=i, numa_island=island)
            for i, (model, island) in enumerate(zip(gpu_models, gpu_numa))
        ]
        fabric = fabric if fabric is not None else machine.fabric
        # The node's HCA: all instances on the node share it (ingress and
        # egress are folded into one fair-share pipe — conservative, and the
        # paper's STREAM traffic is unidirectional anyway).
        self.nic_link = BandwidthLink(env, fabric.effective_rate, name=f"{name}/nic")
        # Ethernet management port.
        self.eth_link = BandwidthLink(
            env, machine.ethernet.effective_rate, name=f"{name}/eth"
        )
        # QPI between the two sockets: GPU traffic from the far island to
        # the NIC/IO island crosses this.
        self.intersocket_link = BandwidthLink(
            env, INTERSOCKET_RATE, name=f"{name}/qpi"
        )

    # -- device lookup ----------------------------------------------------------
    def device(self, device_type: str, index: int = 0):
        if device_type == "cpu":
            if index != 0:
                raise ValueError(f"{self.name} has a single cpu device")
            return self.cpu
        if device_type == "gpu":
            if not 0 <= index < len(self.gpus):
                raise ValueError(
                    f"{self.name} has {len(self.gpus)} GPUs; no gpu:{index}"
                )
            return self.gpus[index]
        raise ValueError(f"Unknown device type {device_type!r}")

    @property
    def num_gpus(self) -> int:
        return len(self.gpus)

    def crosses_socket(self, device) -> bool:
        """True when traffic from ``device`` to the NIC crosses sockets."""
        return getattr(device, "numa_island", 0) != self.nic_numa

    def __repr__(self) -> str:
        gpus = ", ".join(g.model.name for g in self.gpus) or "no GPUs"
        return f"<Node {self.name}: {self.cpu.model.name}, {gpus}>"
