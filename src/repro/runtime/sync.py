"""Data-driven synchronization: the paper's queue-based reducer (Fig. 5).

TF 1.x has no allreduce; the paper reformulates reductions with two FIFO
queues per reduction point:

* workers enqueue partial values into the reducer's *incoming* queue and
  block dequeuing the *outgoing* queue;
* a reducer loop dequeues one value per worker, applies the reduction,
  and enqueues ``num_workers`` copies of the result;
* every worker picks up one copy and proceeds.

This mirrors ``SyncReplicasOptimizer``'s token-queue barrier, which the
paper cites as its model.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro import dtypes
from repro.core.graph import Graph, Operation, get_default_graph
from repro.core.ops import control_flow, math_ops, queue_ops
from repro.core.tensor import Tensor
from repro.errors import InvalidArgumentError

__all__ = ["QueueReducer", "TokenBarrier"]

_REDUCTIONS: dict[str, Callable] = {
    "sum": lambda values: math_ops.add_n(values, name="reduce_sum"),
    "max": lambda values: _fold(values, math_ops.maximum),
    "min": lambda values: _fold(values, math_ops.minimum),
}


def _fold(values, fn):
    acc = values[0]
    for value in values[1:]:
        acc = fn(acc, value)
    return acc


class QueueReducer:
    """Graph-side builder for one reduction point.

    Args:
        num_workers: number of participating workers.
        dtype/shape: the reduced value's type.
        device: the reducer task's device (both queues live there, so
            worker traffic flows across the network exactly once each way).
        reduction: "sum" | "max" | "min".
    """

    def __init__(
        self,
        num_workers: int,
        dtype=dtypes.float64,
        shape: Sequence[int] = (),
        device: str = "",
        reduction: str = "sum",
        name: str = "reducer",
        graph: Optional[Graph] = None,
    ):
        if num_workers < 1:
            raise InvalidArgumentError("num_workers must be >= 1")
        if reduction not in _REDUCTIONS:
            raise InvalidArgumentError(
                f"Unknown reduction {reduction!r}; have {sorted(_REDUCTIONS)}"
            )
        g = graph or get_default_graph()
        self.graph = g
        self.num_workers = num_workers
        self.reduction = reduction
        self.name = name
        self._dtype = dtypes.as_dtype(dtype)
        self._shape = list(shape)
        with g.device(device):
            self.in_queue = queue_ops.FIFOQueue(
                capacity=max(num_workers, 1),
                dtypes_=[self._dtype],
                shapes=[self._shape],
                name=f"{name}/in",
                graph=g,
            )
            self.out_queue = queue_ops.FIFOQueue(
                capacity=max(num_workers, 1),
                dtypes_=[self._dtype],
                shapes=[self._shape],
                name=f"{name}/out",
                graph=g,
            )

    # -- worker side -------------------------------------------------------------
    def worker_reduce(self, value, name: str = "worker_reduce") -> Tensor:
        """Send ``value`` in, block until the reduced value comes back."""
        enqueue = self.in_queue.enqueue(value, name=f"{name}/send")
        with self.graph.control_dependencies([enqueue]):
            return self.out_queue.dequeue(name=f"{name}/wait")

    # -- reducer side -------------------------------------------------------------
    def reducer_step(self, name: str = "reducer_step") -> Operation:
        """One reduction round: collect N, reduce, broadcast N copies."""
        with self.graph.name_scope(name):
            partials = [
                self.in_queue.dequeue(name=f"collect_{i}")
                for i in range(self.num_workers)
            ]
            reduced = _REDUCTIONS[self.reduction](partials)
            sends = []
            for i in range(self.num_workers):
                sends.append(self.out_queue.enqueue(reduced, name=f"bcast_{i}"))
            return control_flow.group(*sends, name="round", graph=self.graph)

    def close(self) -> Operation:
        """Close both queues (shutdown: blocked workers get OutOfRange)."""
        close_in = self.in_queue.close(cancel_pending_enqueues=True)
        close_out = self.out_queue.close(cancel_pending_enqueues=True)
        return control_flow.group(close_in, close_out,
                                  name=f"{self.name}/close", graph=self.graph)


class TokenBarrier:
    """A SyncReplicas-style token barrier.

    One coordinator deposits ``num_workers`` tokens per round; each worker
    consumes exactly one token before proceeding — the mechanism TF's
    ``SyncReplicasOptimizer`` uses to release workers after a variable
    update, as described in the paper.
    """

    def __init__(self, num_workers: int, device: str = "",
                 name: str = "barrier", graph: Optional[Graph] = None):
        g = graph or get_default_graph()
        self.graph = g
        self.num_workers = num_workers
        with g.device(device):
            self._tokens = queue_ops.FIFOQueue(
                capacity=num_workers,
                dtypes_=[dtypes.int64],
                shapes=[[]],
                name=f"{name}/tokens",
                graph=g,
            )

    def release_all(self, step) -> Operation:
        """Coordinator op: deposit one token per worker for ``step``."""
        sends = [
            self._tokens.enqueue(step, name=f"token_{i}")
            for i in range(self.num_workers)
        ]
        return control_flow.group(*sends, name="release", graph=self.graph)

    def wait(self, name: str = "wait_token") -> Tensor:
        """Worker op: block until a token is available; returns the step."""
        return self._tokens.dequeue(name=name)
