"""Retry with exponential backoff over simulated time.

Transient faults (dropped messages, a task mid-restart) surface as
:class:`~repro.errors.UnavailableError`; gRPC clients classically mask
them with capped exponential backoff. :class:`RetryPolicy` captures the
schedule, :func:`retry_gen` drives a generator-shaped attempt under it
inside the DES (backoff sleeps advance the simulated clock, never the
wall clock), and drivers reuse :meth:`RetryPolicy.delays` for their own
recovery loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from repro.errors import InvalidArgumentError, UnavailableError

__all__ = ["RetryPolicy", "retry_gen"]


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff: attempt, sleep, attempt, ...

    ``max_attempts`` counts attempts (not retries): 5 means the first
    try plus up to 4 retries. Backoff delays are *simulated* seconds.
    """

    max_attempts: int = 5
    initial_backoff: float = 1e-3
    multiplier: float = 2.0
    max_backoff: float = 1.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise InvalidArgumentError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.initial_backoff < 0 or self.max_backoff < 0:
            raise InvalidArgumentError("backoff delays must be >= 0")
        if self.multiplier < 1.0:
            raise InvalidArgumentError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )

    def delays(self) -> Iterator[float]:
        """The backoff sleeps between attempts (``max_attempts - 1``)."""
        delay = self.initial_backoff
        for _ in range(self.max_attempts - 1):
            yield min(delay, self.max_backoff)
            delay *= self.multiplier


def retry_gen(env, attempt: Callable[[], Iterator], policy: Optional[RetryPolicy],
              retryable=(UnavailableError,), on_retry=None):
    """Drive ``attempt()`` generators under ``policy`` inside the DES.

    ``attempt`` is called afresh per try and its generator is delegated
    to; a ``retryable`` failure sleeps the next backoff delay in
    simulated time and tries again. The last failure propagates. With
    ``policy=None`` the attempt runs exactly once (no masking).
    ``on_retry(exc, delay)`` is called before each backoff sleep.
    """
    if policy is None:
        return (yield from attempt())
    remaining = list(policy.delays())
    while True:
        try:
            return (yield from attempt())
        except retryable as exc:
            if not remaining:
                raise
            delay = remaining.pop(0)
            if on_retry is not None:
                on_retry(exc, delay)
            yield env.timeout(delay)
