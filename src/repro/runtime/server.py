"""TensorFlow servers (tasks) on simulated nodes.

A :class:`Server` is one task of one job in a cluster. It binds to an
address on a node of the machine, exposes a subset of the node's GPUs
(``CUDA_VISIBLE_DEVICES`` semantics — Table I runs up to four instances
per node, one GPU engine each), and owns the task's
:class:`~repro.core.kernels.registry.ResourceManager`, so variables and
queues placed on the task persist across sessions.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import Optional, Sequence

from repro.core.kernels.registry import ResourceManager
from repro.core.placement import canonical_device
from repro.errors import InvalidArgumentError, NotFoundError
from repro.runtime.clusterspec import ClusterSpec
from repro.simnet.events import Environment
from repro.simnet.machines import Machine
from repro.simnet.resources import Resource
from repro.simnet.transports import SERVER_PROTOCOLS, data_protocol

__all__ = ["Server", "TaskRuntime", "ServerConfig"]


@dataclass
class ServerConfig:
    """Per-server runtime configuration.

    ``visible_gpus`` mirrors CUDA_VISIBLE_DEVICES: physical GPU indices on
    the node this server may use, renumbered from zero inside the task.
    ``gpu_memory_fraction`` caps this task's allocations on shared GPUs —
    "if more than one server are using one GPU, we need to ensure that the
    two tasks share the GPU memory".
    """

    visible_gpus: Optional[Sequence[int]] = None
    gpu_memory_fraction: float = 1.0
    allow_soft_placement: bool = True


class TaskRuntime:
    """Execution state of one task: its devices, resources and GIL."""

    def __init__(
        self,
        env: Environment,
        node,
        job_name: str,
        task_index: int,
        config: ServerConfig,
    ):
        self.env = env
        self.node = node
        self.job_name = job_name
        self.task_index = task_index
        self.config = config
        self.resources = ResourceManager(name=f"{job_name}/{task_index}")
        # One Python process per task: host-side phases serialize here
        # (the GIL limitation the paper hits with QueueRunners).
        self.gil = Resource(env, capacity=1, name=f"{job_name}:{task_index}/gil")
        visible = (
            list(config.visible_gpus)
            if config.visible_gpus is not None
            else list(range(node.num_gpus))
        )
        for phys in visible:
            if not 0 <= phys < node.num_gpus:
                raise InvalidArgumentError(
                    f"visible_gpus={visible}: node {node.name} has "
                    f"{node.num_gpus} GPUs"
                )
        # Canonical task-local device name -> simulated device object.
        self._devices = {
            canonical_device(job_name, task_index, "cpu", 0): node.cpu,
        }
        # Per-task memory pools: the task's allocations on a GPU are capped
        # at gpu_memory_fraction of the physical capacity, so co-located
        # instances can share an engine safely (as TF's per-process
        # gpu_options do). The host pool is shared node-wide.
        from repro.simnet.memory import MemoryPool

        self.memory_pools = {
            canonical_device(job_name, task_index, "cpu", 0): node.cpu.memory,
        }
        for local_index, phys in enumerate(visible):
            name = canonical_device(job_name, task_index, "gpu", local_index)
            gpu = node.gpus[phys]
            self._devices[name] = gpu
            capacity = int(gpu.model.mem_capacity * config.gpu_memory_fraction)
            self.memory_pools[name] = MemoryPool(
                capacity, name=f"{name}@{node.name}/gpu:{phys}"
            )

    # -- device queries ---------------------------------------------------------
    @property
    def device_names(self) -> list[str]:
        return sorted(self._devices)

    def device_counts(self) -> dict[str, int]:
        gpus = sum(1 for n in self._devices if "/device:gpu:" in n)
        return {"cpu": 1, "gpu": gpus}

    def device(self, canonical_name: str):
        try:
            return self._devices[canonical_name]
        except KeyError:
            raise NotFoundError(
                f"Task /job:{self.job_name}/task:{self.task_index} has no "
                f"device {canonical_name!r} (has: {self.device_names})"
            ) from None

    def __repr__(self) -> str:
        return (
            f"<TaskRuntime /job:{self.job_name}/task:{self.task_index} on "
            f"{self.node.name} ({len(self._devices)} devices)>"
        )


class Server:
    """An in-process TensorFlow server bound to one cluster task."""

    def __init__(
        self,
        cluster: ClusterSpec | dict,
        job_name: str,
        task_index: int,
        machine: Machine,
        protocol: str = "grpc+verbs",
        config: Optional[ServerConfig] = None,
        node_name: Optional[str] = None,
    ):
        if protocol not in SERVER_PROTOCOLS:
            raise InvalidArgumentError(
                f"Unknown protocol {protocol!r}; expected one of {SERVER_PROTOCOLS}"
            )
        self.cluster_spec = ClusterSpec(cluster)
        self.job_name = job_name
        self.task_index = task_index
        self.machine = machine
        self.protocol = protocol
        self.config = config or ServerConfig()
        self.address = self.cluster_spec.task_address(job_name, task_index)
        host = node_name or self.address.rsplit(":", 1)[0]
        node = machine.node(host)
        self.runtime = TaskRuntime(
            machine.env, node, job_name, task_index, self.config
        )
        machine.register_server(self.address, self)

    @property
    def env(self) -> Environment:
        return self.machine.env

    @property
    def target(self) -> str:
        """Session target string for this server."""
        return f"grpc://{self.address}"

    @property
    def data_protocol(self) -> str:
        """Bulk tensor protocol implied by the server protocol string."""
        return data_protocol(self.protocol)

    def __repr__(self) -> str:
        return (
            f"<Server /job:{self.job_name}/task:{self.task_index} "
            f"@ {self.address} ({self.protocol})>"
        )
