"""Key-based tensor rendezvous.

TF moves tensors between devices through a rendezvous table: the producer
``_Send``\\ s under a key, the consumer ``_Recv``\\ s under the same key, and
whichever side arrives first waits. Keys are unique per (edge, run), so
values match exactly once.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import DeadlineExceededError, InternalError
from repro.simnet.events import Environment, Event

__all__ = ["Rendezvous", "make_key"]


def make_key(src_device: str, dst_device: str, tensor_name: str, run_id: int) -> str:
    return f"{src_device};{dst_device};{tensor_name};run{run_id}"


class Rendezvous:
    """Exactly-once key/value matching between producers and consumers."""

    def __init__(self, env: Environment):
        self.env = env
        self._values: dict[str, Any] = {}
        self._waiters: dict[str, list[Event]] = {}
        self.sends = 0
        self.recvs = 0
        self.deadline_failures = 0

    def send(self, key: str, value: Any) -> None:
        """Deposit ``value``; wakes all waiting receivers."""
        if key in self._values:
            raise InternalError(f"Duplicate rendezvous send for key {key!r}")
        self.sends += 1
        self._values[key] = value
        for event in self._waiters.pop(key, ()):
            event.succeed(value)

    def recv(self, key: str, deadline: Optional[float] = None) -> Event:
        """Event delivering the value sent under ``key``.

        Multiple receivers of the same key all get the value (one send may
        feed several consumers on the destination device). With a
        ``deadline`` (simulated seconds), a value that has not arrived in
        time fails the event with :class:`DeadlineExceededError` naming
        the key — a dead producer surfaces as an error instead of a hang.
        """
        self.recvs += 1
        event = Event(self.env)
        if key in self._values:
            event.succeed(self._values[key])
            return event
        self._waiters.setdefault(key, []).append(event)
        if deadline is not None:
            timeout = self.env.timeout(deadline)

            def expire(_ev):
                if event.triggered:
                    return
                waiters = self._waiters.get(key)
                if waiters and event in waiters:
                    waiters.remove(event)
                    if not waiters:
                        del self._waiters[key]
                self.deadline_failures += 1
                event.fail(DeadlineExceededError(
                    f"recv deadline of {deadline:g} sim-seconds exceeded "
                    f"for rendezvous key {key!r}: the producer never sent "
                    f"(worker lost or stalled)"
                ))

            timeout.callbacks.append(expire)
        return event

    def recv_nowait(self, key: str) -> tuple[bool, Any]:
        """``(True, value)`` if ``key`` was already sent, else ``(False, None)``.

        The synchronous flavour of :meth:`recv` for executors that already
        know the producer completed: no event is allocated or scheduled.
        """
        if key in self._values:
            self.recvs += 1
            return True, self._values[key]
        return False, None

    def pending_keys(self) -> list[str]:
        """Keys with waiting receivers (deadlock diagnostics)."""
        return sorted(self._waiters)

    def __repr__(self) -> str:
        return (
            f"<Rendezvous {self.sends} sends / {self.recvs} recvs, "
            f"{len(self._waiters)} waiting>"
        )
