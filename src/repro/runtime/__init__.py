"""Distributed runtime: cluster specs, servers, rendezvous, queue helpers.

This package plays the role of TensorFlow's C++ distributed runtime: it
hosts per-task state (devices, resource managers), routes tensors between
tasks over the simulated network, and provides the coordination helpers
(queue runners, reducers) the paper's applications use.
"""

from repro.runtime.clusterspec import ClusterSpec
from repro.runtime.collective import ring_allreduce
from repro.runtime.rendezvous import Rendezvous
from repro.runtime.server import Server, TaskRuntime

__all__ = ["ClusterSpec", "Server", "TaskRuntime", "Rendezvous",
           "ring_allreduce"]
