"""Ring collectives — the MPI-style primitives the paper points to.

The discussion section names Uber's Horovod and Cray's ML plugin as the
way past the parameter-server/reducer model: "an MPI communication
backend for functions such as allreduce without needing the use of
dedicated servers". This module implements the classic bandwidth-optimal
ring schedules over the simulated transports so the two designs can be
compared head-to-head (see ``benchmarks/bench_collectives.py``), and it
is the lowering target of the graph-level collective ops
(:mod:`repro.core.ops.collective_ops`): a ``CollectiveAllReduce`` item
group drives exactly these generators, so the op's simulated time is the
standalone ring's time by construction.

Algorithm (allreduce): with ``W`` ranks the buffer is cut into ``W``
chunks; ``W - 1`` reduce-scatter steps followed by ``W - 1`` allgather
steps each move one chunk to the ring neighbour, all links active
concurrently. Every rank sends and receives ``2 (W-1)/W`` of the buffer —
independent of ``W`` — which is exactly why it beats a central reducer.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.core.tensor import SymbolicValue
from repro.errors import InvalidArgumentError
from repro.simnet import transports
from repro.simnet.events import AllOf, Environment

__all__ = [
    "ring_allreduce",
    "ring_allgather",
    "ring_broadcast",
    "allreduce_time_lower_bound",
]


def allreduce_time_lower_bound(nbytes: int, num_ranks: int, link_rate: float) -> float:
    """The textbook ring bound: ``2 (W-1)/W * nbytes / rate``."""
    if num_ranks < 2:
        return 0.0
    return 2.0 * (num_ranks - 1) / num_ranks * nbytes / link_rate


def _validate_ring(devices: Sequence, values: Sequence) -> list[SymbolicValue]:
    if len(devices) != len(values):
        raise InvalidArgumentError(
            f"{len(devices)} devices but {len(values)} values"
        )
    if not devices:
        raise InvalidArgumentError("a collective needs at least one rank")
    return [SymbolicValue.of(v) for v in values]


def _slowest_numpy_rate(devices: Sequence) -> float:
    """Host vector-op rate of the slowest rank.

    Every reduce-scatter/assembly step completes when the *last* rank
    finishes its local math, so on heterogeneous rings the slowest host
    gates each step.
    """
    return min(d.node.cpu.model.numpy_bytes_rate for d in devices)


def ring_allreduce(
    devices: Sequence,
    values: Sequence,
    protocol: str = "rdma",
) -> Iterator:
    """Generator: sum-allreduce ``values`` across ``devices``.

    Args:
        devices: one simulated device per rank (the ring order).
        values: one ndarray or :class:`SymbolicValue` per rank, equal
            shapes; each rank contributes one addend.
        protocol: bulk transport for the ring traffic.

    Returns (via generator return value): the list of per-rank reduced
    values — every rank holds the full sum, as after ``MPI_Allreduce``.
    Concrete sums are accumulated in rank order starting from zeros, so
    every rank's copy is byte-identical to a central reduction of the
    same addends.
    """
    specs = _validate_ring(devices, values)
    world = len(devices)
    for spec in specs[1:]:
        if spec.shape != specs[0].shape or spec.dtype != specs[0].dtype:
            raise InvalidArgumentError(
                f"allreduce buffers disagree: {specs[0]} vs {spec}"
            )
    symbolic = any(isinstance(v, SymbolicValue) for v in values)
    if symbolic:
        # One *distinct* spec per rank: the reduced value has the input's
        # shape/dtype but is a fresh buffer on every rank — aliasing one
        # spec object across ranks (the old behaviour) made every rank's
        # "result" literally rank 0's input.
        result_per_rank = [
            SymbolicValue(specs[0].shape, specs[0].dtype) for _ in range(world)
        ]
    else:
        total = np.zeros(specs[0].shape, dtype=specs[0].dtype.np_dtype)
        for value in values:
            total = total + np.asarray(value)
        result_per_rank = [total.copy() for _ in range(world)]
    if world == 1:
        return result_per_rank

    env: Environment = devices[0].env
    nbytes = specs[0].nbytes
    # Chunks are ceil-divided; the last partial chunk costs like a full one
    # only in its final step, which the ceil approximates conservatively.
    chunk = -(-nbytes // world)
    add_seconds = chunk / _slowest_numpy_rate(devices)
    steps = 2 * (world - 1)
    for _step in range(steps):
        moves = []
        for rank in range(world):
            dst = (rank + 1) % world
            moves.append(
                env.process(
                    transports.transfer(
                        devices[rank], devices[dst], chunk, protocol
                    ),
                    name=f"ring:{rank}->{dst}",
                )
            )
        yield AllOf(env, moves)
        # Reduction math on each rank: one chunk-sized vector add per
        # reduce-scatter step. All ranks add concurrently, so the step
        # costs the slowest rank's add (negligible next to the wire time,
        # but accounted).
        if _step < world - 1:
            yield env.timeout(add_seconds)
    return result_per_rank


def ring_allgather(
    devices: Sequence,
    values: Sequence,
    protocol: str = "rdma",
) -> Iterator:
    """Generator: allgather ``values`` across ``devices`` (concat axis 0).

    ``W - 1`` steps; in step ``s`` every rank forwards the chunk it
    received in step ``s - 1`` (its own buffer initially) to the next
    rank, all links active concurrently. Every rank ends holding the
    rank-order concatenation — total traffic per link is
    ``(W-1)/W * total_bytes``, the bandwidth-optimal allgather.

    Returns the per-rank list of assembled values (one independent copy
    per rank).
    """
    specs = _validate_ring(devices, values)
    world = len(devices)
    for spec in specs[1:]:
        if spec.ndim != specs[0].ndim or spec.ndim == 0:
            raise InvalidArgumentError(
                f"allgather buffers must share a rank >= 1: "
                f"{specs[0]} vs {spec}"
            )
        if spec.shape[1:] != specs[0].shape[1:] or spec.dtype != specs[0].dtype:
            raise InvalidArgumentError(
                f"allgather buffers disagree beyond axis 0: "
                f"{specs[0]} vs {spec}"
            )
    symbolic = any(isinstance(v, SymbolicValue) for v in values)
    out_shape = (
        sum(spec.shape[0] for spec in specs),
        *specs[0].shape[1:],
    )
    if symbolic:
        result_per_rank = [
            SymbolicValue(out_shape, specs[0].dtype) for _ in range(world)
        ]
    else:
        full = np.concatenate([np.asarray(v) for v in values], axis=0)
        result_per_rank = [full.copy() for _ in range(world)]
    if world == 1:
        return result_per_rank

    env: Environment = devices[0].env
    for step in range(world - 1):
        moves = []
        for rank in range(world):
            # Rank r forwards the chunk that originated at rank (r - step).
            origin = (rank - step) % world
            dst = (rank + 1) % world
            moves.append(
                env.process(
                    transports.transfer(
                        devices[rank], devices[dst],
                        specs[origin].nbytes, protocol,
                    ),
                    name=f"allgather:{rank}->{dst}",
                )
            )
        yield AllOf(env, moves)
    # Local assembly: every rank copies the W chunks into one contiguous
    # buffer; the slowest host gates the (concurrent) copies.
    total_nbytes = sum(spec.nbytes for spec in specs)
    yield env.timeout(total_nbytes / _slowest_numpy_rate(devices))
    return result_per_rank


def ring_broadcast(
    devices: Sequence,
    value,
    protocol: str = "rdma",
    root: int = 0,
) -> Iterator:
    """Generator: broadcast ``value`` from rank ``root`` to every rank.

    Pipelined ring: the buffer is cut into ``W`` chunks which stream
    around the ring; link ``j`` (hops from the root) is busy during steps
    ``j .. j + W - 1``, so the whole broadcast takes ``2W - 2`` chunk
    steps — for large buffers the time approaches one buffer traversal
    regardless of ``W``, instead of the root serializing ``W - 1`` full
    sends.

    Returns the per-rank list of value copies (root's own entry is an
    independent copy too).
    """
    world = len(devices)
    if world == 0:
        raise InvalidArgumentError("a collective needs at least one rank")
    if not 0 <= root < world:
        raise InvalidArgumentError(f"broadcast root {root} not in [0, {world})")
    spec = SymbolicValue.of(value)
    if isinstance(value, SymbolicValue):
        result_per_rank = [
            SymbolicValue(spec.shape, spec.dtype) for _ in range(world)
        ]
    else:
        arr = np.asarray(value)
        result_per_rank = [arr.copy() for _ in range(world)]
    if world == 1:
        return result_per_rank

    env: Environment = devices[0].env
    chunks = world
    chunk = -(-spec.nbytes // chunks)
    for step in range(chunks + world - 2):
        moves = []
        for hop in range(world - 1):
            if hop <= step <= hop + chunks - 1:
                src = devices[(root + hop) % world]
                dst = devices[(root + hop + 1) % world]
                moves.append(
                    env.process(
                        transports.transfer(src, dst, chunk, protocol),
                        name=f"bcast:{hop}",
                    )
                )
        yield AllOf(env, moves)
    return result_per_rank
