"""Collective algorithms — the MPI-style primitives the paper points to.

The discussion section names Uber's Horovod and Cray's ML plugin as the
way past the parameter-server/reducer model: "an MPI communication
backend for functions such as allreduce without needing the use of
dedicated servers". This module implements the classic collective
schedules over the simulated transports so the designs can be compared
head-to-head (see ``benchmarks/bench_collective_algos.py``), and it is
the lowering target of the graph-level collective ops
(:mod:`repro.core.ops.collective_ops`): a lowered collective item group
drives exactly these generators, so the op's simulated time is the
standalone schedule's time by construction.

The *algorithm* is a pluggable strategy: schedules register under
``(op type, algorithm)`` via :func:`register_strategy`, and the
partitioner resolves an op's ``algorithm="auto"`` attr per payload and
world size through :func:`select_algorithm` at lowering time. Two
allreduce schedules ship:

* **ring** (bandwidth-optimal): the buffer is cut into ``W`` chunks;
  ``W - 1`` reduce-scatter steps followed by ``W - 1`` allgather steps
  each move one chunk to the ring neighbour, all links active
  concurrently. Every rank sends and receives ``2 (W-1)/W`` of the
  buffer — independent of ``W`` — which is exactly why it beats a
  central reducer on big payloads.
* **tree** (latency-optimal, recursive halving/doubling): ``log2 W``
  rounds of full-buffer pairwise exchanges (plus a fold-in/fold-out
  round pair for non-power-of-two worlds). ``O(log W)`` latency steps
  instead of the ring's ``2 (W - 1)``, at ``log2(W)``× the wire bytes —
  the right trade for scalars and small tensors.

Every concrete schedule accumulates sums in rank order starting from
zeros, so results are **byte-identical across algorithms**; only the
simulated clock differs.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Sequence

import numpy as np

from repro.core.tensor import SymbolicValue
from repro.errors import InvalidArgumentError
from repro.simnet import transports
from repro.simnet.events import AllOf, Environment

__all__ = [
    "ring_allreduce",
    "ring_allgather",
    "ring_broadcast",
    "ring_reduce_scatter",
    "tree_allreduce",
    "allreduce_time_lower_bound",
    "register_strategy",
    "get_strategy",
    "registered_algorithms",
    "select_algorithm",
]

# ---------------------------------------------------------------------------
# strategy registry
# ---------------------------------------------------------------------------

# (op type, algorithm) -> schedule generator with the uniform signature
# ``strategy(devices, values, protocol)``; one value per rank, in ring
# order (a broadcast strategy reads its payload from ``values[0]``, the
# root).
_STRATEGIES: dict[tuple[str, str], Callable] = {}


def register_strategy(op_type: str, algorithm: str):
    """Decorator registering a schedule for ``(op_type, algorithm)``.

    The decorated generator takes ``(devices, values, protocol)`` — one
    simulated device and one per-rank value, ring order — yields DES
    events for its communication steps, and returns the per-rank result
    list. The executor's ``_CollectiveGroup`` rendezvous drives whatever
    schedule is registered; adding an algorithm never touches the
    executor.
    """

    def wrap(fn: Callable) -> Callable:
        key = (op_type, algorithm)
        if key in _STRATEGIES:
            raise InvalidArgumentError(
                f"Strategy {algorithm!r} for {op_type} is already registered"
            )
        _STRATEGIES[key] = fn
        return fn

    return wrap


def get_strategy(op_type: str, algorithm: str) -> Callable:
    """The registered schedule for ``(op_type, algorithm)``."""
    try:
        return _STRATEGIES[(op_type, algorithm)]
    except KeyError:
        raise InvalidArgumentError(
            f"No {algorithm!r} algorithm registered for {op_type}; "
            f"registered: {list(registered_algorithms(op_type)) or 'none'}"
        ) from None


def registered_algorithms(op_type: str) -> tuple[str, ...]:
    """Algorithms registered for ``op_type``, sorted (drives sweeps)."""
    return tuple(sorted(a for (t, a) in _STRATEGIES if t == op_type))


# Nominal per-step fixed cost of the simulated fabrics, expressed as the
# bytes a link moves in one protocol round trip (latency · bandwidth:
# ~6 us RDMA setup x ~8 GB/s effective EDR). Only the *crossover* of the
# auto rule depends on it; explicit algorithm= requests never consult it.
AUTO_LATENCY_BANDWIDTH_BYTES = 48 * 1024


def _tree_steps(world: int) -> int:
    """Full-buffer exchange rounds of the halving/doubling schedule."""
    if world < 2:
        return 0
    power = 1 << (world.bit_length() - 1)
    extra = 0 if power == world else 2  # fold-in + fold-out rounds
    return power.bit_length() - 1 + extra


def select_algorithm(op_type: str, nbytes: Optional[int], world: int) -> str:
    """Resolve ``algorithm="auto"`` for one lowered collective.

    The model behind the rule: a ring step moves ``nbytes / W`` per link
    and there are ``2 (W - 1)`` of them; a tree round moves the full
    buffer and there are ``~log2 W``. With ``C`` the per-step fixed cost
    in bytes (:data:`AUTO_LATENCY_BANDWIDTH_BYTES`), the tree wins iff

        ``s_tree * (C + B) < s_ring * C + (s_ring / W) * B``

    i.e. below a crossover payload proportional to ``C`` — small buffers
    are latency-bound (the ring's ``2 (W-1)`` steps dominate), large ones
    bandwidth-bound (the ring's ``2 (W-1)/W`` bytes win). Unknown static
    payloads (``nbytes is None``) default to the bandwidth-safe ring.
    """
    if op_type != "CollectiveAllReduce" or world < 2:
        return "ring"
    if nbytes is None:
        return "ring"
    s_tree = _tree_steps(world)
    s_ring = 2 * (world - 1)
    if s_tree >= s_ring:
        return "ring"
    slope = s_tree - s_ring / world
    if slope <= 0:
        return "tree"  # fewer steps *and* no wire-byte penalty
    crossover = AUTO_LATENCY_BANDWIDTH_BYTES * (s_ring - s_tree) / slope
    return "tree" if nbytes <= crossover else "ring"


def allreduce_time_lower_bound(nbytes: int, num_ranks: int, link_rate: float) -> float:
    """The textbook ring bound: ``2 (W-1)/W * nbytes / rate``."""
    if num_ranks < 2:
        return 0.0
    return 2.0 * (num_ranks - 1) / num_ranks * nbytes / link_rate


def _validate_ring(devices: Sequence, values: Sequence) -> list[SymbolicValue]:
    if len(devices) != len(values):
        raise InvalidArgumentError(
            f"{len(devices)} devices but {len(values)} values"
        )
    if not devices:
        raise InvalidArgumentError("a collective needs at least one rank")
    return [SymbolicValue.of(v) for v in values]


def _slowest_numpy_rate(devices: Sequence) -> float:
    """Host vector-op rate of the slowest rank.

    Every reduce-scatter/assembly step completes when the *last* rank
    finishes its local math, so on heterogeneous rings the slowest host
    gates each step.
    """
    return min(d.node.cpu.model.numpy_bytes_rate for d in devices)


@register_strategy("CollectiveAllReduce", "ring")
def ring_allreduce(
    devices: Sequence,
    values: Sequence,
    protocol: str = "rdma",
) -> Iterator:
    """Generator: sum-allreduce ``values`` across ``devices``.

    Args:
        devices: one simulated device per rank (the ring order).
        values: one ndarray or :class:`SymbolicValue` per rank, equal
            shapes; each rank contributes one addend.
        protocol: bulk transport for the ring traffic.

    Returns (via generator return value): the list of per-rank reduced
    values — every rank holds the full sum, as after ``MPI_Allreduce``.
    Concrete sums are accumulated in rank order starting from zeros, so
    every rank's copy is byte-identical to a central reduction of the
    same addends.
    """
    specs = _validate_ring(devices, values)
    world = len(devices)
    for spec in specs[1:]:
        if spec.shape != specs[0].shape or spec.dtype != specs[0].dtype:
            raise InvalidArgumentError(
                f"allreduce buffers disagree: {specs[0]} vs {spec}"
            )
    symbolic = any(isinstance(v, SymbolicValue) for v in values)
    if symbolic:
        # One *distinct* spec per rank: the reduced value has the input's
        # shape/dtype but is a fresh buffer on every rank — aliasing one
        # spec object across ranks (the old behaviour) made every rank's
        # "result" literally rank 0's input.
        result_per_rank = [
            SymbolicValue(specs[0].shape, specs[0].dtype) for _ in range(world)
        ]
    else:
        total = np.zeros(specs[0].shape, dtype=specs[0].dtype.np_dtype)
        for value in values:
            total = total + np.asarray(value)
        result_per_rank = [total.copy() for _ in range(world)]
    if world == 1:
        return result_per_rank

    env: Environment = devices[0].env
    nbytes = specs[0].nbytes
    # Chunks are ceil-divided; the last partial chunk costs like a full one
    # only in its final step, which the ceil approximates conservatively.
    chunk = -(-nbytes // world)
    add_seconds = chunk / _slowest_numpy_rate(devices)
    steps = 2 * (world - 1)
    for _step in range(steps):
        moves = []
        for rank in range(world):
            dst = (rank + 1) % world
            moves.append(
                env.process(
                    transports.transfer(
                        devices[rank], devices[dst], chunk, protocol
                    ),
                    name=f"ring:{rank}->{dst}",
                )
            )
        yield AllOf(env, moves)
        # Reduction math on each rank: one chunk-sized vector add per
        # reduce-scatter step. All ranks add concurrently, so the step
        # costs the slowest rank's add (negligible next to the wire time,
        # but accounted).
        if _step < world - 1:
            yield env.timeout(add_seconds)
    return result_per_rank


def _allreduce_setup(devices: Sequence, values: Sequence):
    """Shared validation + canonical result for every allreduce schedule.

    Every algorithm returns the *same* per-rank values — concrete sums
    accumulate in rank order starting from zeros — so algorithm choice
    can only ever move the simulated clock, never the bytes.
    """
    specs = _validate_ring(devices, values)
    world = len(devices)
    for spec in specs[1:]:
        if spec.shape != specs[0].shape or spec.dtype != specs[0].dtype:
            raise InvalidArgumentError(
                f"allreduce buffers disagree: {specs[0]} vs {spec}"
            )
    if any(isinstance(v, SymbolicValue) for v in values):
        result_per_rank = [
            SymbolicValue(specs[0].shape, specs[0].dtype) for _ in range(world)
        ]
    else:
        total = np.zeros(specs[0].shape, dtype=specs[0].dtype.np_dtype)
        for value in values:
            total = total + np.asarray(value)
        result_per_rank = [total.copy() for _ in range(world)]
    return specs, result_per_rank


@register_strategy("CollectiveAllReduce", "tree")
def tree_allreduce(
    devices: Sequence,
    values: Sequence,
    protocol: str = "rdma",
) -> Iterator:
    """Generator: latency-optimal allreduce by recursive halving/doubling.

    With ``W = 2^k`` ranks: ``k`` rounds; in round ``j`` every rank
    exchanges its **full** buffer with the partner at distance ``2^j``
    and adds, all pairs concurrent. Non-power-of-two worlds fold the
    ``r = W - 2^k`` extra ranks into their partners first (one round)
    and fan the result back out last (one round). ``O(log W)`` latency
    steps instead of the ring's ``2 (W - 1)``, at ``log2(W)`` x the wire
    bytes — the winning trade for scalars and small tensors, losing at
    bandwidth scale (``benchmarks/bench_collective_algos.py`` maps the
    crossover).

    Returns the per-rank reduced values, byte-identical to
    :func:`ring_allreduce`'s (same canonical rank-order accumulation).
    """
    specs, result_per_rank = _allreduce_setup(devices, values)
    world = len(devices)
    if world == 1:
        return result_per_rank

    env: Environment = devices[0].env
    nbytes = specs[0].nbytes
    add_seconds = nbytes / _slowest_numpy_rate(devices)
    power = 1 << (world.bit_length() - 1)
    extras = world - power

    def exchange(pairs):
        """One round: every (a, b) trades full buffers, duplex links."""
        moves = []
        for a, b in pairs:
            moves.append(env.process(
                transports.transfer(devices[a], devices[b], nbytes, protocol),
                name=f"tree:{a}->{b}",
            ))
            moves.append(env.process(
                transports.transfer(devices[b], devices[a], nbytes, protocol),
                name=f"tree:{b}->{a}",
            ))
        return AllOf(env, moves)

    if extras:
        # Fold-in: extra rank (power + i) sends its addend to partner i.
        moves = [
            env.process(
                transports.transfer(
                    devices[power + i], devices[i], nbytes, protocol
                ),
                name=f"tree:fold{power + i}->{i}",
            )
            for i in range(extras)
        ]
        yield AllOf(env, moves)
        yield env.timeout(add_seconds)
    distance = 1
    while distance < power:
        pairs = [
            (rank, rank + distance)
            for rank in range(power)
            if rank & distance == 0
        ]
        yield exchange(pairs)
        yield env.timeout(add_seconds)
        distance <<= 1
    if extras:
        # Fold-out: partners return the finished sum to the extra ranks.
        moves = [
            env.process(
                transports.transfer(
                    devices[i], devices[power + i], nbytes, protocol
                ),
                name=f"tree:unfold{i}->{power + i}",
            )
            for i in range(extras)
        ]
        yield AllOf(env, moves)
    return result_per_rank


@register_strategy("CollectiveReduceScatter", "ring")
def ring_reduce_scatter(
    devices: Sequence,
    values: Sequence,
    protocol: str = "rdma",
) -> Iterator:
    """Generator: sum-reduce ``values``, leaving block ``r`` on rank ``r``.

    The ring allreduce's first half standalone: ``W - 1`` steps each move
    one axis-0 block to the ring neighbour (all links concurrent) and
    reduce on arrival — every rank ends holding only its ``1/W`` share of
    the sum, having moved ``(W-1)/W`` of the buffer. The primitive for
    sharded-state updates that never need the full result per rank.

    Requires equal rank >= 1 buffers whose leading dimension divides by
    the world size. Returns one axis-0 block per rank (rank ``r`` gets
    block ``r`` of the canonical rank-order sum).
    """
    specs = _validate_ring(devices, values)
    world = len(devices)
    for spec in specs[1:]:
        if spec.shape != specs[0].shape or spec.dtype != specs[0].dtype:
            raise InvalidArgumentError(
                f"reduce_scatter buffers disagree: {specs[0]} vs {spec}"
            )
    if specs[0].ndim == 0:
        raise InvalidArgumentError(
            "reduce_scatter needs tensors of rank >= 1 (got a scalar)"
        )
    if specs[0].shape[0] % world != 0:
        raise InvalidArgumentError(
            f"reduce_scatter needs a leading dimension divisible by the "
            f"world size: {specs[0].shape[0]} rows across {world} ranks"
        )
    rows = specs[0].shape[0] // world
    block_shape = (rows, *specs[0].shape[1:])
    if any(isinstance(v, SymbolicValue) for v in values):
        result_per_rank = [
            SymbolicValue(block_shape, specs[0].dtype) for _ in range(world)
        ]
    else:
        total = np.zeros(specs[0].shape, dtype=specs[0].dtype.np_dtype)
        for value in values:
            total = total + np.asarray(value)
        result_per_rank = [
            np.ascontiguousarray(total[rank * rows:(rank + 1) * rows])
            for rank in range(world)
        ]
    if world == 1:
        return result_per_rank

    env: Environment = devices[0].env
    chunk = specs[0].nbytes // world
    add_seconds = chunk / _slowest_numpy_rate(devices)
    for _step in range(world - 1):
        moves = []
        for rank in range(world):
            dst = (rank + 1) % world
            moves.append(
                env.process(
                    transports.transfer(
                        devices[rank], devices[dst], chunk, protocol
                    ),
                    name=f"reduce_scatter:{rank}->{dst}",
                )
            )
        yield AllOf(env, moves)
        # Every step reduces the arriving block into the local partial.
        yield env.timeout(add_seconds)
    return result_per_rank


@register_strategy("CollectiveAllGather", "ring")
def ring_allgather(
    devices: Sequence,
    values: Sequence,
    protocol: str = "rdma",
) -> Iterator:
    """Generator: allgather ``values`` across ``devices`` (concat axis 0).

    ``W - 1`` steps; in step ``s`` every rank forwards the chunk it
    received in step ``s - 1`` (its own buffer initially) to the next
    rank, all links active concurrently. Every rank ends holding the
    rank-order concatenation — total traffic per link is
    ``(W-1)/W * total_bytes``, the bandwidth-optimal allgather.

    Returns the per-rank list of assembled values (one independent copy
    per rank).
    """
    specs = _validate_ring(devices, values)
    world = len(devices)
    for spec in specs[1:]:
        if spec.ndim != specs[0].ndim or spec.ndim == 0:
            raise InvalidArgumentError(
                f"allgather buffers must share a rank >= 1: "
                f"{specs[0]} vs {spec}"
            )
        if spec.shape[1:] != specs[0].shape[1:] or spec.dtype != specs[0].dtype:
            raise InvalidArgumentError(
                f"allgather buffers disagree beyond axis 0: "
                f"{specs[0]} vs {spec}"
            )
    symbolic = any(isinstance(v, SymbolicValue) for v in values)
    out_shape = (
        sum(spec.shape[0] for spec in specs),
        *specs[0].shape[1:],
    )
    if symbolic:
        result_per_rank = [
            SymbolicValue(out_shape, specs[0].dtype) for _ in range(world)
        ]
    else:
        full = np.concatenate([np.asarray(v) for v in values], axis=0)
        result_per_rank = [full.copy() for _ in range(world)]
    if world == 1:
        return result_per_rank

    env: Environment = devices[0].env
    for step in range(world - 1):
        moves = []
        for rank in range(world):
            # Rank r forwards the chunk that originated at rank (r - step).
            origin = (rank - step) % world
            dst = (rank + 1) % world
            moves.append(
                env.process(
                    transports.transfer(
                        devices[rank], devices[dst],
                        specs[origin].nbytes, protocol,
                    ),
                    name=f"allgather:{rank}->{dst}",
                )
            )
        yield AllOf(env, moves)
    # Local assembly: every rank copies the W chunks into one contiguous
    # buffer; the slowest host gates the (concurrent) copies.
    total_nbytes = sum(spec.nbytes for spec in specs)
    yield env.timeout(total_nbytes / _slowest_numpy_rate(devices))
    return result_per_rank


def ring_broadcast(
    devices: Sequence,
    value,
    protocol: str = "rdma",
    root: int = 0,
) -> Iterator:
    """Generator: broadcast ``value`` from rank ``root`` to every rank.

    Pipelined ring: the buffer is cut into ``W`` chunks which stream
    around the ring; link ``j`` (hops from the root) is busy during steps
    ``j .. j + W - 1``, so the whole broadcast takes ``2W - 2`` chunk
    steps — for large buffers the time approaches one buffer traversal
    regardless of ``W``, instead of the root serializing ``W - 1`` full
    sends.

    Returns the per-rank list of value copies (root's own entry is an
    independent copy too).
    """
    world = len(devices)
    if world == 0:
        raise InvalidArgumentError("a collective needs at least one rank")
    if not 0 <= root < world:
        raise InvalidArgumentError(f"broadcast root {root} not in [0, {world})")
    spec = SymbolicValue.of(value)
    if isinstance(value, SymbolicValue):
        result_per_rank = [
            SymbolicValue(spec.shape, spec.dtype) for _ in range(world)
        ]
    else:
        arr = np.asarray(value)
        result_per_rank = [arr.copy() for _ in range(world)]
    if world == 1:
        return result_per_rank

    env: Environment = devices[0].env
    chunks = world
    chunk = -(-spec.nbytes // chunks)
    for step in range(chunks + world - 2):
        moves = []
        for hop in range(world - 1):
            if hop <= step <= hop + chunks - 1:
                src = devices[(root + hop) % world]
                dst = devices[(root + hop + 1) % world]
                moves.append(
                    env.process(
                        transports.transfer(src, dst, chunk, protocol),
                        name=f"bcast:{hop}",
                    )
                )
        yield AllOf(env, moves)
    return result_per_rank


@register_strategy("CollectiveBroadcast", "ring")
def _broadcast_strategy(
    devices: Sequence,
    values: Sequence,
    protocol: str = "rdma",
) -> Iterator:
    """Uniform-signature adapter: the root's payload is ``values[0]``."""
    return ring_broadcast(devices, values[0], protocol, root=0)
