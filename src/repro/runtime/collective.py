"""Ring allreduce — the MPI-style collective the paper points to.

The discussion section names Uber's Horovod and Cray's ML plugin as the
way past the parameter-server/reducer model: "an MPI communication
backend for functions such as allreduce without needing the use of
dedicated servers". This module implements the classic bandwidth-optimal
ring allreduce over the simulated transports so the two designs can be
compared head-to-head (see ``benchmarks/bench_ablations.py``).

Algorithm: with ``W`` ranks the buffer is cut into ``W`` chunks;
``W - 1`` reduce-scatter steps followed by ``W - 1`` allgather steps each
move one chunk to the ring neighbour, all links active concurrently.
Every rank sends and receives ``2 (W-1)/W`` of the buffer — independent
of ``W`` — which is exactly why it beats a central reducer.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

import numpy as np

from repro.core.tensor import SymbolicValue, value_nbytes
from repro.errors import InvalidArgumentError
from repro.simnet import transports
from repro.simnet.events import AllOf, Environment

__all__ = ["ring_allreduce", "allreduce_time_lower_bound"]


def allreduce_time_lower_bound(nbytes: int, num_ranks: int, link_rate: float) -> float:
    """The textbook ring bound: ``2 (W-1)/W * nbytes / rate``."""
    if num_ranks < 2:
        return 0.0
    return 2.0 * (num_ranks - 1) / num_ranks * nbytes / link_rate


def ring_allreduce(
    devices: Sequence,
    values: Sequence,
    protocol: str = "rdma",
) -> Iterator:
    """Generator: sum-allreduce ``values`` across ``devices``.

    Args:
        devices: one simulated device per rank (the ring order).
        values: one ndarray or :class:`SymbolicValue` per rank, equal
            shapes; each rank contributes one addend.
        protocol: bulk transport for the ring traffic.

    Returns (via generator return value): the list of per-rank reduced
    values — every rank holds the full sum, as after ``MPI_Allreduce``.
    """
    if len(devices) != len(values):
        raise InvalidArgumentError(
            f"{len(devices)} devices but {len(values)} values"
        )
    world = len(devices)
    if world == 0:
        raise InvalidArgumentError("allreduce needs at least one rank")
    specs = [SymbolicValue.of(v) for v in values]
    for spec in specs[1:]:
        if spec.shape != specs[0].shape or spec.dtype != specs[0].dtype:
            raise InvalidArgumentError(
                f"allreduce buffers disagree: {specs[0]} vs {spec}"
            )
    symbolic = any(isinstance(v, SymbolicValue) for v in values)
    if symbolic:
        result_per_rank = [specs[0]] * world
    else:
        total = np.zeros(specs[0].shape, dtype=specs[0].dtype.np_dtype)
        for value in values:
            total = total + np.asarray(value)
        result_per_rank = [total.copy() for _ in range(world)]
    if world == 1:
        return result_per_rank

    env: Environment = devices[0].env
    nbytes = specs[0].nbytes
    # Chunks are ceil-divided; the last partial chunk costs like a full one
    # only in its final step, which the ceil approximates conservatively.
    chunk = -(-nbytes // world)
    steps = 2 * (world - 1)
    for _step in range(steps):
        moves = []
        for rank in range(world):
            dst = (rank + 1) % world
            moves.append(
                env.process(
                    transports.transfer(
                        devices[rank], devices[dst], chunk, protocol
                    ),
                    name=f"ring:{rank}->{dst}",
                )
            )
        yield AllOf(env, moves)
        # Reduction math on each rank: one chunk-sized vector add per
        # reduce-scatter step (charged on the device's host; negligible
        # next to the wire time, but accounted).
        if _step < world - 1:
            add_seconds = chunk / devices[0].node.cpu.model.numpy_bytes_rate
            yield env.timeout(add_seconds)
    return result_per_rank
