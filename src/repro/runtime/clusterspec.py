"""Cluster specifications.

A :class:`ClusterSpec` names the jobs (``ps``, ``worker``, …) of a
TensorFlow cluster and maps each job's task indices to server addresses —
Listing 2 of the paper::

    cluster = ClusterSpec({'ps': ['t01n01:8888'],
                           'worker': ['t01n02:8888', 't01n03:8888']})
"""

from __future__ import annotations

from typing import Mapping, Sequence, Union

from repro.errors import InvalidArgumentError, NotFoundError

__all__ = ["ClusterSpec"]

JobSpec = Union[Sequence[str], Mapping[int, str]]


class ClusterSpec:
    """An immutable mapping of jobs to task address lists."""

    def __init__(self, cluster: Union["ClusterSpec", Mapping[str, JobSpec]]):
        if isinstance(cluster, ClusterSpec):
            self._jobs = {j: dict(t) for j, t in cluster._jobs.items()}
            return
        if not isinstance(cluster, Mapping):
            raise InvalidArgumentError(
                f"ClusterSpec expects a mapping of jobs, got {type(cluster).__name__}"
            )
        self._jobs: dict[str, dict[int, str]] = {}
        for job, tasks in cluster.items():
            if isinstance(tasks, Mapping):
                parsed = {int(i): str(a) for i, a in tasks.items()}
            elif isinstance(tasks, Sequence) and not isinstance(tasks, (str, bytes)):
                parsed = {i: str(a) for i, a in enumerate(tasks)}
            else:
                raise InvalidArgumentError(
                    f"Job {job!r} must map to a list or dict of addresses"
                )
            if not parsed:
                raise InvalidArgumentError(f"Job {job!r} has no tasks")
            for index, address in parsed.items():
                if index < 0:
                    raise InvalidArgumentError(
                        f"Negative task index {index} in job {job!r}"
                    )
                if ":" not in address:
                    raise InvalidArgumentError(
                        f"Address {address!r} in job {job!r} is not host:port"
                    )
            self._jobs[str(job)] = parsed
        if not self._jobs:
            raise InvalidArgumentError("ClusterSpec has no jobs")

    # -- queries ----------------------------------------------------------------
    @property
    def jobs(self) -> list[str]:
        return sorted(self._jobs)

    def num_tasks(self, job: str) -> int:
        return len(self._job(job))

    def task_indices(self, job: str) -> list[int]:
        return sorted(self._job(job))

    def task_address(self, job: str, task_index: int) -> str:
        tasks = self._job(job)
        try:
            return tasks[task_index]
        except KeyError:
            raise NotFoundError(
                f"Job {job!r} has no task {task_index} "
                f"(indices: {sorted(tasks)})"
            ) from None

    def job_tasks(self, job: str) -> list[str]:
        tasks = self._job(job)
        return [tasks[i] for i in sorted(tasks)]

    def all_addresses(self) -> list[str]:
        out = []
        for job in self.jobs:
            out.extend(self.job_tasks(job))
        return out

    def as_dict(self) -> dict[str, list[str]]:
        return {job: self.job_tasks(job) for job in self.jobs}

    def _job(self, job: str) -> dict[int, str]:
        try:
            return self._jobs[job]
        except KeyError:
            raise NotFoundError(
                f"Unknown job {job!r} (jobs: {self.jobs})"
            ) from None

    # -- protocol --------------------------------------------------------------
    def __eq__(self, other) -> bool:
        if not isinstance(other, ClusterSpec):
            return NotImplemented
        return self._jobs == other._jobs

    def __hash__(self) -> int:
        return hash(
            tuple(
                (job, tuple(sorted(tasks.items())))
                for job, tasks in sorted(self._jobs.items())
            )
        )

    def __contains__(self, job: str) -> bool:
        return job in self._jobs

    def __repr__(self) -> str:
        return f"ClusterSpec({self.as_dict()!r})"
