"""Coordinator and QueueRunner analogs.

TF 1.x input pipelines are driven by ``QueueRunner`` threads supervised by
a ``Coordinator``. Here "threads" are simulation processes; the paper's
observation that "the Global Interpreter Lock ... prevents concurrent
thread execution, which QueueRunners are dependent on" is modelled by the
per-task GIL resource that host-bound op phases contend on.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.graph import Operation
from repro.errors import CancelledError, OutOfRangeError, ReproError
from repro.simnet.events import AllOf, Environment, Process

__all__ = ["Coordinator", "QueueRunner"]


class Coordinator:
    """Cooperative stop signalling for a set of simulation processes."""

    def __init__(self, env: Environment):
        self.env = env
        self._stop_requested = False
        self._processes: list[Process] = []
        self._exceptions: list[BaseException] = []

    def should_stop(self) -> bool:
        return self._stop_requested

    def request_stop(self, exc: Optional[BaseException] = None) -> None:
        if exc is not None:
            self._exceptions.append(exc)
        self._stop_requested = True

    def register(self, process: Process) -> Process:
        self._processes.append(process)
        return process

    def join(self):
        """Generator: wait for all registered processes; re-raise errors."""
        pending = [p for p in self._processes if p.is_alive]
        if pending:
            yield AllOf(self.env, pending)
        if self._exceptions:
            raise self._exceptions[0]
        return None

    def stop_on_exception(self, exc: BaseException) -> bool:
        """Record clean-shutdown exceptions; returns True when absorbed."""
        if isinstance(exc, (OutOfRangeError, CancelledError)):
            self.request_stop()
            return True
        self.request_stop(exc)
        return False


class QueueRunner:
    """Repeatedly runs enqueue op(s) until the input side is exhausted.

    ``create_processes(sess, coord)`` spawns one simulation process per
    enqueue op; each loops ``sess.run(enqueue_op)`` and, on
    ``OutOfRangeError`` (input exhausted) closes the queue so consumers
    drain and then stop — TF's exact shutdown protocol.
    """

    def __init__(self, queue, enqueue_ops: Iterable[Operation]):
        self.queue = queue
        self.enqueue_ops = list(enqueue_ops)
        if not self.enqueue_ops:
            raise ReproError("QueueRunner needs at least one enqueue op")
        self._close_op = None

    def _get_close_op(self):
        if self._close_op is None:
            self._close_op = self.queue.close()
        return self._close_op

    def create_processes(self, sess, coord: Coordinator) -> list[Process]:
        env = sess.env
        processes = []
        remaining = [len(self.enqueue_ops)]

        def runner_loop(op):
            try:
                while not coord.should_stop():
                    yield from sess.run_gen(op)
            except (OutOfRangeError, CancelledError) as exc:
                coord.stop_on_exception(exc)
                remaining[0] -= 1
                if remaining[0] == 0:
                    # Last producer out closes the queue.
                    yield from sess.run_gen(self._get_close_op())
            except (ReproError, RuntimeError) as exc:
                # RuntimeError covers session misuse (e.g. run after
                # close()); either way the coordinator must stop sibling
                # runners instead of leaving them blocked on dequeues.
                coord.stop_on_exception(exc)
                raise

        for op in self.enqueue_ops:
            proc = env.process(runner_loop(op), name=f"queue_runner:{op.name}")
            coord.register(proc)
            processes.append(proc)
        return processes
