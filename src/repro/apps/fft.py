"""Distributed 1-D FFT (paper Section IV, Fig. 6).

The length-``N`` complex signal is split into ``T`` interleaved tiles
(``x[t::T]``, the Cooley–Tukey decimation-in-time decomposition), stored
on the filesystem. Workers load their tiles, run the FFT on their GPU and
push ``(index, transform)`` into the merger's queue. The merger collects
all tiles and then recombines them **locally in Python/NumPy** with
twiddle factors — the serial host phase the paper identifies as the
bottleneck ("the process of merging in Python takes considerably longer
execution time than the computation part"). Scaling numbers therefore
time the run only up to the point where all tiles are collected, exactly
as the paper reports Fig. 11.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

import repro as tf
from repro.apps.common import ClusterHandle, build_cluster, session_config
from repro.errors import InvalidArgumentError, OutOfRangeError

__all__ = ["run_fft", "FFTResult", "merge_subtransforms"]


@dataclass
class FFTResult:
    """Outcome of one FFT configuration."""

    system: str
    n: int
    num_tiles: int
    num_gpus: int
    collect_seconds: float  # start -> all tiles at the merger (paper metric)
    merge_seconds: float  # serial Python recombination
    validated: bool
    max_error: float = 0.0
    spectrum: Optional[np.ndarray] = None  # merged transform (concrete mode)

    @property
    def flops(self) -> float:
        """The paper's convention: 5 N log2 N."""
        return 5.0 * self.n * math.log2(self.n)

    @property
    def gflops(self) -> float:
        """Gflops/s to the collection point — Fig. 11's metric."""
        return self.flops / self.collect_seconds / 1e9

    @property
    def gflops_with_merge(self) -> float:
        return self.flops / (self.collect_seconds + self.merge_seconds) / 1e9


def merge_subtransforms(tiles: list[np.ndarray]) -> np.ndarray:
    """Recombine FFTs of interleaved subsequences into the full FFT.

    ``tiles[t] = FFT(x[t::T])`` with ``T`` a power of two. Combines level
    by level (radix-2): the FFT of ``x[j::S]`` (length ``L``) is built
    from stride-``2S`` transforms as
    ``F_{j,S}[k] = F_{j,2S}[k mod L/2] + exp(-2πik/L) F_{j+S,2S}[k mod L/2]``.
    """
    t_count = len(tiles)
    if t_count & (t_count - 1):
        raise InvalidArgumentError(f"num_tiles must be a power of two, got {t_count}")
    level = {j: np.asarray(tile, dtype=np.complex128)
             for j, tile in enumerate(tiles)}
    stride = t_count
    while stride > 1:
        half = stride // 2
        merged = {}
        for j in range(half):
            even = level[j]
            odd = level[j + half]
            length = 2 * even.shape[0]
            k = np.arange(length)
            twiddle = np.exp(-2j * np.pi * k / length)
            doubled_even = np.concatenate([even, even])
            doubled_odd = np.concatenate([odd, odd])
            merged[j] = doubled_even + twiddle * doubled_odd
        level = merged
        stride = half
    return level[0]


def _store_tiles(fs, n, num_tiles, shape_only, seed, signal=None):
    tile_len = n // num_tiles
    if shape_only:
        for t in range(num_tiles):
            fs.declare_file(f"fft_tile_{t}.npy", (tile_len,), "complex128")
        return None
    if signal is not None:
        signal = np.asarray(signal, dtype=np.complex128)
        if signal.shape != (n,):
            raise InvalidArgumentError(
                f"signal shape {signal.shape} does not match n={n}"
            )
    else:
        rng = np.random.default_rng(seed)
        signal = (rng.standard_normal(n) + 1j * rng.standard_normal(n)).astype(
            np.complex128
        )
    for t in range(num_tiles):
        fs.store_array(f"fft_tile_{t}.npy", np.ascontiguousarray(signal[t::num_tiles]))
    return signal


def run_fft(
    system: str = "tegner-k80",
    n: int = 1 << 12,
    num_tiles: int = 8,
    num_gpus: int = 2,
    protocol: str = "grpc+verbs",
    shape_only: bool = True,
    queue_capacity: int = 8,
    seed: int = 0,
    cluster: Optional[ClusterHandle] = None,
    signal=None,
    optimize: Optional[bool] = None,
) -> FFTResult:
    """Run the distributed FFT application.

    Paper configurations: K420 — ``n=2**29`` in 64 tiles; K80 —
    ``n=2**31`` in 128 tiles; 1 merger + {2, 4, 8} GPUs.
    """
    if n % num_tiles != 0:
        raise InvalidArgumentError(f"num_tiles {num_tiles} must divide n {n}")
    if num_tiles & (num_tiles - 1):
        raise InvalidArgumentError("num_tiles must be a power of two")
    tile_len = n // num_tiles
    handle = cluster or build_cluster(
        system, {"merger": 1, "worker": num_gpus}, protocol=protocol
    )
    env = handle.env
    fs = handle.filesystem
    signal = _store_tiles(fs, n, num_tiles, shape_only, seed, signal=signal)

    g = tf.Graph(seed=seed)
    with g.as_default():
        with g.device("/job:merger/task:0/device:cpu:0"):
            result_queue = tf.FIFOQueue(
                queue_capacity, [tf.int64, tf.complex128],
                shapes=[[], [tile_len]], name="results",
            )
            pop = result_queue.dequeue(name="pop")
        enqueue_ops = []
        for w in range(num_gpus):
            my_tiles = np.asarray(
                [t for t in range(num_tiles) if t % num_gpus == w],
                dtype=np.int64,
            )
            if my_tiles.size == 0:
                continue
            with g.device(f"/job:worker/task:{w}/device:cpu:0"):
                ds = tf.Dataset.from_tensor_slices(my_tiles)
                idx = ds.make_one_shot_iterator(name=f"tiles_w{w}").get_next()
                raw = tf.read_tile("fft_tile_{0}.npy", [idx],
                                   dtype=tf.complex128, shape=[tile_len],
                                   name=f"load_w{w}")
            with g.device(f"/job:worker/task:{w}/device:gpu:0"):
                spectrum = tf.fft(raw, name=f"fft_w{w}")
            enqueue_ops.append(result_queue.enqueue([idx, spectrum],
                                                    name=f"push_w{w}"))

    shape_cfg = session_config(shape_only=shape_only, optimize=optimize)
    state = {"collect_end": None, "merge_end": None}
    collected: dict[int, np.ndarray] = {}

    def worker_proc(op_index: int):
        sess = tf.Session(handle.server("worker", op_index), graph=g,
                          config=shape_cfg)
        try:
            while True:
                yield from sess.run_gen(enqueue_ops[op_index])
        except OutOfRangeError:
            return

    def merger_proc():
        sess = tf.Session(handle.server("merger", 0), graph=g,
                          config=shape_cfg)
        node = handle.server("merger", 0).runtime.node
        tile_bytes = tile_len * 16
        # Extracting a dequeued tile into the client's collection buffer is
        # a serial host-side copy; the paper found this extraction path
        # expensive enough that naive slicing insertion "prevented any
        # scaling" — even the improved version caps the merger's intake.
        extract_rate = node.cpu.model.numpy_bytes_rate / 1.5
        for _ in range(num_tiles):
            idx_val, data = yield from sess.run_gen(list(pop))
            yield env.timeout(tile_bytes / extract_rate)
            if not shape_only:
                collected[int(idx_val)] = data
        state["collect_end"] = env.now
        # Serial Python/NumPy merge on the merger host: log2(T) passes,
        # each streaming ~3 length-N complex arrays through the interpreter.
        passes = math.log2(num_tiles)
        merge_bytes = 3.0 * n * 16 * passes
        yield env.timeout(merge_bytes / node.cpu.model.python_bytes_rate)
        state["merge_end"] = env.now

    start = env.now
    procs = [env.process(worker_proc(i)) for i in range(len(enqueue_ops))]
    procs.append(env.process(merger_proc()))
    for proc in procs:
        env.run(until=proc)

    validated = False
    max_error = 0.0
    merged = None
    if not shape_only:
        tiles = [collected[t] for t in range(num_tiles)]
        merged = merge_subtransforms(tiles)
        reference = np.fft.fft(signal)
        max_error = float(np.max(np.abs(merged - reference)))
        scale = float(np.max(np.abs(reference))) or 1.0
        validated = bool(max_error / scale < 1e-9)
    return FFTResult(
        system=system,
        n=n,
        num_tiles=num_tiles,
        num_gpus=num_gpus,
        collect_seconds=state["collect_end"] - start,
        merge_seconds=state["merge_end"] - state["collect_end"],
        validated=validated,
        max_error=max_error,
        spectrum=merged,
    )
