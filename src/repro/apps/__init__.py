"""The paper's four HPC applications, written against the public API.

Each app follows the paper's "data-driven" formulation (Section IV):
datasets of tile indices, GPU compute, FIFO-queue reducers/mergers, and
parameter-server state. Every app runs in *concrete* mode (real NumPy
numerics, validated against references) or *shape-only* mode (paper-scale
problems; the DES clock produces the performance numbers).
"""

from repro.apps.cg import CGResult, run_cg
from repro.apps.common import ClusterHandle, build_cluster
from repro.apps.fft import FFTResult, run_fft
from repro.apps.matmul import MatmulResult, run_matmul
from repro.apps.serving import (
    ServingLoadResult,
    build_mlp_server,
    run_serving_load,
)
from repro.apps.sgd import SGDResult, run_sgd
from repro.apps.stencil import StencilResult, run_stencil
from repro.apps.stream import StreamResult, run_stream

__all__ = [
    "ClusterHandle",
    "build_cluster",
    "run_stream",
    "StreamResult",
    "run_matmul",
    "MatmulResult",
    "run_cg",
    "CGResult",
    "run_fft",
    "FFTResult",
    "run_stencil",
    "StencilResult",
    "run_sgd",
    "SGDResult",
    "build_mlp_server",
    "run_serving_load",
    "ServingLoadResult",
]
