"""Distributed Conjugate Gradient solver (paper Section IV, Fig. 5).

The SPD system ``A x = b`` is split into horizontal row blocks, one per
worker; each worker keeps its block and its slices of ``x``/``r`` in
persistent variables on its GPU (the paper's workaround for the 2 GB
GraphDef limit: only the loop *body* is a graph, state lives in
variables). Per iteration:

* local matvec ``q_w = A_w p`` on the worker's GPU;
* two scalar reductions (``p·q`` and ``r·r``) through queue-based
  reducers (Fig. 5's two-queue pattern);
* an allgather of the updated ``p`` slices through a gather queue, with
  the concatenation done in NumPy on the reducer task (the paper uses
  NumPy for "merging and other auxiliary operations").

Computation is double precision, as in the paper, and checkpoint/restart
is supported through :class:`repro.core.checkpoint.Saver`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

import repro as tf
from repro.apps.common import (
    ClusterHandle,
    build_cluster,
    session_config,
    task_device,
)
from repro.core.checkpoint import Saver, latest_checkpoint, read_checkpoint
from repro.core.tensor import SymbolicValue
from repro.errors import (
    DataLossError,
    DeadlineExceededError,
    InvalidArgumentError,
    NotFoundError,
    UnavailableError,
)
from repro.runtime.sync import QueueReducer
from repro.simnet.events import Interrupt
from repro.simnet.faults import FaultInjector

__all__ = [
    "run_cg",
    "run_cg_single",
    "run_cg_with_recovery",
    "cg_step",
    "CGResult",
    "CGSingleResult",
    "CGRecoveryResult",
    "make_spd_problem",
]


@dataclass
class CGResult:
    """Outcome of one CG configuration."""

    system: str
    n: int
    num_gpus: int
    iterations: int
    elapsed: float  # simulated seconds, iteration loop only
    residual: float  # ||b - A x|| / ||b|| (concrete mode only)
    validated: bool
    checkpoint_path: Optional[str] = None
    solution: Optional[np.ndarray] = None  # assembled x (concrete mode)
    # Total schedulable plan items across all sessions' cached plans —
    # the optimizer benchmark's item-count metric.
    plan_items: int = 0
    # Fault outcome: the run was cut short by an injected worker loss
    # (``crashed``); ``completed_step`` is the highest iteration number
    # every worker had committed when the loss was detected, and
    # ``fault_detail`` carries the detection exception's message.
    crashed: bool = False
    completed_step: int = 0
    fault_detail: Optional[str] = None

    @property
    def flops(self) -> float:
        """The paper's convention: iterations * 2 * N^2 (matvec only)."""
        return self.iterations * 2.0 * float(self.n) ** 2

    @property
    def gflops(self) -> float:
        return self.flops / self.elapsed / 1e9

    @property
    def seconds_per_iteration(self) -> float:
        return self.elapsed / self.iterations


def make_spd_problem(n: int, seed: int = 0):
    """A well-conditioned SPD system (for concrete validation runs)."""
    rng = np.random.default_rng(seed)
    m = rng.standard_normal((n, n))
    a = m @ m.T / n + np.eye(n) * 2.0
    b = rng.standard_normal(n)
    return a, b


def _store_problem(fs, n, num_gpus, shape_only, seed, problem=None):
    rows = n // num_gpus
    if shape_only:
        for w in range(num_gpus):
            fs.declare_file(f"cg_A_{w}.npy", (rows, n), "float64")
            fs.declare_file(f"cg_b_{w}.npy", (rows,), "float64")
        return None, None
    if problem is not None:
        a, b = problem
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        if a.shape != (n, n) or b.shape != (n,):
            raise InvalidArgumentError(
                f"problem shapes {a.shape}/{b.shape} do not match n={n}"
            )
    else:
        a, b = make_spd_problem(n, seed)
    for w in range(num_gpus):
        fs.store_array(f"cg_A_{w}.npy", a[w * rows:(w + 1) * rows])
        fs.store_array(f"cg_b_{w}.npy", b[w * rows:(w + 1) * rows])
    return a, b


def run_cg(
    system: str = "kebnekaise-v100",
    n: int = 512,
    num_gpus: int = 2,
    iterations: int = 500,
    protocol: str = "grpc+verbs",
    shape_only: bool = True,
    seed: int = 0,
    checkpoint_dir: Optional[str] = None,
    checkpoint_every: Optional[int] = None,
    resume_dir: Optional[str] = None,
    cluster: Optional[ClusterHandle] = None,
    problem=None,
    optimize: Optional[bool] = None,
    kernel_fusion: Optional[bool] = None,
    fault_plan=None,
    start_step: int = 0,
    resume_step: Optional[int] = None,
) -> CGResult:
    """Run the distributed CG solver.

    Args:
        n: matrix dimension (paper: 16384, 32768, 65536).
        num_gpus: worker count == row blocks (must divide n).
        iterations: fixed iteration count (paper: 500).
        checkpoint_dir/checkpoint_every: snapshot worker state every k
            iterations (concrete mode). Snapshots are step-tagged
            (``cg_w{w}-{step}``) so a recovery driver can pick the
            newest step *all* workers completed.
        resume_dir: restore worker state from checkpoints and skip setup.
        problem: optional concrete ``(A, b)`` pair (e.g. a discretized PDE,
            the paper's motivating CG use case); defaults to a random SPD
            system.
        optimize: force plan-time graph optimization and the executor fast
            path on/off for every session (``None`` keeps the defaults);
            used by ``benchmarks/bench_optimizer.py`` for A/B comparisons.
        kernel_fusion: enable the opt-in compiled executor lane (pure-op
            chain fusion; ``benchmarks/bench_compiled.py`` A/Bs it).
        fault_plan: a :class:`repro.simnet.faults.FaultPlan` to install
            on the cluster. A worker crash interrupts that worker's sim
            process; the run returns early with ``crashed=True`` instead
            of hanging (use :func:`run_cg_with_recovery` to restart).
        start_step: absolute iteration number this run starts at (resumed
            runs); checkpoint tags continue from here.
        resume_step: restore every worker from exactly
            ``cg_w{w}-{resume_step}`` (a consistent cross-worker cut)
            instead of each worker's newest checkpoint.
    """
    if n % num_gpus != 0:
        raise InvalidArgumentError(f"num_gpus {num_gpus} must divide n {n}")
    rows = n // num_gpus
    handle = cluster or build_cluster(
        system, {"reducer": 1, "worker": num_gpus}, protocol=protocol
    )
    env = handle.env
    fs = handle.filesystem
    injector = None
    if fault_plan is not None:
        injector = FaultInjector(fault_plan).install(handle.machine)
    a_full, b_full = _store_problem(fs, n, num_gpus, shape_only, seed,
                                    problem=problem)

    g = tf.Graph(seed=seed)
    reducer_device = task_device("reducer", 0, "cpu", 0)
    with g.as_default():
        pq_red = QueueReducer(num_gpus, dtype=tf.float64, device=reducer_device,
                              name="pq", graph=g)
        rs_red = QueueReducer(num_gpus, dtype=tf.float64, device=reducer_device,
                              name="rs", graph=g)
        with g.device(reducer_device):
            gather_in = tf.FIFOQueue(num_gpus, [tf.int64, tf.float64],
                                     shapes=[[], [rows]], name="gather_in")
            gather_out = tf.FIFOQueue(num_gpus, [tf.float64], shapes=[[n]],
                                      name="gather_out")
            full_p_feed = tf.placeholder(tf.float64, shape=[n], name="full_p")
            # One session run broadcasts all copies (Fig. 5: "a number of
            # copies equivalent to the total number of workers will be
            # pushed into the queue").
            gather_bcast = tf.group(
                *[gather_out.enqueue(full_p_feed, name=f"bcast_{w}")
                  for w in range(num_gpus)],
                name="bcast", graph=g,
            )
            gather_pops = [gather_in.dequeue(name=f"collect_{w}")
                           for w in range(num_gpus)]

        setup_ops, step_ops, rs_fetches, savers = [], [], [], []
        x_vars = []
        for w in range(num_gpus):
            dev = task_device("worker", w, "gpu", 0)
            with g.device(dev), g.name_scope(f"worker{w}"):
                a_var = tf.Variable(
                    tf.zeros([rows, n], dtype=tf.float64, graph=g), name="A")
                x_var = tf.Variable(
                    tf.zeros([rows], dtype=tf.float64, graph=g), name="x")
                r_var = tf.Variable(
                    tf.zeros([rows], dtype=tf.float64, graph=g), name="r")
                p_var = tf.Variable(
                    tf.zeros([n], dtype=tf.float64, graph=g), name="p")
                rs_var = tf.Variable(
                    tf.zeros([], dtype=tf.float64, graph=g), name="rs_old")
                x_vars.append(x_var)

                # ---- setup: load the block, r0 = b, p0 = gather(b) ------
                a_tile = tf.read_tile("cg_A_{0}.npy", [w], dtype=tf.float64,
                                      shape=[rows, n], name="loadA")
                b_tile = tf.read_tile("cg_b_{0}.npy", [w], dtype=tf.float64,
                                      shape=[rows], name="loadb")
                load_a = tf.assign(a_var, a_tile)
                init_x = tf.assign(x_var, tf.zeros([rows], dtype=tf.float64,
                                                   graph=g))
                init_r = tf.assign(r_var, b_tile)
                rs0_partial = tf.dot(init_r, init_r, name="rs0_partial")
                rs0 = rs_red.worker_reduce(rs0_partial, name="rs0")
                init_rs = tf.assign(rs_var, rs0)
                send_b = gather_in.enqueue(
                    [tf.constant(w, dtype=tf.int64), init_r], name="send_b")
                with g.control_dependencies([send_b]):
                    full_b = gather_out.dequeue(name="recv_p0")
                init_p = tf.assign(p_var, full_b)
                setup_ops.append(tf.group(
                    load_a.op, init_x.op, init_rs.op, init_p.op,
                    name="setup", graph=g))

                # ---- one CG iteration (the loop body as a graph) --------
                p_read = p_var.value()
                rs_read = rs_var.value()
                q = tf.matmul(a_var.value(), p_read, name="q")
                p_slice = tf.slice_(p_read, [w * rows], [rows], name="p_slice")
                pq_partial = tf.dot(p_slice, q, name="pq_partial")
                pq = pq_red.worker_reduce(pq_partial, name="pq")
                alpha = tf.divide(rs_read, pq, name="alpha")
                new_x = tf.assign_add(x_var, tf.multiply(alpha, p_slice))
                new_r = tf.assign_sub(r_var, tf.multiply(alpha, q))
                rs_partial = tf.dot(new_r, new_r, name="rs_partial")
                rs_new = rs_red.worker_reduce(rs_partial, name="rs")
                beta = tf.divide(rs_new, rs_read, name="beta")
                new_p_slice = tf.add(new_r, tf.multiply(beta, p_slice),
                                     name="new_p_slice")
                send_p = gather_in.enqueue(
                    [tf.constant(w, dtype=tf.int64), new_p_slice],
                    name="send_p")
                with g.control_dependencies([send_p]):
                    full_p = gather_out.dequeue(name="recv_p")
                # Order the state writes after the reads they supersede.
                with g.control_dependencies([p_read.op, q.op]):
                    store_p = tf.assign(p_var, full_p)
                with g.control_dependencies([rs_read.op, alpha.op, beta.op]):
                    store_rs = tf.assign(rs_var, rs_new)
                step_ops.append(tf.group(
                    new_x.op, store_p.op, store_rs.op, name="step", graph=g))
                rs_fetches.append(rs_new)
            savers.append(
                Saver([a_var, x_var, r_var, p_var, rs_var], graph=g)
                if (checkpoint_dir or resume_dir) else None
            )
        reducer_steps = tf.group(pq_red.reducer_step(), rs_red.reducer_step(),
                                 name="reduce_round", graph=g)
        rs_only_step = rs_red.reducer_step(name="rs_round")

    shape_cfg = session_config(shape_only=shape_only, optimize=optimize,
                               kernel_fusion=kernel_fusion)
    worker_sessions = [
        tf.Session(handle.server("worker", w), graph=g, config=shape_cfg)
        for w in range(num_gpus)
    ]
    reducer_session = tf.Session(handle.server("reducer", 0), graph=g,
                                 config=shape_cfg)
    reducer_node = handle.server("reducer", 0).runtime.node
    state = {"loop_start": None, "loop_end": None, "last_rs": None,
             "ready": 0, "done": 0, "iters": [0] * num_gpus}
    # The timed region is the iteration loop only: workers barrier after
    # setup (their block loads straggle on shared NICs) and the clock stops
    # when the last worker completes its final iteration.
    start_barrier = env.event()

    def gather_round():
        """Reducer side of one allgather: collect, concat in NumPy, bcast."""
        pairs = yield from reducer_session.run_gen(
            [t for pair in gather_pops for t in pair])
        # Assemble the full vector on the reducer host (NumPy concat).
        yield env.timeout(n * 8 / reducer_node.cpu.model.python_bytes_rate)
        if shape_only:
            full = SymbolicValue((n,), tf.float64)
        else:
            slices = {}
            for w in range(num_gpus):
                idx = int(pairs[2 * w])
                slices[idx] = pairs[2 * w + 1]
            full = np.concatenate([slices[w] for w in range(num_gpus)])
        yield from reducer_session.run_gen(
            gather_bcast, feed_dict={full_p_feed: full})

    def reducer_proc():
        if resume_dir is None:
            # Setup round: one rs reduction + one gather of b.
            yield from reducer_session.run_gen(rs_only_step)
            yield from gather_round()
        for _ in range(iterations):
            yield from reducer_session.run_gen(reducer_steps)
            yield from gather_round()

    def worker_proc(w: int):
        sess = worker_sessions[w]
        if resume_dir is not None:
            if resume_step is not None:
                path = os.path.join(resume_dir, f"cg_w{w}-{resume_step}")
            else:
                # Legacy untagged layout first, then the newest intact
                # step-tagged snapshot (trailing dash so w=1 cannot
                # match cg_w10-*).
                path = os.path.join(resume_dir, f"cg_w{w}")
                if not os.path.exists(path):
                    path = latest_checkpoint(resume_dir, prefix=f"cg_w{w}-")
                if path is None:
                    raise NotFoundError(
                        f"No checkpoint for worker {w} under {resume_dir!r}"
                    )
            yield from savers[w].restore_gen(sess, path)
        else:
            yield from sess.run_gen(setup_ops[w])
        state["ready"] += 1
        if state["ready"] == num_gpus:
            state["loop_start"] = env.now
            start_barrier.succeed()
        yield start_barrier
        for it in range(iterations):
            _, rs_value = yield from sess.run_gen([step_ops[w], rs_fetches[w]])
            state["iters"][w] = it + 1
            if w == 0:
                state["last_rs"] = rs_value
            if (checkpoint_dir and checkpoint_every
                    and (it + 1) % checkpoint_every == 0):
                yield from savers[w].save_gen(
                    sess, os.path.join(checkpoint_dir, f"cg_w{w}"),
                    global_step=start_step + it + 1,
                )
        state["done"] += 1
        if state["done"] == num_gpus:
            state["loop_end"] = env.now

    procs = [env.process(worker_proc(w)) for w in range(num_gpus)]
    if injector is not None:
        for w, proc in enumerate(procs):
            injector.register_worker("worker", w, proc)
    procs.append(env.process(reducer_proc()))
    crashed = False
    fault_detail = None
    try:
        for proc in procs:
            env.run(until=proc)
    except (Interrupt, DeadlineExceededError, UnavailableError) as exc:
        # A registered worker process was killed (or a deadline fired on
        # its peers): report the partial run instead of hanging. Recovery
        # is driver-level — see run_cg_with_recovery.
        crashed = True
        fault_detail = f"{type(exc).__name__}: {exc}"
    except RuntimeError as exc:
        if fault_plan is None or "drained" not in str(exc):
            raise
        # The crash starved the calendar (e.g. the reducer parked on a
        # queue the dead worker will never feed): same outcome.
        crashed = True
        fault_detail = f"deadlock after fault: {exc}"
    if crashed:
        elapsed = (env.now - state["loop_start"]
                   if state["loop_start"] is not None else 0.0)
        return CGResult(
            system=system,
            n=n,
            num_gpus=num_gpus,
            iterations=iterations,
            elapsed=elapsed,
            residual=float("nan"),
            validated=False,
            checkpoint_path=checkpoint_dir,
            crashed=True,
            completed_step=start_step + min(state["iters"]),
            fault_detail=fault_detail,
        )
    elapsed = state["loop_end"] - state["loop_start"]

    residual = float("nan")
    validated = False
    x = None
    if not shape_only:
        x = np.concatenate([ws.run(xv) for ws, xv in zip(worker_sessions, x_vars)])
        if a_full is None:
            a_full, b_full = problem if problem is not None else make_spd_problem(n, seed)
        residual = float(
            np.linalg.norm(b_full - a_full @ x) / np.linalg.norm(b_full)
        )
        validated = bool(residual < 1e-6) if iterations >= n // 4 else bool(
            residual < 1.0
        )
    plan_items = sum(
        sess.plan_cache_info()["items"]
        for sess in (*worker_sessions, reducer_session)
    )
    return CGResult(
        system=system,
        n=n,
        num_gpus=num_gpus,
        iterations=iterations,
        elapsed=elapsed,
        residual=residual,
        validated=validated,
        checkpoint_path=checkpoint_dir,
        solution=x if not shape_only else None,
        plan_items=plan_items,
        completed_step=start_step + min(state["iters"]),
    )


# ---------------------------------------------------------------------------
# Checkpoint-restart recovery driver
# ---------------------------------------------------------------------------

def _common_checkpoint_step(checkpoint_dir: str,
                            num_gpus: int) -> Optional[int]:
    """Newest step at which EVERY worker has an intact checkpoint.

    Workers checkpoint independently, so a crash mid-round can leave
    worker 0 at step 6 and worker 1 at step 4; restoring a mixed cut
    would corrupt the solve. Only steps present — and readable — for all
    ``num_gpus`` workers qualify. Returns None when no consistent cut
    exists (restart from scratch).
    """
    if not os.path.isdir(checkpoint_dir):
        return None
    per_worker: list[set] = []
    for w in range(num_gpus):
        prefix = f"cg_w{w}-"
        steps = set()
        for entry in os.listdir(checkpoint_dir):
            if not entry.startswith(prefix) or entry.endswith(".tmp"):
                continue
            try:
                steps.add(int(entry[len(prefix):]))
            except ValueError:
                continue
        per_worker.append(steps)
    for step in sorted(set.intersection(*per_worker), reverse=True):
        try:
            for w in range(num_gpus):
                read_checkpoint(
                    os.path.join(checkpoint_dir, f"cg_w{w}-{step}"))
        except (DataLossError, NotFoundError):
            continue
        return step
    return None


@dataclass
class CGRecoveryResult:
    """Outcome of a fault-tolerant CG solve (restarts included)."""

    system: str
    n: int
    num_gpus: int
    iterations: int
    checkpoint_every: int
    total_elapsed: float  # simulated seconds summed across attempts
    recoveries: int = 0  # cluster restarts performed
    iterations_replayed: int = 0  # committed iterations recomputed
    residual: float = float("nan")
    validated: bool = False
    solution: Optional[np.ndarray] = None
    attempts: list = field(default_factory=list)  # CGResult per attempt

    @property
    def recovery_overhead(self) -> float:
        """Extra simulated time relative to the final (clean) attempt."""
        clean = self.attempts[-1].elapsed if self.attempts else 0.0
        return self.total_elapsed - clean


def run_cg_with_recovery(
    system: str = "kebnekaise-v100",
    n: int = 64,
    num_gpus: int = 2,
    iterations: int = 20,
    protocol: str = "grpc+verbs",
    seed: int = 0,
    checkpoint_dir: Optional[str] = None,
    checkpoint_every: int = 5,
    fault_plan=None,
    max_restarts: int = 4,
    problem=None,
) -> CGRecoveryResult:
    """Solve ``A x = b`` with checkpoint-restart across worker losses.

    The paper's CG fault-tolerance story end to end: run the distributed
    solver under a fault plan; when a worker is lost, find the newest
    iteration *every* worker checkpointed (a consistent cut), bring up a
    fresh cluster, restore all workers from that cut and continue the
    remaining iterations. Deterministic arithmetic means the recovered
    solution is byte-identical to an uninterrupted solve.

    The fault plan is installed on the first attempt only — a restart
    models replacement hardware, so consumed crash faults do not re-fire
    on the recovered cluster.
    """
    if checkpoint_dir is None:
        raise InvalidArgumentError("run_cg_with_recovery needs checkpoint_dir=")
    if checkpoint_every < 1:
        raise InvalidArgumentError(
            f"checkpoint_every must be >= 1, got {checkpoint_every}"
        )
    if problem is None:
        problem = make_spd_problem(n, seed)
    attempts: list = []
    plan = fault_plan
    start_step = 0
    resume_dir = None
    resume_step = None
    iterations_replayed = 0
    while True:
        res = run_cg(
            system=system, n=n, num_gpus=num_gpus,
            iterations=iterations - start_step, protocol=protocol,
            shape_only=False, seed=seed, checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every, resume_dir=resume_dir,
            problem=problem, fault_plan=plan, start_step=start_step,
            resume_step=resume_step,
        )
        attempts.append(res)
        if not res.crashed:
            break
        if len(attempts) > max_restarts:
            raise UnavailableError(
                f"CG solve still failing after {max_restarts} restarts: "
                f"{res.fault_detail}"
            )
        plan = None
        common = _common_checkpoint_step(checkpoint_dir, num_gpus)
        iterations_replayed += res.completed_step - (common or 0)
        if common is None:
            start_step, resume_dir, resume_step = 0, None, None
        else:
            start_step, resume_dir, resume_step = (
                common, checkpoint_dir, common)
    final = attempts[-1]
    return CGRecoveryResult(
        system=system,
        n=n,
        num_gpus=num_gpus,
        iterations=iterations,
        checkpoint_every=checkpoint_every,
        total_elapsed=sum(a.elapsed for a in attempts),
        recoveries=len(attempts) - 1,
        iterations_replayed=iterations_replayed,
        residual=final.residual,
        validated=final.validated,
        solution=final.solution,
        attempts=attempts,
    )


# ---------------------------------------------------------------------------
# Single-task CG: the same solver through both frontends
# ---------------------------------------------------------------------------

def cg_step(a, x, r, p, rs, device: str = ""):
    """One CG iteration over full state, as pure dataflow ops.

    The shared kernel of both frontends: traced by ``@repro.function``
    (arguments become placeholders) and reused verbatim by the
    hand-built graph-mode driver — byte-identical numerics and identical
    simulated time by construction. ``device`` is static metadata: the
    matvec and vector updates are pinned there, mirroring the
    distributed solver's per-worker GPU placement.
    """
    with tf.device(device or None):
        q = tf.matmul(a, p, name="q")
        pq = tf.dot(p, q, name="pq")
        alpha = tf.divide(rs, pq, name="alpha")
        x_new = tf.add(x, tf.multiply(alpha, p), name="x_new")
        r_new = tf.subtract(r, tf.multiply(alpha, q), name="r_new")
        rs_new = tf.dot(r_new, r_new, name="rs_new")
        beta = tf.divide(rs_new, rs, name="beta")
        p_new = tf.add(r_new, tf.multiply(beta, p), name="p_new")
    return x_new, r_new, p_new, rs_new


@dataclass
class CGSingleResult:
    """Outcome of one single-task CG run (either frontend)."""

    frontend: str
    system: str
    n: int
    iterations: int
    elapsed: float  # simulated seconds, iteration loop only
    residual: float
    solution: np.ndarray
    trace_count: int = 0  # function frontend only
    plan_cache: dict = None

    @property
    def seconds_per_iteration(self) -> float:
        return self.elapsed / self.iterations


def run_cg_single(
    system: str = "localhost",
    n: int = 64,
    iterations: int = 25,
    seed: int = 0,
    frontend: str = "function",
    problem=None,
    optimize: Optional[bool] = None,
) -> CGSingleResult:
    """Solve ``A x = b`` on one simulated worker, via either frontend.

    ``frontend="function"`` writes the solver imperatively: state lives
    in NumPy on the client, and each iteration calls the
    ``@repro.function``-traced :func:`cg_step` — traced once, then every
    call dispatches through the cached ConcreteFunction and the
    session's plan cache. ``frontend="graph"`` hand-builds the identical
    step graph with explicit placeholders and drives ``Session.run`` in
    a loop (the TF-1.x idiom). Both produce byte-identical values and
    identical simulated time, which the tier-1 suite asserts.
    """
    if frontend not in ("function", "graph"):
        raise InvalidArgumentError(
            f"frontend must be 'function' or 'graph', got {frontend!r}"
        )
    if problem is not None:
        a_full, b_full = problem
        a_full = np.asarray(a_full, dtype=np.float64)
        b_full = np.asarray(b_full, dtype=np.float64)
    else:
        a_full, b_full = make_spd_problem(n, seed)
    handle = build_cluster(system, {"worker": 1})
    server = handle.server("worker", 0)
    device = task_device("worker", 0, "gpu", 0)
    config = session_config(optimize=optimize)

    x = np.zeros(n, dtype=np.float64)
    r = b_full.copy()
    p = b_full.copy()
    rs = np.float64(r @ r)

    env = handle.env
    if frontend == "function":
        step = tf.function(cg_step, name="cg_step", seed=seed, target=server,
                           config=config)
        start = env.now
        for _ in range(iterations):
            x, r, p, rs = step(a_full, x, r, p, rs, device)
        elapsed = env.now - start
        trace_count = step.trace_count
        plan_cache = step.session.plan_cache_info()
    else:
        g = tf.Graph(seed=seed)
        with g.as_default(), g.name_scope("cg_step"):
            a_ph = tf.placeholder(tf.float64, shape=a_full.shape, name="a")
            x_ph = tf.placeholder(tf.float64, shape=[n], name="x")
            r_ph = tf.placeholder(tf.float64, shape=[n], name="r")
            p_ph = tf.placeholder(tf.float64, shape=[n], name="p")
            rs_ph = tf.placeholder(tf.float64, shape=[], name="rs")
            outputs = cg_step(a_ph, x_ph, r_ph, p_ph, rs_ph, device)
        sess = tf.Session(server, graph=g, config=config)
        start = env.now
        for _ in range(iterations):
            x, r, p, rs = sess.run(
                list(outputs),
                feed_dict={a_ph: a_full, x_ph: x, r_ph: r, p_ph: p, rs_ph: rs},
            )
        elapsed = env.now - start
        trace_count = 0
        plan_cache = sess.plan_cache_info()

    residual = float(np.linalg.norm(b_full - a_full @ x) / np.linalg.norm(b_full))
    return CGSingleResult(
        frontend=frontend,
        system=system,
        n=n,
        iterations=iterations,
        elapsed=elapsed,
        residual=residual,
        solution=x,
        trace_count=trace_count,
        plan_cache=plan_cache,
    )
