"""Shared infrastructure for the HPC applications.

``build_cluster`` reproduces the paper's deployment path end to end: pick
a machine (Section V), ask the simulated Slurm for an allocation, resolve
it into a ClusterSpec with per-task GPU masks (Section III), and boot one
server per task.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import Optional

from repro.errors import InvalidArgumentError
from repro.runtime.clusterspec import ClusterSpec
from repro.runtime.server import Server
from repro.simnet.events import Environment
from repro.simnet.machines import (
    NODE_TYPES,
    instances_per_node,
    kebnekaise,
    localhost,
    tegner,
)
from repro.slurm.cluster_resolver import SlurmClusterResolver
from repro.slurm.scontrol import Scontrol
from repro.slurm.workload_manager import SlurmWorkloadManager

__all__ = [
    "ClusterHandle",
    "build_cluster",
    "session_config",
    "task_device",
    "SYSTEMS",
]


def task_device(job: str, index: int, device_type: str = "gpu",
                device_index: int = 0) -> str:
    """Fully-qualified device string for one cluster task's device."""
    return f"/job:{job}/task:{index}/device:{device_type}:{device_index}"


def session_config(shape_only: bool = False, optimize: Optional[bool] = None,
                   fusion: Optional[bool] = None,
                   kernel_fusion: Optional[bool] = None):
    """The apps' shared SessionConfig: shape-only switch plus the A/B
    knob forcing plan-time optimization and the executor fast path on or
    off together (``None`` keeps the defaults). ``fusion=True`` also
    enables the opt-in collective gradient-bucket fusion pass, and
    ``kernel_fusion=True`` the opt-in compiled executor lane
    (plan-level pure-op chain fusion); both require graph optimization
    to be on."""
    from repro.core.session import SessionConfig

    config = SessionConfig(shape_only=shape_only)
    if optimize is not None:
        config.graph_optimization = optimize
        config.executor_fast_path = optimize
    if fusion is not None:
        config.optimizer.collective_fusion = fusion
        if fusion:
            config.graph_optimization = True
    if kernel_fusion is not None:
        config.optimizer.kernel_fusion = kernel_fusion
        if kernel_fusion:
            config.graph_optimization = True
    return config

# system name -> (machine factory kwargs builder, node_type)
SYSTEMS = {
    "tegner-k420": (lambda env, n: tegner(env, k420_nodes=n), "tegner-k420"),
    "tegner-k80": (lambda env, n: tegner(env, k80_nodes=n), "tegner-k80"),
    "kebnekaise-k80": (lambda env, n: kebnekaise(env, k80_nodes=n), "kebnekaise-k80"),
    "kebnekaise-v100": (lambda env, n: kebnekaise(env, v100_nodes=n), "kebnekaise-v100"),
    "localhost": (lambda env, n: localhost(env, num_gpus=max(n, 1)), "localhost"),
}


@dataclass
class ClusterHandle:
    """A booted simulated cluster ready to run an application."""

    env: Environment
    machine: object
    system: str
    cluster_spec: ClusterSpec
    servers: dict[tuple[str, int], Server]
    resolver: SlurmClusterResolver
    slurm: SlurmWorkloadManager

    def server(self, job: str, index: int) -> Server:
        return self.servers[(job, index)]

    @property
    def filesystem(self):
        return self.machine.filesystem

    def gpu_model(self):
        return NODE_TYPES[self.system.replace("localhost", "localhost")]["gpu_model"]


def build_cluster(
    system: str,
    jobs: dict[str, int],
    protocol: str = "grpc+verbs",
    env: Optional[Environment] = None,
    gpu_memory_fraction: float = 1.0,
    tasks_per_node: Optional[int] = None,
) -> ClusterHandle:
    """Boot a simulated cluster for an application.

    Args:
        system: one of :data:`SYSTEMS` (paper Section V configurations).
        jobs: job name -> task count, in placement order. The first-named
            jobs land on the first nodes (the paper places parameter
            servers / reducers ahead of workers).
        protocol: TF server protocol ("grpc", "grpc+mpi", "grpc+verbs").
        tasks_per_node: override Table I's instance density (the STREAM
            benchmark places one task per node to measure the fabric).
    """
    if system not in SYSTEMS:
        raise InvalidArgumentError(
            f"Unknown system {system!r}; expected one of {sorted(SYSTEMS)}"
        )
    factory, node_type = SYSTEMS[system]
    total_tasks = sum(jobs.values())
    per_node = tasks_per_node or instances_per_node(node_type)
    num_nodes = -(-total_tasks // per_node)
    env = env or Environment()
    machine = factory(env, num_nodes)
    slurm = SlurmWorkloadManager(machine)
    allocation = slurm.submit(num_nodes=num_nodes, tasks_per_node=per_node,
                              ntasks=total_tasks)
    resolver = SlurmClusterResolver(
        jobs=jobs,
        environ=allocation.environment(),
        scontrol=Scontrol(slurm),
    )
    servers = resolver.create_servers(
        machine, protocol=protocol, gpu_memory_fraction=gpu_memory_fraction
    )
    return ClusterHandle(
        env=env,
        machine=machine,
        system=system,
        cluster_spec=resolver.cluster_spec(),
        servers=servers,
        resolver=resolver,
        slurm=slurm,
    )
