"""Data-parallel SGD: ring allreduce on the backward path.

The Horovod use case proper, and the training scenario the paper's
discussion section argues HPC interconnects should serve: every worker
holds a replica of the model weights and one shard of the data; each
step it runs the forward pass and reverse-mode autodiff
(:mod:`repro.core.gradients`) *locally*, then the per-worker gradients
are summed across all ranks and every replica applies the identical SGD
update. The gradient exchange — the scalability bottleneck at HPC scale
— runs through one of two head-to-head mechanisms:

* ``mode="collective"``: graph-level :func:`repro.all_reduce` over the
  local gradients (and the scalar loss partials). The partitioner
  lowers both into ring legs over the simulated transports — every link
  carries ``2(W-1)/W`` of the gradient buffer, no dedicated server.
* ``mode="reducer"``: the paper's central pattern — gradients stream to
  the chief task, are summed there, and the total fans back out to
  every worker through per-worker identities.

Both mechanisms accumulate in rank order starting from zeros, so the
weight trajectories are **byte-identical**; only the simulated clock
differs, and the ring wins once the gradient is large enough that the
chief's NIC serializes ``O(W)`` buffer copies (``benchmarks/
bench_sgd.py`` quantifies the crossover).

The model is linear regression — ``loss = sum((X_w @ w - y_w)^2)`` per
shard — which exercises exactly the gradient registry the autodiff
ships with (MatMul, Sub, Square, Sum). With ``blocks > 1`` the feature
dimension splits into per-layer weight blocks plus a scalar bias, so
one step emits ``blocks + 1`` *small* gradients and their allreduces —
the many-small-tensors regime Horovod's tensor fusion exists for; the
opt-in ``fusion=`` knob turns on the plan-time gradient-bucket fusion
pass (``repro.core.optimizer.collective_fusion``), and ``algorithm=``
selects the collective schedule (``"auto"``/``"ring"``/``"tree"``).
``momentum=`` applies classic momentum through per-variable slot state.
All knobs preserve byte-identical weight trajectories; they only move
the simulated clock.

Both frontends run the same step builder: ``frontend="session"``
hand-builds the graph and drives ``Session.run``;
``frontend="function"`` traces the identical builder through
``@repro.function``, asserting the trace-once path. Weight trajectories
are byte-identical across frontends too.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

import repro as tf
from repro.apps.common import (
    ClusterHandle,
    build_cluster,
    session_config,
    task_device,
)
from repro.core.checkpoint import Saver, checkpoint_step, latest_checkpoint
from repro.errors import (
    DeadlineExceededError,
    InvalidArgumentError,
    UnavailableError,
)
from repro.runtime.retry import RetryPolicy
from repro.simnet.faults import FaultInjector

__all__ = [
    "SGDResult",
    "SGDRestartResult",
    "make_regression_problem",
    "run_sgd",
    "run_sgd_restartable",
    "sgd_reference",
]


@dataclass
class SGDResult:
    """Outcome of one data-parallel SGD configuration."""

    system: str
    d: int
    num_workers: int
    rows_per_worker: int
    mode: str
    frontend: str
    steps: int
    elapsed: float  # simulated seconds, training loop only
    blocks: int = 1
    momentum: float = 0.0
    algorithm: str = "auto"
    fused: bool = False  # collective fusion pass enabled
    loss_history: list = field(default_factory=list)
    # Concatenated parameter vector (all weight blocks, then the bias
    # when blocks > 1) after each step.
    trajectory: list = field(default_factory=list)
    weights: Optional[np.ndarray] = None  # final weights (concrete mode)
    validated: bool = False  # matches the NumPy reference byte for byte
    plan_items: int = 0
    trace_count: int = 0  # function frontend only
    # Plan diagnostics captured from the first training step (session
    # frontend): optimizer pass statistics and the lowering's per-op
    # algorithm decisions.
    pass_stats: list = field(default_factory=list)
    collective_algorithms: dict = field(default_factory=dict)

    @property
    def seconds_per_step(self) -> float:
        return self.elapsed / max(self.steps, 1)


def make_regression_problem(
    d: int, rows_per_worker: int, num_workers: int, seed: int = 0,
    noise: float = 0.1,
):
    """A linear-regression instance sharded by rows across workers.

    Returns ``(X_shards, y_shards, w_true)`` with one
    ``(rows_per_worker, d)`` design block and one target slice per
    worker, generated as ``y = X @ w_true + noise``.
    """
    rng = np.random.default_rng(seed)
    rows = rows_per_worker * num_workers
    x = rng.standard_normal((rows, d))
    w_true = rng.standard_normal(d)
    y = x @ w_true + noise * rng.standard_normal(rows)
    x_shards = [x[w * rows_per_worker:(w + 1) * rows_per_worker]
                for w in range(num_workers)]
    y_shards = [y[w * rows_per_worker:(w + 1) * rows_per_worker]
                for w in range(num_workers)]
    return x_shards, y_shards, w_true


def sgd_reference(x_shards, y_shards, steps: int, learning_rate: float,
                  blocks: int = 1, momentum: float = 0.0):
    """NumPy reference performing the graph's arithmetic, in its order.

    Per step and per shard (rank order, accumulating from zeros — the
    collective kernels' canonical order): ``g_w = X_w^T (2 (X_w w - y_w))``
    and ``l_w = sum((X_w w - y_w)^2)``; then ``w -= lr * sum_w g_w``
    (through the velocity slot when ``momentum > 0``). With
    ``blocks > 1`` the features split into per-layer weight blocks plus
    a scalar bias, mirroring the graph's block-wise prediction chain.
    Returns ``(weights, loss_history, trajectory)`` with weights/
    trajectory entries as the concatenated parameter vector.
    """
    d = x_shards[0].shape[1]
    if blocks == 1:
        params = [np.zeros(d)]
        bs = d
    else:
        bs = d // blocks
        params = [np.zeros(bs) for _ in range(blocks)]
        params.append(np.zeros(()))
    velocities = [np.zeros_like(p) for p in params]
    losses, trajectory = [], []
    for _ in range(steps):
        total_grads = [np.zeros_like(p) for p in params]
        total_loss = np.zeros(())
        for x_w, y_w in zip(x_shards, y_shards):
            pred = x_w[:, 0:bs] @ params[0] if blocks > 1 else x_w @ params[0]
            for k in range(1, blocks):
                pred = pred + x_w[:, k * bs:(k + 1) * bs] @ params[k]
            if blocks > 1:
                pred = pred + params[-1]
            err = pred - y_w
            total_loss = total_loss + np.sum(np.square(err))
            seed = 2.0 * err
            for k in range(blocks):
                x_k = x_w[:, k * bs:(k + 1) * bs] if blocks > 1 else x_w
                total_grads[k] = total_grads[k] + x_k.T @ seed
            if blocks > 1:
                total_grads[-1] = total_grads[-1] + np.sum(seed)
        for p in range(len(params)):
            if momentum:
                velocities[p] = momentum * velocities[p] + total_grads[p]
                step_value = velocities[p]
            else:
                step_value = total_grads[p]
            params[p] = params[p] - learning_rate * step_value
        losses.append(float(total_loss))
        trajectory.append(
            np.concatenate([np.reshape(p, -1) for p in params])
        )
    return trajectory[-1] if trajectory else np.concatenate(
        [np.reshape(p, -1) for p in params]
    ), losses, trajectory


def _build_step(num_workers, d, rows, data, learning_rate, mode, devs,
                chief_device, shape_only, blocks=1, momentum=0.0,
                algorithm="auto"):
    """Build one training step into the current default graph.

    Shared by both frontends (hand-built Session graphs and
    ``@repro.function`` traces record the identical ops). Returns
    ``(loss_fetch, updates, variables, num_params)`` — ``updates`` are
    the ``AssignSub`` output tensors from :func:`repro.apply_gradients`,
    worker-major (the first ``num_params`` entries are worker 0's).

    With ``blocks == 1`` the model is the single weight vector; with
    ``blocks > 1`` each worker holds ``blocks`` per-layer weight blocks
    plus a scalar bias, and each parameter gets its own gradient
    exchange — the many-small-collectives workload the fusion pass
    buckets.
    """
    g = tf.get_default_graph()
    if blocks < 1 or d % blocks != 0:
        raise InvalidArgumentError(
            f"blocks must be >= 1 and divide d: got blocks={blocks}, d={d}"
        )
    bs = d // blocks
    all_vars, local_grads, loss_partials = [], [], []
    for w in range(num_workers):
        with g.device(devs[w]), g.name_scope(f"worker{w}"):
            if blocks == 1:
                params = [tf.Variable(
                    tf.zeros([d], dtype=tf.float64, graph=g), name="w")]
            else:
                params = [
                    tf.Variable(tf.zeros([bs], dtype=tf.float64, graph=g),
                                name=f"w{k}")
                    for k in range(blocks)
                ]
                params.append(tf.Variable(
                    tf.zeros([], dtype=tf.float64, graph=g), name="b"))
            all_vars.append(params)
            if shape_only:
                x_w = tf.zeros([rows, d], dtype=tf.float64, graph=g,
                               name="X")
                y_w = tf.zeros([rows], dtype=tf.float64, graph=g, name="y")
            else:
                x_w = tf.constant(data[0][w], name="X", graph=g)
                y_w = tf.constant(data[1][w], name="y", graph=g)
            reads = [p.value() for p in params]
            if blocks == 1:
                pred = tf.matmul(x_w, reads[0], name="pred")
            else:
                pred = tf.matmul(
                    tf.slice_(x_w, [0, 0], [rows, bs], name="x0"),
                    reads[0], name="pred0")
                for k in range(1, blocks):
                    part = tf.matmul(
                        tf.slice_(x_w, [0, k * bs], [rows, bs],
                                  name=f"x{k}"),
                        reads[k], name=f"pred{k}")
                    pred = tf.add(pred, part, name=f"acc{k}")
                pred = tf.add(pred, reads[-1], name="biased")
            err = tf.subtract(pred, y_w, name="err")
            loss_partials.append(
                tf.reduce_sum(tf.square(err), name="loss_partial"))
            # Reverse-mode autodiff, emitted on this worker's device: the
            # backward subgraph (2 X^T err per block) lands where the
            # forward ran.
            local_grads.append(
                tf.gradients(loss_partials[w], reads, name="backward"))

    num_params = len(all_vars[0])
    if mode == "collective":
        synced_per_param = []
        for p in range(num_params):
            synced_per_param.append(tf.all_reduce(
                [local_grads[w][p] for w in range(num_workers)],
                algorithm=algorithm,
                name=f"grad_allreduce{p}" if num_params > 1
                else "grad_allreduce",
            ))
        totals = tf.all_reduce(loss_partials, algorithm=algorithm,
                               name="loss_allreduce")
        loss_fetch = totals[0]
        synced = [
            [synced_per_param[p][w] for p in range(num_params)]
            for w in range(num_workers)
        ]
    else:
        with g.device(chief_device):
            total_grads = [
                tf.add_n([local_grads[w][p] for w in range(num_workers)],
                         name=f"grad_total{p}" if num_params > 1
                         else "grad_total")
                for p in range(num_params)
            ]
            loss_fetch = tf.add_n(loss_partials, name="loss_total")
        synced = []
        for w in range(num_workers):
            with g.device(devs[w]):
                synced.append([
                    tf.identity(total_grads[p],
                                name=f"grad_echo{w}_{p}" if num_params > 1
                                else f"grad_echo{w}")
                    for p in range(num_params)
                ])

    pairs = [
        (synced[w][p], all_vars[w][p])
        for w in range(num_workers)
        for p in range(num_params)
    ]
    updates = tf.apply_gradients(pairs, learning_rate, momentum=momentum,
                                 name="sgd")
    return loss_fetch, updates, all_vars, num_params


def run_sgd(
    system: str = "tegner-k420",
    d: int = 32,
    num_workers: int = 2,
    rows_per_worker: int = 16,
    steps: int = 10,
    learning_rate: float = 0.005,
    mode: str = "collective",
    frontend: str = "session",
    seed: int = 0,
    protocol: str = "grpc+verbs",
    shape_only: bool = False,
    device_type: str = "cpu",
    cluster: Optional[ClusterHandle] = None,
    optimize: Optional[bool] = None,
    blocks: int = 1,
    momentum: float = 0.0,
    algorithm: str = "auto",
    fusion: Optional[bool] = None,
    kernel_fusion: Optional[bool] = None,
) -> SGDResult:
    """Train the data-parallel linear regression.

    Args:
        d: feature (= gradient buffer) dimension; the gradient exchange
            moves ``8 d`` bytes per rank per step.
        num_workers: data-parallel replicas, one per simulated worker.
        rows_per_worker: rows of the design matrix per shard.
        steps: SGD steps to run.
        mode: ``"collective"`` (ring allreduce graph ops on the backward
            path) or ``"reducer"`` (central chief-task sum + fan-out).
        frontend: ``"session"`` (hand-built graph + ``Session.run``
            loop) or ``"function"`` (the same builder traced once by
            ``@repro.function`` and dispatched from the trace cache).
        shape_only: run paper-scale gradients without materializing
            data (no trajectory/validation; the DES clock still ticks).
        device_type: where each replica's weights live (default CPU —
            gradient exchange is bandwidth-bound, and host tensors ride
            RDMA without the PCIe staging penalty).
        optimize: force plan-time optimization and the executor fast
            path on/off together for the A/B benchmark lanes.
        blocks: per-layer weight blocks (must divide ``d``); with more
            than one, a scalar bias joins too and every parameter gets
            its own gradient collective — the many-small-gradients
            workload the fusion pass buckets.
        momentum: classic momentum coefficient (0 = plain SGD), applied
            through per-variable slot state on the weights' devices.
        algorithm: collective schedule for the gradient/loss exchanges
            (``"auto"``/``"ring"``/``"tree"``; collective mode only).
        fusion: enable the opt-in gradient-bucket fusion pass (``None``
            keeps the session default, i.e. off).
        kernel_fusion: enable the opt-in compiled executor lane
            (plan-level pure-op chain fusion; ``None`` keeps the
            session default, i.e. off).

    Weight trajectories are byte-identical across modes, frontends,
    algorithms and the fusion on/off axis; only the simulated clock
    moves.
    """
    if mode not in ("collective", "reducer"):
        raise InvalidArgumentError(
            f"mode must be 'collective' or 'reducer', got {mode!r}"
        )
    if frontend not in ("session", "function"):
        raise InvalidArgumentError(
            f"frontend must be 'session' or 'function', got {frontend!r}"
        )
    if steps < 1:
        raise InvalidArgumentError(f"steps must be >= 1, got {steps}")
    handle = cluster or build_cluster(
        system, {"chief": 1, "worker": num_workers}, protocol=protocol
    )
    env = handle.env
    devs = [task_device("worker", w, device_type, 0)
            for w in range(num_workers)]
    chief_device = task_device("chief", 0, "cpu", 0)
    data = (None if shape_only else
            make_regression_problem(d, rows_per_worker, num_workers, seed)[:2])
    config = session_config(shape_only=shape_only, optimize=optimize,
                            fusion=fusion, kernel_fusion=kernel_fusion)

    loss_history: list = []
    trajectory: list = []
    trace_count = 0
    first_step_metadata = tf.RunMetadata()

    def record_step(loss, param_values):
        loss_history.append(loss if shape_only else float(loss))
        if not shape_only:
            trajectory.append(np.concatenate(
                [np.reshape(np.asarray(v), -1) for v in param_values]
            ))

    if frontend == "session":
        g = tf.Graph()
        with g.as_default():
            loss_fetch, updates, all_vars, num_params = _build_step(
                num_workers, d, rows_per_worker, data, learning_rate, mode,
                devs, chief_device, shape_only, blocks=blocks,
                momentum=momentum, algorithm=algorithm,
            )
            step_op = tf.group(*[u.op for u in updates], name="train",
                               graph=g)
        sess = tf.Session(handle.server("chief", 0), graph=g, config=config)
        # Momentum slots live in the graph's variable collection next to
        # the weights; initialize everything the builder registered.
        for v in g.get_collection(tf.GraphKeys.GLOBAL_VARIABLES):
            sess.run(v.initializer)
        start = env.now
        for it in range(steps):
            # Worker 0's freshly-assigned parameters come back with the
            # loss; the remaining replicas update through step_op.
            values = sess.run(
                [loss_fetch, *updates[:num_params], step_op],
                run_metadata=first_step_metadata if it == 0 else None,
            )
            record_step(values[0], values[1:1 + num_params])
        elapsed = env.now - start
        plan_items = sess.plan_cache_info()["items"]
    else:
        def sgd_step():
            loss_fetch, updates, _, num_params = _build_step(
                num_workers, d, rows_per_worker, data, learning_rate, mode,
                devs, chief_device, shape_only, blocks=blocks,
                momentum=momentum, algorithm=algorithm,
            )
            # The updated worker-0 parameters come back as the AssignSub
            # outputs; the remaining replicas' updates are auto-fetched
            # as traced side effects.
            return (loss_fetch, *updates[:num_params])

        step = tf.function(sgd_step, name="sgd_step",
                           target=handle.server("chief", 0), config=config)
        start = env.now
        for _ in range(steps):
            values = step()
            record_step(values[0], values[1:])
        elapsed = env.now - start
        trace_count = step.trace_count
        plan_items = step.session.plan_cache_info()["items"]

    weights = None
    validated = False
    if not shape_only:
        weights = trajectory[-1]
        _, ref_losses, ref_traj = sgd_reference(
            data[0], data[1], steps, learning_rate, blocks=blocks,
            momentum=momentum,
        )
        validated = bool(
            np.array_equal(weights, ref_traj[-1])
            and loss_history == ref_losses
        )
    return SGDResult(
        system=system,
        d=d,
        num_workers=num_workers,
        rows_per_worker=rows_per_worker,
        mode=mode,
        frontend=frontend,
        steps=steps,
        elapsed=elapsed,
        blocks=blocks,
        momentum=momentum,
        algorithm=algorithm,
        fused=bool(fusion),
        loss_history=loss_history,
        trajectory=trajectory,
        weights=weights,
        validated=validated,
        plan_items=plan_items,
        trace_count=trace_count,
        pass_stats=list(first_step_metadata.pass_stats),
        collective_algorithms=dict(first_step_metadata.collective_algorithms),
    )


# ---------------------------------------------------------------------------
# Fault-tolerant training: checkpoint-restart around the same step graph
# ---------------------------------------------------------------------------

@dataclass
class SGDRestartResult:
    """Outcome of one fault-tolerant SGD run."""

    system: str
    d: int
    num_workers: int
    steps: int
    checkpoint_every: int
    elapsed: float  # simulated seconds, training loop incl. recovery
    recoveries: int = 0  # checkpoint restores performed
    steps_replayed: int = 0  # committed steps recomputed after restores
    checkpoints_written: int = 0
    loss_history: list = field(default_factory=list)
    trajectory: list = field(default_factory=list)
    weights: Optional[np.ndarray] = None
    validated: bool = False  # byte-identical to the fault-free reference
    # (sim time, exception class name, message) per detected fault.
    fault_log: list = field(default_factory=list)
    injector_stats: dict = field(default_factory=dict)
    metadata_retries: int = 0
    metadata_deadlines: int = 0

    @property
    def seconds_per_step(self) -> float:
        return self.elapsed / max(self.steps, 1)


def run_sgd_restartable(
    system: str = "tegner-k420",
    d: int = 32,
    num_workers: int = 2,
    rows_per_worker: int = 16,
    steps: int = 10,
    learning_rate: float = 0.005,
    seed: int = 0,
    protocol: str = "grpc+verbs",
    checkpoint_dir: Optional[str] = None,
    checkpoint_every: int = 5,
    fault_plan=None,
    operation_timeout_ms: float = 250.0,
    retry_policy: Optional[RetryPolicy] = None,
    max_recovery_attempts: int = 8,
    recovery_backoff: float = 0.05,
    mode: str = "collective",
    blocks: int = 1,
    momentum: float = 0.0,
    algorithm: str = "auto",
) -> SGDRestartResult:
    """Train the data-parallel regression with checkpoint-restart.

    The same step graph as :func:`run_sgd`, wrapped in the paper's
    fault-tolerance loop: a per-run deadline turns a lost worker into
    :class:`DeadlineExceededError` instead of a hang, transient message
    drops are retried with exponential backoff, and on worker loss the
    driver backs off (in simulated time, letting a scheduled restart
    land), restores every replica from the latest intact checkpoint and
    replays from there. Because the step arithmetic is deterministic and
    a restore overwrites any partially-applied update, the recovered
    weight trajectory is **byte-identical** to a fault-free run — which
    this function verifies against the NumPy reference.

    Args:
        checkpoint_dir: where ``Saver`` snapshots land (required).
        checkpoint_every: snapshot every k committed steps (plus one at
            step 0, so a crash before the first snapshot can recover).
        fault_plan: a :class:`repro.simnet.faults.FaultPlan` to install
            (None = fault-free; the driver still checkpoints).
        operation_timeout_ms: per-run deadline in simulated ms.
        retry_policy: backoff for transient sends (None = the default
            :class:`RetryPolicy`).
        max_recovery_attempts: restore attempts per detected fault
            before giving up and re-raising.
        recovery_backoff: initial driver-level backoff (simulated
            seconds) before a restore attempt; doubles per retry.
    """
    if checkpoint_dir is None:
        raise InvalidArgumentError("run_sgd_restartable needs checkpoint_dir=")
    if checkpoint_every < 1:
        raise InvalidArgumentError(
            f"checkpoint_every must be >= 1, got {checkpoint_every}"
        )
    handle = build_cluster(
        system, {"chief": 1, "worker": num_workers}, protocol=protocol
    )
    env = handle.env
    injector = None
    if fault_plan is not None:
        injector = FaultInjector(fault_plan).install(handle.machine)
    devs = [task_device("worker", w, "cpu", 0) for w in range(num_workers)]
    chief_device = task_device("chief", 0, "cpu", 0)
    data = make_regression_problem(d, rows_per_worker, num_workers, seed)[:2]

    config = session_config(shape_only=False)
    config.operation_timeout_ms = operation_timeout_ms
    config.retry_policy = retry_policy or RetryPolicy()

    g = tf.Graph()
    with g.as_default():
        loss_fetch, updates, _all_vars, num_params = _build_step(
            num_workers, d, rows_per_worker, data, learning_rate, mode,
            devs, chief_device, shape_only=False, blocks=blocks,
            momentum=momentum, algorithm=algorithm,
        )
        step_op = tf.group(*[u.op for u in updates], name="train", graph=g)
    sess = tf.Session(handle.server("chief", 0), graph=g, config=config)
    metadata = tf.RunMetadata()
    for v in g.get_collection(tf.GraphKeys.GLOBAL_VARIABLES):
        sess.run(v.initializer, run_metadata=metadata)
    saver = Saver(graph=g)
    prefix = os.path.join(checkpoint_dir, "sgd")

    loss_history: list = []
    trajectory: list = []
    fault_log: list = []
    recoveries = 0
    steps_replayed = 0
    step = 0

    def recover() -> int:
        """Back off, restore from the newest intact checkpoint, return
        the step it encodes. Restores themselves ride the same deadline
        machinery, so a still-down worker just triggers the next retry."""
        delay = recovery_backoff
        last_exc: Optional[BaseException] = None
        for _ in range(max_recovery_attempts):
            env.run(until=env.timeout(delay))
            delay *= 2.0
            path = latest_checkpoint(checkpoint_dir, prefix="sgd-")
            if path is None:
                continue
            try:
                saver.restore(sess, path)
            except (DeadlineExceededError, UnavailableError) as exc:
                last_exc = exc
                continue
            return checkpoint_step(path)
        raise last_exc if last_exc is not None else UnavailableError(
            f"No recoverable checkpoint under {checkpoint_dir!r} after "
            f"{max_recovery_attempts} attempts"
        )

    start = env.now
    saver.save(sess, prefix, global_step=0)
    checkpoints_written = 1
    while step < steps:
        try:
            values = sess.run(
                [loss_fetch, *updates[:num_params], step_op],
                run_metadata=metadata,
            )
            step += 1
            loss_history.append(float(values[0]))
            trajectory.append(np.concatenate(
                [np.reshape(np.asarray(v), -1)
                 for v in values[1:1 + num_params]]
            ))
            if step % checkpoint_every == 0:
                saver.save(sess, prefix, global_step=step)
                checkpoints_written += 1
        except (DeadlineExceededError, UnavailableError) as exc:
            recoveries += 1
            fault_log.append((env.now, type(exc).__name__, str(exc)))
            restored = recover()
            steps_replayed += step - restored
            del loss_history[restored:]
            del trajectory[restored:]
            step = restored
    elapsed = env.now - start

    weights = trajectory[-1]
    _, ref_losses, ref_traj = sgd_reference(
        data[0], data[1], steps, learning_rate, blocks=blocks,
        momentum=momentum,
    )
    validated = bool(
        len(trajectory) == len(ref_traj)
        and all(np.array_equal(a, b) for a, b in zip(trajectory, ref_traj))
        and loss_history == ref_losses
    )
    return SGDRestartResult(
        system=system,
        d=d,
        num_workers=num_workers,
        steps=steps,
        checkpoint_every=checkpoint_every,
        elapsed=elapsed,
        recoveries=recoveries,
        steps_replayed=steps_replayed,
        checkpoints_written=checkpoints_written,
        loss_history=loss_history,
        trajectory=trajectory,
        weights=weights,
        validated=validated,
        fault_log=fault_log,
        injector_stats=dict(injector.stats) if injector else {},
        metadata_retries=metadata.retries,
        metadata_deadlines=metadata.deadline_exceeded,
    )
