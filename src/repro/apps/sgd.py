"""Data-parallel SGD: ring allreduce on the backward path.

The Horovod use case proper, and the training scenario the paper's
discussion section argues HPC interconnects should serve: every worker
holds a replica of the model weights and one shard of the data; each
step it runs the forward pass and reverse-mode autodiff
(:mod:`repro.core.gradients`) *locally*, then the per-worker gradients
are summed across all ranks and every replica applies the identical SGD
update. The gradient exchange — the scalability bottleneck at HPC scale
— runs through one of two head-to-head mechanisms:

* ``mode="collective"``: graph-level :func:`repro.all_reduce` over the
  local gradients (and the scalar loss partials). The partitioner
  lowers both into ring legs over the simulated transports — every link
  carries ``2(W-1)/W`` of the gradient buffer, no dedicated server.
* ``mode="reducer"``: the paper's central pattern — gradients stream to
  the chief task, are summed there, and the total fans back out to
  every worker through per-worker identities.

Both mechanisms accumulate in rank order starting from zeros, so the
weight trajectories are **byte-identical**; only the simulated clock
differs, and the ring wins once the gradient is large enough that the
chief's NIC serializes ``O(W)`` buffer copies (``benchmarks/
bench_sgd.py`` quantifies the crossover).

The model is linear regression — ``loss = sum((X_w @ w - y_w)^2)`` per
shard — which exercises exactly the gradient registry the autodiff
ships with (MatMul, Sub, Square, Sum). Both frontends run the same
step builder: ``frontend="session"`` hand-builds the graph and drives
``Session.run``; ``frontend="function"`` traces the identical builder
through ``@repro.function``, asserting the trace-once path. Weight
trajectories are byte-identical across frontends too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

import repro as tf
from repro.apps.common import (
    ClusterHandle,
    build_cluster,
    session_config,
    task_device,
)
from repro.errors import InvalidArgumentError

__all__ = [
    "SGDResult",
    "make_regression_problem",
    "run_sgd",
    "sgd_reference",
]


@dataclass
class SGDResult:
    """Outcome of one data-parallel SGD configuration."""

    system: str
    d: int
    num_workers: int
    rows_per_worker: int
    mode: str
    frontend: str
    steps: int
    elapsed: float  # simulated seconds, training loop only
    loss_history: list = field(default_factory=list)
    trajectory: list = field(default_factory=list)  # weights after each step
    weights: Optional[np.ndarray] = None  # final weights (concrete mode)
    validated: bool = False  # matches the NumPy reference byte for byte
    plan_items: int = 0
    trace_count: int = 0  # function frontend only

    @property
    def seconds_per_step(self) -> float:
        return self.elapsed / max(self.steps, 1)


def make_regression_problem(
    d: int, rows_per_worker: int, num_workers: int, seed: int = 0,
    noise: float = 0.1,
):
    """A linear-regression instance sharded by rows across workers.

    Returns ``(X_shards, y_shards, w_true)`` with one
    ``(rows_per_worker, d)`` design block and one target slice per
    worker, generated as ``y = X @ w_true + noise``.
    """
    rng = np.random.default_rng(seed)
    rows = rows_per_worker * num_workers
    x = rng.standard_normal((rows, d))
    w_true = rng.standard_normal(d)
    y = x @ w_true + noise * rng.standard_normal(rows)
    x_shards = [x[w * rows_per_worker:(w + 1) * rows_per_worker]
                for w in range(num_workers)]
    y_shards = [y[w * rows_per_worker:(w + 1) * rows_per_worker]
                for w in range(num_workers)]
    return x_shards, y_shards, w_true


def sgd_reference(x_shards, y_shards, steps: int, learning_rate: float):
    """NumPy reference performing the graph's arithmetic, in its order.

    Per step and per shard (rank order, accumulating from zeros — the
    collective kernels' canonical order): ``g_w = X_w^T (2 (X_w w - y_w))``
    and ``l_w = sum((X_w w - y_w)^2)``; then ``w -= lr * sum_w g_w``.
    Returns ``(weights, loss_history, trajectory)``.
    """
    d = x_shards[0].shape[1]
    w = np.zeros(d)
    losses, trajectory = [], []
    for _ in range(steps):
        total_grad = np.zeros(d)
        total_loss = np.zeros(())
        for x_w, y_w in zip(x_shards, y_shards):
            err = x_w @ w - y_w
            total_loss = total_loss + np.sum(np.square(err))
            total_grad = total_grad + x_w.T @ (2.0 * err)
        w = w - learning_rate * total_grad
        losses.append(float(total_loss))
        trajectory.append(w.copy())
    return w, losses, trajectory


def _build_step(num_workers, d, rows, data, learning_rate, mode, devs,
                chief_device, shape_only):
    """Build one training step into the current default graph.

    Shared by both frontends (hand-built Session graphs and
    ``@repro.function`` traces record the identical ops). Returns
    ``(loss_fetch, updates, w_vars)`` — ``updates`` are the per-worker
    ``AssignSub`` output tensors from :func:`repro.apply_gradients`.
    """
    g = tf.get_default_graph()
    w_vars, local_grads, loss_partials = [], [], []
    for w in range(num_workers):
        with g.device(devs[w]), g.name_scope(f"worker{w}"):
            w_vars.append(tf.Variable(
                tf.zeros([d], dtype=tf.float64, graph=g), name="w"))
            if shape_only:
                x_w = tf.zeros([rows, d], dtype=tf.float64, graph=g,
                               name="X")
                y_w = tf.zeros([rows], dtype=tf.float64, graph=g, name="y")
            else:
                x_w = tf.constant(data[0][w], name="X", graph=g)
                y_w = tf.constant(data[1][w], name="y", graph=g)
            read = w_vars[w].value()
            pred = tf.matmul(x_w, read, name="pred")
            err = tf.subtract(pred, y_w, name="err")
            loss_partials.append(
                tf.reduce_sum(tf.square(err), name="loss_partial"))
            # Reverse-mode autodiff, emitted on this worker's device: the
            # backward subgraph (2 X^T err) lands where the forward ran.
            (grad,) = tf.gradients(loss_partials[w], read, name="backward")
            local_grads.append(grad)

    if mode == "collective":
        synced_grads = tf.all_reduce(local_grads, name="grad_allreduce")
        totals = tf.all_reduce(loss_partials, name="loss_allreduce")
        loss_fetch = totals[0]
    else:
        with g.device(chief_device):
            total_grad = tf.add_n(local_grads, name="grad_total")
            loss_fetch = tf.add_n(loss_partials, name="loss_total")
        synced_grads = []
        for w in range(num_workers):
            with g.device(devs[w]):
                synced_grads.append(
                    tf.identity(total_grad, name=f"grad_echo{w}"))

    updates = tf.apply_gradients(
        zip(synced_grads, w_vars), learning_rate, name="sgd"
    )
    return loss_fetch, updates, w_vars


def run_sgd(
    system: str = "tegner-k420",
    d: int = 32,
    num_workers: int = 2,
    rows_per_worker: int = 16,
    steps: int = 10,
    learning_rate: float = 0.005,
    mode: str = "collective",
    frontend: str = "session",
    seed: int = 0,
    protocol: str = "grpc+verbs",
    shape_only: bool = False,
    device_type: str = "cpu",
    cluster: Optional[ClusterHandle] = None,
    optimize: Optional[bool] = None,
) -> SGDResult:
    """Train the data-parallel linear regression.

    Args:
        d: feature (= gradient buffer) dimension; the gradient exchange
            moves ``8 d`` bytes per rank per step.
        num_workers: data-parallel replicas, one per simulated worker.
        rows_per_worker: rows of the design matrix per shard.
        steps: SGD steps to run.
        mode: ``"collective"`` (ring allreduce graph ops on the backward
            path) or ``"reducer"`` (central chief-task sum + fan-out).
        frontend: ``"session"`` (hand-built graph + ``Session.run``
            loop) or ``"function"`` (the same builder traced once by
            ``@repro.function`` and dispatched from the trace cache).
        shape_only: run paper-scale gradients without materializing
            data (no trajectory/validation; the DES clock still ticks).
        device_type: where each replica's weights live (default CPU —
            gradient exchange is bandwidth-bound, and host tensors ride
            RDMA without the PCIe staging penalty).
        optimize: force plan-time optimization and the executor fast
            path on/off together for the A/B benchmark lanes.
    """
    if mode not in ("collective", "reducer"):
        raise InvalidArgumentError(
            f"mode must be 'collective' or 'reducer', got {mode!r}"
        )
    if frontend not in ("session", "function"):
        raise InvalidArgumentError(
            f"frontend must be 'session' or 'function', got {frontend!r}"
        )
    if steps < 1:
        raise InvalidArgumentError(f"steps must be >= 1, got {steps}")
    handle = cluster or build_cluster(
        system, {"chief": 1, "worker": num_workers}, protocol=protocol
    )
    env = handle.env
    devs = [task_device("worker", w, device_type, 0)
            for w in range(num_workers)]
    chief_device = task_device("chief", 0, "cpu", 0)
    data = (None if shape_only else
            make_regression_problem(d, rows_per_worker, num_workers, seed)[:2])
    config = session_config(shape_only=shape_only, optimize=optimize)

    loss_history: list = []
    trajectory: list = []
    trace_count = 0

    if frontend == "session":
        g = tf.Graph()
        with g.as_default():
            loss_fetch, updates, w_vars = _build_step(
                num_workers, d, rows_per_worker, data, learning_rate, mode,
                devs, chief_device, shape_only,
            )
            step_op = tf.group(*[u.op for u in updates], name="train",
                               graph=g)
        sess = tf.Session(handle.server("chief", 0), graph=g, config=config)
        for v in w_vars:
            sess.run(v.initializer)
        start = env.now
        for _ in range(steps):
            loss, new_w, _ = sess.run([loss_fetch, updates[0], step_op])
            loss_history.append(loss if shape_only else float(loss))
            if not shape_only:
                trajectory.append(np.asarray(new_w).copy())
        elapsed = env.now - start
        plan_items = sess.plan_cache_info()["items"]
    else:
        def sgd_step():
            loss_fetch, updates, _ = _build_step(
                num_workers, d, rows_per_worker, data, learning_rate, mode,
                devs, chief_device, shape_only,
            )
            # The updated worker-0 weights come back as the AssignSub
            # output; the remaining replicas' updates are auto-fetched
            # as traced side effects.
            return loss_fetch, updates[0]

        step = tf.function(sgd_step, name="sgd_step",
                           target=handle.server("chief", 0), config=config)
        start = env.now
        for _ in range(steps):
            loss, new_w = step()
            loss_history.append(loss if shape_only else float(loss))
            if not shape_only:
                trajectory.append(np.asarray(new_w).copy())
        elapsed = env.now - start
        trace_count = step.trace_count
        plan_items = step.session.plan_cache_info()["items"]

    weights = None
    validated = False
    if not shape_only:
        weights = trajectory[-1]
        _, ref_losses, ref_traj = sgd_reference(
            data[0], data[1], steps, learning_rate
        )
        validated = bool(
            np.array_equal(weights, ref_traj[-1])
            and loss_history == ref_losses
        )
    return SGDResult(
        system=system,
        d=d,
        num_workers=num_workers,
        rows_per_worker=rows_per_worker,
        mode=mode,
        frontend=frontend,
        steps=steps,
        elapsed=elapsed,
        loss_history=loss_history,
        trajectory=trajectory,
        weights=weights,
        validated=validated,
        plan_items=plan_items,
        trace_count=trace_count,
    )
