"""Distributed 2-D Jacobi heat stencil with halo exchange.

The first workload in this repository where *communication topology*,
not kernel time, dominates. The unit square carries a Laplace/heat
problem (hot top edge, cold sides and bottom); the grid is sharded into
horizontal row blocks, one per worker, each living in a persistent
variable on the worker's device. Per iteration:

* every worker exchanges one halo row with each neighbour — the slices
  are built *on the owner's device*, so the partitioner's ``_Send`` /
  ``_Recv`` insertion moves exactly one ``n``-cell row per edge across
  the fabric (the canonical nearest-neighbour exchange of MPI stencil
  codes);
* the 5-point update runs locally on each block;
* a per-worker residual partial ``sum((u_new - u)^2)`` lands in a scalar
  variable.

Every ``check_every`` iterations the workers synchronize globally — the
convergence test plus a full-field assembly (the restart-file /
inspection sync of production stencil codes) — via one of two
head-to-head mechanisms:

* ``mode="collective"``: graph-level :func:`repro.all_reduce` over the
  residual partials plus :func:`repro.all_gather` over the blocks. The
  partitioner lowers both into ring legs over the simulated transports
  — every link carries ``(W-1)/W`` of the field, no dedicated server.
* ``mode="reducer"``: the paper's central pattern — partials and blocks
  stream to the chief task, are reduced/concatenated there, and the
  results fan back out to every worker through per-worker identities.

Both modes accumulate in rank order starting from zeros, so residual
histories and fields are *byte-identical*; only the simulated clock
differs, and the ring wins once ``W >= 4`` because the chief's NIC
serializes ``O(W)`` field copies while each ring link carries less than
one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

import repro as tf
from repro.apps.common import (
    ClusterHandle,
    build_cluster,
    session_config,
    task_device,
)
from repro.errors import InvalidArgumentError

__all__ = [
    "run_stencil",
    "StencilResult",
    "jacobi_reference",
]


@dataclass
class StencilResult:
    """Outcome of one stencil configuration."""

    system: str
    n: int
    num_workers: int
    mode: str
    iterations: int  # iterations actually run
    elapsed: float  # simulated seconds, iteration loop + checks
    check_elapsed: float  # simulated seconds spent in global syncs only
    residual_history: list = field(default_factory=list)
    converged: bool = False
    solution: Optional[np.ndarray] = None  # assembled field (concrete mode)
    validated: bool = False
    plan_items: int = 0

    @property
    def seconds_per_iteration(self) -> float:
        return self.elapsed / max(self.iterations, 1)


def jacobi_reference(n: int, iterations: int) -> tuple[np.ndarray, list[float]]:
    """NumPy reference: the exact update the graph performs, in order.

    Returns the field after ``iterations`` sweeps and the residual
    ``sum((u_new - u)^2)`` per sweep.
    """
    u = _initial_field(n)
    residuals = []
    for _ in range(iterations):
        padded = np.zeros((n + 2, n + 2))
        padded[1:-1, 1:-1] = u
        new = 0.25 * (
            padded[:-2, 1:-1] + padded[2:, 1:-1]
            + padded[1:-1, :-2] + padded[1:-1, 2:]
        )
        new[:, 0] = 0.0
        new[:, -1] = 0.0
        new[0, :] = 1.0
        new[-1, :] = 0.0
        residuals.append(float(np.sum((new - u) ** 2)))
        u = new
    return u, residuals


def _initial_field(n: int) -> np.ndarray:
    u = np.zeros((n, n))
    u[0, :] = 1.0
    return u


def run_stencil(
    system: str = "tegner-k420",
    n: int = 64,
    num_workers: int = 2,
    iterations: int = 100,
    check_every: int = 10,
    mode: str = "collective",
    tol: float = 0.0,
    protocol: str = "grpc+verbs",
    shape_only: bool = False,
    device_type: str = "cpu",
    cluster: Optional[ClusterHandle] = None,
    optimize: Optional[bool] = None,
    algorithm: str = "auto",
) -> StencilResult:
    """Run the sharded Jacobi stencil.

    Args:
        n: grid dimension (``num_workers`` must divide it; every block
            needs at least two rows and the grid at least three columns).
        iterations: maximum Jacobi sweeps.
        check_every: global sync (convergence test + field assembly)
            cadence in sweeps.
        mode: ``"collective"`` (ring allreduce/allgather graph ops) or
            ``"reducer"`` (central chief-task reduce + fan-out).
        algorithm: collective-mode schedule for the residual allreduce
            (``"auto"``/``"ring"``/``"tree"``; auto picks tree — the
            residual is a scalar, squarely in the latency-bound regime).
            Residual histories and fields stay byte-identical across
            algorithms.
        tol: stop when the global residual drops below this (concrete
            mode only; ``0.0`` disables early exit).
        shape_only: run paper-scale problems without materializing data.
        device_type: where each worker's block lives. The default is
            ``"cpu"``: stencils are memory-bound, and host-memory tensors
            ride RDMA at >6 GB/s on the paper's systems while GPU tensors
            stage through PCIe (1.3 GB/s on a K420) — a staging penalty
            the ring's duplex traffic pays twice per hop.
        optimize: force plan-time optimization and the executor fast path
            on/off together for the A/B benchmark lanes.
    """
    if mode not in ("collective", "reducer"):
        raise InvalidArgumentError(
            f"mode must be 'collective' or 'reducer', got {mode!r}"
        )
    if n % num_workers != 0:
        raise InvalidArgumentError(
            f"num_workers {num_workers} must divide n {n}"
        )
    rows = n // num_workers
    if rows < 2 or n < 3:
        raise InvalidArgumentError(
            f"blocks need >= 2 rows and >= 3 columns; got {rows} x {n}"
        )
    handle = cluster or build_cluster(
        system, {"chief": 1, "worker": num_workers}, protocol=protocol
    )
    env = handle.env
    devs = [task_device("worker", w, device_type, 0)
            for w in range(num_workers)]
    chief_device = task_device("chief", 0, "cpu", 0)

    g = tf.Graph()
    with g.as_default():
        u_vars, res_vars = [], []
        for w in range(num_workers):
            with g.device(devs[w]), g.name_scope(f"worker{w}"):
                if w == 0:
                    init = tf.concat(
                        [tf.ones([1, n], dtype=tf.float64, graph=g),
                         tf.zeros([rows - 1, n], dtype=tf.float64, graph=g)],
                        axis=0, name="u0",
                    )
                else:
                    init = tf.zeros([rows, n], dtype=tf.float64, graph=g)
                u_vars.append(tf.Variable(init, name="u"))
                res_vars.append(tf.Variable(
                    tf.zeros([], dtype=tf.float64, graph=g), name="res"))

        # ---- one Jacobi sweep ------------------------------------------------
        # Halo rows are sliced on the *owner's* device so only one row per
        # edge crosses the wire; the consumer-side concat then triggers
        # the partitioner's send/recv pair.
        reads, first_rows, last_rows = [], {}, {}
        for w in range(num_workers):
            with g.device(devs[w]), g.name_scope(f"sweep{w}"):
                read = u_vars[w].value()
                reads.append(read)
                if w > 0:  # upper neighbour consumes my first row
                    first_rows[w] = tf.slice_(read, [0, 0], [1, n],
                                              name="halo_up")
                if w < num_workers - 1:  # lower neighbour, my last row
                    last_rows[w] = tf.slice_(read, [rows - 1, 0], [1, n],
                                             name="halo_down")

        step_ops = []
        for w in range(num_workers):
            with g.device(devs[w]), g.name_scope(f"update{w}"):
                top = (
                    last_rows[w - 1] if w > 0
                    else tf.zeros([1, n], dtype=tf.float64, graph=g)
                )
                bottom = (
                    first_rows[w + 1] if w < num_workers - 1
                    else tf.zeros([1, n], dtype=tf.float64, graph=g)
                )
                ext = tf.concat([top, reads[w], bottom], axis=0, name="ext")
                side = tf.zeros([rows + 2, 1], dtype=tf.float64, graph=g)
                ext2 = tf.concat([side, ext, side], axis=1, name="ext2")
                up = tf.slice_(ext2, [0, 1], [rows, n], name="up")
                down = tf.slice_(ext2, [2, 1], [rows, n], name="down")
                left = tf.slice_(ext2, [1, 0], [rows, n], name="left")
                right = tf.slice_(ext2, [1, 2], [rows, n], name="right")
                new_full = tf.multiply(
                    tf.constant(0.25, dtype=tf.float64),
                    tf.add(tf.add(up, down), tf.add(left, right)),
                    name="avg",
                )
                # Reimpose the Dirichlet boundary: cold side columns
                # everywhere, hot top row on worker 0, cold bottom row on
                # the last worker.
                col = tf.zeros([rows, 1], dtype=tf.float64, graph=g)
                new_block = tf.concat(
                    [col, tf.slice_(new_full, [0, 1], [rows, n - 2]), col],
                    axis=1, name="cols",
                )
                if w == 0:
                    new_block = tf.concat(
                        [tf.ones([1, n], dtype=tf.float64, graph=g),
                         tf.slice_(new_block, [1, 0], [rows - 1, n])],
                        axis=0, name="top_bc",
                    )
                if w == num_workers - 1:
                    new_block = tf.concat(
                        [tf.slice_(new_block, [0, 0], [rows - 1, n]),
                         tf.zeros([1, n], dtype=tf.float64, graph=g)],
                        axis=0, name="bottom_bc",
                    )
                diff = tf.subtract(new_block, reads[w], name="diff")
                res_partial = tf.reduce_sum(tf.square(diff), name="res_partial")
                store_res = tf.assign(res_vars[w], res_partial)
                # Order my block's store after every halo read of it, so
                # neighbours never see a half-updated sweep.
                halo_consumers = []
                if w in first_rows:
                    halo_consumers.append(first_rows[w].op)
                if w in last_rows:
                    halo_consumers.append(last_rows[w].op)
                with g.control_dependencies(halo_consumers or [reads[w].op]):
                    store_u = tf.assign(u_vars[w], new_block)
                step_ops.append(tf.group(store_u.op, store_res.op,
                                         name="step", graph=g))
        step_op = tf.group(*step_ops, name="sweep", graph=g)

        # ---- global sync: convergence test + field assembly ------------------
        res_reads = [rv.value() for rv in res_vars]
        sync_reads = []
        for w in range(num_workers):
            with g.device(devs[w]):
                sync_reads.append(u_vars[w].value())
        if mode == "collective":
            totals = tf.all_reduce(res_reads, algorithm=algorithm,
                                   name="res_allreduce")
            fields = tf.all_gather(sync_reads, name="field_allgather")
            res_fetch = totals[0]
            field_fetch = fields[0]
            sync_op = tf.group(totals[0].op, fields[0].op,
                               name="sync", graph=g)
        else:
            with g.device(chief_device):
                total = tf.add_n(res_reads, name="res_total")
                full_field = tf.concat(sync_reads, axis=0, name="field")
            echoes = []
            for w in range(num_workers):
                with g.device(devs[w]):
                    echoes.append(tf.identity(total, name=f"res_echo{w}"))
                    echoes.append(tf.identity(full_field, name=f"field_copy{w}"))
            res_fetch = total
            field_fetch = full_field
            sync_op = tf.group(*[e.op for e in echoes], name="sync", graph=g)

    config = session_config(shape_only=shape_only, optimize=optimize)
    sess = tf.Session(handle.server("chief", 0), graph=g, config=config)
    for v in (*u_vars, *res_vars):
        sess.run(v.initializer)

    residual_history: list = []
    converged = False
    check_elapsed = 0.0
    ran = 0
    start = env.now
    for it in range(iterations):
        sess.run(step_op)
        ran = it + 1
        if check_every and ran % check_every == 0:
            t0 = env.now
            residual, _ = sess.run([res_fetch, sync_op])
            check_elapsed += env.now - t0
            residual_history.append(
                residual if shape_only else float(residual)
            )
            if not shape_only and tol > 0.0 and float(residual) < tol:
                converged = True
                break
    elapsed = env.now - start

    solution = None
    validated = False
    if not shape_only:
        solution = np.asarray(sess.run(field_fetch))
        reference, _ = jacobi_reference(n, ran)
        validated = bool(np.allclose(solution, reference, atol=1e-12))
    return StencilResult(
        system=system,
        n=n,
        num_workers=num_workers,
        mode=mode,
        iterations=ran,
        elapsed=elapsed,
        check_elapsed=check_elapsed,
        residual_history=residual_history,
        converged=converged,
        solution=solution,
        validated=validated,
        plan_items=sess.plan_cache_info()["items"],
    )
