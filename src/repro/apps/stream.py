"""TF-STREAM: the paper's communication micro-benchmark (Section IV-A).

Two tasks on two nodes — a parameter server and a worker. A vector lives
on a device of each task; an ``assign_add`` pushes the worker's vector to
the parameter server and adds it there. Invoking that op through a
session, *without fetching the result back* (the paper's explicit trick),
times one transfer; 100 invocations give the sustained MB/s of Fig. 7.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

import repro as tf
from repro.apps.common import ClusterHandle, build_cluster, session_config
from repro.errors import InvalidArgumentError

__all__ = ["run_stream", "StreamResult"]

MB = 1024 * 1024


@dataclass
class StreamResult:
    """Outcome of one STREAM configuration."""

    system: str
    device: str  # "cpu" or "gpu"
    protocol: str  # server protocol string
    size_bytes: int
    iterations: int
    seconds_per_transfer: float
    validated: bool

    @property
    def bandwidth(self) -> float:
        """Sustained bytes/second."""
        return self.size_bytes / self.seconds_per_transfer

    @property
    def bandwidth_mbs(self) -> float:
        """MB/s as the paper reports (1 MB = 2**20 B)."""
        return self.bandwidth / MB


def run_stream(
    system: str = "tegner-k420",
    device: str = "gpu",
    size_mb: float = 128,
    protocol: str = "grpc+verbs",
    iterations: int = 100,
    shape_only: bool = True,
    cluster: ClusterHandle | None = None,
    optimize: bool | None = None,
) -> StreamResult:
    """Run the STREAM benchmark on a simulated system.

    Args:
        system: machine configuration (see :data:`repro.apps.common.SYSTEMS`).
        device: whether the vectors live in host or GPU memory.
        size_mb: transfer size (the paper sweeps 2, 16, 128 MB).
        protocol: "grpc" | "grpc+mpi" | "grpc+verbs".
        iterations: number of timed transfers (paper: 100).
        shape_only: skip materializing the vectors (identical timing path).
    """
    if device not in ("cpu", "gpu"):
        raise InvalidArgumentError(f"device must be cpu or gpu, got {device!r}")
    size_bytes = int(size_mb * MB)
    n = size_bytes // 4  # float32 elements
    # One task per node: STREAM measures the *inter-node* fabric ("we
    # create a simple TensorFlow cluster with two tasks ... on the two
    # nodes"), so Table I's co-location density does not apply here.
    handle = cluster or build_cluster(system, {"ps": 1, "worker": 1},
                                      protocol=protocol, tasks_per_node=1)
    env = handle.env

    g = tf.Graph()
    with g.as_default():
        with g.device(f"/job:ps/task:0/device:{device}:0"):
            target = tf.Variable(
                tf.zeros([n], dtype=tf.float32, graph=g), name="target"
            )
        with g.device(f"/job:worker/task:0/device:{device}:0"):
            source = tf.Variable(
                tf.ones([n], dtype=tf.float32, graph=g), name="source"
            )
        update = tf.assign_add(target, source.value())

    config = session_config(shape_only=shape_only, optimize=optimize)
    sess = tf.Session(handle.server("worker", 0), graph=g, config=config)
    sess.run([target.initializer, source.initializer])
    # Warm-up transfer (connection setup, first-touch effects).
    sess.run(update.op)
    start = env.now
    for _ in range(iterations):
        # Fetch the *operation*, not the tensor: no result flows back.
        sess.run(update.op)
    elapsed = env.now - start

    validated = False
    if not shape_only:
        final = sess.run(target)
        expected = float(iterations + 1)  # warm-up included
        validated = bool(np.allclose(final, expected))
    return StreamResult(
        system=system,
        device=device,
        protocol=protocol,
        size_bytes=size_bytes,
        iterations=iterations,
        seconds_per_transfer=elapsed / iterations,
        validated=validated,
    )
