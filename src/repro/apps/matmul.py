"""Tiled matrix–matrix multiplication (paper Section IV, Fig. 4).

The two input matrices are pre-processed into square tiles stored on the
parallel filesystem. A dataset of tile-index triples ``(i, k, j)`` is
sharded across workers; each worker loads its tiles, multiplies them on
its GPU, and pushes ``(i, j, partial)`` into the FIFO queue of the reducer
responsible for target ``(i, j)`` (the paper uses two reducers keyed by
odd/even target index). Reducers accumulate partials into NumPy arrays —
a map-reduce over tiles, with the input pipeline shaped exactly like an
ML training pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import Optional

import numpy as np

import repro as tf
from repro.apps.common import ClusterHandle, build_cluster, session_config
from repro.core.tensor import SymbolicValue
from repro.errors import InvalidArgumentError, OutOfRangeError

__all__ = ["run_matmul", "MatmulResult"]


@dataclass
class MatmulResult:
    """Outcome of one tiled-matmul configuration."""

    system: str
    n: int
    tile: int
    num_gpus: int
    num_reducers: int
    protocol: str
    elapsed: float  # simulated seconds, map start -> all tiles stored
    products: int  # number of tile-tile multiplications
    validated: bool
    max_error: float = 0.0

    @property
    def flops(self) -> float:
        """The paper's convention: 2N^3 - N^2."""
        return 2.0 * self.n**3 - float(self.n) ** 2

    @property
    def gflops(self) -> float:
        return self.flops / self.elapsed / 1e9


def _make_tiles(fs, n: int, tile: int, shape_only: bool, seed: int):
    """Pre-process A and B into tiles on the filesystem (paper's prep step)."""
    nt = n // tile
    rng = np.random.default_rng(seed)
    blocks = {"A": {}, "B": {}}
    for name in ("A", "B"):
        for i in range(nt):
            for j in range(nt):
                path = f"{name}_{i}_{j}.npy"
                if shape_only:
                    fs.declare_file(path, (tile, tile), "float32")
                else:
                    data = rng.standard_normal((tile, tile)).astype(np.float32)
                    fs.store_array(path, data)
                    blocks[name][(i, j)] = data
    return blocks


def run_matmul(
    system: str = "tegner-k420",
    n: int = 1024,
    tile: int = 256,
    num_gpus: int = 2,
    num_reducers: int = 2,
    protocol: str = "grpc+verbs",
    shape_only: bool = True,
    queue_capacity: int = 4,
    seed: int = 0,
    store_results: bool = True,
    cluster: Optional[ClusterHandle] = None,
    optimize: Optional[bool] = None,
) -> MatmulResult:
    """Run the tiled matmul application.

    In concrete mode (``shape_only=False``) the final matrix is assembled
    and validated against ``A @ B``.
    """
    if n % tile != 0:
        raise InvalidArgumentError(f"tile {tile} must divide n {n}")
    nt = n // tile
    if num_reducers < 1 or num_gpus < 1:
        raise InvalidArgumentError("need >= 1 reducer and >= 1 worker")
    # Workers are placed first so "N GPUs" fills whole nodes with worker
    # instances exactly as the paper's runs do (4 GPUs on Kebnekaise = one
    # fully-loaded node); reducers land on the nodes after them.
    handle = cluster or build_cluster(
        system, {"worker": num_gpus, "reducer": num_reducers}, protocol=protocol
    )
    env = handle.env
    fs = handle.filesystem
    blocks = _make_tiles(fs, n, tile, shape_only, seed)

    # Work list: (i, k, j); the reducer for target (i, j) is chosen by
    # index parity, generalized to any reducer count.
    def reducer_of(i: int, j: int) -> int:
        return (i * nt + j) % num_reducers

    items = [(i, k, j) for i in range(nt) for j in range(nt) for k in range(nt)]
    per_reducer_counts = [0] * num_reducers
    for i, _k, j in items:
        per_reducer_counts[reducer_of(i, j)] += 1

    g = tf.Graph(seed=seed)
    with g.as_default():
        queues = []
        for r in range(num_reducers):
            with g.device(f"/job:reducer/task:{r}/device:cpu:0"):
                queues.append(tf.FIFOQueue(
                    queue_capacity,
                    [tf.int64, tf.int64, tf.float32],
                    shapes=[[], [], [tile, tile]],
                    name=f"result_queue_{r}",
                ))
        # Per (worker, reducer) pipeline: a dataset shard feeding one
        # enqueue op; the graph is identical across iterations, with all
        # state flowing through the pipeline (pure data-driven).
        enqueue_ops: dict[tuple[int, int], object] = {}
        dequeue_ops = []
        for w in range(num_gpus):
            for r in range(num_reducers):
                mine = [
                    (i, k, j)
                    for idx, (i, k, j) in enumerate(items)
                    if reducer_of(i, j) == r and idx % num_gpus == w
                ]
                if not mine:
                    continue
                arr = np.asarray(mine, dtype=np.int64)
                with g.device(f"/job:worker/task:{w}/device:cpu:0"):
                    ds = tf.Dataset.from_tensor_slices(
                        (arr[:, 0], arr[:, 1], arr[:, 2])
                    )
                    it_i, it_k, it_j = ds.make_one_shot_iterator(
                        name=f"items_w{w}_r{r}"
                    ).get_next()
                    a = tf.read_tile("A_{0}_{1}.npy", [it_i, it_k],
                                     dtype=tf.float32, shape=[tile, tile],
                                     name=f"loadA_w{w}_r{r}")
                    b = tf.read_tile("B_{0}_{1}.npy", [it_k, it_j],
                                     dtype=tf.float32, shape=[tile, tile],
                                     name=f"loadB_w{w}_r{r}")
                with g.device(f"/job:worker/task:{w}/device:gpu:0"):
                    c = tf.matmul(a, b, name=f"mm_w{w}_r{r}")
                enqueue_ops[(w, r)] = queues[r].enqueue(
                    [it_i, it_j, c], name=f"push_w{w}_r{r}"
                )
        for r in range(num_reducers):
            dequeue_ops.append(queues[r].dequeue(name=f"pop_{r}"))

    start_time = env.now
    finish_times: dict[int, float] = {}
    accumulators: list[dict[tuple[int, int], np.ndarray]] = [
        {} for _ in range(num_reducers)
    ]

    def worker_proc(w: int):
        sess = tf.Session(handle.server("worker", w), graph=g,
                          config=session_config(shape_only, optimize))
        active = [r for r in range(num_reducers) if (w, r) in enqueue_ops]
        # Round-robin across reducer pipelines so both queues fill evenly.
        while active:
            for r in list(active):
                try:
                    yield from sess.run_gen(enqueue_ops[(w, r)])
                except OutOfRangeError:
                    active.remove(r)

    def reducer_proc(r: int):
        sess = tf.Session(handle.server("reducer", r), graph=g,
                          config=session_config(shape_only, optimize))
        node = handle.server("reducer", r).runtime.node
        acc = accumulators[r]
        tile_bytes = tile * tile * 4
        for _ in range(per_reducer_counts[r]):
            i_val, j_val, c_val = yield from sess.run_gen(dequeue_ops[r])
            # Local accumulation on the reducer host: one `+=` on the
            # delivered ndarray — client-loop overhead applies, but it is
            # lighter than the slicing-insertion merge loops of the FFT app
            # (hence 2x the interpreter-bound byte rate).
            accumulate_rate = 2 * node.cpu.model.python_bytes_rate
            yield env.timeout(3 * tile_bytes / accumulate_rate)
            if not shape_only:
                key = (int(i_val), int(j_val))
                if key in acc:
                    acc[key] = acc[key] + c_val
                else:
                    acc[key] = c_val.copy()
        if store_results:
            for (i, j), value in sorted(acc.items()) if acc else []:
                yield from fs.write(f"C_{i}_{j}.npy", value, node)
            if shape_only:
                # Same I/O volume, metadata only.
                my_targets = {
                    (i, j) for i in range(nt) for j in range(nt)
                    if reducer_of(i, j) == r
                }
                for i, j in sorted(my_targets):
                    yield from fs.write(
                        f"C_{i}_{j}.npy",
                        SymbolicValue((tile, tile), tf.float32), node,
                    )
        finish_times[r] = env.now

    procs = [env.process(worker_proc(w)) for w in range(num_gpus)]
    procs += [env.process(reducer_proc(r)) for r in range(num_reducers)]
    for proc in procs:
        env.run(until=proc)
    elapsed = max(finish_times.values()) - start_time

    validated = False
    max_error = 0.0
    if not shape_only:
        a_full = np.block([
            [blocks["A"][(i, k)] for k in range(nt)] for i in range(nt)
        ])
        b_full = np.block([
            [blocks["B"][(k, j)] for j in range(nt)] for k in range(nt)
        ])
        expected = a_full @ b_full
        c_full = np.block([
            [fs.get_array(f"C_{i}_{j}.npy") for j in range(nt)]
            for i in range(nt)
        ])
        max_error = float(np.max(np.abs(c_full - expected)))
        scale = float(np.max(np.abs(expected))) or 1.0
        validated = bool(max_error / scale < 1e-4)
    return MatmulResult(
        system=system,
        n=n,
        tile=tile,
        num_gpus=num_gpus,
        num_reducers=num_reducers,
        protocol=protocol,
        elapsed=elapsed,
        products=len(items),
        validated=validated,
        max_error=max_error,
    )
