"""Serving workload: a model behind the front-door plus a load driver.

``build_mlp_server`` stands up a :class:`~repro.serving.ModelServer`
around a small deterministic two-layer MLP (matmul -> sigmoid ->
matmul — row-independent arithmetic, so micro-batched execution is
byte-identical to unbatched). ``run_serving_load`` drives it closed-loop
from concurrent client threads — the offered-load knob — and reports
sustained requests/sec with p50/p99 latency, the numbers
``benchmarks/bench_serving.py`` sweeps over worker count x batch size x
load.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.graph import Graph
from repro.core.ops.array_ops import constant, placeholder
from repro.core.ops.math_ops import add, matmul, sigmoid
from repro.dtypes import float32
from repro.errors import ReproError
from repro.serving import ModelServer, ServingConfig
from repro.serving.request import now

__all__ = ["ServingLoadResult", "build_mlp_server", "run_serving_load"]


def build_mlp_server(
    features: int = 16,
    hidden: int = 32,
    seed: int = 0,
    config: Optional[ServingConfig] = None,
    signature: str = "mlp",
) -> ModelServer:
    """A ModelServer wrapping one MLP inference signature.

    Weights are seeded constants: every server built with the same
    arguments computes the same function, so load tests can validate
    responses against a NumPy reference.
    """
    rng = np.random.default_rng(seed)
    graph = Graph()
    with graph.as_default():
        x = placeholder(float32, [None, features], name="x")
        w1 = constant(
            rng.standard_normal((features, hidden)).astype(np.float32),
            name="w1",
        )
        b1 = constant(rng.standard_normal(hidden).astype(np.float32), name="b1")
        w2 = constant(
            rng.standard_normal((hidden, 1)).astype(np.float32), name="w2"
        )
        b2 = constant(rng.standard_normal(1).astype(np.float32), name="b2")
        hidden_t = sigmoid(add(matmul(x, w1), b1), name="hidden")
        score = add(matmul(hidden_t, w2), b2, name="score")
    server = ModelServer(graph=graph, config=config)
    server.register_signature(signature, {"x": x}, score)
    return server


def mlp_reference(features: int = 16, hidden: int = 32, seed: int = 0):
    """NumPy reference for :func:`build_mlp_server`'s function."""
    rng = np.random.default_rng(seed)
    w1 = rng.standard_normal((features, hidden)).astype(np.float32)
    b1 = rng.standard_normal(hidden).astype(np.float32)
    w2 = rng.standard_normal((hidden, 1)).astype(np.float32)
    b2 = rng.standard_normal(1).astype(np.float32)

    def forward(x: np.ndarray) -> np.ndarray:
        h = 1.0 / (1.0 + np.exp(-(x @ w1 + b1)))
        return h @ w2 + b2

    return forward


@dataclass
class ServingLoadResult:
    """One closed-loop load run against a ModelServer."""

    clients: int
    requests_per_client: int
    completed: int = 0
    rejected: int = 0
    deadline_rejections: int = 0
    duration_s: float = 0.0
    throughput_rps: float = 0.0
    p50_ms: float = 0.0
    p99_ms: float = 0.0
    mean_latency_ms: float = 0.0
    mean_queue_wait_ms: float = 0.0
    mean_batch_occupancy: float = 0.0
    batch_runs: int = 0
    plan_cache: dict = field(default_factory=dict)
    tenant_stats: dict = field(default_factory=dict)
    latencies_ms: list = field(default_factory=list)

    @property
    def offered(self) -> int:
        return self.clients * self.requests_per_client


def run_serving_load(
    server: ModelServer,
    signature: str = "mlp",
    clients: int = 8,
    requests_per_client: int = 25,
    tenants: Optional[int] = None,
    features: Optional[int] = None,
    rows_per_request: int = 1,
    deadline_ms: Optional[float] = None,
    seed: int = 1,
) -> ServingLoadResult:
    """Drive ``server`` closed-loop and measure sustained behaviour.

    ``clients`` concurrent threads (round-robined over ``tenants``
    logical tenants, default one per client) each issue
    ``requests_per_client`` blocking requests back to back — the
    standard closed-loop offered-load model. Latency is submit-to-
    response host time per request; throughput counts completed requests
    over the span from first submit to last response. Rejections
    (admission back-pressure, quota, deadline) are counted, not
    retried.
    """
    sig = server.signature(signature)
    if features is None:
        (input_tensor,) = sig.inputs.values()
        features = input_tensor.shape.dims[1]
    tenants = tenants or clients
    started = server.start()
    assert started is server

    lock = threading.Lock()
    latencies: list[float] = []
    counters = {"completed": 0, "rejected": 0, "deadline": 0}
    barrier = threading.Barrier(clients + 1)

    def client_loop(index: int) -> None:
        rng = np.random.default_rng(seed + index)
        tenant = f"tenant-{index % tenants}"
        barrier.wait()
        for _ in range(requests_per_client):
            payload = rng.random(
                (rows_per_request, features), dtype=np.float32
            )
            t0 = now()
            try:
                server.submit(
                    tenant, signature, {"x": payload}, deadline_ms=deadline_ms
                )
            except ReproError as exc:
                with lock:
                    counters["rejected"] += 1
                    if getattr(exc, "code", "") == "DEADLINE_EXCEEDED":
                        counters["deadline"] += 1
                continue
            elapsed_ms = (now() - t0) * 1e3
            with lock:
                counters["completed"] += 1
                latencies.append(elapsed_ms)

    threads = [
        threading.Thread(target=client_loop, args=(i,), daemon=True)
        for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    t_start = now()
    for thread in threads:
        thread.join()
    duration = now() - t_start

    stats = server.stats()
    totals = server._accountant.totals()
    result = ServingLoadResult(
        clients=clients,
        requests_per_client=requests_per_client,
        completed=counters["completed"],
        rejected=counters["rejected"],
        deadline_rejections=stats["rejected_deadline"],
        duration_s=duration,
        throughput_rps=(
            counters["completed"] / duration if duration > 0 else 0.0
        ),
        mean_batch_occupancy=stats["mean_batch_occupancy"],
        batch_runs=stats["batch_runs"],
        plan_cache=stats["plan_cache"],
        tenant_stats=server.tenant_stats(),
        latencies_ms=latencies,
        mean_queue_wait_ms=(
            totals.queue_wait_total_s / totals.completed * 1e3
            if totals.completed
            else 0.0
        ),
    )
    if latencies:
        result.p50_ms = float(np.percentile(latencies, 50))
        result.p99_ms = float(np.percentile(latencies, 99))
        result.mean_latency_ms = float(np.mean(latencies))
    return result
