"""Request/response types for the serving front-door.

A :class:`PendingRequest` is one tenant's fetch request travelling
through the pipeline (admit -> queue -> micro-batch -> shared Session ->
scatter); its :class:`ServingFuture` is the client-side handle. The
clock throughout the serving layer is *host* wall time
(``time.perf_counter``): the front-door is a real concurrent system
layered over the simulated backend, so queueing delay and deadlines are
physical, while each batch run's :class:`~repro.core.metadata.RunMetadata`
still carries the simulated execution time.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["PendingRequest", "ServingFuture", "ServingResponse", "now"]


def now() -> float:
    """The serving layer's wall clock (monotonic host seconds)."""
    return time.perf_counter()


@dataclass
class ServingResponse:
    """One completed request: outputs plus its share of the batch run.

    ``outputs`` mirrors the signature's output structure (a bare array
    for a single-output signature, a list otherwise), holding only this
    request's rows of the batched result. ``batch_size`` counts the
    requests coalesced into the run that served this one;
    ``batch_rows`` the total rows those requests contributed.
    """

    outputs: Any
    tenant: str
    signature: str
    batch_size: int
    batch_rows: int
    queue_wait_s: float
    run_wall_s: float
    plan_cache_hit: bool
    metadata: Any  # the shared batch run's RunMetadata


class ServingFuture:
    """Client-side handle for an admitted request (thread-safe)."""

    def __init__(self):
        self._done = threading.Event()
        self._response: Optional[ServingResponse] = None
        self._error: Optional[BaseException] = None

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: Optional[float] = None) -> ServingResponse:
        """Block until completion; returns the response or re-raises the
        failure the server recorded (deadline, cancellation, run error)."""
        if not self._done.wait(timeout):
            raise TimeoutError("serving request still pending")
        if self._error is not None:
            raise self._error
        return self._response

    # -- server side -------------------------------------------------------
    def _complete(self, response: ServingResponse) -> None:
        self._response = response
        self._done.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._done.set()


@dataclass
class PendingRequest:
    """One request in flight through admission and batching."""

    tenant: str
    signature: Any  # ServingSignature
    inputs: dict  # input name -> np.ndarray with leading batch dim
    rows: int  # batch rows this request contributes
    deadline_at: Optional[float]  # absolute perf_counter deadline, or None
    submitted_at: float
    future: ServingFuture = field(default_factory=ServingFuture)
    dequeued_at: Optional[float] = None

    def expired(self, at: Optional[float] = None) -> bool:
        if self.deadline_at is None:
            return False
        return (now() if at is None else at) >= self.deadline_at

    @property
    def deadline_ms(self) -> Optional[float]:
        if self.deadline_at is None:
            return None
        return (self.deadline_at - self.submitted_at) * 1e3
