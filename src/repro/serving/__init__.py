"""Multi-tenant serving layer over the shared simulated Session.

The front-door the ROADMAP's "serves heavy traffic from millions of
users" north star asks for, in the shape the TensorFlow whitepaper
motivates: many concurrent clients multiplexed onto one session, with
request admission, micro-batching of compatible requests into single
plan-cached executions, and per-tenant accounting.

Pipeline::

    clients --submit--> AdmissionController --batches--> workers
        --one Session.run per micro-batch--> scatter --> futures

* :class:`~repro.serving.server.ModelServer` — the front-door.
* :class:`~repro.serving.admission.AdmissionController` — bounded queue,
  per-tenant quotas, deadline-aware typed rejection.
* :class:`~repro.serving.batcher.MicroBatcher` /
  :class:`~repro.serving.batcher.ServingSignature` — batch-axis
  gather/scatter over named graph entry points (byte-identical to
  unbatched execution).
* :class:`~repro.serving.accounting.TenantAccountant` — per-tenant
  RunMetadata attribution (requests, occupancy, cache hits, queue wait,
  deadline rejections).
"""

from repro.serving.accounting import TenantAccountant, TenantStats
from repro.serving.admission import AdmissionController, AdmissionPolicy
from repro.serving.batcher import MicroBatcher, ServingSignature
from repro.serving.request import PendingRequest, ServingFuture, ServingResponse
from repro.serving.server import ModelServer, ServingConfig

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "MicroBatcher",
    "ModelServer",
    "PendingRequest",
    "ServingConfig",
    "ServingFuture",
    "ServingResponse",
    "ServingSignature",
    "TenantAccountant",
    "TenantStats",
]
