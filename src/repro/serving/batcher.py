"""Serving signatures and the micro-batcher's gather/scatter arithmetic.

A :class:`ServingSignature` is one callable entry point of the shared
graph — named placeholder inputs whose leading dimension is the batch
axis, plus fetch tensors — the analog of a TF-Serving signature over a
cached subgraph-per-fetch plan. Because the Session's plan cache keys on
fetch/feed *names* (never fed shapes or values), every batch size of a
signature reuses one cached plan: coalescing is free at plan level.

:class:`MicroBatcher` concatenates compatible requests along axis 0 into
one feed, and scatters the batched results back row-for-row. For
kernels whose execution is row-stable — elementwise ops always, and
BLAS-backed matmul at the small blockings the tests use — batched
execution is byte-identical to running each request alone, the property
the serving tests pin down. (Large BLAS matmuls may pick a different
register blocking per row count, shifting results by an ulp; the
coalescing math itself never touches a value.)
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Union

import numpy as np

from repro.core.tensor import Tensor
from repro.errors import InvalidArgumentError
from repro.serving.request import PendingRequest

__all__ = ["ServingSignature", "MicroBatcher"]


class ServingSignature:
    """One named entry point: batchable placeholder inputs -> fetches."""

    def __init__(
        self,
        name: str,
        inputs: dict[str, Tensor],
        outputs: Union[Tensor, Sequence[Tensor]],
    ):
        if not inputs:
            raise InvalidArgumentError(
                f"signature {name!r} needs at least one batchable input"
            )
        self.name = name
        self.inputs = dict(inputs)
        self.single_output = isinstance(outputs, Tensor)
        self.outputs: list[Tensor] = (
            [outputs] if self.single_output else list(outputs)
        )
        if not self.outputs:
            raise InvalidArgumentError(
                f"signature {name!r} needs at least one output tensor"
            )
        graph = self.outputs[0].graph
        for label, tensor in self.inputs.items():
            if not isinstance(tensor, Tensor):
                raise InvalidArgumentError(
                    f"signature {name!r} input {label!r} must be a Tensor, "
                    f"got {type(tensor).__name__}"
                )
            if tensor.graph is not graph:
                raise InvalidArgumentError(
                    f"signature {name!r} input {label!r} is from a "
                    f"different graph than its outputs"
                )
            dims = tensor.shape.dims
            if dims is None or len(dims) < 1 or dims[0] is not None:
                raise InvalidArgumentError(
                    f"signature {name!r} input {label!r} must have a "
                    f"variable leading (batch) dimension — shape "
                    f"[None, ...]; got {tensor.shape}. The batch dim is "
                    f"the micro-batcher's coalescing knob."
                )

    def validate_inputs(
        self, inputs: dict[str, Any]
    ) -> tuple[dict[str, np.ndarray], int]:
        """Coerce one request's inputs; returns (arrays, batch rows)."""
        expected = set(self.inputs)
        got = set(inputs)
        if got != expected:
            raise InvalidArgumentError(
                f"signature {self.name!r} expects inputs "
                f"{sorted(expected)}, got {sorted(got)}"
            )
        arrays: dict[str, np.ndarray] = {}
        rows: Optional[int] = None
        for label, tensor in self.inputs.items():
            value = np.asarray(inputs[label], dtype=tensor.dtype.np_dtype)
            if value.ndim < 1:
                raise InvalidArgumentError(
                    f"signature {self.name!r} input {label!r} must carry "
                    f"a leading batch dimension; got a scalar"
                )
            from repro.core.tensor import TensorShape

            if not tensor.shape.is_compatible_with(TensorShape(value.shape)):
                raise InvalidArgumentError(
                    f"signature {self.name!r} input {label!r} has shape "
                    f"{value.shape}; placeholder expects {tensor.shape}"
                )
            if rows is None:
                rows = value.shape[0]
            elif value.shape[0] != rows:
                raise InvalidArgumentError(
                    f"signature {self.name!r}: inputs disagree on batch "
                    f"rows ({rows} vs {value.shape[0]} for {label!r})"
                )
            arrays[label] = value
        return arrays, int(rows)


class MicroBatcher:
    """Gathers compatible requests into one feed; scatters results back."""

    @staticmethod
    def assemble(
        signature: ServingSignature, batch: Sequence[PendingRequest]
    ) -> tuple[dict[str, np.ndarray], list[int]]:
        """Concatenate per-request inputs along the batch axis.

        A single-request batch passes its arrays through untouched (no
        concatenate/slice round trip on the unbatched path).
        """
        sizes = [pending.rows for pending in batch]
        if len(batch) == 1:
            return dict(batch[0].inputs), sizes
        feed = {
            label: np.concatenate(
                [pending.inputs[label] for pending in batch], axis=0
            )
            for label in signature.inputs
        }
        return feed, sizes

    @staticmethod
    def scatter(
        signature: ServingSignature,
        results: Any,
        sizes: Sequence[int],
    ) -> list[Any]:
        """Split batched fetch values back into per-request outputs.

        Returns one entry per request, mirroring the signature's output
        structure. Slices are copied so responses never pin the whole
        batch buffer (or each other) in memory.
        """
        # Session.run flattens a single-element fetch list to a bare
        # value; renormalize to one array per output tensor.
        values = [results] if len(signature.outputs) == 1 else list(results)
        offsets = np.cumsum([0] + list(sizes))
        scattered: list[Any] = []
        for index in range(len(sizes)):
            lo, hi = offsets[index], offsets[index + 1]
            if len(sizes) == 1:
                rows = list(values)  # untouched single-request fast path
            else:
                rows = [v[lo:hi].copy() for v in values]
            scattered.append(rows[0] if signature.single_output else rows)
        return scattered
