"""Per-tenant accounting over the shared Session's RunMetadata.

Each batch run produces one :class:`~repro.core.metadata.RunMetadata`;
the accountant attributes it to every tenant that rode the batch:
request counts, batch occupancy (how much coalescing the tenant's
traffic actually got), plan-cache hits, queue wait, and the typed
rejections from admission and dispatch. Thread-safe — worker threads and
client threads record concurrently.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from typing import Optional

__all__ = ["TenantStats", "TenantAccountant"]


@dataclass
class TenantStats:
    """Cumulative serving statistics for one tenant."""

    tenant: str
    submitted: int = 0
    completed: int = 0
    failed: int = 0  # batch run raised; error propagated to the client
    rejected_queue_full: int = 0
    rejected_quota: int = 0
    # Deadline expiries: at admission (dead on arrival) or at dispatch
    # (expired while queued) — both surface as DeadlineExceededError.
    rejected_deadline: int = 0
    # Batch runs this tenant participated in, and the coalesced batch
    # sizes its completed requests rode (occupancy = their mean).
    batches: int = 0
    batch_size_total: int = 0
    # Completed requests whose batch run reused a cached execution plan.
    plan_cache_hit_requests: int = 0
    queue_wait_total_s: float = 0.0
    run_wall_total_s: float = 0.0  # host seconds inside Session.run
    sim_time_total_s: float = 0.0  # RunMetadata simulated wall time

    @property
    def rejected(self) -> int:
        return (
            self.rejected_queue_full
            + self.rejected_quota
            + self.rejected_deadline
        )

    @property
    def mean_batch_occupancy(self) -> float:
        """Mean requests per batch run, over this tenant's completions."""
        if not self.completed:
            return 0.0
        return self.batch_size_total / self.completed

    @property
    def mean_queue_wait_s(self) -> float:
        if not self.completed:
            return 0.0
        return self.queue_wait_total_s / self.completed

    @property
    def plan_cache_hit_rate(self) -> float:
        if not self.completed:
            return 0.0
        return self.plan_cache_hit_requests / self.completed


class TenantAccountant:
    """Thread-safe registry of :class:`TenantStats`."""

    _REJECTION_FIELDS = {
        "queue_full": "rejected_queue_full",
        "quota": "rejected_quota",
        "deadline": "rejected_deadline",
    }

    def __init__(self):
        self._lock = threading.Lock()
        self._stats: dict[str, TenantStats] = {}

    def _get(self, tenant: str) -> TenantStats:
        stats = self._stats.get(tenant)
        if stats is None:
            stats = self._stats[tenant] = TenantStats(tenant=tenant)
        return stats

    def record_submitted(self, tenant: str) -> None:
        with self._lock:
            self._get(tenant).submitted += 1

    def record_rejection(self, tenant: str, reason: str) -> None:
        field_name = self._REJECTION_FIELDS.get(reason)
        with self._lock:
            stats = self._get(tenant)
            if field_name is None:
                stats.failed += 1
            else:
                setattr(stats, field_name, getattr(stats, field_name) + 1)

    def record_failure(self, tenant: str) -> None:
        with self._lock:
            self._get(tenant).failed += 1

    def record_completion(
        self,
        tenant: str,
        batch_size: int,
        plan_cache_hit: bool,
        queue_wait_s: float,
        run_wall_s: float,
        sim_time_s: float,
    ) -> None:
        with self._lock:
            stats = self._get(tenant)
            stats.completed += 1
            stats.batch_size_total += batch_size
            if plan_cache_hit:
                stats.plan_cache_hit_requests += 1
            stats.queue_wait_total_s += queue_wait_s
            stats.run_wall_total_s += run_wall_s
            stats.sim_time_total_s += sim_time_s

    def record_batch(self, tenants) -> None:
        """Count one batch run for every distinct participating tenant."""
        with self._lock:
            for tenant in set(tenants):
                self._get(tenant).batches += 1

    # -- introspection -----------------------------------------------------
    def snapshot(self, tenant: Optional[str] = None):
        """A consistent copy: one tenant's stats, or ``{tenant: stats}``."""
        with self._lock:
            if tenant is not None:
                return replace(self._get(tenant))
            return {name: replace(s) for name, s in self._stats.items()}

    def totals(self) -> TenantStats:
        """Aggregate across every tenant (``tenant="*"``)."""
        with self._lock:
            total = TenantStats(tenant="*")
            for stats in self._stats.values():
                total.submitted += stats.submitted
                total.completed += stats.completed
                total.failed += stats.failed
                total.rejected_queue_full += stats.rejected_queue_full
                total.rejected_quota += stats.rejected_quota
                total.rejected_deadline += stats.rejected_deadline
                total.batches += stats.batches
                total.batch_size_total += stats.batch_size_total
                total.plan_cache_hit_requests += stats.plan_cache_hit_requests
                total.queue_wait_total_s += stats.queue_wait_total_s
                total.run_wall_total_s += stats.run_wall_total_s
                total.sim_time_total_s += stats.sim_time_total_s
            return total
