"""Admission control: the bounded front-door queue with tenant quotas.

Requests that cannot be queued are rejected *typed*, mirroring the
framework's gRPC-style status codes:

* queue at capacity -> :class:`~repro.errors.ResourceExhaustedError`
* tenant over its quota -> :class:`~repro.errors.ResourceExhaustedError`
* deadline already expired -> :class:`~repro.errors.DeadlineExceededError`
  (the same semantics PR 6's detection layer gives a stuck collective:
  fail fast with a diagnosis instead of occupying the system)

Every rejection carries ``admission_reason`` (``"queue_full"`` /
``"quota"`` / ``"deadline"``) so the accounting layer can attribute it
per tenant without parsing messages.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional

from repro.errors import (
    CancelledError,
    DeadlineExceededError,
    ResourceExhaustedError,
)
from repro.serving.request import PendingRequest, now

__all__ = ["AdmissionPolicy", "AdmissionController"]


@dataclass
class AdmissionPolicy:
    """Front-door limits.

    ``max_queue`` bounds total queued requests (back-pressure toward
    clients instead of unbounded memory growth); ``per_tenant_quota``
    bounds one tenant's share of the queue so a flooding tenant cannot
    starve the rest (None = no per-tenant bound).
    """

    max_queue: int = 256
    per_tenant_quota: Optional[int] = None


class AdmissionController:
    """Thread-safe bounded queue feeding the micro-batcher.

    ``offer`` admits or rejects; ``next_batch`` blocks for work and
    returns up to ``max_batch`` *same-signature* requests in FIFO order
    (head-of-line request picks the signature; compatible followers are
    coalesced, others keep their place for the next worker).
    """

    def __init__(self, policy: Optional[AdmissionPolicy] = None):
        self.policy = policy or AdmissionPolicy()
        self._lock = threading.Lock()
        self._nonempty = threading.Condition(self._lock)
        self._queue: list[PendingRequest] = []
        self._tenant_depth: dict[str, int] = {}
        self._closed = False

    # -- producer side -----------------------------------------------------
    def offer(self, pending: PendingRequest) -> None:
        """Admit ``pending`` or raise a typed, attributed rejection."""
        with self._nonempty:
            if self._closed:
                raise CancelledError("serving front-door is shut down")
            if pending.expired():
                waited = (now() - pending.submitted_at) * 1e3
                exc = DeadlineExceededError(
                    f"request from tenant {pending.tenant!r} arrived with "
                    f"its {pending.deadline_ms:.1f} ms deadline already "
                    f"expired ({waited:.1f} ms since submission); rejected "
                    f"at admission"
                )
                exc.admission_reason = "deadline"
                raise exc
            if len(self._queue) >= self.policy.max_queue:
                exc = ResourceExhaustedError(
                    f"admission queue full ({self.policy.max_queue} "
                    f"queued); request from tenant {pending.tenant!r} "
                    f"rejected — retry with backoff"
                )
                exc.admission_reason = "queue_full"
                raise exc
            quota = self.policy.per_tenant_quota
            depth = self._tenant_depth.get(pending.tenant, 0)
            if quota is not None and depth >= quota:
                exc = ResourceExhaustedError(
                    f"tenant {pending.tenant!r} exceeded its quota of "
                    f"{quota} queued request(s) ({depth} already waiting)"
                )
                exc.admission_reason = "quota"
                raise exc
            self._queue.append(pending)
            self._tenant_depth[pending.tenant] = depth + 1
            self._nonempty.notify()

    # -- consumer side -----------------------------------------------------
    def next_batch(
        self, max_batch: int, window_s: float = 0.0
    ) -> Optional[list[PendingRequest]]:
        """Dequeue up to ``max_batch`` same-signature requests (FIFO).

        Blocks while the queue is open and empty; returns ``None`` once
        the controller is closed and drained. With ``window_s > 0`` a
        partially filled batch lingers up to that long for compatible
        stragglers (classic micro-batching latency/throughput trade).
        """
        with self._nonempty:
            while not self._queue:
                if self._closed:
                    return None
                self._nonempty.wait()
            signature = self._queue[0].signature
            deadline = now() + window_s if window_s > 0 else None
            while True:
                batch = [
                    p for p in self._queue if p.signature is signature
                ][:max_batch]
                if len(batch) >= max_batch or deadline is None or self._closed:
                    break
                remaining = deadline - now()
                if remaining <= 0:
                    break
                self._nonempty.wait(remaining)
            at = now()
            for pending in batch:
                self._queue.remove(pending)
                self._tenant_depth[pending.tenant] -= 1
                pending.dequeued_at = at
            return batch

    # -- lifecycle / introspection ----------------------------------------
    def close(self, cancel_pending: bool = False) -> list[PendingRequest]:
        """Stop admitting; wake every waiter.

        With ``cancel_pending`` the queue is emptied and the orphaned
        requests returned so the server can fail their futures; without
        it workers keep draining until ``next_batch`` returns ``None``.
        """
        with self._nonempty:
            self._closed = True
            cancelled: list[PendingRequest] = []
            if cancel_pending:
                cancelled = list(self._queue)
                self._queue.clear()
                self._tenant_depth.clear()
            self._nonempty.notify_all()
            return cancelled

    def depth(self) -> int:
        with self._lock:
            return len(self._queue)

    def tenant_depth(self, tenant: str) -> int:
        with self._lock:
            return self._tenant_depth.get(tenant, 0)
