"""The serving front-door: many concurrent clients, one shared Session.

``ModelServer`` is the multi-tenant entry point the ROADMAP's
"millions of users" direction calls for: client threads submit fetch
requests against registered signatures; an admission controller applies
back-pressure, quotas, and deadline-aware rejection; worker threads
coalesce compatible requests into micro-batches and execute each batch
as *one* plan-cached ``Session.run``; results scatter back row-for-row,
and every run's ``RunMetadata`` is attributed to the tenants that rode
it.

The Session itself is thread-safe (plan preparation overlaps across
workers; only the discrete-event simulator drive serializes), so worker
threads simply call ``session.run`` — the whole TF-style stack below
(plan cache, optimizer, executor lanes, simnet) is reused unchanged.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Optional, Sequence, Union

from repro.core.metadata import RunMetadata
from repro.core.session import Session, SessionConfig
from repro.core.tensor import Tensor
from repro.errors import (
    AlreadyExistsError,
    CancelledError,
    DeadlineExceededError,
    FailedPreconditionError,
    NotFoundError,
    ReproError,
)
from repro.serving.accounting import TenantAccountant, TenantStats
from repro.serving.admission import AdmissionController, AdmissionPolicy
from repro.serving.batcher import MicroBatcher, ServingSignature
from repro.serving.request import (
    PendingRequest,
    ServingFuture,
    ServingResponse,
    now,
)

__all__ = ["ModelServer", "ServingConfig"]


@dataclass
class ServingConfig:
    """Front-door knobs (admission + batching + worker pool)."""

    # Admission (see AdmissionPolicy).
    max_queue: int = 256
    per_tenant_quota: Optional[int] = None
    # Micro-batching: requests per coalesced run, and how long a
    # partially filled batch lingers for same-signature stragglers.
    max_batch_size: int = 8
    batch_window_ms: float = 0.0
    # Dispatcher threads pulling batches into the shared Session.
    num_workers: int = 1
    # Deadline applied to requests that do not carry their own (None =
    # requests without an explicit deadline never expire).
    default_deadline_ms: Optional[float] = None


class ModelServer:
    """Admission -> micro-batcher -> shared Session -> scatter."""

    def __init__(
        self,
        session: Optional[Session] = None,
        graph=None,
        config: Optional[ServingConfig] = None,
        session_config: Optional[SessionConfig] = None,
    ):
        if session is not None and session_config is not None:
            raise FailedPreconditionError(
                "pass either an existing session or a session_config for "
                "a private one, not both"
            )
        self.config = config or ServingConfig()
        self.session = session or Session(
            graph=graph, config=session_config
        )
        self._signatures: dict[str, ServingSignature] = {}
        self._admission = AdmissionController(
            AdmissionPolicy(
                max_queue=self.config.max_queue,
                per_tenant_quota=self.config.per_tenant_quota,
            )
        )
        self._accountant = TenantAccountant()
        self._workers: list[threading.Thread] = []
        self._started = False
        self._stopped = False
        self._batch_runs = 0
        self._batched_rows = 0
        self._state_lock = threading.Lock()

    # -- signatures --------------------------------------------------------
    def register_signature(
        self,
        name: str,
        inputs: dict[str, Tensor],
        outputs: Union[Tensor, Sequence[Tensor]],
    ) -> ServingSignature:
        """Expose a named entry point of the shared graph.

        ``inputs`` maps request field names to placeholders whose leading
        dimension is the batch axis; ``outputs`` are the tensors every
        request fetches. All signatures share one Session — and therefore
        one plan cache, whose per-signature entries are exactly TF's
        cached-subgraph-per-signature serving design.
        """
        if name in self._signatures:
            raise AlreadyExistsError(f"signature {name!r} already registered")
        signature = ServingSignature(name, inputs, outputs)
        for tensor in signature.outputs:
            if tensor.graph is not self.session.graph:
                raise FailedPreconditionError(
                    f"signature {name!r} outputs belong to a different "
                    f"graph than the serving session"
                )
        self._signatures[name] = signature
        return signature

    def signature(self, name: str) -> ServingSignature:
        signature = self._signatures.get(name)
        if signature is None:
            raise NotFoundError(
                f"no signature {name!r}; registered: "
                f"{sorted(self._signatures)}"
            )
        return signature

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "ModelServer":
        with self._state_lock:
            if self._started:
                return self
            if self._stopped:
                raise FailedPreconditionError(
                    "ModelServer cannot restart after stop(); build a new one"
                )
            if not self._signatures:
                raise FailedPreconditionError(
                    "register at least one signature before start()"
                )
            self._started = True
            for index in range(max(1, self.config.num_workers)):
                worker = threading.Thread(
                    target=self._serve_loop,
                    name=f"serving-worker-{index}",
                    daemon=True,
                )
                worker.start()
                self._workers.append(worker)
        return self

    def stop(self, drain: bool = True) -> None:
        """Shut the front-door.

        ``drain=True`` serves everything already admitted before workers
        exit; ``drain=False`` cancels queued requests (their futures fail
        with :class:`~repro.errors.CancelledError`).
        """
        with self._state_lock:
            if self._stopped:
                return
            self._stopped = True
        cancelled = self._admission.close(cancel_pending=not drain)
        for pending in cancelled:
            self._accountant.record_failure(pending.tenant)
            pending.future._fail(
                CancelledError(
                    f"serving shut down before the request from tenant "
                    f"{pending.tenant!r} was dispatched"
                )
            )
        for worker in self._workers:
            worker.join()

    def __enter__(self) -> "ModelServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop(drain=True)

    # -- client side -------------------------------------------------------
    def submit_async(
        self,
        tenant: str,
        signature: str,
        inputs: dict[str, Any],
        deadline_ms: Optional[float] = None,
    ) -> ServingFuture:
        """Admit one request; returns its future or raises the rejection."""
        sig = self.signature(signature)
        arrays, rows = sig.validate_inputs(inputs)
        self._accountant.record_submitted(tenant)
        if deadline_ms is None:
            deadline_ms = self.config.default_deadline_ms
        submitted_at = now()
        pending = PendingRequest(
            tenant=tenant,
            signature=sig,
            inputs=arrays,
            rows=rows,
            deadline_at=(
                submitted_at + deadline_ms / 1e3
                if deadline_ms is not None
                else None
            ),
            submitted_at=submitted_at,
        )
        try:
            self._admission.offer(pending)
        except ReproError as exc:
            self._accountant.record_rejection(
                tenant, getattr(exc, "admission_reason", "error")
            )
            raise
        return pending.future

    def submit(
        self,
        tenant: str,
        signature: str,
        inputs: dict[str, Any],
        deadline_ms: Optional[float] = None,
        timeout: Optional[float] = None,
    ) -> ServingResponse:
        """Blocking :meth:`submit_async`."""
        return self.submit_async(
            tenant, signature, inputs, deadline_ms
        ).result(timeout)

    # -- worker side -------------------------------------------------------
    def _serve_loop(self) -> None:
        admission = self._admission
        config = self.config
        while True:
            batch = admission.next_batch(
                config.max_batch_size, config.batch_window_ms / 1e3
            )
            if batch is None:
                return  # closed and drained
            live: list[PendingRequest] = []
            at = now()
            for pending in batch:
                if pending.expired(at):
                    self._accountant.record_rejection(
                        pending.tenant, "deadline"
                    )
                    waited = (at - pending.submitted_at) * 1e3
                    pending.future._fail(
                        DeadlineExceededError(
                            f"request from tenant {pending.tenant!r} "
                            f"waited {waited:.1f} ms in the admission "
                            f"queue, exceeding its "
                            f"{pending.deadline_ms:.1f} ms deadline"
                        )
                    )
                else:
                    live.append(pending)
            if not live:
                continue
            self._run_batch(live)

    def _run_batch(self, live: list[PendingRequest]) -> None:
        signature = live[0].signature
        feed, sizes = MicroBatcher.assemble(signature, live)
        feed_dict = {
            signature.inputs[label]: value for label, value in feed.items()
        }
        metadata = RunMetadata()
        started = now()
        try:
            results = self.session.run(
                signature.outputs, feed_dict=feed_dict, run_metadata=metadata
            )
        except BaseException as exc:  # propagate to every rider
            for pending in live:
                self._accountant.record_failure(pending.tenant)
                pending.future._fail(exc)
            return
        run_wall = now() - started
        outputs = MicroBatcher.scatter(signature, results, sizes)
        batch_size = len(live)
        batch_rows = sum(sizes)
        with self._state_lock:
            self._batch_runs += 1
            self._batched_rows += batch_rows
        for pending, rows in zip(live, outputs):
            queue_wait = (pending.dequeued_at or started) - pending.submitted_at
            self._accountant.record_completion(
                pending.tenant,
                batch_size=batch_size,
                plan_cache_hit=metadata.plan_cache_hit,
                queue_wait_s=queue_wait,
                run_wall_s=run_wall,
                sim_time_s=metadata.wall_time,
            )
            pending.future._complete(
                ServingResponse(
                    outputs=rows,
                    tenant=pending.tenant,
                    signature=signature.name,
                    batch_size=batch_size,
                    batch_rows=batch_rows,
                    queue_wait_s=queue_wait,
                    run_wall_s=run_wall,
                    plan_cache_hit=metadata.plan_cache_hit,
                    metadata=metadata,
                )
            )
        self._accountant.record_batch(p.tenant for p in live)

    # -- introspection -----------------------------------------------------
    def tenant_stats(self, tenant: Optional[str] = None):
        """Per-tenant accounting (one tenant, or ``{tenant: stats}``)."""
        return self._accountant.snapshot(tenant)

    def stats(self) -> dict:
        """Server-wide counters plus the shared plan cache's pressure."""
        totals: TenantStats = self._accountant.totals()
        with self._state_lock:
            batch_runs = self._batch_runs
            batched_rows = self._batched_rows
        return {
            "signatures": sorted(self._signatures),
            "queue_depth": self._admission.depth(),
            "batch_runs": batch_runs,
            "batched_rows": batched_rows,
            "requests_submitted": totals.submitted,
            "requests_completed": totals.completed,
            "requests_failed": totals.failed,
            "rejected_queue_full": totals.rejected_queue_full,
            "rejected_quota": totals.rejected_quota,
            "rejected_deadline": totals.rejected_deadline,
            "mean_batch_occupancy": (
                totals.completed / batch_runs if batch_runs else 0.0
            ),
            "plan_cache": self.session.plan_cache_info(),
        }
