"""Data types for tensors.

A :class:`DType` wraps a NumPy dtype and carries the metadata the runtime
needs: wire size in bytes (for transport cost accounting), numeric class
flags, and a canonical name used in graph serialization.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidArgumentError

__all__ = [
    "DType",
    "float32",
    "float64",
    "complex64",
    "complex128",
    "int32",
    "int64",
    "bool_",
    "as_dtype",
    "ALL_DTYPES",
]


class DType:
    """An immutable tensor element type.

    Attributes:
        name: canonical string name (``"float32"``).
        np_dtype: the corresponding ``numpy.dtype``.
        size: bytes per element on the wire and in device memory.
    """

    __slots__ = ("name", "np_dtype", "size", "_enum")

    def __init__(self, name: str, np_dtype, enum: int):
        self.name = name
        self.np_dtype = np.dtype(np_dtype)
        self.size = int(self.np_dtype.itemsize)
        self._enum = enum

    # -- numeric classification -------------------------------------------
    @property
    def is_floating(self) -> bool:
        return np.issubdtype(self.np_dtype, np.floating)

    @property
    def is_complex(self) -> bool:
        return np.issubdtype(self.np_dtype, np.complexfloating)

    @property
    def is_integer(self) -> bool:
        return np.issubdtype(self.np_dtype, np.integer)

    @property
    def is_bool(self) -> bool:
        return self.np_dtype == np.bool_

    @property
    def is_numeric(self) -> bool:
        return not self.is_bool

    @property
    def real_dtype(self) -> "DType":
        """The real-valued dtype carrying one component of this dtype."""
        if self is complex64:
            return float32
        if self is complex128:
            return float64
        return self

    @property
    def enum(self) -> int:
        """Stable integer tag used by the wire serializer."""
        return self._enum

    # -- protocol ----------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"repro.{self.name}"

    def __str__(self) -> str:
        return self.name

    def __eq__(self, other) -> bool:
        if isinstance(other, DType):
            return self.name == other.name
        try:
            return self.name == as_dtype(other).name
        except (InvalidArgumentError, TypeError):
            return NotImplemented

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return hash(self.name)


float32 = DType("float32", np.float32, 1)
float64 = DType("float64", np.float64, 2)
complex64 = DType("complex64", np.complex64, 3)
complex128 = DType("complex128", np.complex128, 4)
int32 = DType("int32", np.int32, 5)
int64 = DType("int64", np.int64, 6)
bool_ = DType("bool", np.bool_, 7)

ALL_DTYPES = (float32, float64, complex64, complex128, int32, int64, bool_)

_BY_NAME = {d.name: d for d in ALL_DTYPES}
_BY_NP = {d.np_dtype: d for d in ALL_DTYPES}
_BY_ENUM = {d.enum: d for d in ALL_DTYPES}


def as_dtype(value) -> DType:
    """Coerce ``value`` (DType, name, numpy dtype, python type) to a DType."""
    if isinstance(value, DType):
        return value
    if isinstance(value, str):
        if value in _BY_NAME:
            return _BY_NAME[value]
        raise InvalidArgumentError(f"Unknown dtype name: {value!r}")
    if value is float:
        return float64
    if value is int:
        return int64
    if value is bool:
        return bool_
    if value is complex:
        return complex128
    try:
        np_dt = np.dtype(value)
    except TypeError as exc:
        raise InvalidArgumentError(f"Cannot convert {value!r} to a DType") from exc
    if np_dt in _BY_NP:
        return _BY_NP[np_dt]
    # Map unsupported widths onto the closest supported type, the way the
    # real framework promotes python literals.
    if np.issubdtype(np_dt, np.floating):
        return float64 if np_dt.itemsize > 4 else float32
    if np.issubdtype(np_dt, np.integer):
        return int64 if np_dt.itemsize > 4 else int32
    if np.issubdtype(np_dt, np.complexfloating):
        return complex128 if np_dt.itemsize > 8 else complex64
    raise InvalidArgumentError(f"Unsupported dtype: {value!r}")


def from_enum(tag: int) -> DType:
    """Inverse of :attr:`DType.enum` (wire deserialization)."""
    try:
        return _BY_ENUM[tag]
    except KeyError as exc:
        raise InvalidArgumentError(f"Unknown dtype enum: {tag}") from exc


def result_dtype(*dtypes: DType) -> DType:
    """NumPy-style promotion across operand dtypes."""
    if not dtypes:
        raise InvalidArgumentError("result_dtype() needs at least one dtype")
    np_result = np.result_type(*[d.np_dtype for d in dtypes])
    return as_dtype(np_result)
