"""``python -m repro.analysis`` — verify every example graph and a
seeded random-graph corpus.

The CLI is the CI verifier lane's entry point and a local burn-in tool:

* each script under ``examples/`` runs in a subprocess with
  ``REPRO_VERIFY_PLANS=1``, so every plan any example builds goes
  through the full static-analysis layer (graph invariants after every
  optimizer pass, plan races/pairing/collective order before caching).
  ``REPRO_VERIFY_REPORT`` collects one JSON line per verified plan, so
  the summary can say how many plans were actually proven, not just
  that scripts exited zero;
* ``--corpus N`` additionally generates N seeded random graphs
  (:mod:`repro.analysis.corpus`), verifying each and differential-testing
  optimized against legacy execution;
* ``--json PATH`` writes the machine-readable report CI uploads as an
  artifact, and ``--rules`` prints the registered rule catalog.

Exit status is non-zero when any example fails, any diagnostic fires, or
any corpus graph miscompares — the lane is red precisely when the
verifier or an optimizer pass regressed.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.analysis import rule_catalog


def _repo_root() -> Path:
    # src/repro/analysis/__main__.py -> repo root three levels up from src/
    return Path(__file__).resolve().parents[3]


def _verify_example(script: Path, timeout: float) -> dict:
    env = dict(os.environ)
    env["REPRO_VERIFY_PLANS"] = "1"
    src_dir = str(_repo_root() / "src")
    env["PYTHONPATH"] = (
        src_dir + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src_dir
    )
    with tempfile.NamedTemporaryFile(
        mode="r", suffix=".jsonl", delete=False
    ) as tmp:
        report_path = tmp.name
    env["REPRO_VERIFY_REPORT"] = report_path
    started = time.perf_counter()
    result: dict = {"example": script.name, "plans": 0, "diagnostics": []}
    try:
        proc = subprocess.run(
            [sys.executable, str(script)],
            env=env,
            capture_output=True,
            text=True,
            timeout=timeout,
        )
        result["returncode"] = proc.returncode
        if proc.returncode != 0:
            result["stderr"] = proc.stderr[-2000:]
        records = []
        with open(report_path, encoding="utf-8") as fh:
            records = [json.loads(line) for line in fh if line.strip()]
        result["plans"] = len(records)
        for record in records:
            result["diagnostics"].extend(record.get("diagnostics", ()))
    except subprocess.TimeoutExpired:
        result["returncode"] = -1
        result["stderr"] = f"timed out after {timeout:.0f}s"
    finally:
        try:
            os.unlink(report_path)
        except OSError:
            pass
    result["seconds"] = round(time.perf_counter() - started, 2)
    result["ok"] = result["returncode"] == 0 and not any(
        d["severity"] != "INFO" for d in result["diagnostics"]
    )
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="statically verify example graphs and a random corpus",
    )
    parser.add_argument(
        "--examples-dir", type=Path, default=None,
        help="directory of example scripts (default: <repo>/examples)",
    )
    parser.add_argument(
        "--skip-examples", action="store_true",
        help="only run the random-graph corpus",
    )
    parser.add_argument(
        "--corpus", type=int, default=0, metavar="N",
        help="also verify N seeded random graphs (differential-tested)",
    )
    parser.add_argument("--seed", type=int, default=20190520,
                        help="corpus RNG seed")
    parser.add_argument(
        "--timeout", type=float, default=300.0,
        help="per-example subprocess timeout in seconds",
    )
    parser.add_argument(
        "--json", type=Path, default=None, metavar="PATH",
        help="write the machine-readable report here (CI artifact)",
    )
    parser.add_argument(
        "--rules", action="store_true",
        help="print the registered rule catalog and exit",
    )
    args = parser.parse_args(argv)

    if args.rules:
        for rule in rule_catalog():
            print(f"{rule.name:35s} {rule.severity.name:8s} "
                  f"{rule.description}")
        return 0

    report: dict = {"examples": [], "corpus": None}
    failures = 0

    if not args.skip_examples:
        examples_dir = args.examples_dir or _repo_root() / "examples"
        scripts = sorted(examples_dir.glob("*.py"))
        if not scripts:
            print(f"no example scripts under {examples_dir}", file=sys.stderr)
            return 2
        for script in scripts:
            outcome = _verify_example(script, args.timeout)
            report["examples"].append(outcome)
            status = "ok" if outcome["ok"] else "FAIL"
            print(
                f"{status:4s} {outcome['example']:28s} "
                f"{outcome['plans']:3d} plan(s) verified  "
                f"[{outcome['seconds']:.1f}s]"
            )
            if not outcome["ok"]:
                failures += 1
                for diag in outcome["diagnostics"]:
                    print(f"     {diag['severity']}: {diag['rule']}: "
                          f"{diag['message']}")
                if outcome.get("stderr"):
                    print(f"     {outcome['stderr']}")

    if args.corpus > 0:
        from repro.analysis.corpus import verify_corpus

        started = time.perf_counter()
        corpus = verify_corpus(args.corpus, seed=args.seed)
        elapsed = time.perf_counter() - started
        report["corpus"] = corpus.to_dict()
        report["corpus"]["seed"] = args.seed
        status = "ok" if corpus.ok else "FAIL"
        print(
            f"{status:4s} corpus: {corpus.graphs} graph(s), {corpus.ops} "
            f"op(s), {corpus.plans_verified} plan(s) verified, "
            f"{len(corpus.mismatches)} mismatch(es)  [{elapsed:.1f}s]"
        )
        if not corpus.ok:
            failures += 1
            for diag in corpus.diagnostics:
                print(f"     false positive: {diag.format()}")
            for mismatch in corpus.mismatches:
                print(f"     {mismatch}")

    if args.json is not None:
        report["ok"] = failures == 0
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(report, indent=2), encoding="utf-8")
        print(f"report written to {args.json}")

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
