"""Static verification of lowered execution plans.

:func:`verify_plan` analyzes the :class:`~repro.core.partition.ExecutionPlan`
that ``partition.build_plan`` produces — the artifact the executor actually
schedules — and proves three families of properties *before* anything runs:

* **Variable races.** Stateful items touching the same variable storage
  (same ``var_name`` on the same task's resource manager) must be totally
  ordered by a happens-before path over value, control and send/recv
  ordering edges. Unordered write-write or read-write pairs execute in
  simulator-schedule order, which is exactly the class of nondeterminism
  the graph abstraction promises not to have. Unordered pairs of pure
  accumulations (``AssignAdd``/``AssignSub``) demote to a warning: the
  final value is order-independent up to floating-point rounding.

* **Send/recv pairing.** Every rendezvous key must match exactly one send
  to its recvs — an orphan recv blocks until the run deadline, and a
  double-send races on a single rendezvous slot.

* **Collective schedules.** Each collective op must lower to exactly one
  leg per rank with full world membership, and the happens-before
  relation must admit an order in which every rank can arrive at every
  collective: a dependency cycle through the group barriers (rank 0
  issues A before B while rank 1 issues B before A) is the classic MPI
  deadlock, surfaced here statically instead of as a 300-second
  rendezvous hang.

The analysis is pure reading: it never mutates plan items.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from repro.analysis.diagnostics import Report, Severity, register_rule

__all__ = ["verify_plan"]

register_rule(
    "plan/dangling-item", Severity.ERROR, "plan",
    "Item sources and ordering deps must reference live items of this plan",
)
register_rule(
    "plan/cycle", Severity.ERROR, "plan",
    "The item dependency relation (with collective barriers) must be acyclic",
)
register_rule(
    "plan/orphan-recv", Severity.ERROR, "plan",
    "Every recv's rendezvous key needs a matching send",
)
register_rule(
    "plan/double-send", Severity.ERROR, "plan",
    "At most one send may produce a rendezvous key",
)
register_rule(
    "plan/unpaired-send", Severity.WARNING, "plan",
    "A send whose key no recv consumes is dead traffic",
)
register_rule(
    "plan/variable-race", Severity.ERROR, "plan",
    "Accesses to one variable need happens-before ordering when any writes",
)
register_rule(
    "plan/collective-world", Severity.ERROR, "plan",
    "A collective must lower to one leg per rank covering the full world",
)
register_rule(
    "plan/collective-order", Severity.ERROR, "plan",
    "All ranks must issue their collectives in one consistent order",
)
register_rule(
    "plan/fused-member", Severity.ERROR, "plan",
    "A fused chain needs >= 2 same-device pure non-stateful op members "
    "wired acyclically (each member reads only earlier members)",
)

_WRITER_OP_TYPES = frozenset({"Assign", "AssignAdd", "AssignSub"})
_ACCUMULATING_OP_TYPES = frozenset({"AssignAdd", "AssignSub"})


def verify_plan(plan: Any, context: str = "") -> Report:
    """Statically verify one lowered execution plan."""
    report = Report(context=context or "plan verification")
    by_uid = {item.uid: item for item in plan.items}
    _check_send_recv(plan, report)
    legs_by_op = _check_collective_worlds(plan, report)
    adjacency, indegree = _check_membership(plan, by_uid, legs_by_op, report)
    _check_cycles(plan, legs_by_op, adjacency, indegree, report)
    _check_variable_races(plan, adjacency, report)
    _check_fused_items(plan, report)
    return report


# ---------------------------------------------------------------------------
# membership + the dependency graph (one scan builds both)
# ---------------------------------------------------------------------------
#
# Dependency-graph nodes are item uids, plus one synthetic barrier node per
# collective op. The executor's group rendezvous means *no* leg completes
# before *every* leg has arrived — so each leg's dependencies feed the
# barrier, and each leg depends on the barrier. A cycle through two
# barriers is exactly "rank i issues A before B while rank j issues B
# before A". Membership checking walks the same source/extra_deps edges,
# so both structures come out of a single pass over the items: this runs
# on every verified plan build, and the scan count is the cost.

def _outputs_of(item: Any) -> int:
    if item.kind == "op":
        return len(item.op.outputs)
    if item.kind == "const":
        return len(item.const_values or ())
    if item.kind == "send":
        return 0
    if item.kind == "fused":
        return item.compiled.n_outputs  # the chain tail's output slots
    return 1  # recv, collective: one output slot


def _check_membership(plan: Any, by_uid: dict, legs_by_op: dict,
                      report: Report) -> tuple[dict, dict]:
    from repro.core.partition import FEED

    barrier_of: dict[int, str] = {}
    adjacency: dict[object, list] = {item.uid: [] for item in plan.items}
    indegree: dict[object, int] = dict.fromkeys(adjacency, 0)
    for name, legs in legs_by_op.items():
        barrier = f"barrier:{name}"
        adjacency[barrier] = []
        indegree[barrier] = 0
        for leg in legs:
            barrier_of[leg.uid] = barrier

    def bad_ref(item: Any, producer: Any, out_idx: Optional[int]) -> bool:
        if by_uid.get(producer.uid) is not producer:
            report.emit(
                "plan/dangling-item",
                f"item #{item.uid} ({item.kind}) references item "
                f"#{producer.uid}, which this plan does not contain",
                item=item.uid,
                op=item.op.name if item.op is not None else None,
                device=item.device,
                hint="a plan-level rewrite dropped an item without "
                     "rewiring its consumers",
            )
            return True
        if out_idx is not None and out_idx >= _outputs_of(producer):
            report.emit(
                "plan/dangling-item",
                f"item #{item.uid} reads output {out_idx} of item "
                f"#{producer.uid} ({producer.kind}), which has "
                f"{_outputs_of(producer)} output(s)",
                item=item.uid,
                device=item.device,
            )
        return False  # producer is live: the ordering edge still holds

    for item in plan.items:
        uid = item.uid
        barrier = barrier_of.get(uid)
        if barrier is None:
            dst = uid
        else:
            dst = barrier
            adjacency[barrier].append(uid)
            indegree[uid] += 1
        for source in item.sources:
            producer = source[0]
            if producer is FEED:
                continue
            if by_uid.get(producer.uid) is producer:
                out_idx = source[1]
                if out_idx is not None and out_idx >= _outputs_of(producer):
                    bad_ref(item, producer, out_idx)
                adjacency[producer.uid].append(dst)
                indegree[dst] += 1
            else:
                bad_ref(item, producer, None)
        for dep in item.extra_deps:
            if by_uid.get(dep.uid) is dep:
                adjacency[dep.uid].append(dst)
                indegree[dst] += 1
            else:
                bad_ref(item, dep, None)

    for source in plan.fetch_sources:
        if source[0] is FEED:
            continue
        producer, out_idx = source
        if by_uid.get(producer.uid) is not producer:
            report.emit(
                "plan/dangling-item",
                f"a fetch reads item #{producer.uid}, which this plan does "
                f"not contain",
                item=producer.uid,
            )
        elif out_idx >= _outputs_of(producer):
            report.emit(
                "plan/dangling-item",
                f"a fetch reads output {out_idx} of item #{producer.uid} "
                f"({producer.kind}), which has {_outputs_of(producer)} "
                f"output(s)",
                item=producer.uid,
            )
    return adjacency, indegree


# ---------------------------------------------------------------------------
# send/recv pairing
# ---------------------------------------------------------------------------

def _check_send_recv(plan: Any, report: Report) -> None:
    sends: dict[str, list] = {}
    recvs: dict[str, list] = {}
    for item in plan.items:
        if item.kind == "send":
            sends.setdefault(item.key, []).append(item)
        elif item.kind == "recv":
            recvs.setdefault(item.key, []).append(item)
    for key, senders in sends.items():
        if len(senders) > 1:
            uids = ", ".join(f"#{s.uid}" for s in senders)
            report.emit(
                "plan/double-send",
                f"{len(senders)} sends ({uids}) target rendezvous key "
                f"{key!r}: one slot, one producer",
                item=senders[0].uid,
                device=senders[0].device,
                hint="transfer dedup must collapse same-key sends into one",
            )
        if key not in recvs:
            report.emit(
                "plan/unpaired-send",
                f"send #{senders[0].uid} of {senders[0].tensor_name!r} "
                f"from {senders[0].device} has no receiving item",
                item=senders[0].uid,
                device=senders[0].device,
            )
    for key, receivers in recvs.items():
        if key not in sends:
            for recv in receivers:
                report.emit(
                    "plan/orphan-recv",
                    f"recv #{recv.uid} of {recv.tensor_name!r} on "
                    f"{recv.device} waits on key {key!r}, which no send "
                    f"produces: the run can only end by deadline",
                    item=recv.uid,
                    device=recv.device,
                    hint="restore the matching send, or drop the recv with "
                         "its consumers",
                )


# ---------------------------------------------------------------------------
# collectives: world membership
# ---------------------------------------------------------------------------

def _check_collective_worlds(plan: Any, report: Report) -> dict[str, list]:
    legs_by_op: dict[str, list] = {}
    for item in plan.items:
        if item.kind == "collective":
            legs_by_op.setdefault(item.op.name, []).append(item)
    for name, legs in legs_by_op.items():
        world = legs[0].op.get_attr("world")
        ranks = sorted(leg.collective_rank for leg in legs)
        if ranks != list(range(world)):
            missing = sorted(set(range(world)) - set(ranks))
            dupes = sorted({r for r in ranks if ranks.count(r) > 1})
            detail = []
            if missing:
                detail.append(f"missing rank(s) {missing}")
            if dupes:
                detail.append(f"duplicate rank(s) {dupes}")
            report.emit(
                "plan/collective-world",
                f"collective {name!r} declares world={world} but lowers to "
                f"{len(legs)} leg(s) with ranks {ranks}: "
                f"{'; '.join(detail) or 'rank set mismatch'} — the group "
                f"rendezvous can never complete",
                op=name,
                item=legs[0].uid,
                rank=(missing[0] if missing else (dupes[0] if dupes else None)),
                device=legs[0].device,
                hint="every rank must contribute exactly one leg; check "
                     "the devices/world attrs and any plan rewrites",
            )
        algorithms = {leg.collective_algorithm for leg in legs}
        if len(algorithms) > 1:
            report.emit(
                "plan/collective-world",
                f"collective {name!r} legs disagree on the communication "
                f"schedule: {sorted(a or '?' for a in algorithms)}",
                op=name,
                item=legs[0].uid,
            )
    return legs_by_op


def _check_cycles(plan: Any, legs_by_op: dict, adjacency: dict,
                  indegree: dict, report: Report) -> None:
    remaining = dict(indegree)
    queue = [node for node, deg in remaining.items() if deg == 0]
    visited = 0
    while queue:
        node = queue.pop()
        visited += 1
        for consumer in adjacency.get(node, ()):
            remaining[consumer] -= 1
            if remaining[consumer] == 0:
                queue.append(consumer)
    if visited == len(remaining):
        return
    stuck = {node for node, deg in remaining.items() if deg > 0}
    stuck_barriers = sorted(
        node[len("barrier:"):] for node in stuck if isinstance(node, str)
    )
    by_uid = {item.uid: item for item in plan.items}
    if len(stuck_barriers) >= 2:
        involved = []
        for name in stuck_barriers:
            for leg in legs_by_op[name]:
                if leg.uid in stuck:
                    involved.append(
                        f"{name}[rank {leg.collective_rank} on {leg.device}]"
                    )
        first = next(
            leg for name in stuck_barriers for leg in legs_by_op[name]
            if leg.uid in stuck
        )
        report.emit(
            "plan/collective-order",
            f"collectives {', '.join(stuck_barriers)} deadlock: the "
            f"dependency relation forces different ranks to issue them in "
            f"different orders ({'; '.join(involved)})",
            op=first.op.name,
            item=first.uid,
            rank=first.collective_rank,
            device=first.device,
            hint="every rank must issue the same collectives in the same "
                 "order; reorder the per-rank dependencies",
        )
        return
    stuck_items = sorted(node for node in stuck if not isinstance(node, str))
    labels = []
    for uid in stuck_items[:8]:
        item = by_uid[uid]
        label = item.op.name if item.op is not None else (item.key or item.kind)
        labels.append(f"#{uid}({label})")
    first_item = by_uid[stuck_items[0]] if stuck_items else None
    report.emit(
        "plan/cycle",
        f"{len(stuck_items)} plan item(s) form a dependency cycle: "
        f"{', '.join(labels)}{'...' if len(stuck_items) > 8 else ''}",
        item=stuck_items[0] if stuck_items else None,
        op=(first_item.op.name
            if first_item is not None and first_item.op is not None else None),
        device=first_item.device if first_item is not None else None,
        hint="no schedule can start a cycle; break it with a rewire",
    )


# ---------------------------------------------------------------------------
# variable races
# ---------------------------------------------------------------------------

def _check_variable_races(plan: Any, adjacency: dict,
                          report: Report) -> None:
    from repro.core.partition import _job_task_of

    # (var name, task) -> accessor items; variables live in the resource
    # manager of the task owning the executing device, so same-named
    # accesses on different tasks touch different storage.
    groups: dict[tuple, list] = {}
    for item in plan.items:
        if item.kind != "op":
            continue
        op_type = item.op.type
        if op_type == "VariableV2":
            var_name = item.op.name
        elif op_type in _WRITER_OP_TYPES:
            var_name = item.op.get_attr("var_name")
            if var_name is None:
                continue
        else:
            continue
        try:
            task = _job_task_of(item.device)
        except Exception:
            task = item.device
        groups.setdefault((var_name, task), []).append(item)

    for (var_name, _task), accessors in groups.items():
        writers = [a for a in accessors if a.op.type in _WRITER_OP_TYPES]
        if not writers or len(accessors) < 2:
            continue
        ordered = _pairwise_order(adjacency, [a.uid for a in accessors])
        for i, first in enumerate(accessors):
            for second in accessors[i + 1:]:
                if first.op.type not in _WRITER_OP_TYPES and \
                        second.op.type not in _WRITER_OP_TYPES:
                    continue  # read-read pairs are always safe
                if (first.uid, second.uid) in ordered or \
                        (second.uid, first.uid) in ordered:
                    continue
                both_write = (
                    first.op.type in _WRITER_OP_TYPES
                    and second.op.type in _WRITER_OP_TYPES
                )
                commutative = (
                    first.op.type in _ACCUMULATING_OP_TYPES
                    and second.op.type in _ACCUMULATING_OP_TYPES
                )
                kind = "write-write" if both_write else "read-write"
                severity = Severity.WARNING if commutative else None
                note = (
                    " (both pure accumulations: final value is "
                    "order-independent up to rounding)" if commutative else ""
                )
                report.emit(
                    "plan/variable-race",
                    f"{kind} race on variable {var_name!r}: "
                    f"{first.op.type} {first.op.name!r} (item #{first.uid}) "
                    f"and {second.op.type} {second.op.name!r} (item "
                    f"#{second.uid}) on {first.device} have no "
                    f"happens-before path{note}",
                    op=second.op.name,
                    item=second.uid,
                    device=second.device,
                    severity=severity,
                    hint="order the accesses with a control dependency "
                         "(tf.control_dependencies) or split them across "
                         "separate session.run calls",
                )


# ---------------------------------------------------------------------------
# fused chains (plan-level kernel fusion)
# ---------------------------------------------------------------------------

def _check_fused_items(plan: Any, report: Report) -> None:
    """Verify every compiled chain's member set and internal wiring.

    The fusion pass promises: at least two members, all ``"op"`` items
    with pure / non-stateful / non-graph-only kernels on the fused
    item's own device, and member-to-member reads that reference only
    *earlier* chain positions (member acyclicity by construction).
    """
    from repro.core.kernels import registry as kernel_registry

    for item in plan.items:
        if item.kind != "fused":
            continue

        def bad(msg: str, **extra) -> None:
            report.emit(
                "plan/fused-member", f"fused item #{item.uid}: {msg}",
                item=item.uid, device=item.device,
                hint="the kernel_fusion pass built an illegal chain; its "
                     "legality rules and this check must agree",
                **extra,
            )

        chain = item.compiled
        if chain is None or not chain.steps:
            bad("has no compiled chain attached")
            continue
        if len(chain.steps) < 2:
            bad(f"chain has {len(chain.steps)} member(s); fusing a single "
                f"op only adds indirection")
        for pos, step in enumerate(chain.steps):
            member = step.member
            label = f"member {pos} ({member.op.type} {member.op.name!r})"
            if member.kind != "op":
                bad(f"{label} is a {member.kind!r} item, not an op",
                    op=member.op.name)
            op_type = member.op.type
            if not kernel_registry.is_pure(op_type) or \
                    kernel_registry.is_stateful(op_type):
                bad(f"{label} is not a pure op", op=member.op.name)
            if kernel_registry.is_graph_only(op_type):
                bad(f"{label} has a blocking (graph-only) kernel",
                    op=member.op.name)
            if member.device != item.device:
                bad(f"{label} sits on {member.device}, crossing the "
                    f"chain's device boundary", op=member.op.name)
            for token in step.spec:
                if token[0] == "v" and token[1] >= pos:
                    bad(f"{label} reads member {token[1]}, which does not "
                        f"precede it in the chain", op=member.op.name)
                elif token[0] == "x" and token[1] >= len(item.sources):
                    bad(f"{label} reads external input {token[1]}, but the "
                        f"fused item has {len(item.sources)} source(s)",
                        op=member.op.name)
        tail = chain.steps[-1].member
        if tail.op is not None and chain.n_outputs != len(tail.op.outputs):
            bad(f"declares {chain.n_outputs} output(s) but its tail "
                f"{tail.op.name!r} produces {len(tail.op.outputs)}")


def _pairwise_order(adjacency: dict, uids: list) -> set:
    """All (a, b) pairs where b is reachable from a, within ``uids``."""
    targets = set(uids)
    ordered: set = set()
    for start in uids:
        seen = {start}
        frontier = deque(adjacency.get(start, ()))
        while frontier:
            node = frontier.popleft()
            if node in seen:
                continue
            seen.add(node)
            if node in targets:
                ordered.add((start, node))
            frontier.extend(adjacency.get(node, ()))
    return ordered
